"""Spectral graph analysis: the paper's eigensolver experiment, end to end.

Computes the ten largest eigenpairs of the normalized Laplacian
``L = I - D^{-1/2} A D^{-1/2}`` of a social-network-like graph with the
distributed Krylov-Schur solver (the paper's Anasazi BKS configuration:
block size 1, tol 1e-3, random start), under several data layouts.

Eigenvalues near 2 certify near-bipartite structure — the paper's cited
motivation (bipartite subgraph detection, Kirkland & Paul). The example
verifies the distributed solver against scipy and shows the Table-5
phenomenon: nonzero-balanced 2D-GP leaves vector operations imbalanced,
and the multiconstraint variant (2D-GP-MC) fixes it.

Run:  python examples/spectral_analysis.py [--procs 64]
"""

import argparse

import numpy as np
import scipy.sparse.linalg as sla

from repro.bench import format_table
from repro.generators import bter
from repro.graphs import normalized_laplacian
from repro.layouts import make_layout
from repro.solvers import eigsh_dist, normalized_laplacian_operator

METHODS = ["1d-block", "2d-block", "2d-gp", "2d-gp-mc"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--procs", type=int, default=64)
    parser.add_argument("--n", type=int, default=6_000)
    parser.add_argument("--k", type=int, default=10, help="eigenpairs to compute")
    args = parser.parse_args()

    print(f"generating a community-structured scale-free graph (BTER, n={args.n})...")
    A = bter(args.n, gamma=2.0, mean_degree=20, max_degree=args.n // 10, seed=3)
    print(f"  {A.shape[0]} vertices, {A.nnz} edges (stored twice)")

    rows = []
    eigs = None
    for method in METHODS:
        layout = make_layout(method, A, args.procs, seed=0)
        op = normalized_laplacian_operator(A, layout)
        res = eigsh_dist(op, k=args.k, tol=1e-3, which="LA", seed=42)
        eigs = res.eigenvalues
        led = op.ledger
        rows.append((layout.name, res.matvecs,
                     f"{led.spmv_total():.4f}", f"{led.get('vector-ops'):.4f}",
                     f"{led.total():.4f}",
                     f"{op.dist.vector_map.imbalance():.1f}"))

    print(f"\nten largest eigenvalues of the normalized Laplacian:")
    print(" ", np.round(eigs, 4).tolist())
    ref = np.sort(sla.eigsh(normalized_laplacian(A), k=args.k, which="LA",
                            return_eigenvectors=False))[::-1]
    print(f"  max |ours - scipy| = {np.abs(np.sort(eigs) - np.sort(ref)).max():.2e}")
    if eigs[0] > 1.9:
        print("  (an eigenvalue near 2 flags a near-bipartite subgraph — the "
              "paper's motivating analysis)")

    print(f"\nmodeled eigensolve cost on p={args.procs} simulated processes:\n")
    print(format_table(
        ["layout", "matvecs", "SpMV time", "vector-op time", "total", "vector imbal"],
        rows,
    ))
    print(
        "\nreading the table: 2D-GP balances *nonzeros* but typically leaves\n"
        "vector entries imbalanced, so its dense (vector-op) time suffers;\n"
        "2D-GP-MC balances rows AND nonzeros and should have the lowest total\n"
        "— the paper's Table 5 in miniature."
    )


if __name__ == "__main__":
    main()
