"""PageRank on a synthetic web crawl under different data layouts.

PageRank is the paper's motivating workload for linear-algebra graph
analysis ("in its simplest form the power method applied to a matrix
derived from the weblink adjacency matrix"). This example:

1. generates a host-structured web graph (wb-edu style: strong id-space
   locality, hub pages),
2. runs the distributed PageRank iteration under 1D-Block, 1D-Random and
   2D-GP layouts,
3. verifies the three produce the same ranking, and
4. compares modeled iteration cost — including the paper's wb-edu twist:
   on graphs with crawl locality, randomisation *hurts*.

Run:  python examples/pagerank_webgraph.py [--procs 64]
"""

import argparse

import numpy as np

from repro.bench import format_table
from repro.generators import webgraph
from repro.layouts import make_layout
from repro.solvers import pagerank

METHODS = ["1d-block", "1d-random", "2d-block", "2d-gp"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--procs", type=int, default=64)
    parser.add_argument("--n", type=int, default=12_000, help="number of pages")
    args = parser.parse_args()

    print(f"generating a web crawl proxy (n={args.n}, host locality 85%)...")
    A = webgraph(args.n, mean_degree=14, intra_fraction=0.85, seed=7)
    print(f"  {A.shape[0]} pages, {A.nnz} links")

    rows = []
    scores = {}
    for method in METHODS:
        layout = make_layout(method, A, args.procs, seed=0)
        res = pagerank(A, layout, damping=0.85, tol=1e-10)
        scores[layout.name] = res.scores
        rows.append((layout.name, res.iterations,
                     f"{res.ledger.spmv_total():.4f}",
                     f"{res.ledger.total():.4f}",
                     "yes" if res.converged else "no"))

    names = list(scores)
    for other in names[1:]:
        drift = np.abs(scores[names[0]] - scores[other]).max()
        assert drift < 1e-9, f"layouts disagree: {drift}"
    print("\nall layouts converge to the same PageRank vector "
          f"(max cross-layout drift < 1e-9)")

    print(f"\nmodeled cost on p={args.procs} simulated processes:\n")
    print(format_table(["layout", "iterations", "SpMV time", "total time", "converged"], rows))

    top = np.argsort(scores[names[0]])[::-1][:5]
    print("\ntop-5 pages by PageRank:", top.tolist())
    t = {r[0]: float(r[3]) for r in rows}
    if t["1D-Random"] > t["1D-Block"]:
        print("\nnote: 1D-Random is SLOWER than 1D-Block here — the wb-edu "
              "effect.\nRandomisation destroyed the crawl's host locality, and "
              "the extra communication volume outweighed the balance gain "
              "(paper, section 5.2).")


if __name__ == "__main__":
    main()
