"""A tour of the partitioning stack: from multilevel bisection to
Algorithm 2's Cartesian nonzero mapping.

Four stops:

1. partition a mesh — the case graph partitioners were built for — and a
   scale-free graph, comparing edge cut against random assignment;
2. inspect the multilevel machinery (coarsening levels, cut/balance);
3. apply the paper's Algorithm 2 to turn the 1D partition into a 2D
   Cartesian nonzero distribution, and verify the O(sqrt(p)) message
   property by brute force;
4. render a small grid partition as ASCII art, because seeing is believing.

Run:  python examples/partitioning_tour.py
"""

import numpy as np

from repro.generators import grid2d, load_corpus_matrix
from repro.layouts import cartesian_layout, nonzero_partition
from repro.partitioning import PartGraph, partition_matrix
from repro.partitioning.coarsen import coarsen_to
from repro.runtime import DistSparseMatrix, comm_stats


def stop1_mesh_vs_scalefree() -> None:
    print("=== 1. mesh vs scale-free: how much structure is there? ===")
    rng = np.random.default_rng(0)
    for name, A in (("mesh 48x48", grid2d(48, 48)),
                    ("com-orkut proxy", load_corpus_matrix("com-orkut"))):
        g = PartGraph.from_matrix(A, "nnz")
        res = partition_matrix(A, 16, method="gp", seed=0)
        rnd_cut = g.edgecut(rng.integers(0, 16, g.n))
        print(f"  {name:18s} GP cut {res.edgecut:>9.0f}  random cut {rnd_cut:>9.0f} "
              f" ratio {res.edgecut / rnd_cut:.2f}  imbalance {res.imbalance[0]:.2f}")
    print("  (meshes: partitioning crushes random; scale-free: smaller but "
          "real gains — the paper's 'contrary to popular belief' finding)\n")


def stop2_multilevel() -> None:
    print("=== 2. inside the multilevel partitioner ===")
    A = load_corpus_matrix("bter")
    g = PartGraph.from_matrix(A, "nnz")
    levels = coarsen_to(g, 120, np.random.default_rng(0))
    sizes = [lv[0].n for lv in levels]
    print(f"  coarsening ladder (vertices per level): {sizes}")
    print(f"  edges kept coarse: {levels[-1][0].nedges} of {g.nedges}\n")


def stop3_algorithm2() -> None:
    print("=== 3. Algorithm 2: Cartesian nonzero mapping ===")
    A = load_corpus_matrix("cit-Patents")
    pr = pc = 4
    res = partition_matrix(A, pr * pc, method="gp", seed=0)
    procrow, proccol = nonzero_partition(res.part, pr, pc)
    print(f"  phi(k) = rpart(k) mod {pr}, psi(k) = rpart(k) div {pr}")
    layout = cartesian_layout("2D-GP", A, res.part, pr, pc)
    dist = DistSparseMatrix(A, layout)
    s = comm_stats(dist)
    print(f"  brute-force check over the real communication plans:")
    print(f"    max messages/process = {s.max_messages}  "
          f"(bound: pr + pc - 2 = {pr + pc - 2})")
    print(f"    expand volume {s.expand_volume}, fold volume {s.fold_volume}\n")
    assert s.max_messages <= pr + pc - 2


def stop4_ascii_art() -> None:
    print("=== 4. a 24x24 mesh, 8 GP parts ===")
    nx = ny = 24
    A = grid2d(nx, ny)
    res = partition_matrix(A, 8, method="gp", seed=0)
    glyphs = "0123456789abcdef"
    for i in range(nx):
        print("  " + "".join(glyphs[res.part[i * ny + j]] for j in range(ny)))
    print(f"\n  cut: {res.edgecut:.0f} edges, imbalance {res.imbalance[0]:.2f}")


if __name__ == "__main__":
    stop1_mesh_vs_scalefree()
    stop2_multilevel()
    stop3_algorithm2()
    stop4_ascii_art()
