"""Quickstart: distribute a scale-free matrix six ways and compare SpMV.

This walks the paper's core experiment end to end on one matrix:

1. generate a scale-free graph (a LiveJournal-like proxy),
2. build each of the six data layouts of the paper's section 5.2,
3. distribute the matrix over p simulated ranks,
4. execute one real four-phase SpMV and check it against scipy,
5. report the paper's metrics (imbalance, max messages, communication
   volume) and the modeled time for 100 SpMV operations.

Run:  python examples/quickstart.py [--procs 64]
"""

import argparse

import numpy as np

from repro.bench import format_table
from repro.generators import bter
from repro.layouts import make_layout
from repro.runtime import CAB, DistSparseMatrix, comm_stats

METHODS = ["1d-block", "1d-random", "1d-gp", "2d-block", "2d-random", "2d-gp"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--procs", type=int, default=64, help="simulated process count")
    parser.add_argument("--n", type=int, default=10_000, help="graph size")
    args = parser.parse_args()

    print(f"generating a scale-free graph with community structure "
          f"(BTER, n={args.n}, gamma=2.0)...")
    A = bter(args.n, gamma=2.0, mean_degree=18, max_degree=args.n // 12, seed=1)
    print(f"  {A.shape[0]} rows, {A.nnz} nonzeros, "
          f"max row degree {int(np.diff(A.indptr).max())}")

    rng = np.random.default_rng(0)
    x = rng.standard_normal(A.shape[0])
    y_ref = A @ x

    rows = []
    for method in METHODS:
        layout = make_layout(method, A, args.procs, seed=0)
        dist = DistSparseMatrix(A, layout, CAB)
        err = float(np.abs(dist.spmv(x) - y_ref).max())
        s = comm_stats(dist)
        rows.append((layout.name, f"{s.nnz_imbalance:.2f}", s.max_messages,
                     s.total_comm_volume, f"{dist.modeled_spmv_seconds(100):.4f}",
                     f"{err:.1e}"))
        print(f"  {layout.name}: distributed SpMV max error vs scipy = {err:.2e}")

    print(f"\nSpMV comparison on p={args.procs} simulated processes "
          f"(machine model: {CAB.name}):\n")
    print(format_table(
        ["layout", "nnz imbalance", "max msgs", "total CV", "t(100 SpMV)", "error"],
        rows,
    ))
    best = min(rows, key=lambda r: float(r[4]))
    print(f"\nfastest layout: {best[0]}")
    print("expected: 2D-GP — graph partitioning's lower communication volume "
          "plus the\nCartesian O(sqrt p) message bound (the paper's combination).")


if __name__ == "__main__":
    main()
