"""Community detection and bipartite search on the distributed stack.

The paper motivates its eigensolver experiments with exactly these
analyses: "Eigenvalues and eigenvectors of various forms of the graph
Laplacian are commonly used in clustering, partitioning, community
detection, and anomaly detection", and its Table-4 workload (ten largest
eigenpairs of the normalized Laplacian) comes from bipartite-subgraph
search. This example runs both analyses end to end:

1. spectral clustering of a BTER graph with planted community structure,
   under two data layouts — identical clusters, different modeled cost;
2. bipartite detection: a mesh (exactly bipartite) vs a social-network
   proxy (full of triangles), scored by 2 - lambda_max(L_hat).

Run:  python examples/community_detection.py
"""

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.generators import bter, grid2d
from repro.graphs import largest_connected_component
from repro.layouts import make_layout
from repro.spectral import bipartite_detection, spectral_clustering


def communities() -> None:
    print("=== community detection (spectral clustering) ===")
    A = bter(3000, gamma=2.1, mean_degree=16, max_degree=300,
             max_clustering=0.9, clustering_decay=0.3, seed=11)
    print(f"  BTER graph: {A.shape[0]} vertices, {A.nnz} edges")
    results = {}
    for method in ("1d-block", "2d-gp-mc"):
        lay = make_layout(method, A, 16, seed=0)
        res = spectral_clustering(A, n_clusters=6, layout=lay, tol=1e-4, seed=1)
        results[lay.name] = res
        sizes = np.bincount(res.labels, minlength=6)
        print(f"  {lay.name:9s} cluster sizes {sizes.tolist()} "
              f"modeled solve {res.ledger.total():.4f}s "
              f"(SpMV {res.ledger.spmv_total():.4f}s)")
    a, b = results.values()
    # cluster ids are arbitrary, so align them first: optimal one-to-one
    # relabeling via the contingency table, then compare vertex-by-vertex
    C = np.zeros((6, 6), dtype=np.int64)
    np.add.at(C, (a.labels, b.labels), 1)
    rows, cols = linear_sum_assignment(-C)
    agree = C[rows, cols].sum() / len(a.labels)
    print(f"  label agreement {agree:.0%} (up to cluster relabeling) — "
          f"both layouts embed the same spectrum; layout changes cost, "
          f"not answers\n")


def bipartite() -> None:
    print("=== bipartite-subgraph search (the paper's Table-4 analysis) ===")
    # restrict to the largest connected component: lambda_max = 2 whenever
    # ANY component is bipartite, and an isolated edge already qualifies
    social, _ = largest_connected_component(bter(2000, mean_degree=12, seed=3))
    for name, A in (("20x15 mesh (bipartite)", grid2d(20, 15)),
                    ("BTER social proxy", social)):
        lay = make_layout("2d-random", A, 16, seed=0)
        res = bipartite_detection(A, layout=lay, tol=1e-8, seed=4)
        verdict = "bipartite!" if res.score < 1e-6 else "not bipartite"
        print(f"  {name:26s} lambda_max = {res.eigenvalue:.6f} "
              f"score = {res.score:.2e} -> {verdict}")
    print("  (an eigenvalue of exactly 2 certifies a bipartite component;"
          "\n   values near 2 flag near-bipartite subgraphs worth mining)")


if __name__ == "__main__":
    communities()
    bipartite()
