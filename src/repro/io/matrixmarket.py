"""MatrixMarket coordinate-format reader/writer.

Supports the subset of the format the paper's inputs use: ``matrix
coordinate`` with field ``real``/``integer``/``pattern`` and symmetry
``general``/``symmetric``. Implemented directly on :func:`numpy.loadtxt`
rather than ``scipy.io.mmread`` so that (a) pattern files get unit values
consistent with the rest of the library, and (b) symmetric storage is
expanded the way the paper stores graphs (both (i,j) and (j,i)).
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from ..graphs.csr import as_csr, from_edges

__all__ = ["read_matrix_market", "write_matrix_market"]

_FIELDS = {"real", "integer", "pattern"}
_SYMMETRIES = {"general", "symmetric"}


def _open_text(path: str | Path):
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="ascii")
    return open(path, "r", encoding="ascii")


def read_matrix_market(path: str | Path) -> sp.csr_matrix:
    """Read a MatrixMarket coordinate file (optionally gzipped) into CSR.

    Symmetric storage is expanded to the full pattern; pattern files get
    value 1.0 on every entry. Raises ``ValueError`` on headers outside the
    supported subset (array format, complex/hermitian/skew matrices).
    """
    with _open_text(path) as fh:
        header = fh.readline().strip().split()
        if len(header) < 5 or header[0] != "%%MatrixMarket" or header[1] != "matrix":
            raise ValueError(f"not a MatrixMarket matrix file: {path}")
        fmt, field, symmetry = header[2], header[3], header[4].lower()
        if fmt != "coordinate":
            raise ValueError(f"only coordinate format supported, got {fmt!r}")
        if field not in _FIELDS:
            raise ValueError(f"unsupported field {field!r} (supported: {sorted(_FIELDS)})")
        if symmetry not in _SYMMETRIES:
            raise ValueError(
                f"unsupported symmetry {symmetry!r} (supported: {sorted(_SYMMETRIES)})"
            )
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        m, n, nnz = (int(tok) for tok in line.split())
        data = np.loadtxt(fh, ndmin=2) if nnz else np.empty((0, 3))
    if data.shape[0] != nnz:
        raise ValueError(f"expected {nnz} entries, file has {data.shape[0]}")
    rows = data[:, 0].astype(np.int64) - 1  # 1-based -> 0-based
    cols = data[:, 1].astype(np.int64) - 1
    if field == "pattern":
        vals = np.ones(nnz)
    else:
        vals = data[:, 2].astype(np.float64)
    if symmetry == "symmetric":
        off = rows != cols
        rows = np.concatenate([rows, cols[off]])
        cols = np.concatenate([cols, rows[: nnz][off]])
        vals = np.concatenate([vals, vals[off]])
    return from_edges(rows, cols, (m, n), values=vals)


def write_matrix_market(path: str | Path, A, pattern: bool = False) -> None:
    """Write *A* as a general coordinate MatrixMarket file.

    With ``pattern=True`` only the structure is written (the natural choice
    for adjacency matrices, and ~40% smaller files).
    """
    A = as_csr(A).tocoo()
    field = "pattern" if pattern else "real"
    path = Path(path)
    with open(path, "w", encoding="ascii") as fh:
        fh.write(f"%%MatrixMarket matrix coordinate {field} general\n")
        fh.write(f"{A.shape[0]} {A.shape[1]} {A.nnz}\n")
        if pattern:
            np.savetxt(fh, np.column_stack([A.row + 1, A.col + 1]), fmt="%d %d")
        else:
            np.savetxt(
                fh,
                np.column_stack([A.row + 1, A.col + 1, A.data]),
                fmt="%d %d %.17g",
            )
