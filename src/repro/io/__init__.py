"""Matrix I/O.

The paper reads its inputs from MatrixMarket files (UF collection / SNAP
exports). We provide a self-contained MatrixMarket coordinate reader/writer
so users can run the full pipeline on the real datasets when they have
them.
"""

from .matrixmarket import read_matrix_market, write_matrix_market

__all__ = ["read_matrix_market", "write_matrix_market"]
