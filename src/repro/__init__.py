"""repro — reproduction of *Scalable Matrix Computations on Large Scale-Free
Graphs Using 2D Graph Partitioning* (Boman, Devine, Rajamanickam, SC13).

The package is organised in layers, bottom-up:

``repro.graphs``
    Sparse-matrix/graph substrate: CSR helpers, symmetrisation, Laplacians,
    structural analysis of scale-free graphs.
``repro.generators``
    Scale-free graph generators (R-MAT, BTER, Chung-Lu, preferential
    attachment) plus mesh graphs and the proxy corpus standing in for the
    paper's ten input matrices.
``repro.io``
    MatrixMarket reader/writer.
``repro.partitioning``
    From-scratch multilevel graph and hypergraph partitioners (the role
    ParMETIS / Zoltan PHG play in the paper), including multiconstraint
    balancing.
``repro.layouts``
    The data distributions compared in the paper: 1D-Block, 1D-Random,
    1D-GP/HP, 2D-Block, 2D-Random and the paper's contribution,
    2D Cartesian graph partitioning (Algorithms 1 and 2).
``repro.runtime``
    Simulated distributed-memory machine: Epetra-style maps, import/export
    communication plans, distributed matrices/vectors, the four-phase
    parallel SpMV with exact numerics, communication metrics, and an
    alpha-beta-gamma cost model that turns the exact communication counts
    into modeled wall-clock time.
``repro.solvers``
    Distributed iterative solvers: Lanczos, Krylov-Schur (the role of
    Anasazi BKS), the power method / PageRank.
``repro.bench``
    Experiment harness regenerating every table and figure of the paper's
    evaluation section.

Quickstart::

    from repro import generators, layouts, runtime
    A = generators.rmat(scale=14, edge_factor=8, seed=1)
    layout = layouts.make_layout("2d-gp", A, nprocs=64, seed=0)
    dist = runtime.DistSparseMatrix.from_layout(A, layout)
    stats = dist.comm_stats()
    print(stats.max_messages, stats.total_comm_volume)
"""

from . import graphs, generators, io, partitioning, layouts, runtime, solvers, bench, spectral

__all__ = [
    "spectral",
    "graphs",
    "generators",
    "io",
    "partitioning",
    "layouts",
    "runtime",
    "solvers",
    "bench",
    "__version__",
]

__version__ = "1.0.0"
