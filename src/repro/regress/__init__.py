"""Golden-invariant regression harness (``python -m repro regress``).

The reproduction's claims rest on exact, machine-independent quantities —
communication volume, max messages per rank, nonzero/vector imbalance —
that fall straight out of :class:`~repro.runtime.plan.CommPlan` and
:class:`~repro.runtime.maps.Map` state, plus the modeled alpha-beta-gamma
phase costs derived from them. Nothing else in the test suite pins those
numbers down: a partitioner tweak or a ``CommPlan.build`` refactor could
silently shift every table in EXPERIMENTS.md while tier-1 tests stay
green.

This subsystem snapshots the full layout-method x corpus-matrix x p grid
as schema-versioned golden JSON under ``tests/golden/`` — computed from
plans alone, without executing a single SpMV — and checks the working
tree against it with a two-tier tolerance policy:

* integer invariants (message counts, volumes, nonzero maxima) must match
  **bit-exactly**;
* modeled seconds and imbalance ratios must match to a tight relative
  tolerance (:data:`DEFAULT_RTOL`), absorbing only float reassociation
  across numpy versions.

CI runs ``python -m repro regress check`` on every push; an intentional
metric change is shipped by regenerating the goldens in the same PR
(``python -m repro regress generate``) so the diff is reviewable.
"""

from .extract import cell_metrics
from .golden import (
    DEFAULT_GOLDEN_DIR,
    DEFAULT_RTOL,
    SCHEMA_VERSION,
    Mismatch,
    check_goldens,
    compare_matrix,
    diff_golden_dirs,
    format_mismatches,
    generate_goldens,
    golden_path,
    golden_payload,
    load_golden,
    write_golden,
)
from .grid import DEFAULT_SPEC, GridSpec, cell_key, compute_grid, compute_matrix_cells

__all__ = [
    "cell_metrics",
    "DEFAULT_GOLDEN_DIR",
    "DEFAULT_RTOL",
    "SCHEMA_VERSION",
    "Mismatch",
    "check_goldens",
    "compare_matrix",
    "diff_golden_dirs",
    "format_mismatches",
    "generate_goldens",
    "golden_path",
    "golden_payload",
    "load_golden",
    "write_golden",
    "DEFAULT_SPEC",
    "GridSpec",
    "cell_key",
    "compute_grid",
    "compute_matrix_cells",
]
