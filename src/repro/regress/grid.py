"""Grid enumeration: which (matrix, layout, p) cells get golden files.

The default grid is the whole proxy corpus under each matrix's six paper
layouts (GP-vs-HP resolved per :func:`repro.layouts.paper_methods`) at
p in (4, 16, 64) — the process counts whose partitions a CI runner can
recompute from a cold cache in minutes. Larger p (256, 1024) stay the
scaling benches' territory: one hypergraph partition of rmat_26 at p=256
costs ~5 minutes alone, and the invariants the harness guards are already
exercised by three p values per layout.

Partitions route through the bench harness's on-disk cache, and lower
process counts derive from the p-max partition by recursive-bisection
nesting — exactly how the benches amortise partitioner runs, so goldens
and benches see identical layouts.

With an ``engine_store`` directory, each cell additionally probes the
compiled-engine artifact store before building anything: artifacts saved
by a previous regress run carry the cell's metrics in their metadata, so
a matching entry (same machine model) skips the layout + DistSparseMatrix
build entirely. Metrics survive the JSON round-trip bit-exactly (ints
stay ints, float repr is shortest-round-trip), so a store hit produces
the same golden bytes as a fresh build.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..bench.harness import engine_store_key, layout_for
from ..generators.corpus import corpus_names, corpus_spec, load_corpus_matrix
from ..graphs.csr import as_csr
from ..layouts import paper_methods
from ..runtime import MACHINES, DistSparseMatrix
from ..runtime.store import EngineStore
from .extract import cell_metrics

__all__ = [
    "GridSpec",
    "DEFAULT_SPEC",
    "cell_key",
    "compute_grid",
    "compute_matrix_cells",
]


@dataclass(frozen=True)
class GridSpec:
    """One regression grid: matrices x methods x process counts.

    ``methods=None`` resolves each matrix's method set from its corpus
    partitioner choice; an explicit tuple applies to every matrix (and is
    what lets tests run tiny non-corpus grids).
    """

    matrices: tuple[str, ...] = tuple(corpus_names())
    procs: tuple[int, ...] = (4, 16, 64)
    methods: tuple[str, ...] | None = None
    seed: int = 0
    machine: str = "cab"

    def __post_init__(self) -> None:
        if not self.procs:
            raise ValueError("spec needs at least one process count")
        if self.machine not in MACHINES:
            raise ValueError(
                f"unknown machine {self.machine!r}; choose from {sorted(MACHINES)}"
            )

    def methods_for(self, matrix: str) -> list[str]:
        """The layout methods this grid evaluates for *matrix*."""
        if self.methods is not None:
            return [m.lower() for m in self.methods]
        return paper_methods(corpus_spec(matrix).partitioner)


#: The CI grid: full corpus, paper methods, three process counts.
DEFAULT_SPEC = GridSpec()


def cell_key(method: str, nprocs: int) -> str:
    """Stable key of one grid cell, e.g. ``"2d-gp@p64"``."""
    return f"{method.lower()}@p{nprocs}"


def compute_matrix_cells(
    A,
    spec: GridSpec,
    matrix: str,
    cache_dir: Path | None = None,
    engine_store: "EngineStore | None" = None,
) -> dict[str, dict[str, int | float]]:
    """Metrics for every (method, p) cell of one matrix.

    Builds each layout (partitions come from the cache; p < max(procs)
    derives from the p-max partition by RB nesting) and a
    :class:`DistSparseMatrix` on the spec's machine model — no SpMV runs.

    With ``engine_store``, the artifact metadata is probed first: an
    entry saved by a previous run under the same key and machine model
    carries this cell's metrics, so the whole build is skipped. On a
    miss the freshly computed metrics (and the compiled engine) are
    persisted for the next run.
    """
    A = as_csr(A)
    machine = MACHINES[spec.machine]
    pmax = max(spec.procs)
    cells: dict[str, dict[str, int | float]] = {}
    for p in sorted(spec.procs):
        for method in spec.methods_for(matrix):
            nested_from = pmax if p != pmax else None
            store_key = None
            if engine_store is not None:
                store_key = engine_store_key(
                    A, method, p, seed=spec.seed, nested_from=nested_from
                )
                meta = engine_store.load_meta(store_key)
                if (
                    meta is not None
                    and meta.get("machine") == spec.machine
                    and isinstance(meta.get("cell_metrics"), dict)
                ):
                    cells[cell_key(method, p)] = meta["cell_metrics"]
                    continue
            layout = layout_for(
                A,
                method,
                p,
                seed=spec.seed,
                cache_dir=cache_dir,
                nested_from=nested_from,
            )
            dist = DistSparseMatrix(A, layout, machine)
            metrics = cell_metrics(dist)
            cells[cell_key(method, p)] = metrics
            if store_key is not None:
                engine_store.save(
                    store_key,
                    dist.engine,
                    {
                        "matrix": matrix,
                        "machine": spec.machine,
                        "cell_metrics": metrics,
                    },
                )
    return cells


def compute_grid(
    spec: GridSpec,
    cache_dir: Path | None = None,
    matrices: dict[str, object] | None = None,
    engine_store: "EngineStore | None" = None,
) -> dict[str, dict[str, dict[str, int | float]]]:
    """Compute the whole grid; ``matrices`` overrides corpus loading."""
    out = {}
    for name in spec.matrices:
        if matrices is not None and name in matrices:
            A = matrices[name]
        else:
            A = load_corpus_matrix(name)
        out[name] = compute_matrix_cells(
            A, spec, name, cache_dir=cache_dir, engine_store=engine_store
        )
    return out
