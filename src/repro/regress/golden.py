"""Golden files: serialization, two-tier comparison, readable diffs.

One JSON file per matrix under ``tests/golden/``, schema-versioned, with
deterministic key order so regenerated files diff cleanly in review. The
tolerance policy lives in :func:`compare_matrix`: JSON ints must match
bit-exactly, JSON floats to a relative tolerance (:data:`DEFAULT_RTOL`);
a type change between the two tiers is itself a failure.
"""

from __future__ import annotations

import json
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

from ..bench.reporting import format_table
from ..generators.corpus import load_corpus_matrix
from .grid import GridSpec, compute_matrix_cells

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_GOLDEN_DIR",
    "DEFAULT_RTOL",
    "Mismatch",
    "golden_path",
    "golden_payload",
    "write_golden",
    "load_golden",
    "compare_matrix",
    "generate_goldens",
    "check_goldens",
    "diff_golden_dirs",
    "format_mismatches",
]

#: Bump when the cell metric set or file layout changes shape.
SCHEMA_VERSION = 1

#: Where CI and the CLI look for goldens (relative to the repo root).
DEFAULT_GOLDEN_DIR = Path("tests/golden")

#: Default rtol for the float tier — absorbs float reassociation across
#: numpy versions, nothing structural (integer drift is never tolerated).
DEFAULT_RTOL = 1e-9

#: Header fields of a golden payload that must match the checking spec.
_HEADER_FIELDS = ("schema", "matrix", "machine", "seed", "procs", "methods")


@dataclass(frozen=True)
class Mismatch:
    """One divergence between golden and computed state.

    ``cell`` is a grid-cell key ("2d-gp@p64"), or "header" for file-level
    problems. ``golden``/``computed`` are the two values (None when one
    side is absent). ``note`` says which tier failed and by how much.
    """

    matrix: str
    cell: str
    metric: str
    golden: object
    computed: object
    note: str

    def row(self) -> tuple:
        g = "-" if self.golden is None else self.golden
        c = "-" if self.computed is None else self.computed
        return (self.matrix, self.cell, self.metric, g, c, self.note)


def golden_path(golden_dir: Path, matrix: str) -> Path:
    """File that holds *matrix*'s golden cells."""
    return Path(golden_dir) / f"{matrix}.json"


def golden_payload(matrix: str, spec: GridSpec, cells: dict) -> dict:
    """The on-disk document: header fields + the cell metrics."""
    return {
        "schema": SCHEMA_VERSION,
        "matrix": matrix,
        "machine": spec.machine,
        "seed": spec.seed,
        "procs": sorted(spec.procs),
        "methods": spec.methods_for(matrix),
        "cells": cells,
    }


def write_golden(golden_dir: Path, matrix: str, payload: dict) -> Path:
    """Serialize deterministically (sorted keys, trailing newline)."""
    path = golden_path(golden_dir, matrix)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_golden(golden_dir: Path, matrix: str) -> dict | None:
    """Load *matrix*'s golden payload, or None if the file is absent."""
    path = golden_path(golden_dir, matrix)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def _compare_value(
    matrix: str, cell: str, metric: str, golden, computed, rtol: float
) -> Mismatch | None:
    """Apply the two-tier policy to one (golden, computed) pair."""
    if isinstance(golden, bool) or isinstance(computed, bool):
        note = "unexpected bool metric"
        return Mismatch(matrix, cell, metric, golden, computed, note)
    if isinstance(golden, int) != isinstance(computed, int):
        note = "metric changed tier (int <-> float)"
        return Mismatch(matrix, cell, metric, golden, computed, note)
    if isinstance(golden, int):
        if golden != computed:
            note = f"integer invariant drifted by {computed - golden:+d}"
            return Mismatch(matrix, cell, metric, golden, computed, note)
        return None
    rel = abs(golden - computed) / max(abs(golden), abs(computed), 1e-300)
    if rel > rtol:
        note = f"rel err {rel:.2e} > rtol {rtol:g}"
        return Mismatch(matrix, cell, metric, golden, computed, note)
    return None


def _compare_cells(
    matrix: str, golden_cells: dict, computed_cells: dict, rtol: float
) -> list[Mismatch]:
    out: list[Mismatch] = []

    def add(cell: str, metric: str, golden, computed, note: str) -> None:
        out.append(Mismatch(matrix, cell, metric, golden, computed, note))

    for key in sorted(golden_cells.keys() | computed_cells.keys()):
        if key not in computed_cells:
            add(key, "-", "present", None, "cell missing from recomputed grid")
            continue
        if key not in golden_cells:
            add(key, "-", None, "present", "cell has no golden entry (regenerate)")
            continue
        gold, got = golden_cells[key], computed_cells[key]
        for metric in sorted(gold.keys() | got.keys()):
            if metric not in got:
                add(key, metric, gold[metric], None, "missing from recomputation")
            elif metric not in gold:
                add(key, metric, None, got[metric], "absent from golden (regenerate)")
            else:
                m = _compare_value(matrix, key, metric, gold[metric], got[metric], rtol)
                if m is not None:
                    out.append(m)
    return out


def compare_matrix(
    matrix: str,
    payload: dict | None,
    computed_cells: dict,
    spec: GridSpec,
    rtol: float = DEFAULT_RTOL,
) -> list[Mismatch]:
    """Check one matrix's golden payload against freshly computed cells."""
    if payload is None:
        note = "no golden file — run `repro regress generate`"
        return [Mismatch(matrix, "header", "file", None, None, note)]
    if payload.get("schema") != SCHEMA_VERSION:
        note = "schema version mismatch — regenerate goldens"
        got = payload.get("schema")
        return [Mismatch(matrix, "header", "schema", got, SCHEMA_VERSION, note)]
    expected = golden_payload(matrix, spec, computed_cells)
    out: list[Mismatch] = []
    for field in _HEADER_FIELDS:
        if field == "schema":
            continue
        if payload.get(field) != expected[field]:
            note = "golden generated under a different spec"
            got = payload.get(field)
            out.append(Mismatch(matrix, "header", field, got, expected[field], note))
    out.extend(_compare_cells(matrix, payload.get("cells", {}), computed_cells, rtol))
    return out


def _resolve(matrices: dict | None, name: str):
    if matrices is not None and name in matrices:
        return matrices[name]
    return load_corpus_matrix(name)


def _matrix_cells_task(args: tuple) -> dict:
    """Recompute one matrix's grid cells — the regress fan-out unit.

    Module-level so it pickles into pool workers. The matrix itself ships
    in the args when the caller supplied one (tests); corpus matrices are
    regenerated worker-side from the name, which is cheaper than pickling
    them across. Cell computation is pure; all golden-file reads/writes
    stay in the parent.
    """
    name, A, spec, cache_dir, store_dir = args
    if A is None:
        A = load_corpus_matrix(name)
    store = None
    if store_dir is not None:
        from ..runtime.store import EngineStore

        store = EngineStore(store_dir)
    return compute_matrix_cells(A, spec, name, cache_dir, engine_store=store)


def _all_matrix_cells(
    spec: GridSpec,
    cache_dir: Path | None,
    matrices: dict | None,
    jobs: int | None,
    engine_store: Path | None = None,
) -> list[dict]:
    tasks = [
        (name, matrices.get(name) if matrices is not None else None, spec,
         cache_dir, engine_store)
        for name in spec.matrices
    ]
    from ..parallel import parallel_map

    return parallel_map(_matrix_cells_task, tasks, jobs=jobs)


def generate_goldens(
    spec: GridSpec,
    golden_dir: Path = DEFAULT_GOLDEN_DIR,
    cache_dir: Path | None = None,
    matrices: dict | None = None,
    progress: Callable[[str], None] | None = None,
    jobs: int | None = None,
    engine_store: Path | None = None,
) -> list[Path]:
    """Recompute the grid and (over)write one golden file per matrix.

    ``jobs`` fans the per-matrix recomputation across a process pool;
    the emitted files are byte-identical to a serial run.
    ``engine_store`` (a directory) lets cells reuse compiled-engine
    artifacts — metrics ride the artifact metadata, so warm runs skip
    the builds without changing a byte of output.
    """
    paths = []
    all_cells = _all_matrix_cells(spec, cache_dir, matrices, jobs, engine_store)
    for i, (name, cells) in enumerate(zip(spec.matrices, all_cells), 1):
        paths.append(write_golden(golden_dir, name, golden_payload(name, spec, cells)))
        if progress is not None:
            progress(f"[{i}/{len(spec.matrices)}] {name}: wrote {len(cells)} cells")
    return paths


def check_goldens(
    spec: GridSpec,
    golden_dir: Path = DEFAULT_GOLDEN_DIR,
    cache_dir: Path | None = None,
    matrices: dict | None = None,
    rtol: float = DEFAULT_RTOL,
    progress: Callable[[str], None] | None = None,
    jobs: int | None = None,
    engine_store: Path | None = None,
) -> tuple[list[Mismatch], int]:
    """Check the whole grid. Returns (mismatches, cells checked).

    ``jobs`` parallelises the recomputation only; comparison against the
    goldens is cheap and stays in the parent, in matrix order.
    ``engine_store`` is the warm path: cells whose artifacts carry
    matching metrics skip their builds entirely.
    """
    mismatches: list[Mismatch] = []
    ncells = 0
    total = len(spec.matrices)
    all_cells = _all_matrix_cells(spec, cache_dir, matrices, jobs, engine_store)
    for i, (name, cells) in enumerate(zip(spec.matrices, all_cells), 1):
        ncells += len(cells)
        found = compare_matrix(name, load_golden(golden_dir, name), cells, spec, rtol)
        mismatches.extend(found)
        if progress is not None:
            verdict = "ok" if not found else f"{len(found)} mismatch(es)"
            progress(f"[{i}/{total}] {name}: {len(cells)} cells, {verdict}")
    return mismatches, ncells


def diff_golden_dirs(dir_a: Path, dir_b: Path) -> list[Mismatch]:
    """Exact comparison of two golden trees (no recomputation, rtol=0).

    Review aid for PRs that regenerate goldens: every differing header
    field or metric is reported, however small.
    """
    dir_a, dir_b = Path(dir_a), Path(dir_b)
    stems_a = {p.stem for p in dir_a.glob("*.json")}
    stems_b = {p.stem for p in dir_b.glob("*.json")}
    out: list[Mismatch] = []
    for name in sorted(stems_a | stems_b):
        a, b = load_golden(dir_a, name), load_golden(dir_b, name)
        if a is None or b is None:
            lacking = dir_a if a is None else dir_b
            note = f"only in one tree ({lacking.name} lacks it)"
            ga = "present" if a else None
            gb = "present" if b else None
            out.append(Mismatch(name, "header", "file", ga, gb, note))
            continue
        for field in _HEADER_FIELDS:
            if a.get(field) != b.get(field):
                got_a, got_b = a.get(field), b.get(field)
                m = Mismatch(name, "header", field, got_a, got_b, "header differs")
                out.append(m)
        out.extend(_compare_cells(name, a.get("cells", {}), b.get("cells", {}), 0.0))
    return out


def format_mismatches(mismatches: list[Mismatch]) -> str:
    """Render mismatches as the aligned per-cell table CI prints/uploads."""
    if not mismatches:
        return "no differences"
    return format_table(
        ["matrix", "cell", "metric", "golden", "current", "why"],
        [m.row() for m in mismatches],
        align="lllrrl",
    )
