"""Plan-level metric extraction: every golden quantity, no SpMV executed.

A cell's metrics come in two tiers, distinguished by JSON type so the
checker needs no side table:

* **ints** — exact invariants of the communication structure
  (:meth:`CommPlan.invariants` per phase, nonzero maxima, the Table-3
  max-messages statistic). Bit-exact across machines by construction.
* **floats** — imbalance ratios and the modeled alpha-beta-gamma phase
  costs. Deterministic too, but compared under a tight rtol because they
  are derived via float arithmetic that numpy is free to reassociate.

Everything is computed from :class:`DistSparseMatrix` build products
(plans, maps, local nonzero counts); ``charge_spmv`` prices the schedule
without running it, so extracting a cell costs a matrix distribution but
zero multiplies.
"""

from __future__ import annotations

from ..runtime import SPMV_PHASES, CostLedger, comm_stats
from ..runtime.distmatrix import DistSparseMatrix

__all__ = ["cell_metrics"]


def cell_metrics(dist: DistSparseMatrix) -> dict[str, int | float]:
    """All golden metrics for one distributed matrix, as a flat dict."""
    stats = comm_stats(dist)
    nnz = dist.local_nnz
    cell: dict[str, int | float] = {
        "nnz": int(nnz.sum()),
        "max_rank_nnz": int(nnz.max()) if len(nnz) else 0,
        "max_owned_entries": int(dist.vector_map.counts().max()),
        "max_messages": int(stats.max_messages),
    }
    for phase, plan in (("expand", dist.import_plan), ("fold", dist.fold_plan)):
        for key, value in plan.invariants().items():
            cell[f"{phase}_{key}"] = value
    cell["nnz_imbalance"] = float(stats.nnz_imbalance)
    cell["vector_imbalance"] = float(stats.vector_imbalance)
    ledger = CostLedger()
    dist.charge_spmv(ledger)
    for phase in SPMV_PHASES:
        cell[f"modeled_{phase.replace('-', '_')}_seconds"] = float(ledger.get(phase))
    cell["modeled_spmv100_seconds"] = float(100.0 * ledger.spmv_total())
    return cell
