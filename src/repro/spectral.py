"""Spectral graph analysis applications.

The paper's motivation for its eigensolver workload (section 1):
"Eigenvalues and eigenvectors of various forms of the graph Laplacian are
commonly used in clustering, partitioning, community detection, and
anomaly detection", and its concrete experiment targets bipartite-subgraph
search via the largest eigenpairs of the normalized Laplacian (Kirkland &
Paul, the paper's [23]). This module implements those downstream analyses
on top of the distributed solver, so the full pipeline — partition,
distribute, solve, analyse — runs end to end.

All routines accept a layout; heavy numerics go through the distributed
Krylov-Schur solver and are charged to its ledger.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graphs.csr import as_csr
from .graphs.ops import degrees, normalized_laplacian
from .layouts import make_layout
from .layouts.base import Layout
from .runtime import CAB, CostLedger, DistSparseMatrix, MachineModel
from .solvers import DistOperator, eigsh_dist

__all__ = ["spectral_embedding", "spectral_clustering", "bipartite_detection",
           "SpectralClusteringResult", "BipartiteResult", "kmeans"]


def _operator(A, layout, machine) -> DistOperator:
    Lhat = normalized_laplacian(A)
    return DistOperator(DistSparseMatrix(Lhat, layout, machine))


def spectral_embedding(
    A,
    dim: int = 8,
    layout: Layout | None = None,
    tol: float = 1e-4,
    seed: int = 0,
    machine: MachineModel = CAB,
) -> tuple[np.ndarray, CostLedger]:
    """Normalized-Laplacian eigenmap: the *dim* smallest nontrivial modes.

    Returns the (n, dim) embedding (rows scaled by 1/sqrt(degree), the
    standard normalised-cut coordinates) and the solve's cost ledger.
    """
    A = as_csr(A)
    layout = layout if layout is not None else make_layout("2d-gp-mc", A, 16, seed=seed)
    op = _operator(A, layout, machine)
    res = eigsh_dist(op, k=dim + 1, tol=tol, which="SA", seed=seed)
    # drop the trivial lambda=0 mode; degree-normalise the coordinates
    X = res.eigenvectors[:, 1: dim + 1]
    d = degrees(A)
    scale = np.where(d > 0, 1.0 / np.sqrt(np.maximum(d, 1e-300)), 0.0)
    return X * scale[:, None], op.ledger


def kmeans(
    X: np.ndarray, k: int, n_init: int = 4, max_iter: int = 100, seed: int = 0
) -> np.ndarray:
    """Plain Lloyd k-means with k-means++ seeding (self-contained).

    Returns cluster labels; ties and empty clusters are re-seeded from the
    farthest points. Good enough for spectral post-processing; not a
    general-purpose clustering library.
    """
    rng = np.random.default_rng(seed)
    n = len(X)
    best_labels, best_inertia = None, np.inf
    for _ in range(n_init):
        # k-means++ seeding
        centers = [X[rng.integers(n)]]
        for _ in range(1, k):
            d2 = np.min(
                [((X - c) ** 2).sum(axis=1) for c in centers], axis=0
            )
            total = d2.sum()
            probs = d2 / total if total > 0 else np.full(n, 1.0 / n)
            centers.append(X[rng.choice(n, p=probs)])
        C = np.array(centers)
        labels = np.zeros(n, dtype=np.int64)
        for _ in range(max_iter):
            dist = ((X[:, None, :] - C[None, :, :]) ** 2).sum(axis=2)
            new_labels = dist.argmin(axis=1)
            if (new_labels == labels).all():
                labels = new_labels
                break
            labels = new_labels
            for c in range(k):
                members = X[labels == c]
                if len(members):
                    C[c] = members.mean(axis=0)
                else:  # re-seed an empty cluster at the farthest point
                    far = dist.min(axis=1).argmax()
                    C[c] = X[far]
        inertia = ((X - C[labels]) ** 2).sum()
        if inertia < best_inertia:
            best_inertia, best_labels = inertia, labels
    return best_labels


@dataclass
class SpectralClusteringResult:
    """Clusters plus the modeled cost of the eigensolve behind them."""

    labels: np.ndarray
    embedding: np.ndarray
    ledger: CostLedger


def spectral_clustering(
    A,
    n_clusters: int,
    layout: Layout | None = None,
    tol: float = 1e-4,
    seed: int = 0,
    machine: MachineModel = CAB,
) -> SpectralClusteringResult:
    """Normalised-cut spectral clustering (Ng-Jordan-Weiss style)."""
    if n_clusters < 2:
        raise ValueError(f"n_clusters must be >= 2, got {n_clusters}")
    X, ledger = spectral_embedding(
        A, dim=n_clusters, layout=layout, tol=tol, seed=seed, machine=machine
    )
    norms = np.linalg.norm(X, axis=1, keepdims=True)
    Xn = np.where(norms > 1e-12, X / np.maximum(norms, 1e-300), 0.0)
    labels = kmeans(Xn, n_clusters, seed=seed)
    return SpectralClusteringResult(labels=labels, embedding=X, ledger=ledger)


@dataclass
class BipartiteResult:
    """Near-bipartite structure certificate from the top of the spectrum.

    ``score`` = 2 - lambda_max(L_hat) (0 means exactly bipartite);
    ``sides`` splits vertices by the sign of the top eigenvector — for a
    bipartite graph this recovers the two colour classes exactly.
    """

    score: float
    eigenvalue: float
    sides: np.ndarray
    ledger: CostLedger


def bipartite_detection(
    A,
    layout: Layout | None = None,
    tol: float = 1e-6,
    seed: int = 0,
    machine: MachineModel = CAB,
) -> BipartiteResult:
    """The paper's Table-4 workload as an analysis: eigenvalues of L_hat
    near 2 certify (near-)bipartite subgraphs [Kirkland & Paul].

    Note: ``lambda_max = 2`` whenever *any* connected component is
    bipartite — an isolated edge already qualifies. For a meaningful
    verdict on a fragmented graph, pass its largest connected component
    (:func:`repro.graphs.largest_connected_component`).
    """
    A = as_csr(A)
    layout = layout if layout is not None else make_layout("2d-gp-mc", A, 16, seed=seed)
    op = _operator(A, layout, machine)
    res = eigsh_dist(op, k=1, tol=tol, which="LA", seed=seed)
    lam = float(res.eigenvalues[0])
    v = res.eigenvectors[:, 0]
    sides = (v >= 0).astype(np.int64)
    return BipartiteResult(score=2.0 - lam, eigenvalue=lam, sides=sides, ledger=op.ledger)
