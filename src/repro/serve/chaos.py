"""Seeded wire-level fault injection: a chaos proxy for the matvec server.

:class:`ChaosProxy` sits between clients and a running
:class:`~.server.MatvecServer` on its own unix socket and mangles the
*response* stream according to a :class:`ChaosSchedule` — the serving
analogue of :class:`repro.runtime.faults.FaultPlan`. Like the runtime's
plans, every injection decision is a pure function of
``(seed, connection, frame)`` drawn through ``np.random.SeedSequence``,
so a chaos run replays bit-identically: same seed, same torn frames,
same flipped bytes, same ledger.

Wire fault classes (server -> client frames):

``torn``
    Forward a prefix of the frame, then hard-reset the connection — the
    client sees a partial line or truncated payload.
``corrupt``
    XOR one byte of the frame with a seeded nonzero mask. Detection is
    **mandatory**: the CRC-32 frame check (or the JSON parser, or a
    read stall that trips the request deadline — when the flipped byte
    is the line's ``\\n`` or a length digit) must refuse the frame. A
    corrupted response reaching a caller as data is the one outcome the
    soak treats as an immediate failure.
``reset``
    Drop the connection instead of forwarding the frame.
``delay``
    Hold the frame for ``delay_ms`` before forwarding (latency, not
    loss — the p99 inflation the chaos bench prices).
``drop``
    Swallow the frame; the client's per-request deadline fires.

Requests (client -> server) pass through untouched: request-side faults
are injected *semantically* instead — the soak driver stamps seeded
requests with the server's ``fault`` field (``kill_worker``,
``slow_ms``/``straggler_factor``), reusing the PR 3 machinery and its
`recovery_stats` pricing. Injecting on the response side keeps the
accounting clean: every request that reaches the server is processed
exactly once (retries deduplicate through the idempotency table), so
"zero lost acknowledged requests" is checkable without heuristics.

Every executed injection lands in the proxy's ledger (kind, connection,
frame, detail) mirroring the runtime's executed-injection records; the
chaos bench gates on at least one execution of every scheduled class.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from threading import Event as ThreadEvent
from threading import Thread

import numpy as np

from .protocol import MAX_LINE_BYTES

__all__ = [
    "ChaosSchedule",
    "ChaosProxy",
    "ChaosProxyHandle",
    "start_chaos_proxy",
    "WIRE_FAULT_KINDS",
]

#: Wire-level fault classes the proxy can inject, in decision order.
WIRE_FAULT_KINDS = ("torn", "corrupt", "reset", "delay", "drop")


@dataclass(frozen=True)
class ChaosSchedule:
    """Per-frame fault probabilities plus the seed that fixes every draw.

    The per-class probabilities are evaluated cumulatively per response
    frame (at most one fault per frame); their sum must stay <= 1.
    """

    seed: int = 0
    p_torn: float = 0.0
    p_corrupt: float = 0.0
    p_reset: float = 0.0
    p_delay: float = 0.0
    p_drop: float = 0.0
    delay_ms: float = 5.0

    def __post_init__(self) -> None:
        probs = self.probabilities()
        for kind, p in probs.items():
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"p_{kind} must be in [0, 1], got {p}")
        if sum(probs.values()) > 1.0 + 1e-12:
            raise ValueError(
                f"fault probabilities sum to {sum(probs.values())} > 1"
            )
        if self.delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {self.delay_ms}")

    def probabilities(self) -> dict[str, float]:
        return {
            "torn": self.p_torn,
            "corrupt": self.p_corrupt,
            "reset": self.p_reset,
            "delay": self.p_delay,
            "drop": self.p_drop,
        }

    def active_classes(self) -> tuple[str, ...]:
        """Wire fault classes this schedule can actually execute."""
        return tuple(k for k, p in self.probabilities().items() if p > 0)


class ChaosProxy:
    """Frame-aware unix-socket proxy injecting seeded wire faults.

    One event-loop thread owns all state (see :func:`start_chaos_proxy`).
    ``executed`` (the injection ledger) and ``executed_counts`` may be
    read from other threads once traffic is quiesced.
    """

    def __init__(
        self, upstream_path: str, listen_path: str, schedule: ChaosSchedule
    ):
        self.upstream_path = upstream_path
        self.listen_path = listen_path
        self.schedule = schedule
        self.executed: list[dict] = []
        self.frames = 0
        self.connections = 0
        self._conn_seq = itertools.count()
        self._stop: asyncio.Event | None = None
        self._server: asyncio.base_events.Server | None = None

    # -- seeded decisions --------------------------------------------------

    def _decide(
        self, conn_idx: int, frame_idx: int
    ) -> tuple[str, np.random.Generator] | None:
        """The injection decision for one frame: pure in (seed, conn, frame).

        Returns ``(kind, rng)`` — the rng continues the same seeded
        stream, so fault *parameters* (cut points, byte masks) are as
        deterministic as the decision itself — or ``None``.
        """
        s = self.schedule
        rng = np.random.default_rng(
            np.random.SeedSequence((s.seed, conn_idx, frame_idx, 0xCA05))
        )
        u = float(rng.uniform())
        acc = 0.0
        for kind, p in s.probabilities().items():
            acc += p
            if p > 0 and u < acc:
                return kind, rng
        return None

    def executed_counts(self) -> dict[str, int]:
        counts = dict.fromkeys(WIRE_FAULT_KINDS, 0)
        for event in self.executed:
            counts[event["kind"]] = counts.get(event["kind"], 0) + 1
        return counts

    # -- lifecycle ---------------------------------------------------------

    async def serve(self, on_started=None) -> None:
        """Listen on ``listen_path`` until :meth:`request_stop`."""
        self._stop = asyncio.Event()
        Path(self.listen_path).parent.mkdir(parents=True, exist_ok=True)
        if os.path.exists(self.listen_path):
            os.unlink(self.listen_path)
        self._server = await asyncio.start_unix_server(
            self._handle, path=self.listen_path, limit=MAX_LINE_BYTES
        )
        try:
            if on_started is not None:
                on_started(self)
            await self._stop.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            if os.path.exists(self.listen_path):
                os.unlink(self.listen_path)

    def request_stop(self) -> None:
        if self._stop is not None:
            self._stop.set()

    # -- proxying ----------------------------------------------------------

    async def _handle(self, creader, cwriter) -> None:
        """One proxied connection: raw requests up, mangled frames down."""
        conn_idx = next(self._conn_seq)
        self.connections += 1
        try:
            ureader, uwriter = await asyncio.open_unix_connection(
                self.upstream_path, limit=MAX_LINE_BYTES
            )
        except OSError:
            cwriter.close()
            return
        up = asyncio.ensure_future(self._pump_up(creader, uwriter))
        down = asyncio.ensure_future(self._pump_down(conn_idx, ureader, cwriter))
        try:
            await asyncio.wait({up, down}, return_when=asyncio.FIRST_COMPLETED)
        finally:
            for task in (up, down):
                task.cancel()
            try:
                await asyncio.gather(up, down, return_exceptions=True)
            except asyncio.CancelledError:
                pass  # loop shutdown cancelled this handler; close quietly
            for writer in (uwriter, cwriter):
                try:
                    writer.close()
                except OSError:
                    pass

    async def _pump_up(self, creader, uwriter) -> None:
        """Client -> server: byte-transparent passthrough."""
        try:
            while True:
                chunk = await creader.read(1 << 16)
                if not chunk:
                    break
                uwriter.write(chunk)
                await uwriter.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                uwriter.write_eof()
            except (OSError, RuntimeError):
                pass

    async def _pump_down(self, conn_idx: int, ureader, cwriter) -> None:
        """Server -> client: read whole frames, inject per the schedule."""
        frame_idx = 0
        try:
            while True:
                line = await ureader.readline()
                if not line:
                    break
                payload = b""
                try:
                    msg = json.loads(line)
                    nbytes = msg.get("bin", 0) if isinstance(msg, dict) else 0
                except json.JSONDecodeError:
                    nbytes = 0
                if nbytes:
                    payload = await ureader.readexactly(int(nbytes))
                raw = line + payload
                self.frames += 1
                decision = self._decide(conn_idx, frame_idx)
                frame_idx += 1
                if decision is None:
                    cwriter.write(raw)
                    await cwriter.drain()
                    continue
                kind, rng = decision
                if not await self._inject(kind, rng, raw, conn_idx,
                                          frame_idx - 1, cwriter):
                    break  # connection-terminating fault
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass

    async def _inject(
        self, kind: str, rng, raw: bytes, conn_idx: int, frame_idx: int,
        cwriter,
    ) -> bool:
        """Execute one wire fault; return False when the connection dies."""
        event = {"kind": kind, "conn": conn_idx, "frame": frame_idx,
                 "bytes": len(raw)}
        if kind == "delay":
            event["delay_ms"] = self.schedule.delay_ms
            self.executed.append(event)
            await asyncio.sleep(self.schedule.delay_ms / 1e3)
            cwriter.write(raw)
            await cwriter.drain()
            return True
        if kind == "drop":
            self.executed.append(event)
            return True  # swallow the frame; keep the connection
        if kind == "corrupt":
            pos = int(rng.integers(0, len(raw)))
            mask = int(rng.integers(1, 256))
            event["pos"], event["mask"] = pos, mask
            self.executed.append(event)
            mangled = bytearray(raw)
            mangled[pos] ^= mask
            cwriter.write(bytes(mangled))
            await cwriter.drain()
            return True
        if kind == "torn":
            cut = int(rng.integers(1, max(len(raw), 2)))
            event["cut"] = cut
            self.executed.append(event)
            cwriter.write(raw[:cut])
            await cwriter.drain()
            cwriter.transport.abort()
            return False
        if kind == "reset":
            self.executed.append(event)
            cwriter.transport.abort()
            return False
        raise AssertionError(f"unknown fault kind {kind!r}")  # pragma: no cover


class ChaosProxyHandle:
    """A proxy running on its own loop thread (mirror of ServerHandle)."""

    def __init__(self, proxy: ChaosProxy, thread: Thread, loop):
        self.proxy = proxy
        self._thread = thread
        self._loop = loop

    @property
    def listen_path(self) -> str:
        return self.proxy.listen_path

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(self.proxy.request_stop)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError(
                f"chaos proxy thread {self._thread.name!r} did not stop "
                f"within {timeout}s — hung shutdown"
            )


def start_chaos_proxy(
    upstream_path: str,
    listen_path: str,
    schedule: ChaosSchedule,
    timeout: float = 10.0,
) -> ChaosProxyHandle:
    """Boot a :class:`ChaosProxy` on a daemon thread; wait until it listens."""
    proxy = ChaosProxy(upstream_path, listen_path, schedule)
    ready = ThreadEvent()
    box: dict = {}

    def on_started(_p: ChaosProxy) -> None:
        box["loop"] = asyncio.get_running_loop()
        ready.set()

    def run() -> None:
        try:
            asyncio.run(proxy.serve(on_started=on_started))
        except BaseException as exc:
            box["error"] = exc
        finally:
            ready.set()

    thread = Thread(target=run, name="repro-chaos-proxy", daemon=True)
    thread.start()
    deadline = time.monotonic() + timeout
    if not ready.wait(timeout) or (
        "error" not in box and not _wait_for_socket(listen_path, deadline)
    ):
        raise RuntimeError("chaos proxy did not start listening in time")
    if "error" in box:
        raise RuntimeError(f"chaos proxy failed to start: {box['error']}")
    return ChaosProxyHandle(proxy, thread, box["loop"])


def _wait_for_socket(path: str, deadline: float) -> bool:
    while time.monotonic() < deadline:
        if os.path.exists(path):
            return True
        time.sleep(0.005)
    return os.path.exists(path)
