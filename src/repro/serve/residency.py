"""Engine residency: hot matrices stay compiled behind an LRU.

The expensive artefacts of serving a matvec are, in cost order: the
partition (seconds — amortized by the on-disk partition cache), the
:class:`~repro.runtime.distmatrix.DistSparseMatrix` build and its
compiled :class:`~repro.runtime.engine.SpmvEngine` (tens of
milliseconds), and the multiply itself (sub-millisecond). A server that
rebuilt any of the first two per request would be paying the one-shot
CLI tax this package exists to remove, so compiled engines stay resident
here, keyed by ``(matrix content hash, method, procs, seed)`` — the same
content-hash scheme as the partition cache
(:func:`repro.bench.harness.cached_rpart` uses
``{hash}_{kind}_k{nparts}_s{seed}``), so a resident engine and its
cached rpart always name the same partition.

Eviction is least-recently-used, bounded by engine count and optionally
by resident bytes (:attr:`SpmvEngine.nbytes
<repro.runtime.engine.SpmvEngine.nbytes>`). Eviction only forgets — the
partition survives on disk, so re-admission costs an engine compile, not
a re-partition.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # import cycle guard: runtime imports stay lazy
    from ..runtime.distmatrix import DistSparseMatrix
    from ..runtime.engine import SpmvEngine

__all__ = ["EngineKey", "ResidentEngine", "EngineResidency"]


@dataclass(frozen=True)
class EngineKey:
    """Identity of one resident engine (mirrors the partition-cache key)."""

    matrix_hash: str
    method: str
    procs: int
    seed: int

    def __str__(self) -> str:
        return f"{self.matrix_hash}_{self.method}_k{self.procs}_s{self.seed}"


@dataclass
class ResidentEngine:
    """One hot entry: the compiled engine plus its provenance and stats."""

    key: EngineKey
    matrix: str  # display name the first admitting request used
    dist: "DistSparseMatrix"
    engine: "SpmvEngine"
    batcher: object | None = None  # MicroBatcher, attached by the server
    hits: int = 0
    cold_partition_seconds: float = 0.0
    compile_seconds: float = 0.0
    meta: dict = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.engine.n

    @property
    def nbytes(self) -> int:
        return self.engine.nbytes

    def as_dict(self) -> dict:
        """JSON view for the ``stats`` op."""
        return {
            "key": str(self.key),
            "matrix": self.matrix,
            "n": self.n,
            "procs": self.key.procs,
            "method": self.key.method,
            "seed": self.key.seed,
            "nbytes": self.nbytes,
            "hits": self.hits,
            "cold_partition_seconds": round(self.cold_partition_seconds, 6),
            "compile_seconds": round(self.compile_seconds, 6),
        }


class EngineResidency:
    """LRU of :class:`ResidentEngine` bounded by count and bytes.

    Not thread-safe by design: the server touches it only from the event
    loop thread, which is the synchronization discipline of the whole
    serve layer (compute may block the loop for a flush, admission may
    not interleave).
    """

    def __init__(self, max_engines: int = 8, max_bytes: int | None = None):
        if max_engines < 1:
            raise ValueError(f"max_engines must be >= 1, got {max_engines}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_engines = max_engines
        self.max_bytes = max_bytes
        self._entries: OrderedDict[EngineKey, ResidentEngine] = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: EngineKey) -> bool:
        return key in self._entries

    def get(self, key: EngineKey) -> ResidentEngine | None:
        """Look up *key*, refreshing its recency on a hit."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            entry.hits += 1
        return entry

    def admit(self, entry: ResidentEngine) -> list[ResidentEngine]:
        """Insert *entry*; return whatever was evicted to make room.

        The newest entry is never evicted, even when it alone exceeds
        ``max_bytes`` — a request for an oversized matrix should succeed
        (and evict everything else) rather than thrash.
        """
        self._entries[entry.key] = entry
        self._entries.move_to_end(entry.key)
        evicted: list[ResidentEngine] = []
        while len(self._entries) > self.max_engines:
            evicted.append(self._entries.popitem(last=False)[1])
        if self.max_bytes is not None:
            while len(self._entries) > 1 and self.resident_bytes() > self.max_bytes:
                evicted.append(self._entries.popitem(last=False)[1])
        self.evictions += len(evicted)
        return evicted

    def evict(self, key: EngineKey) -> ResidentEngine | None:
        """Forcibly drop *key* (explicit eviction; counts in the stats)."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            self.evictions += 1
        return entry

    def resident_bytes(self) -> int:
        """Total engine bytes currently resident."""
        return sum(e.nbytes for e in self._entries.values())

    def entries(self) -> list[ResidentEngine]:
        """Entries in LRU order (oldest first) — for the ``stats`` op."""
        return list(self._entries.values())
