"""Engine residency: hot matrices stay compiled behind a two-tier lookup.

The expensive artefacts of serving a matvec are, in cost order: the
partition (seconds — amortized by the on-disk partition cache), the
:class:`~repro.runtime.distmatrix.DistSparseMatrix` build and its
compiled :class:`~repro.runtime.engine.SpmvEngine` (tens of
milliseconds), and the multiply itself (sub-millisecond). A server that
rebuilt any of the first two per request would be paying the one-shot
CLI tax this package exists to remove, so lookups go through two tiers:

1. **memory** — the LRU of live engines below (a ``mem_hit``);
2. **disk** — the compiled-artifact store
   (:class:`repro.runtime.store.EngineStore`): a cold key whose engine
   a previous process persisted is reconstructed from a zero-copy mmap
   in ~a millisecond (a ``disk_hit``), skipping partition → maps →
   plan → compile entirely;
3. only then does the server **build** (and persist for the next
   process — a ``built``).

Keys are ``(matrix content hash, method, procs, seed)`` — the same
content-hash scheme as the partition cache
(:func:`repro.bench.harness.cached_rpart` uses
``{hash}_{kind}_k{nparts}_s{seed}``), so a resident engine, its disk
artifact, and its cached rpart all name the same partition. Tier
outcomes are counted (``tier_counts``) and reported through serve
``health``/``stats`` so load and chaos harnesses can assert cold-path
behavior instead of inferring it from latency.

Eviction is least-recently-used, bounded by engine count and optionally
by resident bytes (:attr:`SpmvEngine.nbytes
<repro.runtime.engine.SpmvEngine.nbytes>`). Eviction only forgets — the
partition and the engine artifact survive on disk, so re-admission
costs an mmap load, not a re-partition. Because the engine's ABFT
operators materialize lazily — *after* admission — every admitted
engine gets an ``abft_listener`` that re-checks the byte budget the
moment they appear, so the budget holds even for footprint that did not
exist at admission time.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..runtime.store import EngineKey

if TYPE_CHECKING:  # import cycle guard: runtime imports stay lazy
    from ..runtime.distmatrix import DistSparseMatrix
    from ..runtime.engine import SpmvEngine
    from ..runtime.store import EngineStore

__all__ = ["EngineKey", "ResidentEngine", "EngineResidency"]


@dataclass
class ResidentEngine:
    """One hot entry: the compiled engine plus its provenance and stats.

    ``dist`` is ``None`` for engines reconstructed from the disk store —
    the whole point of the artifact is skipping the
    :class:`DistSparseMatrix` build. The rare paths that need one (the
    fault-injection pricing hooks) call ``dist_builder``, attached by
    the server, to rebuild it lazily.
    """

    key: EngineKey
    matrix: str  # display name the first admitting request used
    dist: "DistSparseMatrix | None"
    engine: "SpmvEngine"
    batcher: object | None = None  # MicroBatcher, attached by the server
    dist_builder: object | None = None  # () -> DistSparseMatrix, lazy
    hits: int = 0
    cold_partition_seconds: float = 0.0
    compile_seconds: float = 0.0
    meta: dict = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.engine.n

    @property
    def nbytes(self) -> int:
        return self.engine.nbytes

    def ensure_dist(self) -> "DistSparseMatrix":
        """The backing distribution, rebuilt on demand for store loads."""
        if self.dist is None:
            if self.dist_builder is None:
                raise RuntimeError(
                    f"entry {self.key} has no distribution and no builder"
                )
            self.dist = self.dist_builder()
        return self.dist

    def as_dict(self) -> dict:
        """JSON view for the ``stats`` op."""
        return {
            "key": str(self.key),
            "matrix": self.matrix,
            "n": self.n,
            "procs": self.key.procs,
            "method": self.key.method,
            "seed": self.key.seed,
            "nbytes": self.nbytes,
            "abft_bytes": self.engine.abft_bytes,
            "hits": self.hits,
            "engine_source": self.meta.get("engine_source", "built"),
            "cold_partition_seconds": round(self.cold_partition_seconds, 6),
            "compile_seconds": round(self.compile_seconds, 6),
        }


class EngineResidency:
    """LRU of :class:`ResidentEngine` bounded by count and bytes.

    Not thread-safe by design: the server touches it only from the event
    loop thread, which is the synchronization discipline of the whole
    serve layer (compute may block the loop for a flush, admission may
    not interleave). The one exception is :meth:`load_from_store`, which
    is pure store I/O plus counter bumps and is explicitly safe to run
    off-loop (the server calls it via ``asyncio.to_thread``); admission
    of its result still happens on the loop.
    """

    def __init__(
        self,
        max_engines: int = 8,
        max_bytes: int | None = None,
        store: "EngineStore | None" = None,
    ):
        if max_engines < 1:
            raise ValueError(f"max_engines must be >= 1, got {max_engines}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_engines = max_engines
        self.max_bytes = max_bytes
        self.store = store
        self._entries: OrderedDict[EngineKey, ResidentEngine] = OrderedDict()
        self.evictions = 0
        #: lookup outcomes by tier: memory LRU / disk store / fresh build
        self.tier_counts = {"mem_hit": 0, "disk_hit": 0, "built": 0}
        #: post-admission ABFT budget re-checks fired / evictions they forced
        self.abft_rechecks = 0
        self.abft_evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: EngineKey) -> bool:
        return key in self._entries

    def get(self, key: EngineKey) -> ResidentEngine | None:
        """Look up *key* in memory, refreshing its recency on a hit."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            entry.hits += 1
            self.tier_counts["mem_hit"] += 1
        return entry

    def load_from_store(self, key: EngineKey, matrix: str) -> ResidentEngine | None:
        """Tier 2: reconstruct *key* from the disk store (None on miss).

        Blocking (file I/O) — safe off the event loop. The returned
        entry is *not* admitted; the caller attaches a batcher and a
        ``dist_builder`` and calls :meth:`admit` from the loop thread.
        """
        if self.store is None:
            return None
        loaded = self.store.load(key)
        if loaded is None:
            return None
        self.tier_counts["disk_hit"] += 1
        return ResidentEngine(
            key=key,
            matrix=matrix,
            dist=None,
            engine=loaded.engine,
            meta={
                "engine_source": "disk",
                "mmapped": loaded.mmapped,
                "artifact": loaded.path.name,
            },
        )

    def note_built(self) -> None:
        """Count a tier-3 outcome (both store tiers missed; fresh build)."""
        self.tier_counts["built"] += 1

    def admit(self, entry: ResidentEngine) -> list[ResidentEngine]:
        """Insert *entry*; return whatever was evicted to make room.

        The newest entry is never evicted, even when it alone exceeds
        ``max_bytes`` — a request for an oversized matrix should succeed
        (and evict everything else) rather than thrash. Admission also
        arms the engine's ``abft_listener`` so the byte budget is
        re-checked when the lazy ABFT operators materialize later.
        """
        self._entries[entry.key] = entry
        self._entries.move_to_end(entry.key)
        entry.engine.abft_listener = lambda k=entry.key: self._abft_materialized(k)
        evicted: list[ResidentEngine] = []
        while len(self._entries) > self.max_engines:
            evicted.append(self._entries.popitem(last=False)[1])
        if self.max_bytes is not None:
            while len(self._entries) > 1 and self.resident_bytes() > self.max_bytes:
                evicted.append(self._entries.popitem(last=False)[1])
        self.evictions += len(evicted)
        for gone in evicted:
            self._disarm(gone)
        return evicted

    def _abft_materialized(self, key: EngineKey) -> None:
        """Budget re-check fired by an engine growing its ABFT operators.

        The newly grown entry is treated like a fresh admission: it is
        never evicted itself (evicting the engine that is mid-ABFT-check
        would thrash), but older entries go until the budget holds
        again. Evicted batchers are drained here — the listener fires on
        the event-loop thread (ABFT runs inside request handling), the
        same context :meth:`admit` eviction runs in.
        """
        self.abft_rechecks += 1
        if self.max_bytes is None or key not in self._entries:
            return
        while len(self._entries) > 1 and self.resident_bytes() > self.max_bytes:
            victim_key = next(k for k in self._entries if k != key)
            victim = self._entries.pop(victim_key)
            self.evictions += 1
            self.abft_evictions += 1
            self._disarm(victim)
            if victim.batcher is not None:
                victim.batcher.drain()

    @staticmethod
    def _disarm(entry: ResidentEngine) -> None:
        entry.engine.abft_listener = None

    def evict(self, key: EngineKey) -> ResidentEngine | None:
        """Forcibly drop *key* (explicit eviction; counts in the stats)."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            self.evictions += 1
            self._disarm(entry)
        return entry

    def resident_bytes(self) -> int:
        """Total engine bytes currently resident (ABFT operators included)."""
        return sum(e.nbytes for e in self._entries.values())

    def entries(self) -> list[ResidentEngine]:
        """Entries in LRU order (oldest first) — for the ``stats`` op."""
        return list(self._entries.values())

    def stats(self) -> dict:
        """Aggregate residency stats (tier outcomes + budget accounting)."""
        return {
            "tiers": dict(self.tier_counts),
            "evictions": self.evictions,
            "abft_rechecks": self.abft_rechecks,
            "abft_evictions": self.abft_evictions,
            "resident": len(self._entries),
            "resident_bytes": self.resident_bytes(),
            "store": self.store.stats_dict() if self.store is not None else None,
        }
