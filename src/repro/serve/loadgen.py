"""Closed-loop load generator for the matvec server.

Drives *concurrency* independent sessions, each a blocking
:class:`~repro.serve.protocol.ServeClient` on its own thread issuing
matvecs back-to-back — the open-loop arrival pattern a batching server
actually sees, and the one that gives the micro-batcher distinct
requests to coalesce. Numbers reported:

* **throughput** — completed requests over the timed window (all
  sessions start together on a barrier, the window closes when the last
  one finishes);
* **latency** — per-request wall time at the client, p50/p99/mean/max;
* **divergences** — the correctness gate. Every request's answer is
  compared ``np.array_equal`` (bitwise for float64) against a *reference
  engine* the generator builds locally from the same partition cache, so
  the server's batched ``spmm`` path is held to the serial ``spmv``
  answer, bit for bit. Any nonzero count is a served-wrong-answer bug.

Vectors come from a small seeded pool so the reference answers are
precomputed once, not per request — checking is O(compare), and the pool
is shared across sessions so coalesced batches genuinely mix clients.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from .protocol import ProtocolError, ServeClient

__all__ = ["LoadgenResult", "run_loadgen", "reference_engine"]

_PARTITIONED_KINDS = ("gp", "hp", "gp-mc")


def reference_engine(matrix: str, method: str, procs: int, seed: int):
    """Build the serial-answer oracle: same cache, same layout, same bits.

    Goes through :func:`repro.bench.harness.cached_rpart` exactly like the
    server's cold path, so as long as generator and server see the same
    cache directory (both honor ``$REPRO_CACHE_DIR``) the two engines are
    built from identical partitions and their answers are bit-identical.
    Returns ``(engine, n)``.
    """
    from ..bench.harness import cached_rpart
    from ..generators.corpus import CORPUS, load_corpus_matrix
    from ..graphs.csr import as_csr
    from ..layouts import make_layout
    from ..runtime import CAB, DistSparseMatrix

    if matrix in CORPUS:
        A = load_corpus_matrix(matrix)
    else:
        from ..io import read_matrix_market

        A = read_matrix_market(matrix)
    A = as_csr(A)
    method = method.lower()
    kind = method.partition("-")[2]
    rpart = None
    if kind in _PARTITIONED_KINDS:
        rpart = cached_rpart(A, kind, procs, seed=seed)
    layout = make_layout(method, A, procs, seed=seed, rpart=rpart)
    dist = DistSparseMatrix(A, layout, CAB)
    return dist.engine, A.shape[0]


@dataclass
class LoadgenResult:
    """One load-generation run, summarized (see module docstring)."""

    matrix: str
    method: str
    procs: int
    concurrency: int
    requests: int
    errors: int
    divergences: int
    checked: bool
    elapsed_seconds: float
    throughput_rps: float
    mean_ms: float
    p50_ms: float
    p99_ms: float
    max_ms: float
    batch_sizes: dict[int, int] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        total = sum(k * v for k, v in self.batch_sizes.items())
        count = sum(self.batch_sizes.values())
        return total / count if count else 0.0

    def as_dict(self) -> dict:
        return {
            "matrix": self.matrix,
            "method": self.method,
            "procs": self.procs,
            "concurrency": self.concurrency,
            "requests": self.requests,
            "errors": self.errors,
            "divergences": self.divergences,
            "checked": self.checked,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "throughput_rps": round(self.throughput_rps, 3),
            "mean_ms": round(self.mean_ms, 4),
            "p50_ms": round(self.p50_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "max_ms": round(self.max_ms, 4),
            "mean_batch_size": round(self.mean_batch_size, 3),
            "batch_sizes": {str(k): v for k, v in sorted(self.batch_sizes.items())},
        }


def run_loadgen(
    socket_path: str,
    matrix: str,
    method: str = "2d-gp",
    procs: int = 16,
    seed: int = 0,
    concurrency: int = 16,
    requests_per_client: int = 50,
    vector_pool: int = 32,
    check: bool = True,
    encoding: str = "bin",
    timeout: float = 600.0,
) -> LoadgenResult:
    """Run one closed-loop load test against a listening server.

    Warms the target engine with a ``partition`` request first, so the
    timed window measures steady-state serving, not the cold build.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if requests_per_client < 1:
        raise ValueError(f"requests_per_client must be >= 1, got {requests_per_client}")

    target = {"matrix": matrix, "method": method, "procs": procs, "seed": seed}
    with ServeClient(socket_path, timeout=timeout) as warm:
        resp, _ = warm.request({"op": "partition", **target})
        if not resp.get("ok"):
            raise ProtocolError(f"warm-up partition failed: {resp.get('error')}")
        n = int(resp["n"])

    rng = np.random.default_rng(seed ^ 0x5EED)
    pool = rng.standard_normal((vector_pool, n))
    expected: list[np.ndarray] | None = None
    if check:
        # server warmed the cache above, so this reuses its partition bits
        engine, n_ref = reference_engine(matrix, method, procs, seed)
        if n_ref != n:
            raise ProtocolError(f"reference n={n_ref} != server n={n}")
        expected = [engine.spmv(pool[i]) for i in range(vector_pool)]

    barrier = threading.Barrier(concurrency + 1)
    lock = threading.Lock()
    latencies: list[float] = []
    batch_sizes: dict[int, int] = {}
    totals = {"requests": 0, "errors": 0, "divergences": 0}
    failures: list[BaseException] = []

    def session(client_id: int) -> None:
        pick = np.random.default_rng(1000 + client_id)
        lat: list[float] = []
        sizes: dict[int, int] = {}
        counts = {"requests": 0, "errors": 0, "divergences": 0}
        try:
            with ServeClient(socket_path, timeout=timeout) as client:
                # one untimed request primes the connection end to end
                client.request({"op": "matvec", **target}, x=pool[0], encoding=encoding)
                barrier.wait()
                for _ in range(requests_per_client):
                    idx = int(pick.integers(vector_pool))
                    t0 = time.perf_counter()
                    resp, y = client.request(
                        {"op": "matvec", **target}, x=pool[idx], encoding=encoding
                    )
                    lat.append(time.perf_counter() - t0)
                    counts["requests"] += 1
                    if not resp.get("ok") or y is None:
                        counts["errors"] += 1
                        continue
                    bsz = int(resp.get("batch_size", 0))
                    sizes[bsz] = sizes.get(bsz, 0) + 1
                    if expected is not None and not np.array_equal(y, expected[idx]):
                        counts["divergences"] += 1
        except BaseException as exc:
            failures.append(exc)
            barrier.abort()  # don't leave siblings waiting on a dead session
        finally:
            with lock:
                latencies.extend(lat)
                for k, v in sizes.items():
                    batch_sizes[k] = batch_sizes.get(k, 0) + v
                for k in totals:
                    totals[k] += counts[k]

    threads = [
        threading.Thread(target=session, args=(i,), name=f"loadgen-{i}", daemon=True)
        for i in range(concurrency)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t_start = time.perf_counter()
    for t in threads:
        t.join(timeout)
    elapsed = time.perf_counter() - t_start
    if failures:
        raise failures[0]

    lat_ms = np.asarray(latencies) * 1e3 if latencies else np.zeros(1)
    return LoadgenResult(
        matrix=matrix,
        method=method,
        procs=procs,
        concurrency=concurrency,
        requests=totals["requests"],
        errors=totals["errors"],
        divergences=totals["divergences"],
        checked=check,
        elapsed_seconds=elapsed,
        throughput_rps=totals["requests"] / elapsed if elapsed > 0 else 0.0,
        mean_ms=float(lat_ms.mean()),
        p50_ms=float(np.percentile(lat_ms, 50)),
        p99_ms=float(np.percentile(lat_ms, 99)),
        max_ms=float(lat_ms.max()),
        batch_sizes=batch_sizes,
    )
