"""Closed-loop load generator for the matvec server.

Drives *concurrency* independent sessions, each a blocking
:class:`~repro.serve.protocol.ServeClient` on its own thread issuing
matvecs back-to-back — the open-loop arrival pattern a batching server
actually sees, and the one that gives the micro-batcher distinct
requests to coalesce. Numbers reported:

* **throughput** — completed requests over the timed window (all
  sessions start together on a barrier, the window closes when the last
  one finishes);
* **latency** — per-request wall time at the client, p50/p99/mean/max;
* **divergences** — the correctness gate. Every request's answer is
  compared ``np.array_equal`` (bitwise for float64) against a *reference
  engine* the generator builds locally from the same partition cache, so
  the server's batched ``spmm`` path is held to the serial ``spmv``
  answer, bit for bit. Any nonzero count is a served-wrong-answer bug.

Vectors come from a small seeded pool so the reference answers are
precomputed once, not per request — checking is O(compare), and the pool
is shared across sessions so coalesced batches genuinely mix clients.

Two timeout knobs are deliberately separate: *timeout* is the
connect/socket default (how long a healthy server may take), while
*deadline* bounds each individual request. A request that misses its
deadline is a **distinct outcome class** (``timeouts`` in the summary) —
the session discards the poisoned connection, reconnects and keeps
going, instead of crashing the worker thread and aborting the run.

:func:`run_chaos_soak` is the adversarial variant: the same closed loop
driven through a :class:`~repro.serve.chaos.ChaosProxy` by
:class:`~repro.serve.resilience.RetryingClient` sessions, asserting the
repo's serving invariant — **every acknowledged answer is bit-identical
to the local reference engine under every chaos schedule**. Faults may
cost retries and latency, never wrong bits.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from .protocol import DeadlineExceeded, ProtocolError, ServeClient
from .resilience import ResilienceError, RetryingClient

__all__ = [
    "LoadgenResult",
    "run_loadgen",
    "reference_engine",
    "ChaosSoakResult",
    "run_chaos_soak",
]

_PARTITIONED_KINDS = ("gp", "hp", "gp-mc")


def reference_engine(matrix: str, method: str, procs: int, seed: int):
    """Build the serial-answer oracle: same cache, same layout, same bits.

    Goes through :func:`repro.bench.harness.cached_rpart` exactly like the
    server's cold path, so as long as generator and server see the same
    cache directory (both honor ``$REPRO_CACHE_DIR``) the two engines are
    built from identical partitions and their answers are bit-identical.
    Returns ``(engine, n)``.
    """
    from ..bench.harness import cached_rpart
    from ..generators.corpus import CORPUS, load_corpus_matrix
    from ..graphs.csr import as_csr
    from ..layouts import make_layout
    from ..runtime import CAB, DistSparseMatrix

    if matrix in CORPUS:
        A = load_corpus_matrix(matrix)
    else:
        from ..io import read_matrix_market

        A = read_matrix_market(matrix)
    A = as_csr(A)
    method = method.lower()
    kind = method.partition("-")[2]
    rpart = None
    if kind in _PARTITIONED_KINDS:
        rpart = cached_rpart(A, kind, procs, seed=seed)
    layout = make_layout(method, A, procs, seed=seed, rpart=rpart)
    dist = DistSparseMatrix(A, layout, CAB)
    return dist.engine, A.shape[0]


@dataclass
class LoadgenResult:
    """One load-generation run, summarized (see module docstring)."""

    matrix: str
    method: str
    procs: int
    concurrency: int
    requests: int
    errors: int
    divergences: int
    timeouts: int
    checked: bool
    elapsed_seconds: float
    throughput_rps: float
    mean_ms: float
    p50_ms: float
    p99_ms: float
    max_ms: float
    batch_sizes: dict[int, int] = field(default_factory=dict)
    #: server-side engine lookup outcomes (mem_hit/disk_hit/built) at the
    #: end of the run — lets callers assert cold-path behavior directly
    tiers: dict[str, int] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        total = sum(k * v for k, v in self.batch_sizes.items())
        count = sum(self.batch_sizes.values())
        return total / count if count else 0.0

    def as_dict(self) -> dict:
        return {
            "matrix": self.matrix,
            "method": self.method,
            "procs": self.procs,
            "concurrency": self.concurrency,
            "requests": self.requests,
            "errors": self.errors,
            "divergences": self.divergences,
            "timeouts": self.timeouts,
            "checked": self.checked,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "throughput_rps": round(self.throughput_rps, 3),
            "mean_ms": round(self.mean_ms, 4),
            "p50_ms": round(self.p50_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "max_ms": round(self.max_ms, 4),
            "mean_batch_size": round(self.mean_batch_size, 3),
            "batch_sizes": {str(k): v for k, v in sorted(self.batch_sizes.items())},
            "engine_tiers": dict(self.tiers),
        }


def _query_tiers(socket_path: str, timeout: float) -> dict[str, int]:
    """Best-effort fetch of the server's engine-tier counters (health op)."""
    try:
        with ServeClient(socket_path, timeout=timeout) as client:
            resp, _ = client.request({"op": "health"})
        if resp.get("ok"):
            return dict(resp.get("tiers") or {})
    except (OSError, ProtocolError):
        pass
    return {}


def run_loadgen(
    socket_path: str,
    matrix: str,
    method: str = "2d-gp",
    procs: int = 16,
    seed: int = 0,
    concurrency: int = 16,
    requests_per_client: int = 50,
    vector_pool: int = 32,
    check: bool = True,
    encoding: str = "bin",
    timeout: float = 600.0,
    deadline: float | None = None,
) -> LoadgenResult:
    """Run one closed-loop load test against a listening server.

    Warms the target engine with a ``partition`` request first, so the
    timed window measures steady-state serving, not the cold build.
    *deadline*, when given, bounds each request; expiries are reported
    as ``timeouts`` (the session reconnects and continues).
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if requests_per_client < 1:
        raise ValueError(f"requests_per_client must be >= 1, got {requests_per_client}")

    target = {"matrix": matrix, "method": method, "procs": procs, "seed": seed}
    with ServeClient(socket_path, timeout=timeout) as warm:
        resp, _ = warm.request({"op": "partition", **target})
        if not resp.get("ok"):
            raise ProtocolError(f"warm-up partition failed: {resp.get('error')}")
        n = int(resp["n"])

    rng = np.random.default_rng(seed ^ 0x5EED)
    pool = rng.standard_normal((vector_pool, n))
    expected: list[np.ndarray] | None = None
    if check:
        # server warmed the cache above, so this reuses its partition bits
        engine, n_ref = reference_engine(matrix, method, procs, seed)
        if n_ref != n:
            raise ProtocolError(f"reference n={n_ref} != server n={n}")
        expected = [engine.spmv(pool[i]) for i in range(vector_pool)]

    barrier = threading.Barrier(concurrency + 1)
    lock = threading.Lock()
    latencies: list[float] = []
    batch_sizes: dict[int, int] = {}
    totals = {"requests": 0, "errors": 0, "divergences": 0, "timeouts": 0}
    failures: list[BaseException] = []

    def session(client_id: int) -> None:
        pick = np.random.default_rng(1000 + client_id)
        lat: list[float] = []
        sizes: dict[int, int] = {}
        counts = {"requests": 0, "errors": 0, "divergences": 0, "timeouts": 0}
        client = None
        try:
            client = ServeClient(socket_path, timeout=timeout)
            # one untimed request primes the connection end to end
            client.request({"op": "matvec", **target}, x=pool[0], encoding=encoding)
            barrier.wait()
            for _ in range(requests_per_client):
                idx = int(pick.integers(vector_pool))
                t0 = time.perf_counter()
                try:
                    resp, y = client.request(
                        {"op": "matvec", **target},
                        x=pool[idx],
                        encoding=encoding,
                        deadline=deadline,
                    )
                except DeadlineExceeded:
                    # its own outcome class, not a crashed worker; the
                    # connection is poisoned (a stale response may still
                    # arrive mid-frame), so reconnect before continuing
                    counts["timeouts"] += 1
                    client.close()
                    client = ServeClient(socket_path, timeout=timeout)
                    continue
                lat.append(time.perf_counter() - t0)
                counts["requests"] += 1
                if not resp.get("ok") or y is None:
                    counts["errors"] += 1
                    continue
                bsz = int(resp.get("batch_size", 0))
                sizes[bsz] = sizes.get(bsz, 0) + 1
                if expected is not None and not np.array_equal(y, expected[idx]):
                    counts["divergences"] += 1
        except BaseException as exc:
            failures.append(exc)
            barrier.abort()  # don't leave siblings waiting on a dead session
        finally:
            if client is not None:
                client.close()
            with lock:
                latencies.extend(lat)
                for k, v in sizes.items():
                    batch_sizes[k] = batch_sizes.get(k, 0) + v
                for k in totals:
                    totals[k] += counts[k]

    threads = [
        threading.Thread(target=session, args=(i,), name=f"loadgen-{i}", daemon=True)
        for i in range(concurrency)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t_start = time.perf_counter()
    for t in threads:
        t.join(timeout)
    elapsed = time.perf_counter() - t_start
    if failures:
        raise failures[0]

    lat_ms = np.asarray(latencies) * 1e3 if latencies else np.zeros(1)
    return LoadgenResult(
        tiers=_query_tiers(socket_path, timeout),
        matrix=matrix,
        method=method,
        procs=procs,
        concurrency=concurrency,
        requests=totals["requests"],
        errors=totals["errors"],
        divergences=totals["divergences"],
        timeouts=totals["timeouts"],
        checked=check,
        elapsed_seconds=elapsed,
        throughput_rps=totals["requests"] / elapsed if elapsed > 0 else 0.0,
        mean_ms=float(lat_ms.mean()),
        p50_ms=float(np.percentile(lat_ms, 50)),
        p99_ms=float(np.percentile(lat_ms, 99)),
        max_ms=float(lat_ms.max()),
        batch_sizes=batch_sizes,
    )


# ---------------------------------------------------------------------------
# chaos soak: the same closed loop, adversarial wire + semantic faults
# ---------------------------------------------------------------------------


@dataclass
class ChaosSoakResult:
    """One chaos soak, summarized.

    ``lost_acked`` is the invariant counter: acknowledged (``ok``)
    responses that were wrong — bitwise divergences plus answers that
    arrived without a vector. It must be zero under every schedule.
    ``failed`` counts logical requests that exhausted their retry budget
    *without* an acknowledgment — visible failures, never wrong data.
    """

    matrix: str
    method: str
    procs: int
    seed: int
    chaos_seed: int
    concurrency: int
    requests: int
    answered: int
    failed: int
    divergences: int
    lost_acked: int
    deduped: int
    retries: int
    attempts: int
    hedges: int
    shed_seen: int
    draining_seen: int
    breaker_opens: int
    elapsed_seconds: float
    throughput_rps: float
    mean_ms: float
    p50_ms: float
    p99_ms: float
    max_ms: float
    injected_wire: dict[str, int] = field(default_factory=dict)
    injected_semantic: dict[str, int] = field(default_factory=dict)
    tiers: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "matrix": self.matrix,
            "method": self.method,
            "procs": self.procs,
            "seed": self.seed,
            "chaos_seed": self.chaos_seed,
            "concurrency": self.concurrency,
            "requests": self.requests,
            "answered": self.answered,
            "failed": self.failed,
            "divergences": self.divergences,
            "lost_acked": self.lost_acked,
            "deduped": self.deduped,
            "retries": self.retries,
            "attempts": self.attempts,
            "hedges": self.hedges,
            "shed_seen": self.shed_seen,
            "draining_seen": self.draining_seen,
            "breaker_opens": self.breaker_opens,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "throughput_rps": round(self.throughput_rps, 3),
            "mean_ms": round(self.mean_ms, 4),
            "p50_ms": round(self.p50_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "max_ms": round(self.max_ms, 4),
            "injected_wire": dict(self.injected_wire),
            "injected_semantic": dict(self.injected_semantic),
            "engine_tiers": dict(self.tiers),
        }


def run_chaos_soak(
    socket_path: str,
    matrix: str,
    method: str = "2d-gp",
    procs: int = 16,
    seed: int = 0,
    *,
    warm_socket_path: str | None = None,
    chaos_seed: int = 0,
    concurrency: int = 4,
    requests_per_client: int = 25,
    vector_pool: int = 16,
    encoding: str = "bin",
    timeout: float = 60.0,
    attempt_deadline_s: float = 5.0,
    total_deadline_s: float = 120.0,
    max_attempts: int = 10,
    hedge: bool = False,
    inject_kill: bool = False,
    p_slow: float = 0.0,
    slow_ms: float = 2.0,
    straggler_factor: float = 8.0,
) -> ChaosSoakResult:
    """Closed-loop soak through a chaos proxy with retrying clients.

    *socket_path* is the chaos proxy's listen socket; *warm_socket_path*
    (default: same) should be the server's direct socket so warm-up and
    the reference build are not themselves chaos targets. Every session
    is a :class:`RetryingClient` seeded from *chaos_seed*, so the retry
    schedule — like the proxy's injections — replays exactly.

    Semantic injections ride the request path: *inject_kill* stamps the
    warm-up partition with a worker-kill fault (priced through
    ``recovery_stats`` by the server), and each request independently
    carries a slow-engine fault with seeded probability *p_slow* (priced
    through ``straggler_overhead_seconds``). Both require the server to
    run with ``allow_fault_injection``.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if not 0.0 <= p_slow <= 1.0:
        raise ValueError(f"p_slow must be in [0, 1], got {p_slow}")

    warm_path = warm_socket_path or socket_path
    target = {"matrix": matrix, "method": method, "procs": procs, "seed": seed}
    warm_msg: dict = {"op": "partition", **target}
    if inject_kill:
        warm_msg["fault"] = {"kill_worker": True}
    with ServeClient(warm_path, timeout=timeout) as warm:
        resp, _ = warm.request(warm_msg)
        if not resp.get("ok"):
            raise ProtocolError(f"warm-up partition failed: {resp.get('error')}")
        n = int(resp["n"])
        kills_executed = int(resp.get("worker_deaths", 0))

    rng = np.random.default_rng(seed ^ 0x5EED)
    pool = rng.standard_normal((vector_pool, n))
    engine, n_ref = reference_engine(matrix, method, procs, seed)
    if n_ref != n:
        raise ProtocolError(f"reference n={n_ref} != server n={n}")
    expected = [engine.spmv(pool[i]) for i in range(vector_pool)]

    barrier = threading.Barrier(concurrency + 1)
    lock = threading.Lock()
    latencies: list[float] = []
    totals = {
        "requests": 0, "answered": 0, "failed": 0, "divergences": 0,
        "lost_acked": 0, "deduped": 0, "retries": 0, "attempts": 0,
        "hedges": 0, "shed_seen": 0, "draining_seen": 0,
        "breaker_opens": 0, "slow_injected": 0,
    }
    failures: list[BaseException] = []

    def session(client_id: int) -> None:
        pick = np.random.default_rng(
            np.random.SeedSequence((chaos_seed, client_id, 0x50AC))
        )
        lat: list[float] = []
        counts = dict.fromkeys(totals, 0)
        rc = RetryingClient(
            socket_path,
            seed=chaos_seed * 1000 + client_id,
            max_attempts=max_attempts,
            total_deadline_s=total_deadline_s,
            attempt_deadline_s=attempt_deadline_s,
            hedge=hedge,
            connect_timeout_s=timeout,
        )
        try:
            barrier.wait()
            for _ in range(requests_per_client):
                idx = int(pick.integers(vector_pool))
                fault = None
                if p_slow > 0 and float(pick.uniform()) < p_slow:
                    fault = {"slow_ms": slow_ms,
                             "straggler_factor": straggler_factor}
                counts["requests"] += 1
                t0 = time.perf_counter()
                try:
                    resp, y = rc.matvec(
                        matrix, pool[idx], method=method, procs=procs,
                        seed=seed, encoding=encoding, fault=fault,
                    )
                except ResilienceError:
                    # visible failure: never acknowledged, never wrong
                    counts["failed"] += 1
                    continue
                lat.append(time.perf_counter() - t0)
                if not resp.get("ok"):
                    counts["failed"] += 1
                    continue
                counts["answered"] += 1
                if fault is not None and "slow_engine" in resp:
                    counts["slow_injected"] += 1
                if y is None:
                    counts["lost_acked"] += 1
                elif not np.array_equal(y, expected[idx]):
                    counts["divergences"] += 1
                    counts["lost_acked"] += 1
        except BaseException as exc:
            failures.append(exc)
            barrier.abort()
        finally:
            rc.close()
            with lock:
                latencies.extend(lat)
                for k in ("deduped", "retries", "attempts", "hedges",
                          "shed_seen", "draining_seen"):
                    counts[k] += rc.stats[k]
                counts["breaker_opens"] += rc.breaker.opens
                for k in totals:
                    totals[k] += counts[k]

    threads = [
        threading.Thread(
            target=session, args=(i,), name=f"chaos-soak-{i}", daemon=True
        )
        for i in range(concurrency)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t_start = time.perf_counter()
    for t in threads:
        t.join(timeout + total_deadline_s * requests_per_client)
    elapsed = time.perf_counter() - t_start
    if failures:
        raise failures[0]

    lat_ms = np.asarray(latencies) * 1e3 if latencies else np.zeros(1)
    semantic = {
        "kill_worker": kills_executed,
        "slow_engine": totals["slow_injected"],
    }
    return ChaosSoakResult(
        matrix=matrix,
        method=method,
        procs=procs,
        seed=seed,
        chaos_seed=chaos_seed,
        concurrency=concurrency,
        requests=totals["requests"],
        answered=totals["answered"],
        failed=totals["failed"],
        divergences=totals["divergences"],
        lost_acked=totals["lost_acked"],
        deduped=totals["deduped"],
        retries=totals["retries"],
        attempts=totals["attempts"],
        hedges=totals["hedges"],
        shed_seen=totals["shed_seen"],
        draining_seen=totals["draining_seen"],
        breaker_opens=totals["breaker_opens"],
        elapsed_seconds=elapsed,
        throughput_rps=totals["answered"] / elapsed if elapsed > 0 else 0.0,
        mean_ms=float(lat_ms.mean()),
        p50_ms=float(np.percentile(lat_ms, 50)),
        p99_ms=float(np.percentile(lat_ms, 99)),
        max_ms=float(lat_ms.max()),
        injected_semantic=semantic,
        tiers=_query_tiers(warm_path, timeout),
    )
