"""Micro-batching: coalesce concurrent matvecs into one ``spmm`` call.

The engine's block apply runs k right-hand sides through the two
compiled operators for barely more than the cost of one
(``BENCH_engine.json``: ~82x per-vector at k=64), and it guarantees
column j of ``spmm(X)`` is **bit-identical** to ``spmv(X[:, j])`` — the
CSR-times-dense kernel accumulates each row-column dot in the same
stored-entry order as the matvec. That exactness is what makes batching
an execution detail the client cannot observe (the contract
``tests/test_serve.py`` and the load generator's divergence gate hold us
to), and the per-vector amortization is what the throughput gate in
``BENCH_serve.json`` measures.

A batch flushes on whichever trigger fires first:

* **size** — ``max_batch`` requests are waiting (the k the engine was
  benchmarked at; beyond it the per-vector win flattens while latency
  keeps growing);
* **deadline** — ``deadline_s`` elapsed since the batch opened, so a
  lone request never waits for company that is not coming.

Flushes run inline on the event loop. That is deliberate: it keeps the
arrival -> batch -> compute -> respond ordering deterministic, and the
engine parallelizes *inside* the flush — with a thread budget
(``ServeConfig.engine_threads``) the fused multiply fans out over the
engine's nnz-balanced row blocks on the shared GIL-releasing pool
(:mod:`repro.runtime.threads`; scipy's CSR kernels release the GIL for
the C loop), still bit-identical to the serial kernel. Batching gives
the threads a k-wide block to chew on, so the two optimizations
compound rather than compete.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from ..perf import SpanRecorder

__all__ = ["MicroBatcher", "QueueFull"]


class QueueFull(RuntimeError):
    """A bounded micro-batch queue refused one more request.

    Raised by :meth:`MicroBatcher.submit` when ``max_pending`` requests
    are already waiting — the admission-control signal the server turns
    into an explicit load-shedding response (``shed: true`` with a
    ``retry_after_s`` hint) instead of letting queue latency grow without
    bound.
    """

    def __init__(self, pending: int, max_pending: int):
        super().__init__(
            f"engine queue full: {pending} request(s) pending "
            f"(bound {max_pending})"
        )
        self.pending = pending
        self.max_pending = max_pending


class MicroBatcher:
    """Per-engine request coalescer (one per resident engine).

    Lives entirely on the event loop thread: ``submit`` appends to the
    open batch and every flush resolves the waiting futures in arrival
    order. ``max_pending`` (optional) bounds the number of queued
    requests; beyond it :meth:`submit` raises :class:`QueueFull`
    *synchronously*, so an overloaded engine sheds load at admission
    instead of queueing unboundedly.
    """

    def __init__(
        self,
        engine,
        max_batch: int = 16,
        deadline_s: float = 0.002,
        max_pending: int | None = None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if deadline_s < 0:
            raise ValueError(f"deadline_s must be >= 0, got {deadline_s}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.engine = engine
        self.max_batch = max_batch
        self.deadline_s = deadline_s
        self.max_pending = max_pending
        self._pending: list[tuple[np.ndarray, asyncio.Future, SpanRecorder, float]] = []
        self._timer: asyncio.TimerHandle | None = None
        #: flush counters by trigger, and a batch-size histogram
        self.flushes = {"size": 0, "deadline": 0, "drain": 0}
        self.batch_sizes: dict[int, int] = {}
        self.matvecs = 0
        #: submissions refused by the max_pending bound
        self.shed = 0

    async def submit(
        self, x: np.ndarray, recorder: SpanRecorder
    ) -> tuple[np.ndarray, int]:
        """Queue one matvec; await ``(y, batch_size)`` from the next flush.

        Raises :class:`QueueFull` (before queueing anything) when the
        pending bound is hit.
        """
        if self.max_pending is not None and len(self._pending) >= self.max_pending:
            self.shed += 1
            raise QueueFull(len(self._pending), self.max_pending)
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        self._pending.append((x, fut, recorder, time.perf_counter()))
        if len(self._pending) >= self.max_batch:
            self._flush("size")
        elif len(self._pending) == 1:
            self._timer = loop.call_later(self.deadline_s, self._flush, "deadline")
        return await fut

    def drain(self) -> None:
        """Flush whatever is pending now (graceful-shutdown path)."""
        if self._pending:
            self._flush("drain")

    @property
    def pending(self) -> int:
        return len(self._pending)

    def _flush(self, cause: str) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        if not batch:
            return
        k = len(batch)
        self.flushes[cause] += 1
        self.batch_sizes[k] = self.batch_sizes.get(k, 0) + 1
        self.matvecs += k
        t0 = time.perf_counter()
        try:
            if k == 1:
                Y = self.engine.spmv(batch[0][0])[:, None]
            else:
                X = np.stack([x for x, _, _, _ in batch], axis=1)
                Y = self.engine.spmm(X)
        except Exception as exc:  # pragma: no cover - engine failures are bugs
            for _, fut, _, _ in batch:
                if not fut.done():
                    fut.set_exception(exc)
            return
        done = time.perf_counter()
        for j, (_, fut, rec, t_enq) in enumerate(batch):
            rec.add("batch", t0 - t_enq)
            rec.add("compute", done - t0)
            if not fut.done():  # client may have gone away mid-batch
                fut.set_result((np.ascontiguousarray(Y[:, j]), k))
