"""Micro-batching: coalesce concurrent matvecs into one ``spmm`` call.

The engine's block apply runs k right-hand sides through the two
compiled operators for barely more than the cost of one
(``BENCH_engine.json``: ~82x per-vector at k=64), and it guarantees
column j of ``spmm(X)`` is **bit-identical** to ``spmv(X[:, j])`` — the
CSR-times-dense kernel accumulates each row-column dot in the same
stored-entry order as the matvec. That exactness is what makes batching
an execution detail the client cannot observe (the contract
``tests/test_serve.py`` and the load generator's divergence gate hold us
to), and the per-vector amortization is what the throughput gate in
``BENCH_serve.json`` measures.

A batch flushes on whichever trigger fires first:

* **size** — ``max_batch`` requests are waiting (the k the engine was
  benchmarked at; beyond it the per-vector win flattens while latency
  keeps growing);
* **deadline** — ``deadline_s`` elapsed since the batch opened, so a
  lone request never waits for company that is not coming.

Flushes run inline on the event loop. That is deliberate: scipy's
sparse kernels hold the GIL, so a thread pool would add handoff latency
without adding overlap, and inline execution keeps the
arrival -> batch -> compute -> respond ordering deterministic.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from ..perf import SpanRecorder

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Per-engine request coalescer (one per resident engine).

    Lives entirely on the event loop thread: ``submit`` appends to the
    open batch and every flush resolves the waiting futures in arrival
    order.
    """

    def __init__(self, engine, max_batch: int = 16, deadline_s: float = 0.002):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if deadline_s < 0:
            raise ValueError(f"deadline_s must be >= 0, got {deadline_s}")
        self.engine = engine
        self.max_batch = max_batch
        self.deadline_s = deadline_s
        self._pending: list[tuple[np.ndarray, asyncio.Future, SpanRecorder, float]] = []
        self._timer: asyncio.TimerHandle | None = None
        #: flush counters by trigger, and a batch-size histogram
        self.flushes = {"size": 0, "deadline": 0, "drain": 0}
        self.batch_sizes: dict[int, int] = {}
        self.matvecs = 0

    async def submit(
        self, x: np.ndarray, recorder: SpanRecorder
    ) -> tuple[np.ndarray, int]:
        """Queue one matvec; await ``(y, batch_size)`` from the next flush."""
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        self._pending.append((x, fut, recorder, time.perf_counter()))
        if len(self._pending) >= self.max_batch:
            self._flush("size")
        elif len(self._pending) == 1:
            self._timer = loop.call_later(self.deadline_s, self._flush, "deadline")
        return await fut

    def drain(self) -> None:
        """Flush whatever is pending now (graceful-shutdown path)."""
        if self._pending:
            self._flush("drain")

    @property
    def pending(self) -> int:
        return len(self._pending)

    def _flush(self, cause: str) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        if not batch:
            return
        k = len(batch)
        self.flushes[cause] += 1
        self.batch_sizes[k] = self.batch_sizes.get(k, 0) + 1
        self.matvecs += k
        t0 = time.perf_counter()
        try:
            if k == 1:
                Y = self.engine.spmv(batch[0][0])[:, None]
            else:
                X = np.stack([x for x, _, _, _ in batch], axis=1)
                Y = self.engine.spmm(X)
        except Exception as exc:  # pragma: no cover - engine failures are bugs
            for _, fut, _, _ in batch:
                if not fut.done():
                    fut.set_exception(exc)
            return
        done = time.perf_counter()
        for j, (_, fut, rec, t_enq) in enumerate(batch):
            rec.add("batch", t0 - t_enq)
            rec.add("compute", done - t0)
            if not fut.done():  # client may have gone away mid-batch
                fut.set_result((np.ascontiguousarray(Y[:, j]), k))
