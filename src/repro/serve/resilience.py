"""Client-side resilience: seeded retries, circuit breaking, hedging.

:class:`RetryingClient` wraps the blocking :class:`~.protocol.ServeClient`
with the failure handling a production caller needs and the determinism
this repo's tests demand:

**idempotency keys**
    Every logical request carries a client-unique ``idem`` key that stays
    fixed across retries and hedges (each *attempt* still gets a fresh
    wire ``id``). The server's dedup table answers a retry of in-flight
    work from the original's future and a retry of completed work from
    the stored result — a retried matvec is never recomputed and never
    double-batched, so retrying is always safe.

**backoff with decorrelated jitter**
    ``sleep = uniform(base, prev * 3)`` capped at ``cap`` — the classic
    decorrelated-jitter schedule, drawn from a seeded generator. A shed
    response's ``retry_after_s`` hint becomes the floor of the next
    sleep. Everything runs under one total deadline per logical request.

**circuit breaker**
    A closed/open/half-open breaker over a sliding outcome window. Too
    many failures open it; while open, attempts wait out the reset
    timeout (bounded by the request deadline) instead of hammering a
    struggling server; a half-open probe's outcome closes or re-opens it.

**hedging** (opt-in)
    When a request has waited past a latency quantile of recent
    successes, a second attempt fires on a fresh connection with the
    same ``idem`` key; first response wins and the loser's connection is
    torn down. Safe by construction: dedup means the loser costs a table
    lookup, not a computation.

Nothing here reads the wall clock directly — ``clock``/``sleep`` are
injectable, and every random draw comes from the seeded generator — so
retry/backoff/breaker schedules replay bit-identically under a fixed
seed (the property ``tests/test_serve_resilience.py`` pins).
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .protocol import DeadlineExceeded, ProtocolError, ServeClient

__all__ = [
    "BackoffPolicy",
    "CircuitBreaker",
    "CircuitOpen",
    "RetriesExhausted",
    "RetryingClient",
]

#: Exception types that justify a retry on a fresh connection: the request
#: may never have been processed (connect/reset), or the response cannot be
#: trusted or recovered (torn frame, crc mismatch, deadline expiry — the
#: stale bytes may still arrive, so the socket is poisoned either way).
RETRYABLE_EXCEPTIONS = (
    DeadlineExceeded,
    ProtocolError,
    ConnectionError,
    EOFError,
    OSError,
)


class ResilienceError(RuntimeError):
    """Base class for client-side resilience failures."""


class RetriesExhausted(ResilienceError):
    """A logical request failed every attempt within its deadline."""

    def __init__(self, message: str, attempts: int, causes: list[str]):
        super().__init__(
            f"{message} after {attempts} attempt(s): {'; '.join(causes) or 'none'}"
        )
        self.attempts = attempts
        self.causes = causes


class CircuitOpen(ResilienceError):
    """The circuit breaker is open and the deadline cannot wait it out."""


@dataclass
class BackoffPolicy:
    """Decorrelated-jitter backoff: ``uniform(base, prev*3)``, capped.

    Seeded and stateless across requests (the caller threads ``prev``
    through), so a schedule replays exactly under a fixed seed.
    """

    base_s: float = 0.05
    cap_s: float = 5.0
    seed: int = 0
    rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.base_s <= 0:
            raise ValueError(f"base_s must be > 0, got {self.base_s}")
        if self.cap_s < self.base_s:
            raise ValueError("cap_s must be >= base_s")
        self.rng = np.random.default_rng(
            np.random.SeedSequence((int(self.seed), 0xB0FF))
        )

    def next(self, prev_s: float, floor_s: float = 0.0) -> float:
        """Next sleep given the previous one (and an optional server hint)."""
        lo = max(self.base_s, floor_s)
        hi = max(prev_s * 3.0, lo)
        return float(min(self.cap_s, self.rng.uniform(lo, hi)))


class CircuitBreaker:
    """Closed / open / half-open breaker over a sliding outcome window.

    Closed: everything flows; once the window holds ``min_calls``
    outcomes and the failure rate reaches ``failure_threshold``, the
    breaker opens. Open: :meth:`allow` refuses until ``reset_timeout_s``
    has elapsed on the injected *clock*, then one half-open probe is let
    through. Half-open: the probe's outcome decides — success closes
    (window wiped), failure re-opens the timeout.
    """

    def __init__(
        self,
        window: int = 20,
        failure_threshold: float = 0.5,
        min_calls: int = 5,
        reset_timeout_s: float = 1.0,
        clock=time.monotonic,
    ):
        if not 0 < failure_threshold <= 1:
            raise ValueError(f"failure_threshold in (0, 1], got {failure_threshold}")
        if window < 1 or min_calls < 1:
            raise ValueError("window and min_calls must be >= 1")
        self.window = window
        self.failure_threshold = failure_threshold
        self.min_calls = min_calls
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._outcomes: deque[bool] = deque(maxlen=window)
        self.state = "closed"
        self.opens = 0
        self._opened_at = 0.0
        self._probe_inflight = False

    def allow(self) -> bool:
        """May an attempt proceed right now?"""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self._clock() - self._opened_at >= self.reset_timeout_s:
                self.state = "half-open"
                self._probe_inflight = False
            else:
                return False
        # half-open: exactly one probe at a time
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    def seconds_until_probe(self) -> float:
        """How long :meth:`allow` will keep refusing (0 when it would not)."""
        if self.state != "open":
            return 0.0
        return max(0.0, self.reset_timeout_s - (self._clock() - self._opened_at))

    def record(self, success: bool) -> None:
        """Feed one attempt outcome into the state machine."""
        if self.state == "half-open":
            self._probe_inflight = False
            if success:
                self.state = "closed"
                self._outcomes.clear()
            else:
                self._open()
            return
        self._outcomes.append(success)
        if (
            self.state == "closed"
            and len(self._outcomes) >= self.min_calls
            and self.failure_rate() >= self.failure_threshold
        ):
            self._open()

    def failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return 1.0 - sum(self._outcomes) / len(self._outcomes)

    def _open(self) -> None:
        self.state = "open"
        self.opens += 1
        self._opened_at = self._clock()


#: Distinguishes RetryingClient instances for idem-key uniqueness.
_RETRY_SEQ = itertools.count()


class RetryingClient:
    """Retrying, breaker-guarded, optionally hedging matvec client.

    One instance owns one primary connection (rebuilt transparently after
    retryable failures) plus short-lived hedge connections. Not
    thread-safe — like :class:`ServeClient`, open one per session.
    """

    def __init__(
        self,
        socket_path: str,
        *,
        seed: int = 0,
        max_attempts: int = 5,
        total_deadline_s: float = 60.0,
        attempt_deadline_s: float | None = None,
        backoff: BackoffPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        hedge: bool = False,
        hedge_quantile: float = 0.95,
        hedge_min_samples: int = 16,
        connect_timeout_s: float = 60.0,
        clock=time.monotonic,
        sleep=time.sleep,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if not 0 < hedge_quantile < 1:
            raise ValueError(f"hedge_quantile in (0, 1), got {hedge_quantile}")
        self.socket_path = socket_path
        self.max_attempts = max_attempts
        self.total_deadline_s = total_deadline_s
        self.attempt_deadline_s = attempt_deadline_s
        self.backoff = backoff if backoff is not None else BackoffPolicy(seed=seed)
        self.breaker = breaker if breaker is not None else CircuitBreaker(clock=clock)
        self.hedge = hedge
        self.hedge_quantile = hedge_quantile
        self.hedge_min_samples = hedge_min_samples
        self.connect_timeout_s = connect_timeout_s
        self._clock = clock
        self._sleep = sleep
        self._idem_prefix = f"r{next(_RETRY_SEQ)}"
        self._idem_seq = itertools.count()
        self._conn: ServeClient | None = None
        self._latencies: deque[float] = deque(maxlen=256)
        self.stats = {
            "requests": 0,
            "attempts": 0,
            "retries": 0,
            "deduped": 0,
            "shed_seen": 0,
            "draining_seen": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "breaker_waits": 0,
            "backoff_sleep_s": 0.0,
        }

    # -- connection management --------------------------------------------

    def _new_conn(self) -> ServeClient:
        return ServeClient(self.socket_path, timeout=self.connect_timeout_s)

    def _take_conn(self) -> ServeClient:
        conn, self._conn = self._conn, None
        return conn if conn is not None else self._new_conn()

    def _put_conn(self, conn: ServeClient) -> None:
        if self._conn is None:
            self._conn = conn
        else:
            conn.close()

    @staticmethod
    def _discard(conn: ServeClient | None) -> None:
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass

    def close(self) -> None:
        self._discard(self._conn)
        self._conn = None

    def __enter__(self) -> "RetryingClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- public API --------------------------------------------------------

    def next_idem(self) -> str:
        """Mint the idempotency key for one logical request."""
        return f"{self._idem_prefix}-{next(self._idem_seq)}"

    def matvec(
        self,
        matrix: str,
        x: np.ndarray,
        *,
        method: str | None = None,
        procs: int | None = None,
        seed: int | None = None,
        encoding: str = "bin",
        fault: dict | None = None,
    ) -> tuple[dict, np.ndarray]:
        """One resilient matvec; returns ``(response, y)`` or raises."""
        msg: dict = {"op": "matvec", "matrix": matrix}
        if method is not None:
            msg["method"] = method
        if procs is not None:
            msg["procs"] = procs
        if seed is not None:
            msg["seed"] = seed
        if fault is not None:
            msg["fault"] = fault
        return self.request(msg, x, encoding=encoding)

    def request(
        self, msg: dict, x: np.ndarray | None = None, encoding: str = "bin"
    ) -> tuple[dict, np.ndarray | None]:
        """Send one logical request with retries/backoff/breaker/hedging.

        Returns the first trustworthy ``ok`` response. Shed/draining
        refusals and retryable transport failures are retried under the
        total deadline; any other ``ok: false`` response is returned
        as-is (an application error is the server's answer, not a fault).
        """
        self.stats["requests"] += 1
        idem = msg.get("idem") or self.next_idem()
        deadline_at = self._clock() + self.total_deadline_s
        prev_sleep = self.backoff.base_s
        causes: list[str] = []
        attempt = 0
        while attempt < self.max_attempts:
            remaining = deadline_at - self._clock()
            if remaining <= 0:
                break
            waited = self._wait_for_breaker(deadline_at)
            if waited is None:
                raise CircuitOpen(
                    f"circuit open for {self.breaker.seconds_until_probe():.3f}s "
                    f"more, past the request deadline (causes: {causes})"
                )
            attempt += 1
            self.stats["attempts"] += 1
            t0 = self._clock()
            try:
                resp, y = self._attempt(msg, x, encoding, idem, remaining)
            except RETRYABLE_EXCEPTIONS as exc:
                self.breaker.record(False)
                self.stats["retries"] += 1
                causes.append(f"{type(exc).__name__}: {exc}")
                prev_sleep = self._backoff_sleep(prev_sleep, 0.0, deadline_at)
                continue
            if resp.get("ok"):
                self.breaker.record(True)
                self._latencies.append(self._clock() - t0)
                if resp.get("deduped"):
                    self.stats["deduped"] += 1
                return resp, y
            if resp.get("shed") or resp.get("draining"):
                key = "shed_seen" if resp.get("shed") else "draining_seen"
                self.stats[key] += 1
                self.breaker.record(False)
                causes.append(str(resp.get("error", key)))
                hint = float(resp.get("retry_after_s") or 0.0)
                prev_sleep = self._backoff_sleep(prev_sleep, hint, deadline_at)
                continue
            # a definitive application error: the server is healthy and
            # answered; retrying cannot change a deterministic answer
            self.breaker.record(True)
            return resp, y
        raise RetriesExhausted("request failed", attempt, causes)

    # -- internals ---------------------------------------------------------

    def _wait_for_breaker(self, deadline_at: float) -> float | None:
        """Block (injected sleep) until the breaker admits an attempt.

        Returns the seconds waited, or ``None`` when the open interval
        outlives the deadline.
        """
        waited = 0.0
        while not self.breaker.allow():
            wait = self.breaker.seconds_until_probe()
            if wait <= 0:
                # half-open with a probe in flight can't happen in this
                # single-threaded client; treat as a minimal yield
                wait = self.backoff.base_s
            if self._clock() + wait > deadline_at:
                return None
            self.stats["breaker_waits"] += 1
            self._sleep(wait)
            waited += wait
        return waited

    def _backoff_sleep(
        self, prev_sleep: float, floor_s: float, deadline_at: float
    ) -> float:
        """One decorrelated-jitter sleep, clipped to the deadline."""
        nxt = self.backoff.next(prev_sleep, floor_s=floor_s)
        budget = deadline_at - self._clock()
        if budget > 0:
            self._sleep(min(nxt, budget))
            self.stats["backoff_sleep_s"] += min(nxt, budget)
        return nxt

    def _hedge_delay(self) -> float | None:
        """Latency quantile after which a hedge fires (None = don't hedge)."""
        if not self.hedge or len(self._latencies) < self.hedge_min_samples:
            return None
        return float(np.quantile(np.asarray(self._latencies), self.hedge_quantile))

    def _attempt(
        self,
        msg: dict,
        x: np.ndarray | None,
        encoding: str,
        idem: str,
        remaining_s: float,
    ) -> tuple[dict, np.ndarray | None]:
        """One attempt: plain on the primary connection, or hedged."""
        deadline = remaining_s
        if self.attempt_deadline_s is not None:
            deadline = min(deadline, self.attempt_deadline_s)
        hedge_after = self._hedge_delay()
        if hedge_after is None or hedge_after >= deadline:
            return self._attempt_on(self._take_conn(), msg, x, encoding, idem, deadline)
        return self._attempt_hedged(msg, x, encoding, idem, deadline, hedge_after)

    def _attempt_on(
        self,
        conn: ServeClient,
        msg: dict,
        x: np.ndarray | None,
        encoding: str,
        idem: str,
        deadline: float,
    ) -> tuple[dict, np.ndarray | None]:
        """Run one attempt on *conn*; return it to the pool on success."""
        wire = dict(msg)
        wire["idem"] = idem
        wire.pop("id", None)  # every attempt gets a fresh wire id
        try:
            out = conn.request(wire, x, encoding=encoding, deadline=deadline)
        except BaseException:
            self._discard(conn)
            raise
        self._put_conn(conn)
        return out

    def _attempt_hedged(
        self,
        msg: dict,
        x: np.ndarray | None,
        encoding: str,
        idem: str,
        deadline: float,
        hedge_after: float,
    ) -> tuple[dict, np.ndarray | None]:
        """Primary attempt in a thread; hedge on a fresh conn if it's slow.

        Both attempts share the ``idem`` key, so whichever loses was
        deduplicated server-side, never recomputed. The loser's
        connection is closed (which unblocks its thread); its eventual
        result or error is discarded.
        """
        results: queue.Queue = queue.Queue()

        def runner(tag: str, conn: ServeClient, budget: float) -> None:
            try:
                results.put((tag, conn, self._attempt_on(
                    conn, msg, x, encoding, idem, budget
                ), None))
            except BaseException as exc:
                results.put((tag, conn, None, exc))

        def get_or_deadline(timeout: float):
            try:
                return results.get(timeout=max(timeout, 1e-3))
            except queue.Empty:
                raise DeadlineExceeded(
                    f"hedged request got no response within {deadline}s"
                ) from None

        primary = self._take_conn()
        t1 = threading.Thread(
            target=runner, args=("primary", primary, deadline), daemon=True
        )
        t1.start()
        try:
            tag, _conn, out, exc = results.get(timeout=hedge_after)
        except queue.Empty:
            self.stats["hedges"] += 1
            hedge_conn = self._new_conn()
            t2 = threading.Thread(
                target=runner,
                args=("hedge", hedge_conn, max(deadline - hedge_after, 1e-3)),
                daemon=True,
            )
            t2.start()
            tag = None
            try:
                tag, _conn, out, exc = get_or_deadline(deadline)
                if exc is not None:
                    # first finisher failed; give the survivor its chance
                    tag, _conn, out, exc = get_or_deadline(deadline)
                if tag == "hedge" and exc is None:
                    self.stats["hedge_wins"] += 1
            finally:
                # cancel the loser: closing its socket unblocks its thread
                # (neither finished => both are poisoned, drop both)
                losers = (
                    [primary if tag == "hedge" else hedge_conn]
                    if tag is not None
                    else [primary, hedge_conn]
                )
                for loser in losers:
                    if loser is self._conn:
                        self._conn = None
                    self._discard(loser)
        if exc is not None:
            raise exc
        return out
