"""Partition-as-a-service: a long-lived batched matvec server.

The paper's economic argument is amortization — pay for a good 2D
partition once, reuse it across many matrix computations. Every other
entry point in this repo is a one-shot CLI that rebuilds state per call;
this package is the long-lived counterpart:

:mod:`~repro.serve.protocol`
    JSON-line wire protocol (unix socket or HTTP) with an optional raw
    binary frame for vectors, plus the synchronous client.
:mod:`~repro.serve.residency`
    Engine residency: compiled :class:`~repro.runtime.engine.SpmvEngine`
    instances kept hot behind an LRU keyed by the same content-hash keys
    as the on-disk partition cache.
:mod:`~repro.serve.batching`
    Micro-batching: concurrent matvec requests on one matrix coalesce
    into a single ``spmm`` call, bit-identical per column to serial
    per-request answers.
:mod:`~repro.serve.server`
    The asyncio server: request dispatch, cold-matrix partitioning over
    a resilient worker pool with timeout/retry/degradation, fault
    injection of worker death priced via :mod:`repro.runtime.faults`.
:mod:`~repro.serve.loadgen`
    Seeded closed-loop load generator producing the p50/p99/throughput
    numbers ``benchmarks/bench_serve_load.py`` gates on.
"""

from .batching import MicroBatcher
from .loadgen import LoadgenResult, run_loadgen
from .protocol import ProtocolError, ServeClient, decode_vector, encode_vector
from .residency import EngineResidency, ResidentEngine
from .server import MatvecServer, ServeConfig, ServerHandle, start_in_thread

__all__ = [
    "EngineResidency",
    "LoadgenResult",
    "MatvecServer",
    "MicroBatcher",
    "ProtocolError",
    "ResidentEngine",
    "ServeClient",
    "ServeConfig",
    "ServerHandle",
    "decode_vector",
    "encode_vector",
    "run_loadgen",
    "start_in_thread",
]
