"""Partition-as-a-service: a long-lived batched matvec server.

The paper's economic argument is amortization — pay for a good 2D
partition once, reuse it across many matrix computations. Every other
entry point in this repo is a one-shot CLI that rebuilds state per call;
this package is the long-lived counterpart:

:mod:`~repro.serve.protocol`
    JSON-line wire protocol (unix socket or HTTP) with an optional raw
    binary frame for vectors, CRC-32 frame integrity, plus the
    synchronous client.
:mod:`~repro.serve.residency`
    Engine residency: compiled :class:`~repro.runtime.engine.SpmvEngine`
    instances kept hot behind an LRU keyed by the same content-hash keys
    as the on-disk partition cache.
:mod:`~repro.serve.batching`
    Micro-batching: concurrent matvec requests on one matrix coalesce
    into a single ``spmm`` call, bit-identical per column to serial
    per-request answers; bounded queues shed load at admission.
:mod:`~repro.serve.server`
    The asyncio server: pipelined request dispatch, idempotency-keyed
    retry dedup, admission control with explicit shedding, graceful
    drain, cold-matrix partitioning over a resilient worker pool with
    timeout/retry/degradation, fault injection (worker death, slow
    engine) priced via :mod:`repro.runtime.faults`.
:mod:`~repro.serve.resilience`
    Client-side resilience: :class:`RetryingClient` with seeded
    decorrelated-jitter backoff, a circuit breaker and optional hedging,
    all retry-safe through server-side idempotency.
:mod:`~repro.serve.chaos`
    Seeded wire-level fault injection: :class:`ChaosProxy` tears,
    corrupts, resets, delays and drops response frames from a
    deterministic schedule, with an executed-injection ledger.
:mod:`~repro.serve.loadgen`
    Seeded closed-loop load generator producing the p50/p99/throughput
    numbers ``benchmarks/bench_serve_load.py`` gates on, plus the chaos
    soak ``benchmarks/bench_serve_chaos.py`` gates on (bit-identical
    answers under every chaos schedule).
"""

from .batching import MicroBatcher, QueueFull
from .chaos import ChaosProxy, ChaosProxyHandle, ChaosSchedule, start_chaos_proxy
from .loadgen import (
    ChaosSoakResult,
    LoadgenResult,
    run_chaos_soak,
    run_loadgen,
)
from .protocol import (
    DeadlineExceeded,
    ProtocolError,
    ServeClient,
    decode_vector,
    encode_vector,
)
from .resilience import (
    BackoffPolicy,
    CircuitBreaker,
    CircuitOpen,
    RetriesExhausted,
    RetryingClient,
)
from .residency import EngineResidency, ResidentEngine
from .server import MatvecServer, ServeConfig, ServerHandle, start_in_thread

__all__ = [
    "BackoffPolicy",
    "ChaosProxy",
    "ChaosProxyHandle",
    "ChaosSchedule",
    "ChaosSoakResult",
    "CircuitBreaker",
    "CircuitOpen",
    "DeadlineExceeded",
    "EngineResidency",
    "LoadgenResult",
    "MatvecServer",
    "MicroBatcher",
    "ProtocolError",
    "QueueFull",
    "ResidentEngine",
    "RetriesExhausted",
    "RetryingClient",
    "ServeClient",
    "ServeConfig",
    "ServerHandle",
    "decode_vector",
    "encode_vector",
    "run_chaos_soak",
    "run_loadgen",
    "start_chaos_proxy",
    "start_in_thread",
]
