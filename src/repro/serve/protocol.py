"""Wire protocol of the matvec server: JSON lines + optional binary frame.

One message is one JSON object on one ``\\n``-terminated line. Requests
carry ``op`` (``health``, ``stats``, ``matvec``, ``partition``,
``shutdown``) and an optional client-chosen ``id`` that the response
echoes; responses carry ``ok`` plus op-specific fields, or ``ok: false``
with ``error``.

Vectors travel in one of three interchangeable encodings, all exact for
float64 (the first two because Python's ``repr``/``float`` round-trip
shortest decimal forms, the last trivially):

``"x": [..]``
    A plain JSON array — the debugging/interop form.
``"x_b64": "..."``
    Base64 of the little-endian float64 buffer.
``"bin": <nbytes>``
    The *binary frame* extension: the JSON line announces a payload of
    ``nbytes`` raw little-endian float64 bytes that immediately follow
    the newline. This is the fast path — no escaping, no base64 blowup —
    and the load generator's default. Responses mirror the encoding of
    their request.

The same messages run over a unix stream socket (framing as described)
or over HTTP (``POST /rpc`` with the JSON object as the body, base64 or
array vectors only — HTTP clients tend to be browsers and curl, which
prefer self-contained bodies).

**Frame integrity.** Every framed message carries a ``crc`` field: a
CRC-32 over the canonical (sorted-key, compact) JSON serialization of
the message *without* the ``crc`` field, concatenated with the binary
payload. Receivers that find a ``crc`` recompute and compare, so a
corrupted byte anywhere in the frame — the JSON line, the crc digits
themselves, or the raw float64 payload — surfaces as a
:class:`ProtocolError`, never as silently wrong data. This is the
detection point the chaos harness (:mod:`repro.serve.chaos`) attacks:
its corruption injections must *always* be caught here (or upstream by
the JSON parser), because a float64 payload with flipped bits is
otherwise a perfectly valid vector. Frames without ``crc`` (external
HTTP clients) are accepted unverified.
"""

from __future__ import annotations

import base64
import itertools
import json
import socket
import zlib
from typing import Any

import numpy as np

__all__ = [
    "ProtocolError",
    "DeadlineExceeded",
    "MAX_LINE_BYTES",
    "frame_digest",
    "verify_frame",
    "encode_frame",
    "encode_vector",
    "decode_vector",
    "encode_message",
    "read_message",
    "ServeClient",
]

#: Stream-reader line limit: a 1M-entry float64 vector in base64 plus JSON
#: overhead. Binary frames bypass this entirely.
MAX_LINE_BYTES = 16 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed request or response (bad JSON, bad frame, bad field)."""


class DeadlineExceeded(ProtocolError):
    """A per-request deadline expired before the response arrived.

    Distinct from :class:`ProtocolError` proper so callers can report
    timed-out requests as their own outcome class (the load generator's
    summary) or as a retryable-with-fresh-connection failure (the
    :class:`~repro.serve.resilience.RetryingClient`). A timed-out
    connection is poisoned — the response may still arrive mid-frame —
    so the socket must be discarded, never reused.
    """


def frame_digest(msg: dict, payload: bytes | None = None) -> int:
    """CRC-32 of one frame: canonical JSON of *msg* (sans ``crc``) + payload.

    The canonical form (sorted keys, compact separators) makes the digest
    a pure function of the message *content*, so the receiver — who only
    has the parsed dict — can recompute it byte-for-byte.
    """
    body = json.dumps(
        {k: v for k, v in msg.items() if k != "crc"},
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    return zlib.crc32(body + (payload or b"")) & 0xFFFFFFFF


def verify_frame(msg: dict, payload: bytes | None = None) -> None:
    """Check *msg*'s ``crc`` against its content; raise on mismatch.

    Frames without a ``crc`` field pass unverified (external clients).
    """
    crc = msg.get("crc")
    if crc is None:
        return
    if not isinstance(crc, int) or crc != frame_digest(msg, payload):
        raise ProtocolError(
            "frame integrity check failed: crc mismatch (corrupted frame)"
        )


def encode_frame(msg: dict, payload: bytes = b"") -> bytes:
    """Serialize one integrity-checked frame: JSON line + raw payload."""
    out = {k: v for k, v in msg.items() if k != "crc"}
    out["crc"] = frame_digest(out, payload)
    return json.dumps(out, separators=(",", ":")).encode("utf-8") + b"\n" + payload


def encode_vector(msg: dict, y: np.ndarray, encoding: str) -> bytes:
    """Finish *msg* with vector *y* in *encoding*; return the wire bytes.

    ``encoding`` is ``"list"``, ``"b64"`` or ``"bin"`` (the request's own
    encoding, so responses mirror it).
    """
    y = np.ascontiguousarray(y, dtype=np.float64)
    payload = b""
    if encoding == "list":
        msg["y"] = y.tolist()
    elif encoding == "b64":
        msg["y_b64"] = base64.b64encode(y.tobytes()).decode("ascii")
    elif encoding == "bin":
        payload = y.tobytes()
        msg["bin"] = len(payload)
    else:
        raise ProtocolError(f"unknown vector encoding {encoding!r}")
    return encode_frame(msg, payload)


def decode_vector(msg: dict, payload: bytes | None, n: int | None = None):
    """Extract ``(vector, encoding)`` from a decoded message.

    Returns ``(None, "bin")``-style pairs absent a vector field. *n*, when
    given, validates the length (the server knows the matrix dimension).
    """
    x = None
    encoding = "bin"
    if payload:
        if len(payload) % 8:
            raise ProtocolError(f"binary frame of {len(payload)} bytes is not float64")
        x = np.frombuffer(payload, dtype="<f8").astype(np.float64, copy=False)
    elif "x_b64" in msg or "y_b64" in msg:
        raw = base64.b64decode(msg.get("x_b64") or msg.get("y_b64"))
        if len(raw) % 8:
            raise ProtocolError("base64 vector is not a float64 buffer")
        x = np.frombuffer(raw, dtype="<f8").astype(np.float64, copy=False)
        encoding = "b64"
    elif "x" in msg or "y" in msg:
        x = np.asarray(msg.get("x") if "x" in msg else msg["y"], dtype=np.float64)
        if x.ndim != 1:
            raise ProtocolError(f"vector must be 1-D, got shape {x.shape}")
        encoding = "list"
    if x is not None and n is not None and len(x) != n:
        raise ProtocolError(f"vector length {len(x)} != matrix dimension {n}")
    return x, encoding


def encode_message(msg: dict) -> bytes:
    """One integrity-checked JSON line (no binary payload appended)."""
    return encode_frame(msg, b"")


async def read_message(reader) -> tuple[dict, bytes | None] | None:
    """Read one framed message from an asyncio stream reader.

    Returns ``(msg, payload)`` — *payload* is the raw binary frame when
    the line announced one — or ``None`` on clean EOF before any bytes.
    """
    try:
        line = await reader.readline()
    except ValueError as exc:  # line longer than the stream limit
        raise ProtocolError(f"request line exceeds limit: {exc}") from exc
    if not line:
        return None
    try:
        msg = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"bad JSON line: {exc}") from exc
    if not isinstance(msg, dict):
        raise ProtocolError(f"message must be a JSON object, got {type(msg).__name__}")
    payload = None
    nbytes = msg.get("bin", 0)
    if nbytes:
        if not isinstance(nbytes, int) or nbytes < 0 or nbytes > MAX_LINE_BYTES:
            raise ProtocolError(f"bad binary frame size {nbytes!r}")
        payload = await reader.readexactly(nbytes)
    verify_frame(msg, payload)
    return msg, payload


#: Process-wide counter distinguishing client instances, so two clients in
#: one process never mint the same auto-generated request id.
_CLIENT_SEQ = itertools.count()


class ServeClient:
    """Blocking client for tests, the load generator and ``repro loadgen``.

    One client wraps one connection; it is not thread-safe (the load
    generator opens one client per concurrent session, which is also what
    gives the server distinct requests to coalesce).

    Every request without an explicit ``id`` gets a monotonic unique one
    (``c<instance>-<seq>``) — the server rejects duplicate in-flight ids
    on a connection, and unique ids are the foundation the idempotency
    table builds on. *timeout* is the connect/default socket timeout; a
    per-request ``deadline`` can be passed to :meth:`request`, and its
    expiry raises :class:`DeadlineExceeded` (after which the connection
    must be discarded — the stale response may still arrive mid-frame).
    """

    def __init__(self, socket_path: str, timeout: float = 60.0):
        self._timeout = timeout
        self._id_prefix = f"c{next(_CLIENT_SEQ)}"
        self._seq = itertools.count()
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(socket_path)
        self._rfile = self._sock.makefile("rb")

    def next_id(self) -> str:
        """Mint the next monotonic unique request id for this client."""
        return f"{self._id_prefix}-{next(self._seq)}"

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(
        self,
        msg: dict,
        x: np.ndarray | None = None,
        encoding: str = "bin",
        deadline: float | None = None,
    ) -> tuple[dict, np.ndarray | None]:
        """Send one request; block for its response.

        *x*, when given, rides in *encoding* (``bin``/``b64``/``list``).
        *deadline*, when given, bounds this request's wall time (socket
        timeout for the send+receive), raising :class:`DeadlineExceeded`
        on expiry. Returns ``(response, vector)`` with the response's
        vector decoded from whichever encoding the server chose (it
        mirrors ours).
        """
        msg = dict(msg)
        if "id" not in msg:
            msg["id"] = self.next_id()
        payload = b""
        if x is not None:
            x = np.ascontiguousarray(x, dtype=np.float64)
            if encoding == "bin":
                payload = x.tobytes()
                msg["bin"] = len(payload)
            elif encoding == "b64":
                msg["x_b64"] = base64.b64encode(x.tobytes()).decode("ascii")
            elif encoding == "list":
                msg["x"] = x.tolist()
            else:
                raise ProtocolError(f"unknown vector encoding {encoding!r}")
        data = encode_frame(msg, payload)
        if deadline is not None:
            self._sock.settimeout(max(deadline, 1e-3))
        try:
            self._sock.sendall(data)
            return self._read_response()
        except TimeoutError as exc:
            raise DeadlineExceeded(
                f"request {msg['id']!r} exceeded its deadline of {deadline}s"
            ) from exc
        finally:
            if deadline is not None:
                self._sock.settimeout(self._timeout)

    def _read_response(self) -> tuple[dict, np.ndarray | None]:
        line = self._rfile.readline(MAX_LINE_BYTES)
        if not line:
            raise ProtocolError("connection closed mid-request")
        try:
            resp: dict[str, Any] = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            # a corrupted frame can break UTF-8 before it breaks JSON
            raise ProtocolError(f"bad JSON response: {exc}") from exc
        if not isinstance(resp, dict):
            raise ProtocolError("response must be a JSON object")
        payload = None
        nbytes = resp.get("bin", 0)
        if nbytes:
            chunks = []
            remaining = int(nbytes)
            while remaining:
                chunk = self._rfile.read(remaining)
                if not chunk:
                    raise ProtocolError("connection closed mid-payload")
                chunks.append(chunk)
                remaining -= len(chunk)
            payload = b"".join(chunks)
        verify_frame(resp, payload)
        y, _ = decode_vector(resp, payload)
        return resp, y
