"""The asyncio matvec server: residency + batching + resilient cold path.

One event-loop thread owns all mutable state (residency, batchers,
counters); the only things that leave it are blocking builds (matrix
loads, partitioning, engine compiles — pushed to worker threads or the
partition process pool) and the compute of a batch flush (deliberately
inline, see :mod:`~repro.serve.batching`). Request lifecycle:

**warm matvec** (the common case the whole design optimizes)
    decode -> residency hit -> micro-batch -> one ``spmm`` column ->
    respond. Per-request span timings (``queue``/``batch``/``compute``)
    ride back in the response metadata.

**cold matvec / partition**
    The engine key is ``(matrix hash, method, procs, seed)`` — identical
    to the partition-cache key, so a cold engine walks the storage
    tiers in cost order: first the **compiled-engine artifact store**
    (:class:`repro.runtime.store.EngineStore` — a zero-copy mmap load
    that skips partition → maps → plan → compile entirely), then the
    on-disk rpart cache. A true miss of both is sharded to a
    :class:`~repro.parallel.ResilientPool` worker with a per-request
    timeout and bounded retry; concurrent requests for the same key
    coalesce onto one build (single-flight), and the freshly compiled
    engine is persisted back to the store so the *next* process cold
    start is an mmap load. If the pool exhausts its budget the server
    **degrades gracefully**: the partition runs on the reference
    in-process path instead, the request still completes, and the
    response says so. The ``warmup`` op (and ``repro serve warmup``)
    prefetches a matrix list through the same path ahead of traffic.

**worker death**
    A killed partition worker (real death — the injection calls
    ``os._exit`` in the child, only honored when the server was started
    with ``allow_fault_injection``) breaks the pool; the pool rebuilds
    and retries, and the completed request's response carries a recovery
    event priced through :func:`repro.runtime.faults.recovery_stats` —
    the same alpha-beta-gamma accounting the fault-tolerant runtime uses,
    so "what does losing a partition worker cost" is answerable in the
    same unit as every other number in this repo.

**resilience semantics** (what the chaos harness exercises)
    Connections are *pipelined*: each framed request dispatches as its
    own task, so several can be in flight per connection — which is what
    makes duplicate in-flight ids detectable (rejected per connection)
    and lets a retried request overlap its predecessor. Requests carrying
    an ``idem`` key deduplicate through a bounded idempotency table: a
    retry of an in-flight matvec awaits the original's future (never
    double-batched), a retry of a completed one is answered from the
    stored result (never recomputed). Work admission is bounded — per
    engine by the micro-batcher's ``max_queue``, globally by
    ``max_inflight`` — and refusals are explicit load-shedding responses
    (``shed: true`` with a ``retry_after_s`` hint), never silent queueing.
    Shutdown is a *graceful drain*: in-flight requests (including cold
    engine builds) complete, new work is refused with ``draining: true``,
    and the listener stops only once the in-flight count hits zero (or
    the drain grace expires). The health endpoint reports the resulting
    state machine: ``ok`` / ``degraded`` (a recent shed) / ``draining``.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from threading import Event as ThreadEvent
from threading import Thread

import numpy as np

from ..parallel import PoolTaskFailed, ResilientPool
from ..perf import SpanRecorder
from ..runtime import threads as _engine_threads
from .batching import MicroBatcher, QueueFull
from .protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_vector,
    encode_message,
    encode_vector,
    read_message,
)
from .residency import EngineKey, EngineResidency, ResidentEngine

__all__ = ["ServeConfig", "MatvecServer", "ServerHandle", "start_in_thread"]

#: Layout kinds that require a partitioner run (vs. spatial methods).
_PARTITIONED_KINDS = ("gp", "hp", "gp-mc")


def _pool_start_method() -> str:
    """Start method for the partition pool's workers.

    ``fork`` is out: the pool is created from the server's event-loop
    thread, and forking a threaded process can deadlock on locks the
    forked copy will never see released. ``forkserver`` forks workers
    from a clean single-threaded helper; ``spawn`` is the fallback where
    it does not exist. Both re-import the parent's ``__main__`` for
    pickling fidelity, which breaks when the server is embedded in a
    process whose main module is not a real file (``python -c``, stdin,
    a REPL) — for that case, drop the bogus ``__file__`` so the children
    skip the re-import; our task function lives in this importable
    module, and ``sys.path`` still propagates.
    """
    import multiprocessing
    import sys

    main = sys.modules.get("__main__")
    main_file = getattr(main, "__file__", None)
    if (
        main is not None
        and getattr(main, "__spec__", None) is None
        and main_file is not None
        and not os.path.exists(main_file)
    ):
        del main.__file__
    methods = multiprocessing.get_all_start_methods()
    return "forkserver" if "forkserver" in methods else "spawn"


def _partition_task(A, kind, nparts, seed, cache_dir, inject_kill, attempt):
    """Pool-worker unit: one cold partition, written through the cache.

    ``attempt`` is supplied by :meth:`ResilientPool.run`; fault injection
    kills the worker process outright on attempt 0 — a real death, not an
    exception, so the parent sees exactly what an OOM kill looks like.
    """
    if inject_kill and attempt == 0:
        os._exit(3)
    from ..bench.harness import cached_rpart

    return cached_rpart(A, kind, nparts, seed=seed, cache_dir=Path(cache_dir))


@dataclass(frozen=True)
class ServeConfig:
    """Everything a server instance needs to know, in one picklable bag."""

    socket_path: str
    http_port: int | None = None  # None = unix socket only; 0 = ephemeral
    max_batch: int = 16
    batch_deadline_ms: float = 2.0
    max_engines: int = 8
    max_resident_bytes: int | None = None
    default_method: str = "2d-gp"
    default_procs: int = 16
    default_seed: int = 0
    partition_timeout_s: float = 300.0
    partition_retries: int = 2
    pool_workers: int = 1
    cache_dir: str | None = None  # None = $REPRO_CACHE_DIR / default
    #: compiled-engine artifact store directory (None = default, which
    #: honors $REPRO_ENGINE_STORE_DIR and nests under the cache dir)
    engine_store_dir: str | None = None
    #: disable the disk tier entirely (memory LRU -> build, PR 7 behavior)
    use_engine_store: bool = True
    allow_fault_injection: bool = False
    preload: tuple[str, ...] = ()
    #: per-engine pending-request bound before load shedding
    max_queue: int = 128
    #: global in-flight work bound (matvec + partition) before shedding
    max_inflight: int = 512
    #: seconds a graceful drain waits for in-flight work before forcing stop
    drain_grace_s: float = 30.0
    #: completed idempotency-table entries kept for retry dedup (LRU)
    idem_capacity: int = 4096
    #: requests after the last shed during which health reports "degraded"
    degraded_window: int = 100
    #: per-engine apply-thread budget (None = process default, i.e.
    #: $REPRO_THREADS or serial; 0 = all cores). Applied to every
    #: resident engine — built or loaded — so MicroBatcher flushes fan
    #: their fused multiplies across cores, bit-identically to serial.
    engine_threads: int | None = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.batch_deadline_ms < 0:
            raise ValueError("batch_deadline_ms must be >= 0")
        if self.partition_retries < 0:
            raise ValueError("partition_retries must be >= 0")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.drain_grace_s < 0:
            raise ValueError("drain_grace_s must be >= 0")
        if self.idem_capacity < 1:
            raise ValueError(f"idem_capacity must be >= 1, got {self.idem_capacity}")
        if self.engine_threads is not None and self.engine_threads < 0:
            raise ValueError(
                f"engine_threads must be >= 0 or None, got {self.engine_threads}"
            )


@dataclass
class _BuildOutcome:
    """What one engine build wants the admitting request(s) to know."""

    entry: ResidentEngine
    meta: dict = field(default_factory=dict)


@dataclass
class _IdemEntry:
    """One idempotency-table slot: in-flight future or completed answer.

    While the original request computes, ``future`` is pending and every
    retry awaits it (one computation, many answers). Once resolved, the
    answer (``y`` plus the base response fields) is stored and the future
    dropped; later retries are answered from storage, re-encoded in their
    own wire encoding.
    """

    future: asyncio.Future | None = None
    y: np.ndarray | None = None
    base: dict | None = None


class MatvecServer:
    """Long-lived partition-as-a-service daemon (see module docstring)."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.store = self._make_store()
        self.residency = EngineResidency(
            max_engines=config.max_engines,
            max_bytes=config.max_resident_bytes,
            store=self.store,
        )
        self.pool = ResilientPool(
            max_workers=config.pool_workers,
            max_retries=config.partition_retries,
            mp_context=_pool_start_method(),
        )
        self.counters = {
            "requests": 0,
            "matvec": 0,
            "partition": 0,
            "warmup": 0,
            "health": 0,
            "stats": 0,
            "errors": 0,
            "degraded": 0,
            "http_requests": 0,
            "shed": 0,
            "deduped": 0,
            "duplicate_ids": 0,
        }
        self.fault_events: list[dict] = []
        self._matrices: dict[str, tuple[str, object, str]] = {}
        self._building: dict[EngineKey, asyncio.Task] = {}
        self._idem: OrderedDict[str, _IdemEntry] = OrderedDict()
        self._inflight_work = 0
        self._draining = False
        self._last_shed_request: int | None = None
        self._started_at = time.time()
        self._stop: asyncio.Event | None = None
        self._servers: list[asyncio.base_events.Server] = []
        #: actual HTTP port once listening (resolves http_port=0)
        self.http_port: int | None = None

    # -- lifecycle ---------------------------------------------------------

    async def serve(self, on_started=None) -> None:
        """Listen until a graceful drain completes (or :meth:`request_stop`)."""
        self._stop = asyncio.Event()
        sock_path = self.config.socket_path
        Path(sock_path).parent.mkdir(parents=True, exist_ok=True)
        if os.path.exists(sock_path):
            os.unlink(sock_path)
        unix_srv = await asyncio.start_unix_server(
            self._handle_connection, path=sock_path, limit=MAX_LINE_BYTES
        )
        self._servers = [unix_srv]
        if self.config.http_port is not None:
            http_srv = await asyncio.start_server(
                self._handle_http_connection,
                host="127.0.0.1",
                port=self.config.http_port,
                limit=MAX_LINE_BYTES,
            )
            self.http_port = http_srv.sockets[0].getsockname()[1]
            self._servers.append(http_srv)
        try:
            for ref in self.config.preload:
                name, A, mhash = await self._load_matrix(ref)
                await self._ensure_engine(
                    name,
                    A,
                    mhash,
                    self.config.default_method,
                    self.config.default_procs,
                    self.config.default_seed,
                )
            if on_started is not None:
                on_started(self)
            await self._stop.wait()
        finally:
            for entry in self.residency.entries():
                if entry.batcher is not None:
                    entry.batcher.drain()
            for srv in self._servers:
                srv.close()
                await srv.wait_closed()
            if os.path.exists(sock_path):
                os.unlink(sock_path)
            self.pool.shutdown()

    def request_stop(self) -> None:
        """Stop immediately, abandoning in-flight work (loop thread only)."""
        if self._stop is not None:
            self._stop.set()

    def begin_drain(self) -> None:
        """Start a graceful drain (loop thread only; idempotent).

        New matvec/partition work is refused with ``draining: true`` from
        this point on; pending micro-batches flush now; the listener stops
        once the last in-flight request completes (a ``drain_grace_s``
        timer forces the stop if something wedges).
        """
        if self._draining:
            return
        self._draining = True
        for entry in self.residency.entries():
            if entry.batcher is not None:
                entry.batcher.drain()
        if self._stop is not None:
            if self._inflight_work == 0:
                self._stop.set()
            elif self.config.drain_grace_s > 0:
                asyncio.get_running_loop().call_later(
                    self.config.drain_grace_s, self._stop.set
                )
            else:
                self._stop.set()

    @property
    def state(self) -> str:
        """Health state: ``ok``, ``degraded`` (recent shed) or ``draining``."""
        if self._draining:
            return "draining"
        if (
            self._last_shed_request is not None
            and self.counters["requests"] - self._last_shed_request
            <= self.config.degraded_window
        ):
            return "degraded"
        if self._inflight_work >= self.config.max_inflight:
            return "degraded"
        return "ok"

    def _retry_after_s(self) -> float:
        """Backpressure hint for shed/draining responses (seconds)."""
        pending = max(
            (e.batcher.pending for e in self.residency.entries() if e.batcher),
            default=0,
        )
        deadline_s = self.config.batch_deadline_ms / 1e3
        return round(max(deadline_s, 1e-3) * (1 + pending / self.config.max_batch), 6)

    def _work_started(self) -> None:
        self._inflight_work += 1

    def _work_finished(self) -> None:
        self._inflight_work -= 1
        if self._draining and self._inflight_work == 0 and self._stop is not None:
            self._stop.set()

    # -- matrix + engine admission ----------------------------------------

    def _cache_dir(self) -> Path:
        if self.config.cache_dir is not None:
            p = Path(self.config.cache_dir)
            p.mkdir(parents=True, exist_ok=True)
            return p
        from ..bench.harness import default_cache_dir

        return default_cache_dir()

    def _make_store(self):
        """The engine artifact store per config (None = disk tier off)."""
        if not self.config.use_engine_store:
            return None
        from ..runtime.store import EngineStore

        root = self.config.engine_store_dir
        if root is None and self.config.cache_dir is not None and not os.environ.get(
            "REPRO_ENGINE_STORE_DIR"
        ):
            # an explicit cache dir is a hermeticity request (tests,
            # chaos demos): keep the engine store inside it too
            root = Path(self.config.cache_dir) / "engines"
        return EngineStore(root)

    async def _load_matrix(self, ref: str) -> tuple[str, object, str]:
        """Resolve *ref* (corpus name or file path) to ``(name, A, hash)``."""
        cached = self._matrices.get(ref)
        if cached is not None:
            return cached

        def load():
            from ..bench.harness import _matrix_hash
            from ..generators.corpus import CORPUS, load_corpus_matrix
            from ..graphs.csr import as_csr

            if ref in CORPUS:
                A = load_corpus_matrix(ref)
                name = ref
            else:
                path = Path(ref)
                if not path.exists():
                    raise ProtocolError(
                        f"matrix {ref!r} is neither a corpus name nor a file"
                    )
                from ..io import read_matrix_market

                A = read_matrix_market(path)
                name = path.name
            A = as_csr(A)
            if A.shape[0] != A.shape[1]:
                raise ProtocolError(f"square matrices only, got {A.shape}")
            return name, A, _matrix_hash(A)

        out = await asyncio.to_thread(load)
        self._matrices[ref] = out
        return out

    async def _ensure_engine(
        self,
        name: str,
        A,
        mhash: str,
        method: str,
        procs: int,
        seed: int,
        fault_kill: bool = False,
    ) -> _BuildOutcome:
        """Residency hit, or single-flight build of the missing engine."""
        key = EngineKey(mhash, method, procs, seed)
        entry = self.residency.get(key)
        if entry is not None:
            return _BuildOutcome(entry, {"cold": False, "engine_source": "memory"})
        task = self._building.get(key)
        if task is None:
            task = asyncio.ensure_future(
                self._build_engine(key, name, A, method, procs, seed, fault_kill)
            )
            self._building[key] = task
            task.add_done_callback(lambda _t, k=key: self._building.pop(k, None))
        return await task

    def _pool_partition(self, A, kind, procs, seed, fault_kill) -> np.ndarray:
        """Blocking: one cold partition through the resilient pool."""
        return self.pool.run(
            _partition_task,
            A,
            kind,
            procs,
            seed,
            str(self._cache_dir()),
            fault_kill,
            timeout=self.config.partition_timeout_s,
        )

    def _dist_builder(self, A, method: str, procs: int, seed: int):
        """A blocking ``() -> DistSparseMatrix`` for store-loaded entries.

        Disk-loaded engines skip the distribution build entirely; the
        fault-pricing paths that need one (slow-engine injection) call
        this lazily, reusing the cached rpart so the rebuild costs a
        layout + plan build, never a re-partition in the common case.
        """

        def build():
            from ..bench.harness import cached_rpart
            from ..layouts import make_layout
            from ..runtime import CAB, DistSparseMatrix

            kind = method.partition("-")[2]
            rpart = None
            if kind in _PARTITIONED_KINDS:
                rpart = cached_rpart(
                    A, kind, procs, seed=seed, cache_dir=self._cache_dir()
                )
            layout = make_layout(method, A, procs, seed=seed, rpart=rpart)
            return DistSparseMatrix(A, layout, CAB)

        return build

    async def _build_engine(
        self, key: EngineKey, name: str, A, method: str, procs: int, seed: int,
        fault_kill: bool,
    ) -> _BuildOutcome:
        meta: dict = {"cold": True, "degraded": False}
        # tier 2: the compiled-artifact store — a zero-copy mmap load
        # that skips partition -> maps -> plan -> compile entirely
        if self.store is not None:
            t_load = time.perf_counter()
            entry = await asyncio.to_thread(
                self.residency.load_from_store, key, name
            )
            if entry is not None:
                meta["threads"] = entry.engine.set_threads(self.config.engine_threads)
                entry.batcher = MicroBatcher(
                    entry.engine,
                    max_batch=self.config.max_batch,
                    deadline_s=self.config.batch_deadline_ms / 1e3,
                    max_pending=self.config.max_queue,
                )
                entry.dist_builder = self._dist_builder(A, method, procs, seed)
                for evicted in self.residency.admit(entry):
                    if evicted.batcher is not None:
                        evicted.batcher.drain()
                meta["engine_source"] = "disk"
                meta["mmapped"] = entry.meta.get("mmapped", False)
                meta["load_seconds"] = round(time.perf_counter() - t_load, 6)
                return _BuildOutcome(entry, meta)
        kind = method.partition("-")[2]
        rpart = None
        deaths_before = self.pool.deaths
        t0 = time.perf_counter()
        partition_seconds = 0.0
        if kind in _PARTITIONED_KINDS:
            # rpart cache entries are keyed by kind ("gp"), not layout
            # method ("2d-gp"): 1d and 2d layouts share the same partition
            cache_path = (
                self._cache_dir() / f"{key.matrix_hash}_{kind}_k{procs}_s{seed}.npy"
            )
            from ..bench.harness import _load_cached_part, cached_rpart

            if cache_path.exists():
                rpart = await asyncio.to_thread(_load_cached_part, cache_path, A.shape[0])
            if rpart is not None:
                meta["partition_source"] = "cache"
            else:
                try:
                    rpart = await asyncio.to_thread(
                        self._pool_partition, A, kind, procs, seed, fault_kill
                    )
                    meta["partition_source"] = "pool"
                except PoolTaskFailed as exc:
                    # graceful degradation: the reference in-process path
                    # always completes, and the response says what happened
                    meta["degraded"] = True
                    meta["degraded_causes"] = exc.causes
                    self.counters["degraded"] += 1
                    rpart = await asyncio.to_thread(
                        cached_rpart, A, kind, procs, seed=seed,
                        cache_dir=self._cache_dir(),
                    )
                    meta["partition_source"] = "inline-reference"
            partition_seconds = time.perf_counter() - t0

        def build():
            from ..layouts import make_layout
            from ..runtime import CAB, DistSparseMatrix

            layout = make_layout(method, A, procs, seed=seed, rpart=rpart)
            dist = DistSparseMatrix(A, layout, CAB)
            dist.engine  # compile now, off the event loop
            return dist

        t1 = time.perf_counter()
        dist = await asyncio.to_thread(build)
        meta["threads"] = dist.engine.set_threads(self.config.engine_threads)
        entry = ResidentEngine(
            key=key,
            matrix=name,
            dist=dist,
            engine=dist.engine,
            cold_partition_seconds=partition_seconds,
            compile_seconds=time.perf_counter() - t1,
        )
        entry.batcher = MicroBatcher(
            dist.engine,
            max_batch=self.config.max_batch,
            deadline_s=self.config.batch_deadline_ms / 1e3,
            max_pending=self.config.max_queue,
        )
        deaths = self.pool.deaths - deaths_before
        if deaths:
            event = await asyncio.to_thread(
                self._price_worker_death, dist, name, key, deaths
            )
            self.fault_events.append(event)
            meta["worker_deaths"] = deaths
            meta["recovery"] = event["recovery"]
        for evicted in self.residency.admit(entry):
            if evicted.batcher is not None:
                evicted.batcher.drain()
        self.residency.note_built()
        meta["engine_source"] = "built"
        meta["partition_seconds"] = round(partition_seconds, 6)
        meta["compile_seconds"] = round(entry.compile_seconds, 6)
        if self.store is not None:
            # persist for the next process's cold start; best-effort (a
            # failed save must never fail the request that built it)
            try:
                await asyncio.to_thread(
                    self.store.save, key, entry.engine, {"matrix": name}
                )
                meta["stored"] = True
            except Exception as exc:
                meta["store_error"] = f"{type(exc).__name__}: {exc}"
        return _BuildOutcome(entry, meta)

    def _price_worker_death(
        self, dist, name: str, key: EngineKey, deaths: int
    ) -> dict:
        """Price a partition-worker death as a runtime recovery event.

        The modeled analogue of losing a partition worker mid-build is a
        fail-stop of one rank of the distribution the build produced:
        :func:`repro.runtime.faults.recovery_stats` prices restoring that
        rank's blocks and re-syncing its communication peers, which is the
        repo's standard unit for "what did this failure cost".
        """
        from ..runtime.faults import recovery_stats

        rec = recovery_stats(dist, failed_rank=0, strategy="spare")
        return {
            "kind": "worker-death",
            "matrix": name,
            "key": str(key),
            "deaths": deaths,
            "recovery": {
                "strategy": rec.strategy,
                "peers": rec.peers,
                "restore_words": rec.restore_words,
                "resync_words": rec.resync_words,
                "modeled_seconds": rec.modeled_seconds,
            },
        }

    # -- request dispatch --------------------------------------------------

    async def _dispatch(self, msg: dict, payload: bytes | None) -> bytes:
        """Route one decoded request; return the full wire response."""
        self.counters["requests"] += 1
        rid = msg.get("id")
        op = msg.get("op")
        try:
            if op == "health":
                return encode_message(self._health(rid))
            if op == "stats":
                return encode_message(self._stats(rid))
            if op == "shutdown":
                if msg.get("mode") == "now":
                    self.request_stop()
                else:
                    self.begin_drain()
                return encode_message(
                    {"id": rid, "ok": True, "op": "shutdown", "state": self.state}
                )
            if op == "matvec":
                return await self._handle_matvec(rid, msg, payload)
            if op == "partition":
                return await self._handle_partition(rid, msg)
            if op == "warmup":
                return await self._handle_warmup(rid, msg)
            raise ProtocolError(f"unknown op {op!r}")
        except QueueFull as exc:
            return self._shed_response(rid, str(exc))
        except ProtocolError as exc:
            self.counters["errors"] += 1
            return encode_message({"id": rid, "ok": False, "error": str(exc)})
        except Exception as exc:  # keep the server alive on handler bugs
            self.counters["errors"] += 1
            return encode_message(
                {"id": rid, "ok": False, "error": f"{type(exc).__name__}: {exc}"}
            )

    def _shed_response(self, rid, reason: str) -> bytes:
        """Explicit load-shedding refusal with a backpressure hint."""
        self.counters["shed"] += 1
        self._last_shed_request = self.counters["requests"]
        return encode_message({
            "id": rid,
            "ok": False,
            "error": f"overloaded: {reason}",
            "shed": True,
            "retry_after_s": self._retry_after_s(),
        })

    def _draining_response(self, rid) -> bytes:
        """Refusal for new work while a graceful drain is in progress."""
        return encode_message({
            "id": rid,
            "ok": False,
            "error": "server is draining: no new work accepted",
            "draining": True,
            "retry_after_s": self._retry_after_s(),
        })

    def _health(self, rid) -> dict:
        self.counters["health"] += 1
        return {
            "id": rid,
            "ok": True,
            "op": "health",
            "state": self.state,
            "resident": len(self.residency),
            "resident_bytes": self.residency.resident_bytes(),
            "tiers": dict(self.residency.tier_counts),
            "inflight": self._inflight_work,
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "requests": self.counters["requests"],
            "engine_threads": _engine_threads.resolve_threads(
                self.config.engine_threads
            ),
        }

    def _stats(self, rid) -> dict:
        self.counters["stats"] += 1
        entries = []
        for e in self.residency.entries():
            d = e.as_dict()
            d["threads"] = e.engine.threads
            d["plan"] = e.engine.plan_stats()
            if e.batcher is not None:
                d["batch"] = {
                    "matvecs": e.batcher.matvecs,
                    "flushes": dict(e.batcher.flushes),
                    "batch_sizes": {str(k): v for k, v in e.batcher.batch_sizes.items()},
                }
            entries.append(d)
        return {
            "id": rid,
            "ok": True,
            "op": "stats",
            "state": self.state,
            "counters": dict(self.counters),
            "resident": entries,
            "evictions": self.residency.evictions,
            "residency": self.residency.stats(),
            "inflight": self._inflight_work,
            "idem_entries": len(self._idem),
            "pool": {"deaths": self.pool.deaths, "retries": self.pool.retries},
            "threads": {
                "engine_threads": _engine_threads.resolve_threads(
                    self.config.engine_threads
                ),
                "pool": _engine_threads.pool_stats(),
            },
            "fault_events": list(self.fault_events),
        }

    def _request_target(self, msg: dict) -> tuple[str, str, int, int]:
        matrix = msg.get("matrix")
        if not isinstance(matrix, str) or not matrix:
            raise ProtocolError("request needs a 'matrix' (corpus name or path)")
        method = msg.get("method", self.config.default_method)
        procs = msg.get("procs", self.config.default_procs)
        seed = msg.get("seed", self.config.default_seed)
        if not isinstance(procs, int) or procs < 1:
            raise ProtocolError(f"procs must be a positive int, got {procs!r}")
        if not isinstance(seed, int):
            raise ProtocolError(f"seed must be an int, got {seed!r}")
        return matrix, str(method).lower(), procs, seed

    def _fault_spec(self, msg: dict) -> dict:
        """Validate and normalize a request's ``fault`` injection field."""
        fault = msg.get("fault")
        if not fault:
            return {"kill_worker": False, "slow_ms": 0.0, "straggler_factor": 1.0}
        if not self.config.allow_fault_injection:
            raise ProtocolError(
                "fault injection not enabled (start the server with "
                "allow_fault_injection)"
            )
        if not isinstance(fault, dict):
            raise ProtocolError(f"fault must be an object, got {type(fault).__name__}")
        slow_ms = float(fault.get("slow_ms") or 0.0)
        factor = float(fault.get("straggler_factor") or 1.0)
        if slow_ms < 0:
            raise ProtocolError(f"fault.slow_ms must be >= 0, got {slow_ms}")
        if factor < 1.0:
            raise ProtocolError(f"fault.straggler_factor must be >= 1, got {factor}")
        return {
            "kill_worker": bool(fault.get("kill_worker")),
            "slow_ms": slow_ms,
            "straggler_factor": factor,
        }

    async def _inject_slow_engine(self, entry: ResidentEngine, fault: dict) -> dict:
        """Stall one request like a straggling engine; price the overhead.

        The real injected stall is ``slow_ms`` of event-loop sleep before
        the request joins its micro-batch; the *modeled* price is what a
        ``straggler_factor`` slowdown of one rank costs a distributed
        SpMV under the machine model — the same unit PR 3's straggler
        injections are priced in.
        """
        from ..runtime.faults import straggler_overhead_seconds

        await asyncio.sleep(fault["slow_ms"] / 1e3)
        # store-loaded entries have no DistSparseMatrix; pricing needs
        # one, so rebuild it lazily off the loop (cached rpart, no
        # re-partition) — the injection path only, never the hot path
        dist = entry.dist
        if dist is None:
            dist = await asyncio.to_thread(entry.ensure_dist)
        modeled = straggler_overhead_seconds(
            dist, rank=0, factor=fault["straggler_factor"]
        )
        event = {
            "kind": "slow-engine",
            "matrix": entry.matrix,
            "key": str(entry.key),
            "slow_ms": fault["slow_ms"],
            "straggler_factor": fault["straggler_factor"],
            "modeled_overhead_seconds": modeled,
        }
        self.fault_events.append(event)
        return {
            "slow_ms": fault["slow_ms"],
            "modeled_overhead_seconds": modeled,
        }

    async def _answer_from_idem(
        self, rid, msg: dict, payload: bytes | None, idem: str, hit: _IdemEntry
    ) -> bytes:
        """Answer a retried matvec from the idempotency table.

        In-flight original: await its future (one computation, N answers).
        Completed original: re-encode the stored answer in *this* retry's
        wire encoding. Either way the engine never sees the retry.
        """
        self.counters["deduped"] += 1
        _, encoding = decode_vector(msg, payload)
        if hit.y is None and hit.future is not None:
            hit = await hit.future  # resolves to the completed entry
        if idem in self._idem:
            self._idem.move_to_end(idem)
        resp = dict(hit.base or {})
        resp["id"] = rid
        resp["deduped"] = True
        return encode_vector(resp, hit.y, encoding)

    def _trim_idem(self) -> None:
        """Evict oldest *completed* idempotency entries beyond capacity."""
        while len(self._idem) > self.config.idem_capacity:
            stale = next(
                (k for k, e in self._idem.items() if e.y is not None), None
            )
            if stale is None:  # everything pending; bounded by max_inflight
                break
            del self._idem[stale]

    async def _handle_matvec(self, rid, msg: dict, payload: bytes | None) -> bytes:
        t_arrival = time.perf_counter()
        self.counters["matvec"] += 1
        idem = msg.get("idem")
        if idem is not None:
            if not isinstance(idem, str) or not idem:
                raise ProtocolError("idem key must be a non-empty string")
            hit = self._idem.get(idem)
            if hit is not None:
                # dedup outranks drain/shed: a retry of accepted work must
                # still be answerable, or acked work could be lost
                return await self._answer_from_idem(rid, msg, payload, idem, hit)
        if self._draining:
            return self._draining_response(rid)
        if self._inflight_work >= self.config.max_inflight:
            return self._shed_response(
                rid,
                f"{self._inflight_work} request(s) in flight "
                f"(bound {self.config.max_inflight})",
            )
        fut: asyncio.Future | None = None
        if idem is not None:
            fut = asyncio.get_running_loop().create_future()
            self._idem[idem] = _IdemEntry(future=fut)
        self._work_started()
        try:
            matrix, method, procs, seed = self._request_target(msg)
            fault = self._fault_spec(msg)
            name, A, mhash = await self._load_matrix(matrix)
            x, encoding = decode_vector(msg, payload, n=A.shape[0])
            if x is None:
                raise ProtocolError("matvec needs a vector (bin frame, x_b64 or x)")
            outcome = await self._ensure_engine(
                name, A, mhash, method, procs, seed, fault["kill_worker"]
            )
            entry = outcome.entry
            slow_meta = None
            if fault["slow_ms"]:
                slow_meta = await self._inject_slow_engine(entry, fault)
            recorder = SpanRecorder()
            recorder.mark_since("queue", t_arrival)
            y, batch_size = await entry.batcher.submit(x, recorder)
        except BaseException as exc:
            if idem is not None:
                self._idem.pop(idem, None)
                if fut is not None and not fut.done():
                    fut.set_exception(
                        exc if isinstance(exc, Exception) else RuntimeError(repr(exc))
                    )
                    fut.exception()  # no retry may be waiting; mark retrieved
            raise
        finally:
            self._work_finished()
        base = {
            "ok": True,
            "op": "matvec",
            "n": entry.n,
            "engine_key": str(entry.key),
            "batch_size": batch_size,
        }
        base.update({k: v for k, v in outcome.meta.items() if k != "cold"})
        base["cold"] = outcome.meta.get("cold", False)
        if slow_meta is not None:
            base["slow_engine"] = slow_meta
        if idem is not None:
            done = _IdemEntry(y=y, base=dict(base))
            self._idem[idem] = done
            self._idem.move_to_end(idem)
            self._trim_idem()
            if fut is not None and not fut.done():
                fut.set_result(done)
        resp = dict(base)
        resp["id"] = rid
        resp["spans_ms"] = recorder.as_millis()
        return encode_vector(resp, y, encoding)

    async def _handle_warmup(self, rid, msg: dict) -> bytes:
        """Prefetch a matrix list into residency ahead of traffic.

        Each entry walks the same tiers a cold matvec would (memory →
        artifact store → build-and-persist); the response reports the
        tier each engine came from, so a deploy script can verify its
        warmed fleet will serve first requests from mmap loads.
        """
        self.counters["warmup"] += 1
        if self._draining:
            return self._draining_response(rid)
        if self._inflight_work >= self.config.max_inflight:
            return self._shed_response(
                rid,
                f"{self._inflight_work} request(s) in flight "
                f"(bound {self.config.max_inflight})",
            )
        matrices = msg.get("matrices")
        if not isinstance(matrices, list) or not matrices or not all(
            isinstance(m, str) and m for m in matrices
        ):
            raise ProtocolError("warmup needs 'matrices': a non-empty list of names")
        method = str(msg.get("method", self.config.default_method)).lower()
        procs = msg.get("procs", self.config.default_procs)
        seed = msg.get("seed", self.config.default_seed)
        if not isinstance(procs, int) or procs < 1:
            raise ProtocolError(f"procs must be a positive int, got {procs!r}")
        if not isinstance(seed, int):
            raise ProtocolError(f"seed must be an int, got {seed!r}")
        self._work_started()
        warmed = []
        try:
            for ref in matrices:
                t0 = time.perf_counter()
                name, A, mhash = await self._load_matrix(ref)
                outcome = await self._ensure_engine(
                    name, A, mhash, method, procs, seed
                )
                warmed.append({
                    "matrix": name,
                    "engine_key": str(outcome.entry.key),
                    "engine_source": outcome.meta.get("engine_source", "built"),
                    "seconds": round(time.perf_counter() - t0, 6),
                })
        finally:
            self._work_finished()
        return encode_message({
            "id": rid,
            "ok": True,
            "op": "warmup",
            "warmed": warmed,
            "tiers": dict(self.residency.tier_counts),
        })

    async def _handle_partition(self, rid, msg: dict) -> bytes:
        self.counters["partition"] += 1
        if self._draining:
            return self._draining_response(rid)
        if self._inflight_work >= self.config.max_inflight:
            return self._shed_response(
                rid,
                f"{self._inflight_work} request(s) in flight "
                f"(bound {self.config.max_inflight})",
            )
        self._work_started()
        try:
            matrix, method, procs, seed = self._request_target(msg)
            fault = self._fault_spec(msg)
            name, A, mhash = await self._load_matrix(matrix)
            outcome = await self._ensure_engine(
                name, A, mhash, method, procs, seed, fault["kill_worker"]
            )
        finally:
            self._work_finished()
        resp = {
            "id": rid,
            "ok": True,
            "op": "partition",
            "matrix": name,
            "engine_key": str(outcome.entry.key),
            "n": outcome.entry.n,
            "resident": True,
        }
        resp.update(outcome.meta)
        return encode_message(resp)

    # -- transports --------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        """One unix-socket connection: framed JSON lines until EOF.

        The connection is *pipelined*: each framed request dispatches as
        its own task, so a client may have several requests in flight on
        one socket (responses carry the request's ``id``; arrival order is
        not guaranteed under pipelining). Duplicate in-flight ids on the
        same connection are rejected immediately — an ambiguous response
        stream is worse than a refused request. Each response is a single
        ``write`` behind a lock, so frames never interleave.
        """
        inflight_ids: set = set()
        tasks: set[asyncio.Task] = set()
        write_lock = asyncio.Lock()

        async def send(data: bytes) -> None:
            async with write_lock:
                if writer.transport.is_closing():
                    return
                writer.write(data)
                try:
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    pass  # client went away; nothing to answer

        async def respond(msg: dict, payload: bytes | None, rid) -> None:
            try:
                await send(await self._dispatch(msg, payload))
            finally:
                if rid is not None:
                    inflight_ids.discard(rid)

        try:
            while True:
                try:
                    framed = await read_message(reader)
                except (ProtocolError, asyncio.IncompleteReadError) as exc:
                    self.counters["errors"] += 1
                    await send(encode_message({"ok": False, "error": str(exc)}))
                    break
                if framed is None:
                    break
                msg, payload = framed
                rid = msg.get("id")
                if rid is not None:
                    if rid in inflight_ids:
                        self.counters["duplicate_ids"] += 1
                        await send(encode_message({
                            "id": rid,
                            "ok": False,
                            "error": (
                                f"duplicate in-flight id {rid!r} on this "
                                "connection (use unique ids; retries should "
                                "carry an 'idem' key, not reuse a live id)"
                            ),
                        }))
                        continue
                    inflight_ids.add(rid)
                task = asyncio.ensure_future(respond(msg, payload, rid))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            pass  # loop shutdown cancels in-flight readers; close quietly
        finally:
            try:
                if tasks:
                    await asyncio.gather(*tasks, return_exceptions=True)
            except asyncio.CancelledError:
                pass
            writer.close()

    async def _handle_http_connection(self, reader, writer) -> None:
        """Minimal HTTP/1.1: ``POST /rpc`` with a JSON body, one per conn.

        ``GET`` anything returns health. Binary frames are a stream-socket
        feature; HTTP bodies must use ``x_b64`` or ``x``.
        """
        self.counters["http_requests"] += 1
        status, body = "200 OK", b"{}"
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                raise ProtocolError("malformed HTTP request line")
            http_method = parts[0].upper()
            length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                k, _, v = line.decode("latin-1").partition(":")
                if k.strip().lower() == "content-length":
                    length = int(v.strip())
            if http_method == "GET":
                msg: dict = {"op": "health"}
            else:
                try:
                    msg = json.loads(await reader.readexactly(length))
                except (json.JSONDecodeError, asyncio.IncompleteReadError) as exc:
                    raise ProtocolError(f"bad HTTP body: {exc}") from exc
                if not isinstance(msg, dict):
                    raise ProtocolError("HTTP body must be a JSON object")
                if msg.get("bin"):
                    raise ProtocolError("binary frames are not supported over HTTP")
            wire = await self._dispatch(msg, None)
            # responses to HTTP must be self-contained JSON: the dispatch
            # path never emits a binary frame unless the request did
            body = wire.rstrip(b"\n")
        except ProtocolError as exc:
            self.counters["errors"] += 1
            status = "400 Bad Request"
            body = json.dumps({"ok": False, "error": str(exc)}).encode()
        except (ConnectionResetError, BrokenPipeError):
            writer.close()
            return
        try:
            writer.write(
                b"HTTP/1.1 " + status.encode() + b"\r\n"
                b"content-type: application/json\r\n"
                b"content-length: " + str(len(body)).encode() + b"\r\n"
                b"connection: close\r\n\r\n" + body
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()


# ---------------------------------------------------------------------------
# embedding helpers: run the server from a plain (sync) caller
# ---------------------------------------------------------------------------


class ServerHandle:
    """A server running on its own event-loop thread (tests, bench, CLI).

    Exposes the bound addresses and a thread-safe :meth:`stop`. The
    server object itself must only be touched from its loop thread;
    callers talk to it over the socket like any other client.
    """

    def __init__(self, server: MatvecServer, thread: Thread, loop):
        self.server = server
        self._thread = thread
        self._loop = loop

    @property
    def socket_path(self) -> str:
        return self.server.config.socket_path

    @property
    def http_port(self) -> int | None:
        return self.server.http_port

    def stop(self, timeout: float = 30.0, *, drain: bool = True) -> None:
        """Shut down and join the loop thread (idempotent).

        With ``drain`` (the default) this asks for a graceful drain —
        in-flight work completes, new work is refused — and escalates to
        an immediate stop if the drain has not finished within *timeout*.
        A thread still alive after both attempts is a hung shutdown and
        **raises** with a diagnostic (it must never pass as a clean exit).
        """
        if self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(
                    self.server.begin_drain if drain else self.server.request_stop
                )
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout)
        if self._thread.is_alive() and drain:
            # graceful drain wedged; escalate to an immediate stop
            try:
                self._loop.call_soon_threadsafe(self.server.request_stop)
            except RuntimeError:
                pass
            self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError(
                f"server thread {self._thread.name!r} did not stop within "
                f"{timeout}s (state={self.server.state}, "
                f"inflight={self.server._inflight_work}) — hung shutdown"
            )


def start_in_thread(
    config: ServeConfig, timeout: float = 60.0, server: MatvecServer | None = None
) -> ServerHandle:
    """Boot a :class:`MatvecServer` on a daemon thread; wait until it listens.

    Raises if the server fails to come up (the thread's exception is
    re-raised in the caller) — a bench or test never hangs on a server
    that died during startup. A prebuilt *server* instance (e.g. a test
    subclass) may be supplied; *config* is ignored in that case.
    """
    if server is None:
        server = MatvecServer(config)
    ready = ThreadEvent()
    box: dict = {}

    def on_started(srv: MatvecServer) -> None:
        box["loop"] = asyncio.get_running_loop()
        ready.set()

    def run() -> None:
        try:
            asyncio.run(server.serve(on_started=on_started))
        except BaseException as exc:  # surface startup failures to the caller
            box["error"] = exc
        finally:
            ready.set()

    thread = Thread(target=run, name="repro-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout):
        raise RuntimeError("server did not start listening in time")
    if "error" in box:
        raise RuntimeError(f"server failed to start: {box['error']}")
    return ServerHandle(server, thread, box["loop"])
