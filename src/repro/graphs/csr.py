"""CSR construction and structural helpers.

All public functions accept anything ``scipy.sparse`` can coerce and return
canonical CSR: sorted indices, no duplicate entries, no explicit zeros,
float64 data. Keeping a single canonical form lets every layer above
(partitioners, layouts, runtime) index the structure without re-checking.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = [
    "as_csr",
    "from_edges",
    "empty_csr",
    "pattern_equal",
    "is_structurally_symmetric",
    "drop_diagonal",
    "nonzeros_per_row",
    "nonzeros_per_col",
]


def as_csr(A) -> sp.csr_matrix:
    """Coerce *A* to canonical CSR (sorted, deduplicated, float64).

    Idempotent: a matrix that is already canonical is passed through with at
    most a dtype view change, so calling it defensively at API boundaries is
    cheap.
    """
    M = sp.csr_matrix(A)
    if M.dtype != np.float64:
        M = M.astype(np.float64)
    M.sum_duplicates()
    M.eliminate_zeros()
    if not M.has_sorted_indices:
        M.sort_indices()
    return M


def from_edges(
    rows: np.ndarray,
    cols: np.ndarray,
    shape: tuple[int, int],
    values: np.ndarray | None = None,
    symmetrize: bool = False,
) -> sp.csr_matrix:
    """Build a CSR matrix from an edge list (COO triplets).

    Duplicate edges are merged by *binary* OR on the pattern — the value of a
    merged entry is 1.0, not the multiplicity — because the paper's matrices
    are unweighted adjacency structures. Pass explicit ``values`` to keep a
    weighted accumulation instead.

    Parameters
    ----------
    rows, cols:
        Edge endpoints, any integer dtype.
    shape:
        Matrix dimensions ``(m, n)``.
    values:
        Optional explicit values; duplicates are summed when given.
    symmetrize:
        If True, also insert the transposed edges (undirected graph stored
        twice, as the paper stores it).
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if rows.shape != cols.shape:
        raise ValueError(f"rows and cols length mismatch: {rows.shape} vs {cols.shape}")
    if symmetrize:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
        if values is not None:
            values = np.concatenate([values, values])
    if values is None:
        M = sp.coo_matrix((np.ones(len(rows)), (rows, cols)), shape=shape).tocsr()
        M.sum_duplicates()
        M.data[:] = 1.0  # pattern semantics: duplicates collapse to 1
    else:
        vals = np.asarray(values, dtype=np.float64)
        M = sp.coo_matrix((vals, (rows, cols)), shape=shape).tocsr()
        M.sum_duplicates()
    return as_csr(M)


def empty_csr(m: int, n: int) -> sp.csr_matrix:
    """An all-zero ``m x n`` CSR matrix."""
    return sp.csr_matrix((m, n), dtype=np.float64)


def pattern_equal(A, B) -> bool:
    """True when *A* and *B* have identical sparsity patterns."""
    A, B = as_csr(A), as_csr(B)
    return (
        A.shape == B.shape
        and np.array_equal(A.indptr, B.indptr)
        and np.array_equal(A.indices, B.indices)
    )


def is_structurally_symmetric(A) -> bool:
    """True when the sparsity pattern of *A* equals that of its transpose."""
    A = as_csr(A)
    if A.shape[0] != A.shape[1]:
        return False
    return pattern_equal(A, A.T)


def drop_diagonal(A) -> sp.csr_matrix:
    """Return *A* with all diagonal entries removed (graphs have no loops)."""
    A = as_csr(A).tocoo()
    keep = A.row != A.col
    return from_edges(A.row[keep], A.col[keep], A.shape, values=A.data[keep])


def nonzeros_per_row(A) -> np.ndarray:
    """Number of stored entries in each row (== out-degree for adjacency)."""
    A = as_csr(A)
    return np.diff(A.indptr).astype(np.int64)


def nonzeros_per_col(A) -> np.ndarray:
    """Number of stored entries in each column (== in-degree)."""
    A = as_csr(A)
    counts = np.bincount(A.indices, minlength=A.shape[1])
    return counts.astype(np.int64)
