"""Graph-matrix operators used by the paper's experiments.

The eigensolver experiments (paper section 5.3) operate on the normalized
Laplacian  ``L_hat = I - D^{-1/2} A D^{-1/2}``  of the symmetrized adjacency
matrix ``A + A^T``. These constructions live here.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .csr import as_csr, nonzeros_per_row

__all__ = [
    "symmetrize",
    "degrees",
    "degree_matrix",
    "laplacian",
    "normalized_laplacian",
    "adjacency_scaled",
    "largest_connected_component",
]


def symmetrize(A) -> sp.csr_matrix:
    """Return the symmetric pattern ``A + A^T`` with unit values.

    The paper: "for unsymmetric matrices A, we constructed the symmetric
    matrix as A + A^T". We keep the *pattern* union with value 1.0 on every
    stored entry, matching the unweighted-graph semantics used throughout.
    """
    A = as_csr(A)
    if A.shape[0] != A.shape[1]:
        raise ValueError(f"symmetrize needs a square matrix, got {A.shape}")
    S = as_csr(A + A.T)
    S.data[:] = 1.0
    return S


def degrees(A) -> np.ndarray:
    """Vertex degrees of the graph of *A* (row counts of the symmetric pattern)."""
    return nonzeros_per_row(A).astype(np.float64)


def degree_matrix(A) -> sp.csr_matrix:
    """Diagonal degree matrix D with ``d_ii = degree(i)``."""
    return sp.diags(degrees(A), format="csr")


def laplacian(A) -> sp.csr_matrix:
    """Combinatorial Laplacian ``L = D - A`` of a symmetric adjacency matrix."""
    A = as_csr(A)
    return as_csr(degree_matrix(A) - A)


def adjacency_scaled(A) -> sp.csr_matrix:
    """The symmetric normalization ``D^{-1/2} A D^{-1/2}``.

    Isolated vertices (degree 0) contribute zero rows/columns; their scale
    factor is defined as 0 so no NaN/Inf values appear in the result.
    """
    A = as_csr(A)
    d = degrees(A)
    with np.errstate(divide="ignore"):
        dinv_sqrt = np.where(d > 0, 1.0 / np.sqrt(np.maximum(d, 1e-300)), 0.0)
    Dinv = sp.diags(dinv_sqrt, format="csr")
    return as_csr(Dinv @ A @ Dinv)


def normalized_laplacian(A) -> sp.csr_matrix:
    """Normalized Laplacian ``L_hat = I - D^{-1/2} A D^{-1/2}``.

    This is the operator whose ten largest eigenpairs the paper computes
    with Block Krylov-Schur (motivated by bipartite-subgraph detection,
    reference [23] in the paper).
    """
    A = as_csr(A)
    n = A.shape[0]
    return as_csr(sp.identity(n, format="csr") - adjacency_scaled(A))


def largest_connected_component(A) -> tuple[sp.csr_matrix, np.ndarray]:
    """Restrict *A* to its largest connected component.

    Returns the induced submatrix and the array of original vertex ids kept.
    Useful for spectral experiments where disconnected fragments pollute the
    spectrum.
    """
    A = as_csr(A)
    ncomp, labels = sp.csgraph.connected_components(A, directed=False)
    if ncomp <= 1:
        return A, np.arange(A.shape[0], dtype=np.int64)
    sizes = np.bincount(labels, minlength=ncomp)
    keep = np.flatnonzero(labels == np.argmax(sizes)).astype(np.int64)
    return as_csr(A[np.ix_(keep, keep)]), keep
