"""Sparse graph/matrix substrate.

Matrices throughout the library are ``scipy.sparse`` CSR matrices with
float64 values; a graph is represented by its (symmetric) adjacency
matrix, exactly as in the paper ("an undirected graph corresponds to a
symmetric sparse matrix").
"""

from .csr import (
    as_csr,
    from_edges,
    empty_csr,
    pattern_equal,
    is_structurally_symmetric,
    drop_diagonal,
    nonzeros_per_row,
    nonzeros_per_col,
)
from .ops import (
    symmetrize,
    degrees,
    degree_matrix,
    laplacian,
    normalized_laplacian,
    adjacency_scaled,
    largest_connected_component,
)
from .analysis import GraphStats, graph_stats, powerlaw_exponent_mle, degree_histogram

__all__ = [
    "as_csr",
    "from_edges",
    "empty_csr",
    "pattern_equal",
    "is_structurally_symmetric",
    "drop_diagonal",
    "nonzeros_per_row",
    "nonzeros_per_col",
    "symmetrize",
    "degrees",
    "degree_matrix",
    "laplacian",
    "normalized_laplacian",
    "adjacency_scaled",
    "largest_connected_component",
    "GraphStats",
    "graph_stats",
    "powerlaw_exponent_mle",
    "degree_histogram",
]
