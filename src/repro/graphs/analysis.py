"""Structural analysis of scale-free graphs.

Provides the statistics of the paper's Table 1 (rows, nonzeros, max
nonzeros/row) plus the power-law diagnostics used to verify that our
synthetic proxy corpus actually *is* scale-free (heavy-tailed degree
distribution), which is the property all the paper's conclusions rest on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import as_csr, nonzeros_per_row

__all__ = ["GraphStats", "graph_stats", "powerlaw_exponent_mle", "degree_histogram"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics in the shape of the paper's Table 1."""

    name: str
    n_rows: int
    n_nonzeros: int
    max_nnz_per_row: int
    mean_nnz_per_row: float
    powerlaw_gamma: float
    #: ratio max-degree / mean-degree: >> 1 signals a heavy tail. Mesh
    #: graphs sit near 1; the paper's matrices sit in the 10^2..10^5 range.
    skew: float

    def row(self) -> tuple:
        """Tuple in Table-1 column order (name, #rows, #nonzeros, max nnz/row)."""
        return (self.name, self.n_rows, self.n_nonzeros, self.max_nnz_per_row)


def graph_stats(A, name: str = "") -> GraphStats:
    """Compute :class:`GraphStats` for matrix *A*."""
    A = as_csr(A)
    nnz_row = nonzeros_per_row(A)
    mean = float(nnz_row.mean()) if A.shape[0] else 0.0
    mx = int(nnz_row.max()) if A.shape[0] else 0
    gamma = powerlaw_exponent_mle(nnz_row)
    return GraphStats(
        name=name,
        n_rows=A.shape[0],
        n_nonzeros=A.nnz,
        max_nnz_per_row=mx,
        mean_nnz_per_row=mean,
        powerlaw_gamma=gamma,
        skew=mx / mean if mean > 0 else 0.0,
    )


def powerlaw_exponent_mle(degrees: np.ndarray, dmin: int = 2) -> float:
    """Continuous MLE estimate of the power-law exponent gamma.

    Uses the standard Clauset-Shalizi-Newman estimator
    ``gamma = 1 + n / sum(ln(d_i / (dmin - 1/2)))`` over degrees >= dmin.
    Returns ``nan`` when fewer than 10 degrees qualify (too little tail to
    fit). This is a diagnostic, not a rigorous fit — good enough to check a
    generator produced a heavy tail of roughly the intended exponent.
    """
    d = np.asarray(degrees, dtype=np.float64)
    d = d[d >= dmin]
    if d.size < 10:
        return float("nan")
    return float(1.0 + d.size / np.sum(np.log(d / (dmin - 0.5))))


def degree_histogram(A) -> tuple[np.ndarray, np.ndarray]:
    """Degree histogram ``(degrees, counts)`` with zero-count bins removed.

    Plot on log-log axes: scale-free graphs show a straight-line tail.
    """
    nnz_row = nonzeros_per_row(as_csr(A))
    counts = np.bincount(nnz_row)
    degs = np.flatnonzero(counts)
    return degs.astype(np.int64), counts[degs].astype(np.int64)
