"""Process-pool execution layer: parallel RB, sweep fan-out, makespan replay.

The paper treats partitioning as a reusable pre-processing step; PR 1
made the modeled machine fast, which left host wall-clock dominated by
the *partitioner* and by cell sweeps that run strictly serially. This
module parallelises both without changing a single output bit:

parallel recursive bisection
    After a bisection, the two induced subgraphs are independent — the
    classic parallel-RB observation of multilevel partitioners (METIS,
    Zoltan PHG). :func:`parallel_recursive_bisection` expands the RB tree
    event-driven over a ``ProcessPoolExecutor``: every tree node is one
    picklable task (:func:`repro.partitioning.kway._split` /
    ``hkway._split``), children are submitted as soon as their parent
    completes, and per-subtree seeds derive from the same pure function
    of tree position the serial recursion uses
    (:func:`repro.partitioning._util.child_seeds`, which also offers a
    collision-free ``SeedSequence.spawn`` scheme). Completion order
    therefore cannot influence the result: parallel part vectors are
    **bit-identical** to serial ones, and the serial path remains the
    default and the reference.

sweep fan-out
    :func:`parallel_map` fans independent cells (one corpus matrix's
    grid column, one campaign layout, one regression golden) across
    workers; :func:`parallel_partition_sweep` multiplexes the RB trees
    of *many* matrices over one shared pool, which matters because the
    corpus is dominated by a single matrix (rmat_26 is ~2/3 of the
    serial sweep — matrix-level fan-out alone caps below 2x).

schedule accounting
    Workers report per-task CPU seconds (``time.process_time``, immune
    to host time-slicing) and the drivers record the task DAG. A run
    can therefore be replayed onto k virtual workers with
    :func:`schedule_makespan` — the same greedy list scheduling the
    executor performs — giving a host-independent account of what the
    schedule achieves. On a host with >= jobs idle cores the replayed
    makespan and measured wall-clock agree; on a starved host (CI
    containers pinned to one core) the makespan is the meaningful
    number and the bench labels it as such.
"""

from __future__ import annotations

import heapq
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    TimeoutError as FutureTimeoutError,
    wait,
)
from threading import Lock, Thread

import numpy as np

from .partitioning import hkway, kway
from .partitioning._util import check_part_vector, child_seeds
from .partitioning.hypergraph import Hypergraph
from .partitioning.kway import kway_balance_refine
from .partitioning.partgraph import PartGraph

__all__ = [
    "resolve_jobs",
    "parallel_map",
    "parallel_recursive_bisection",
    "parallel_hypergraph_recursive_bisection",
    "parallel_partition_sweep",
    "schedule_makespan",
    "ResilientPool",
    "PoolTaskFailed",
]


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: None/1 -> serial, 0 or negative -> all cores."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs <= 0:
        return max(os.cpu_count() or 1, 1)
    return jobs


#: BLAS/OpenMP thread-count knobs a worker process must pin to 1.
_THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


def _pin_worker_threads() -> None:
    """Process-pool worker initializer: one thread per worker, period.

    Process- and thread-parallelism must never nest — J workers each
    spinning T apply threads oversubscribes the machine J*T-fold and
    makes every latency measurement a lie. Every pool this module (and
    :class:`ResilientPool`) creates runs this in each worker: BLAS/OpenMP
    pools and the engine's apply budget (``REPRO_THREADS`` plus the
    process-global override) are all pinned to 1. Results are unaffected
    — the threaded apply kernel is bit-identical to serial — so this is
    purely a scheduling guard. (For fork-started workers an already
    initialized BLAS may ignore the env pins; the engine budget pin is
    what matters, and it always takes effect.)
    """
    for var in _THREAD_ENV_VARS:
        os.environ[var] = "1"
    os.environ["REPRO_THREADS"] = "1"
    from .runtime.threads import set_default_threads

    set_default_threads(1)


def parallel_map(fn, items, jobs: int | None = None, executor: Executor | None = None):
    """Order-preserving map over a process pool.

    Falls back to a plain serial loop when the pool would not help
    (fewer than two items or jobs), so callers can pass ``--jobs``
    straight through. *fn* and every item must be picklable.
    """
    items = list(items)
    if executor is not None:
        return list(executor.map(fn, items))
    njobs = resolve_jobs(jobs)
    if njobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(
        max_workers=min(njobs, len(items)), initializer=_pin_worker_threads
    ) as pool:
        return list(pool.map(fn, items))


# ---------------------------------------------------------------------------
# resilient one-shot pool (serve cold path)
# ---------------------------------------------------------------------------


class PoolTaskFailed(RuntimeError):
    """A :meth:`ResilientPool.run` task exhausted its retry budget.

    ``attempts`` is the number of attempts made; ``causes`` the short
    description of each attempt's failure, in order — so a server can put
    an honest story in its degraded-path response.
    """

    def __init__(self, message: str, attempts: int, causes: list[str]):
        super().__init__(message)
        self.attempts = attempts
        self.causes = causes


class ResilientPool:
    """Process pool for one-shot tasks that survives worker death.

    ``ProcessPoolExecutor`` has all-or-nothing failure semantics: one
    worker dying (OOM kill, segfault, fault injection) breaks the whole
    executor and every pending future. A long-lived server cannot accept
    that, so this wrapper rebuilds the pool and retries the task, a
    bounded number of times, and enforces a per-task timeout by the only
    means an abandoned process task allows — discarding the pool. Each
    broken-pool incident is counted in :attr:`deaths` so callers can
    price the recovery (:func:`repro.runtime.faults.recovery_stats`).

    The task callable receives the attempt index as its final positional
    argument; deterministic tasks ignore it, fault-injection tasks use it
    to die only on attempt 0 (which is what makes "a killed worker is
    retried and completes" testable).
    """

    def __init__(
        self,
        max_workers: int = 1,
        max_retries: int = 2,
        mp_context: str | None = None,
    ):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self._max_workers = max_workers
        self._max_retries = max_retries
        #: multiprocessing start method ("spawn" for pools created from
        #: threaded processes like the serve event loop; None = platform
        #: default, which is what the batch drivers above use)
        self._mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        self._lock = Lock()
        #: broken-pool incidents observed (worker death, abandoned timeout)
        self.deaths = 0
        self.retries = 0

    def _checkout(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                ctx = None
                if self._mp_context is not None:
                    import multiprocessing

                    ctx = multiprocessing.get_context(self._mp_context)
                self._pool = ProcessPoolExecutor(
                    max_workers=self._max_workers,
                    mp_context=ctx,
                    initializer=_pin_worker_threads,
                )
            return self._pool

    def _discard(self, pool: ProcessPoolExecutor) -> None:
        """Drop *pool* (broken or hosting an abandoned task) for rebuild."""
        with self._lock:
            if self._pool is pool:
                self._pool = None
            self.deaths += 1
        pool.shutdown(wait=False, cancel_futures=True)

    def run(self, fn, *args, timeout: float | None = None, retries: int | None = None):
        """Run ``fn(*args, attempt)`` in a worker; retry on death/timeout.

        Raises :class:`PoolTaskFailed` once the budget (``retries`` + 1
        attempts, default from the constructor) is spent. Exceptions the
        task itself raises are *not* retried — they are deterministic and
        would fail identically again — only infrastructure failures are.
        """
        attempts = (self._max_retries if retries is None else int(retries)) + 1
        causes: list[str] = []
        for attempt in range(attempts):
            pool = self._checkout()
            try:
                return pool.submit(fn, *args, attempt).result(timeout=timeout)
            except BrokenExecutor:
                causes.append(f"attempt {attempt}: worker died")
                self._discard(pool)
            except FutureTimeoutError:
                causes.append(f"attempt {attempt}: timed out after {timeout}s")
                self._discard(pool)
            if attempt + 1 < attempts:
                self.retries += 1
        raise PoolTaskFailed(
            f"task failed after {attempts} attempt(s): {'; '.join(causes)}",
            attempts,
            causes,
        )

    def shutdown(self) -> None:
        """Release the worker processes (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


# ---------------------------------------------------------------------------
# parallel recursive bisection
# ---------------------------------------------------------------------------


def _split_task(kind: str, sub, lo: int, k: int, ub: float, seed, extra, kwargs: dict):
    """Worker unit: one RB node — bisect and build both induced subgraphs.

    Runs the exact serial node functions, so (subgraph, seed) alone
    determine the output. Returns CPU seconds for schedule replay.
    """
    t0 = time.process_time()
    if kind == "hp":
        bis, k0 = hkway._split(sub, k, ub, extra, seed, kwargs)
        sel0, sel1 = np.flatnonzero(bis == 0), np.flatnonzero(bis == 1)
        left, right = sub.induced(sel0), sub.induced(sel1)
    else:
        bis, k0 = kway._split(sub, k, ub, seed, kwargs)
        sel0, sel1 = np.flatnonzero(bis == 0), np.flatnonzero(bis == 1)
        left, right = sub.induced_subgraph(sel0), sub.induced_subgraph(sel1)
    return bis, k0, left, right, time.process_time() - t0


def _drive_rb(
    kind: str,
    g,
    nparts: int,
    ub_level: float,
    seed,
    executor: Executor,
    seed_scheme: str,
    extra,
    kwargs: dict,
    trace: list | None = None,
    label: str = "rb",
    root_dep: str | None = None,
) -> np.ndarray:
    """Event-driven RB tree expansion over *executor*.

    Children are dispatched the moment their parent's bisection lands, so
    the pool stays busy down the whole tree; the only serial dependency
    left is each matrix's root-to-leaf chain. Every write into ``part``
    is indexed by the node's own vertex set, so completion order cannot
    change the result.
    """
    part = np.zeros(g.n, dtype=np.int64)
    pending: dict = {}

    def dispatch(sub, vertices, lo, k, sd, path):
        if k == 1 or len(vertices) == 0:
            part[vertices] = lo
            return
        fut = executor.submit(_split_task, kind, sub, lo, k, ub_level, sd, extra, kwargs)
        pending[fut] = (vertices, lo, k, sd, path)

    dispatch(g, np.arange(g.n, dtype=np.int64), 0, nparts, seed, "r")
    while pending:
        done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
        for fut in done:
            vertices, lo, k, sd, path = pending.pop(fut)
            bis, k0, left, right, cpu = fut.result()
            if trace is not None:
                dep = f"{label}:{path[:-1]}" if len(path) > 1 else root_dep
                trace.append({
                    "id": f"{label}:{path}",
                    "deps": [dep] if dep else [],
                    "cpu": cpu,
                })
            s_left, s_right = child_seeds(sd, seed_scheme)
            dispatch(left, vertices[bis == 0], lo, k0, s_left, path + "0")
            dispatch(right, vertices[bis == 1], lo + k0, k - k0, s_right, path + "1")
    return part


def parallel_recursive_bisection(
    g: PartGraph,
    nparts: int,
    ub: float = 1.05,
    seed=0,
    jobs: int | None = None,
    executor: Executor | None = None,
    seed_scheme: str = "legacy",
    trace: list | None = None,
    trace_label: str = "rb",
    root_dep: str | None = None,
    **bisect_kwargs,
) -> np.ndarray:
    """Process-pool :func:`repro.partitioning.recursive_bisection`.

    Bit-identical to the serial path for every (graph, nparts, seed,
    seed_scheme): same per-level tolerance, same node splits, same
    subtree seeds, same final k-way balance repair. With ``jobs`` <= 1
    and no executor it simply calls the serial reference.
    """
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    if nparts == 1 or g.n == 0:
        return np.zeros(g.n, dtype=np.int64)
    njobs = resolve_jobs(jobs)
    if executor is None and njobs <= 1:
        return kway.recursive_bisection(
            g, nparts, ub=ub, seed=seed, seed_scheme=seed_scheme, **bisect_kwargs
        )
    depth = int(np.ceil(np.log2(nparts)))
    ub_level = float(ub) ** (1.0 / depth)
    own_pool = executor is None
    pool = (
        executor
        if executor is not None
        else ProcessPoolExecutor(
            max_workers=njobs, initializer=_pin_worker_threads
        )
    )
    try:
        part = _drive_rb(
            "gp", g, nparts, ub_level, seed, pool, seed_scheme, None,
            bisect_kwargs, trace, trace_label, root_dep,
        )
    finally:
        if own_pool:
            pool.shutdown()
    part = kway_balance_refine(g, part, nparts, ub=ub)
    return check_part_vector(part, g.n, nparts)


def parallel_hypergraph_recursive_bisection(
    hg: Hypergraph,
    nparts: int,
    ub: float = 1.05,
    seed=0,
    jobs: int | None = None,
    executor: Executor | None = None,
    seed_scheme: str = "legacy",
    trace: list | None = None,
    trace_label: str = "hrb",
    root_dep: str | None = None,
    **bisect_kwargs,
) -> np.ndarray:
    """Process-pool :func:`repro.partitioning.hypergraph_recursive_bisection`."""
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    if nparts == 1 or hg.n == 0:
        return np.zeros(hg.n, dtype=np.int64)
    njobs = resolve_jobs(jobs)
    if executor is None and njobs <= 1:
        return hkway.hypergraph_recursive_bisection(
            hg, nparts, ub=ub, seed=seed, seed_scheme=seed_scheme, **bisect_kwargs
        )
    depth = int(np.ceil(np.log2(nparts)))
    ub_level = float(ub) ** (1.0 / depth)
    ideal = hg.total_weight()[0] / nparts
    own_pool = executor is None
    pool = (
        executor
        if executor is not None
        else ProcessPoolExecutor(
            max_workers=njobs, initializer=_pin_worker_threads
        )
    )
    try:
        part = _drive_rb(
            "hp", hg, nparts, ub_level, seed, pool, seed_scheme, ideal,
            bisect_kwargs, trace, trace_label, root_dep,
        )
    finally:
        if own_pool:
            pool.shutdown()
    return check_part_vector(part, hg.n, nparts)


# ---------------------------------------------------------------------------
# multi-matrix partition sweep over one shared pool
# ---------------------------------------------------------------------------


def _build_task(A, kind: str, nparts: int):
    """Worker unit: build the partitioning structure for one matrix."""
    t0 = time.process_time()
    if kind == "hp":
        built = Hypergraph.from_matrix_column_net(A, vertex_weights="nnz")
    else:
        weights = ("unit", "nnz") if kind == "gp-mc" else "nnz"
        built = PartGraph.from_matrix(A, vertex_weights=weights)
    return built, time.process_time() - t0


def _finalize_task(A, kind: str, part: np.ndarray, nparts: int, ub: float):
    """Worker unit: the k-way balance repair :func:`partition_matrix` applies."""
    t0 = time.process_time()
    if kind == "hp":
        g_bal = PartGraph.from_matrix(A, vertex_weights=("unit", "nnz"))
        part = kway_balance_refine(
            g_bal, part, nparts, ub=np.array([1.15, max(ub, 1.25)])
        )
    else:
        weights = ("unit", "nnz") if kind == "gp-mc" else "nnz"
        g = PartGraph.from_matrix(A, vertex_weights=weights)
        part = kway_balance_refine(g, part, nparts, ub=ub)
    return check_part_vector(part, A.shape[0], nparts), time.process_time() - t0


def _sweep_one(name, A, kind, nparts, seed, ub, pool, seed_scheme, trace, out):
    """Orchestrate one matrix's partition pipeline (runs in a thread).

    Mirrors :func:`repro.partitioning.partition_matrix` exactly — build,
    RB tree, balance repair — but every CPU-bearing step is a pool task,
    so the thread only shepherds futures and the trace records honest
    per-task CPU seconds.
    """
    built, cpu = pool.submit(_build_task, A, kind, nparts).result()
    if trace is not None:
        trace.append({"id": f"{name}:build", "deps": [], "cpu": cpu})
    depth = int(np.ceil(np.log2(nparts)))
    rb_ub = float(ub) ** (1.0 / depth)
    if kind == "hp":
        extra = built.total_weight()[0] / nparts
        part = _drive_rb("hp", built, nparts, rb_ub, seed, pool, seed_scheme,
                         extra, {}, trace, name, f"{name}:build")
    else:
        part = _drive_rb("gp", built, nparts, rb_ub, seed, pool, seed_scheme,
                         None, {}, trace, name, f"{name}:build")
    tree_ids = [t["id"] for t in trace if t["id"].startswith(f"{name}:r")] if trace is not None else []
    part, cpu = pool.submit(_finalize_task, A, kind, part, nparts, ub).result()
    if trace is not None:
        trace.append({"id": f"{name}:refine", "deps": tree_ids or [f"{name}:build"], "cpu": cpu})
    out[name] = part


def parallel_partition_sweep(
    specs,
    jobs: int | None = None,
    seed: int = 0,
    ub: float = 1.10,
    seed_scheme: str = "legacy",
    trace: list | None = None,
) -> dict[str, np.ndarray]:
    """Partition many matrices concurrently over one shared process pool.

    *specs* is an iterable of ``(name, matrix, kind, nparts)``. All RB
    trees are multiplexed onto a single ``jobs``-worker pool (one
    orchestration thread per matrix, threads only wait on futures), so a
    corpus dominated by one huge matrix still fills every worker: the
    big matrix's subtrees and the small matrices' nodes interleave.

    Returns ``{name: part}`` with each part bit-identical to
    ``partition_matrix(matrix, nparts, method=kind, seed=seed).part``.
    """
    specs = list(specs)
    njobs = resolve_jobs(jobs)
    out: dict[str, np.ndarray] = {}
    if njobs <= 1 or not specs:
        from .partitioning import partition_matrix

        for name, A, kind, nparts in specs:
            out[name] = partition_matrix(A, nparts, method=kind, seed=seed, ub=ub).part
        return out
    with ProcessPoolExecutor(
        max_workers=njobs, initializer=_pin_worker_threads
    ) as pool:
        threads = [
            Thread(
                target=_sweep_one,
                args=(name, A, kind, nparts, seed, ub, pool, seed_scheme, trace, out),
                name=f"sweep-{name}",
            )
            for name, A, kind, nparts in specs
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    return out


# ---------------------------------------------------------------------------
# schedule replay
# ---------------------------------------------------------------------------


def schedule_makespan(trace: list[dict], workers: int) -> float:
    """Replay a task trace onto *workers* virtual workers; return makespan.

    Greedy list scheduling, the same policy a process pool implements: a
    task becomes ready when all its dependencies finish; the earliest
    ready task (ties broken by id, deterministically) goes to the first
    free worker. Durations are the workers' recorded CPU seconds, so the
    replay is independent of how starved the measuring host was.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    by_id = {t["id"]: t for t in trace}
    if len(by_id) != len(trace):
        raise ValueError("duplicate task ids in trace")
    children: dict[str, list[str]] = {tid: [] for tid in by_id}
    missing = [d for t in trace for d in t["deps"] if d not in by_id]
    if missing:
        raise ValueError(f"trace references unknown dependencies: {missing[:5]}")
    indeg = {tid: len(t["deps"]) for tid, t in by_id.items()}
    for t in trace:
        for d in t["deps"]:
            children[d].append(t["id"])
    done_at: dict[str, float] = {}
    ready = [(0.0, tid) for tid, d in indeg.items() if d == 0]
    heapq.heapify(ready)
    free = [0.0] * workers
    heapq.heapify(free)
    scheduled = 0
    while ready:
        ready_time, tid = heapq.heappop(ready)
        start = max(heapq.heappop(free), ready_time)
        end = start + float(by_id[tid]["cpu"])
        heapq.heappush(free, end)
        done_at[tid] = end
        scheduled += 1
        for child in children[tid]:
            indeg[child] -= 1
            if indeg[child] == 0:
                child_ready = max(done_at[d] for d in by_id[child]["deps"])
                heapq.heappush(ready, (child_ready, child))
    if scheduled != len(trace):
        raise ValueError("trace has a dependency cycle")
    return max(done_at.values(), default=0.0)
