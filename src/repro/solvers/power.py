"""Power method and PageRank on the distributed runtime.

PageRank is the paper's motivating example of linear-algebra graph
analysis ("in its simplest form the power method applied to a matrix
derived from the weblink adjacency matrix"). The iteration is::

    x <- damping * M x + (damping * dangling_mass + 1 - damping) / n * 1

with ``M = A^T D_out^{-1}`` the column-stochastic link matrix. Every
matvec runs through the four-phase distributed SpMV, so all layout
effects measured for SpMV transfer directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..graphs.csr import as_csr, nonzeros_per_row
from ..layouts.base import Layout
from ..runtime.distmatrix import DistSparseMatrix
from ..runtime.distvector import DistVectorSpace
from ..runtime.machine import CAB, MachineModel
from ..runtime.trace import CostLedger

__all__ = ["pagerank", "power_method", "PageRankResult", "PowerResult"]


@dataclass
class PageRankResult:
    """PageRank vector plus convergence/accounting info."""

    scores: np.ndarray
    iterations: int
    residual: float
    converged: bool
    ledger: CostLedger


@dataclass
class PowerResult:
    """Dominant eigenpair estimate from the power method."""

    eigenvalue: float
    eigenvector: np.ndarray
    iterations: int
    residual: float
    converged: bool
    ledger: CostLedger


def google_link_matrix(A) -> tuple[sp.csr_matrix, np.ndarray]:
    """Column-stochastic link matrix ``M = A^T D_out^{-1}`` and the
    dangling-node indicator (rows of A with no out-links)."""
    A = as_csr(A)
    outdeg = nonzeros_per_row(A).astype(np.float64)
    dangling = outdeg == 0
    inv = np.where(dangling, 0.0, 1.0 / np.maximum(outdeg, 1.0))
    M = as_csr(A.T @ sp.diags(inv))
    return M, dangling


def pagerank(
    A,
    layout: Layout,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iter: int = 200,
    machine: MachineModel = CAB,
) -> PageRankResult:
    """PageRank of the graph of *A* under a given data layout.

    The layout must be built for the same matrix dimension; typically it
    comes from :func:`repro.layouts.make_layout` on A itself (the link
    matrix has A's transposed pattern, which for the paper's symmetrised
    graphs is the same pattern).
    """
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0,1), got {damping}")
    M, dangling = google_link_matrix(A)
    ledger = CostLedger()
    dist = DistSparseMatrix(M, layout, machine)
    space = DistVectorSpace(dist.vector_map, machine, ledger)
    n = M.shape[0]
    x = np.full(n, 1.0 / n)
    resid = np.inf
    it = 0
    for it in range(1, max_iter + 1):
        y = dist.spmv(x, ledger)
        dangling_mass = float(x[dangling].sum())
        space.ledger.add("vector-ops", machine.allreduce_time(layout.nprocs))
        y = space.scale(damping, y)
        shift = (damping * dangling_mass + (1.0 - damping)) / n
        y = space.axpy(1.0, np.full(n, shift), y)
        resid = float(np.abs(y - x).sum())
        space.ledger.add("vector-ops", machine.allreduce_time(layout.nprocs))
        x = y
        if resid < tol:
            return PageRankResult(x, it, resid, True, ledger)
    return PageRankResult(x, it, resid, False, ledger)


def power_method(
    A,
    layout: Layout,
    tol: float = 1e-8,
    max_iter: int = 1000,
    machine: MachineModel = CAB,
    seed: int = 0,
) -> PowerResult:
    """Dominant eigenpair of symmetric *A* by the power method."""
    ledger = CostLedger()
    dist = DistSparseMatrix(A, layout, machine)
    space = DistVectorSpace(dist.vector_map, machine, ledger)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(dist.n)
    x /= space.norm(x)
    lam = 0.0
    resid = np.inf
    it = 0
    for it in range(1, max_iter + 1):
        y = dist.spmv(x, ledger)
        lam = space.dot(x, y)
        r = space.axpy(-lam, x, y)
        resid = space.norm(r)
        ny = space.norm(y)
        if ny <= 0:
            break
        x = space.scale(1.0 / ny, y)
        if resid <= tol * max(abs(lam), 1.0):
            return PowerResult(lam, x, it, resid, True, ledger)
    return PowerResult(lam, x, it, resid, False, ledger)
