"""Distributed iterative solvers.

:func:`eigsh_dist` (Krylov-Schur, i.e. thick-restart Lanczos) is the
stand-in for Trilinos Anasazi's Block Krylov-Schur at the paper's
configuration (block size 1, 10 largest eigenpairs of the normalized
Laplacian, tol 1e-3). :func:`pagerank` and :func:`power_method` cover the
paper's other motivating workload.
"""

from .operators import DistOperator, normalized_laplacian_operator
from .lanczos import lanczos_factorization, lanczos_eigsh, LanczosResult
from .krylov_schur import eigsh_dist, KrylovSchurResult, Checkpoint, CheckpointConfig
from .lobpcg import lobpcg_dist, LobpcgResult
from .power import pagerank, power_method, PageRankResult, PowerResult
from .replay import (
    SolveProfile,
    RecordingSpace,
    RecordingOperator,
    solve_profile,
    modeled_solve_seconds,
)

__all__ = [
    "SolveProfile",
    "RecordingSpace",
    "RecordingOperator",
    "solve_profile",
    "modeled_solve_seconds",
    "DistOperator",
    "normalized_laplacian_operator",
    "lanczos_factorization",
    "lanczos_eigsh",
    "LanczosResult",
    "eigsh_dist",
    "KrylovSchurResult",
    "Checkpoint",
    "CheckpointConfig",
    "lobpcg_dist",
    "LobpcgResult",
    "pagerank",
    "power_method",
    "PageRankResult",
    "PowerResult",
]
