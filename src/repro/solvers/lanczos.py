"""Symmetric Lanczos with full reorthogonalisation (building block).

Plain (non-restarted) Lanczos used for cross-checks and as the expansion
kernel of the Krylov-Schur solver. Full reorthogonalisation (two passes of
classical Gram-Schmidt against the whole basis) is deliberate: scale-free
Laplacian spectra are clustered near their top and selective schemes lose
orthogonality quickly. The paper's Anasazi configuration likewise carries
the full basis.

Every dense operation routes through the :class:`DistVectorSpace` so the
vector-imbalance cost mechanism of Table 5 is captured.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .operators import DistOperator

__all__ = ["lanczos_factorization", "LanczosResult", "lanczos_eigsh"]


@dataclass
class LanczosResult:
    """Eigen-approximation from a (restarted) Lanczos run."""

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    residuals: np.ndarray
    iterations: int
    matvecs: int
    converged: bool


def expand_krylov(
    op: DistOperator,
    V: np.ndarray,
    H: np.ndarray,
    j_start: int,
    j_end: int,
    rng: np.random.Generator,
) -> int:
    """Grow an orthonormal basis V (n, m+1) from column j_start to j_end.

    Maintains the Arnoldi relation ``A V_j = V_{j+1} H_{j+1,j}`` with H
    symmetric up to round-off (we store the full projection, which makes
    the thick-restart arrowhead blocks come out automatically). Returns
    the final column count reached (early exit on breakdown).
    """
    space = op.space
    for j in range(j_start, j_end):
        w = op.matvec(V[:, j])
        # two-pass CGS against all current columns
        h1 = space.multi_dot(V[:, : j + 1], w)
        w = space.multi_axpy(V[:, : j + 1], h1, w)
        h2 = space.multi_dot(V[:, : j + 1], w)
        w = space.multi_axpy(V[:, : j + 1], h2, w)
        H[: j + 1, j] = h1 + h2
        beta = space.norm(w)
        H[j + 1, j] = beta
        H[j, j + 1] = beta
        if beta <= 1e-14 * max(abs(H[j, j]), 1.0):
            # invariant subspace: restart with a fresh random direction
            w = rng.standard_normal(op.n)
            h = space.multi_dot(V[:, : j + 1], w)
            w = space.multi_axpy(V[:, : j + 1], h, w)
            nw = space.norm(w)
            if nw <= 1e-14:
                return j + 1
            V[:, j + 1] = w / nw
            H[j + 1, j] = 0.0
            H[j, j + 1] = 0.0
        else:
            V[:, j + 1] = w / beta
    return j_end


def lanczos_factorization(
    op: DistOperator, v0: np.ndarray, m: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """m-step Lanczos factorisation from start vector *v0*.

    Returns ``(V, H)`` with V of shape (n, m+1) orthonormal and H of shape
    (m+1, m+1) whose leading m x m block is the (symmetric) projection.
    """
    if m < 1 or m >= op.n:
        raise ValueError(f"need 1 <= m < n, got m={m}, n={op.n}")
    space = op.space
    rng = np.random.default_rng(seed)
    V = np.zeros((op.n, m + 1))
    H = np.zeros((m + 1, m + 1))
    nrm = space.norm(v0)
    if nrm <= 0:
        raise ValueError("start vector must be nonzero")
    V[:, 0] = v0 / nrm
    expand_krylov(op, V, H, 0, m, rng)
    return V, H


def lanczos_eigsh(
    op: DistOperator,
    k: int,
    m: int | None = None,
    v0: np.ndarray | None = None,
    seed: int = 0,
) -> LanczosResult:
    """One-shot Lanczos estimate of the k largest eigenpairs (no restart).

    A diagnostic tool: with m ~ 3k-5k on well-separated spectra it
    converges; the production solver is
    :func:`repro.solvers.krylov_schur.eigsh_dist`.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    m = m if m is not None else min(max(4 * k, 20), op.n - 1)
    rng = np.random.default_rng(seed)
    v0 = v0 if v0 is not None else rng.standard_normal(op.n)
    V, H = lanczos_factorization(op, v0, m, seed=seed)
    theta, S = np.linalg.eigh(H[:m, :m])
    order = np.argsort(theta)[::-1][:k]
    theta, S = theta[order], S[:, order]
    beta = H[m, m - 1]
    resid = np.abs(beta * S[m - 1, :])
    X = V[:, :m] @ S
    return LanczosResult(
        eigenvalues=theta,
        eigenvectors=X,
        residuals=resid,
        iterations=1,
        matvecs=op.matvec_count,
        converged=bool((resid <= 1e-6 * np.maximum(np.abs(theta), 1.0)).all()),
    )
