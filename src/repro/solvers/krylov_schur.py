"""Krylov-Schur eigensolver (symmetric: thick-restart Lanczos).

This is the role Trilinos Anasazi's Block Krylov-Schur plays in the paper
(section 4), at the paper's configuration: block size one ("we use block
size one, as we did not observe any advantage of larger blocks on
scale-free graphs"), computing the ten largest eigenpairs of the
normalized Laplacian to tolerance 1e-3.

For symmetric operators Krylov-Schur reduces to thick-restart Lanczos
(Stewart 2001, Wu & Simon 2000): expand to m columns, Rayleigh-Ritz,
keep the l best Ritz pairs plus the residual direction (the "Schur
restart" — a diagonal block with an arrowhead coupling row), and resume
expansion from column l.

Checkpoint/restart
------------------
The restart boundary is a natural checkpoint: the solver's entire state is
the basis ``V``, the Rayleigh-quotient matrix ``H``, the carried-column
count ``l``, the restart index, and the RNG's bit-generator state (used
only to refill degenerate directions, but captured so a resumed run
replays the original bit-for-bit). :class:`CheckpointConfig` asks the
solver to snapshot that state every *every* restarts (optionally persisted
as ``.npz``); passing the snapshot back via ``resume=`` continues the
solve exactly where it stopped and converges to the same eigenpairs the
uninterrupted run reaches. Each snapshot's modeled write cost is charged
to the ledger's ``checkpoint`` phase
(:meth:`~repro.runtime.distvector.DistVectorSpace.charge_checkpoint`) —
the fault campaigns in :mod:`repro.runtime.faults` price the same
mechanism at the SpMV level.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np

from .lanczos import expand_krylov
from .operators import DistOperator

__all__ = ["eigsh_dist", "KrylovSchurResult", "Checkpoint", "CheckpointConfig"]


@dataclass
class KrylovSchurResult:
    """Outcome of a Krylov-Schur eigensolve.

    ``eigenvalues`` are sorted by the requested criterion (best first);
    ``residuals`` are the Lanczos residual-norm estimates
    ``|beta * s_{m,i}|`` for each returned pair.
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    residuals: np.ndarray
    restarts: int
    matvecs: int
    converged: bool


@dataclass
class Checkpoint:
    """Resumable solver state captured at a thick-restart boundary.

    ``V``/``H`` are the (n, m+1) basis and Rayleigh-quotient matrix after
    the contraction, ``l`` the carried columns, ``restart`` the index the
    resumed loop continues from, ``matvec_count`` the applications already
    spent (folded into the resumed result's count), and ``rng_state`` the
    NumPy bit-generator state so the continuation is bit-identical to the
    uninterrupted run. ``k``/``which``/``tol`` pin the solve configuration;
    resuming under a different one is refused.
    """

    V: np.ndarray
    H: np.ndarray
    l: int
    restart: int
    matvec_count: int
    rng_state: dict
    k: int
    which: str
    tol: float

    def save(self, path: str | os.PathLike) -> None:
        """Persist as an ``.npz`` archive (no pickling; portable)."""
        np.savez_compressed(
            path,
            V=self.V,
            H=self.H,
            l=self.l,
            restart=self.restart,
            matvec_count=self.matvec_count,
            rng_state=json.dumps(self.rng_state),
            k=self.k,
            which=self.which,
            tol=self.tol,
        )

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Checkpoint":
        """Load a snapshot written by :meth:`save`."""
        with np.load(path, allow_pickle=False) as z:
            return cls(
                V=z["V"],
                H=z["H"],
                l=int(z["l"]),
                restart=int(z["restart"]),
                matvec_count=int(z["matvec_count"]),
                rng_state=json.loads(str(z["rng_state"])),
                k=int(z["k"]),
                which=str(z["which"]),
                tol=float(z["tol"]),
            )


@dataclass
class CheckpointConfig:
    """Periodic-snapshot policy for :func:`eigsh_dist`.

    Snapshot every *every* thick restarts; when *path* is set each
    snapshot overwrites that ``.npz`` file (the latest one is all a
    restart needs). The solver always stores the most recent snapshot in
    ``latest``, so in-memory round-trips need no filesystem.
    """

    every: int = 5
    path: str | os.PathLike | None = None
    latest: Checkpoint | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError(f"checkpoint interval must be >= 1, got {self.every}")


def _select(theta: np.ndarray, which: str) -> np.ndarray:
    """Ordering of Ritz values, best first, for the given criterion."""
    if which == "LA":
        return np.argsort(theta)[::-1]
    if which == "SA":
        return np.argsort(theta)
    if which == "LM":
        return np.argsort(np.abs(theta))[::-1]
    raise ValueError(f"which must be 'LA', 'SA' or 'LM', got {which!r}")


def eigsh_dist(
    op: DistOperator,
    k: int = 10,
    tol: float = 1e-3,
    which: str = "LA",
    m: int | None = None,
    max_restarts: int = 300,
    v0: np.ndarray | None = None,
    seed: int = 0,
    block_size: int = 1,
    checkpoint: CheckpointConfig | None = None,
    resume: "Checkpoint | str | os.PathLike | None" = None,
) -> KrylovSchurResult:
    """Compute the *k* extremal eigenpairs of a distributed operator.

    Parameters
    ----------
    op:
        Distributed symmetric operator (its ledger accumulates the modeled
        time: SpMV phases from the matvecs, "vector-ops" from the dense
        work — the split the paper analyses in Table 5).
    k:
        Number of eigenpairs (paper: 10).
    tol:
        Relative residual tolerance (paper: 1e-3).
    which:
        "LA" largest algebraic (paper's choice for L_hat), "SA", "LM".
    m:
        Max basis size before restart; default ``max(2k + 10, 30)``.
    max_restarts:
        Restart budget; ``converged=False`` on exhaustion.
    v0, seed:
        Start vector (paper: random) and RNG seed.
    block_size:
        Lanczos block width. The paper evaluated block sizes and settled on
        one ("we did not observe any advantage of larger blocks on
        scale-free graphs"); ``block_size > 1`` runs the genuine block
        variant so that finding can be reproduced
        (``benchmarks/bench_ablation_blocksize.py``).
    checkpoint:
        Periodic-snapshot policy (:class:`CheckpointConfig`); snapshots
        land in ``checkpoint.latest`` (and ``checkpoint.path`` when set)
        and their modeled write cost is charged to the ledger's
        ``checkpoint`` phase. Block solves (``block_size > 1``) do not
        support checkpointing.
    resume:
        A :class:`Checkpoint` (or path to a saved one) to continue from;
        ``v0``/``seed`` are then ignored — the snapshot carries the basis
        and the RNG state, so the continuation is bit-identical to the
        uninterrupted solve.
    """
    n = op.n
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    m = m if m is not None else max(2 * k + 10, 30)
    m = min(m, n - 1 - block_size)
    if m <= k + 1:
        raise ValueError(f"basis size m={m} too small for k={k} (n={n})")
    if block_size > 1:
        if checkpoint is not None or resume is not None:
            raise ValueError("checkpoint/resume is only supported for block_size=1")
        return _eigsh_block(op, k, tol, which, m, max_restarts, v0, seed, block_size)
    rng = np.random.default_rng(seed)
    space = op.space

    V = np.zeros((n, m + 1))
    H = np.zeros((m + 1, m + 1))
    l = 0  # columns carried over from the previous restart
    restart0 = 0
    matvec_offset = 0
    if resume is not None:
        ck = resume if isinstance(resume, Checkpoint) else Checkpoint.load(resume)
        if ck.V.shape != V.shape:
            raise ValueError(
                f"checkpoint basis {ck.V.shape} does not fit this solve "
                f"(expected {V.shape}; n, m and block_size must match)"
            )
        if (ck.k, ck.which) != (k, which) or ck.tol != tol:
            raise ValueError(
                f"checkpoint was taken for (k={ck.k}, which={ck.which!r}, "
                f"tol={ck.tol}), refusing to resume with (k={k}, "
                f"which={which!r}, tol={tol})"
            )
        V[:, :] = ck.V
        H[:, :] = ck.H
        l = ck.l
        restart0 = ck.restart
        matvec_offset = ck.matvec_count
        rng.bit_generator.state = ck.rng_state
    else:
        start = v0 if v0 is not None else rng.standard_normal(n)
        nrm = space.norm(start)
        if nrm <= 0:
            raise ValueError("start vector must be nonzero")
        V[:, 0] = start / nrm

    theta = np.zeros(m)
    S = np.eye(m)
    resid = np.full(m, np.inf)
    for restart in range(restart0, max_restarts):
        expand_krylov(op, V, H, l, m, rng)
        theta, S = np.linalg.eigh(H[:m, :m])
        order = _select(theta, which)
        theta, S = theta[order], S[:, order]
        resid = np.abs(H[m, :m] @ S)  # = |beta * s_{m-1,i}| after expansion
        scale = np.maximum(np.abs(theta[:k]), 1.0)
        nconv = int((resid[:k] <= tol * scale).sum())
        if nconv >= k:
            X = space.gemm(V[:, :m], S[:, :k])
            return KrylovSchurResult(
                theta[:k], X, resid[:k], restart,
                op.matvec_count + matvec_offset, True,
            )

        # --- thick restart: keep l best Ritz pairs + the residual vector ---
        l = min(k + (m - k) // 2, m - 1)
        Y = space.gemm(V[:, :m], S[:, :l])
        b = H[m, :m] @ S[:, :l]  # coupling row of the arrowhead
        V[:, :l] = Y
        V[:, l] = V[:, m]
        H[:, :] = 0.0
        H[:l, :l] = np.diag(theta[:l])
        H[l, :l] = b
        H[:l, l] = b

        if checkpoint is not None and (restart + 1) % checkpoint.every == 0:
            ck = Checkpoint(
                V=V.copy(), H=H.copy(), l=l, restart=restart + 1,
                matvec_count=op.matvec_count + matvec_offset,
                rng_state=rng.bit_generator.state,
                k=k, which=which, tol=tol,
            )
            checkpoint.latest = ck
            if checkpoint.path is not None:
                ck.save(checkpoint.path)
            charge = getattr(space, "charge_checkpoint", None)
            if charge is not None:
                charge(m + 1)

    theta_k, S_k = theta[:k], S[:, :k]
    X = space.gemm(V[:, :m], S_k)
    return KrylovSchurResult(
        theta_k, X, resid[:k], max_restarts, op.matvec_count + matvec_offset, False
    )


def _expand_block(op, V, H, c0: int, m: int, b: int, rng) -> None:
    """Grow the basis blockwise from column *c0* to *m* (+ residual block).

    Processes blocks of up to *b* columns: apply the operator, two-pass
    block CGS against all previous columns, thin QR for the next block.
    Maintains ``A V_m = V_{m+b'} H`` with symmetric H.
    """
    space = op.space
    c = c0
    while c < m:
        bp = min(b, m - c)
        W = op.matvec_block(V[:, c: c + bp])
        h1 = space.multi_dot(V[:, : c + bp], W)
        W = space.multi_axpy(V[:, : c + bp], h1, W)
        h2 = space.multi_dot(V[:, : c + bp], W)
        W = space.multi_axpy(V[:, : c + bp], h2, W)
        H[: c + bp, c: c + bp] = h1 + h2
        Q, R = space.qr(W)
        # rank-deficient block: refill dead directions with random vectors
        # orthogonalised against everything so far (rare; keeps QR valid)
        dead = np.abs(np.diag(R)) <= 1e-12
        if dead.any():
            for i in np.flatnonzero(dead):
                w = rng.standard_normal(op.n)
                h = space.multi_dot(V[:, : c + bp], w)
                w = space.multi_axpy(V[:, : c + bp], h, w)
                W[:, i] = w
            Q, R_new = space.qr(W)
            R = np.where(dead[None, :] | dead[:, None], 0.0, R_new)
            R[np.ix_(~dead, ~dead)] = R_new[np.ix_(~dead, ~dead)]
            R = np.triu(R)
        V[:, c + bp: c + 2 * bp] = Q
        H[c + bp: c + 2 * bp, c: c + bp] = R
        H[c: c + bp, c + bp: c + 2 * bp] = R.T
        c += bp


def _eigsh_block(op, k, tol, which, m, max_restarts, v0, seed, b) -> KrylovSchurResult:
    """Block Krylov-Schur (thick-restart block Lanczos). See eigsh_dist."""
    n = op.n
    # the residual block must always be exactly b wide (the restart copies
    # it verbatim), so every expansion span — m from 0, m - l after a
    # restart — must be a multiple of b
    m = int(np.ceil(m / b) * b)
    if m + b >= n:
        raise ValueError(f"basis m={m} + block {b} exceeds n={n}")
    rng = np.random.default_rng(seed)
    space = op.space
    V = np.zeros((n, m + b))
    H = np.zeros((m + b, m + b))
    X0 = rng.standard_normal((n, b))
    if v0 is not None:
        X0[:, 0] = v0
    Q, _ = space.qr(X0)
    V[:, :b] = Q
    l = 0

    theta = np.zeros(m)
    S = np.eye(m)
    resid = np.full(m, np.inf)
    for restart in range(max_restarts):
        _expand_block(op, V, H, l, m, b, rng)
        theta, S = np.linalg.eigh(H[:m, :m])
        order = _select(theta, which)
        theta, S = theta[order], S[:, order]
        # residual of Ritz pair i: || B s_i || with B the coupling block
        B = H[m: m + b, :m]
        resid = np.linalg.norm(B @ S, axis=0)
        scale = np.maximum(np.abs(theta[:k]), 1.0)
        if int((resid[:k] <= tol * scale).sum()) >= k:
            X = space.gemm(V[:, :m], S[:, :k])
            return KrylovSchurResult(theta[:k], X, resid[:k], restart, op.matvec_count, True)

        l = min(k + (m - k) // 2, m - b)
        r = (m - l) % b
        if r:
            l -= b - r  # keep the expansion span a multiple of b
        if l < 1:
            raise RuntimeError(f"restart size degenerate: l={l}, m={m}, b={b}")
        Y = space.gemm(V[:, :m], S[:, :l])
        Bl = B @ S[:, :l]  # (b, l) coupling of the kept Ritz vectors
        V[:, :l] = Y
        V[:, l: l + b] = V[:, m: m + b]
        H[:, :] = 0.0
        H[:l, :l] = np.diag(theta[:l])
        H[l: l + b, :l] = Bl
        H[:l, l: l + b] = Bl.T

    X = space.gemm(V[:, :m], S[:, :k])
    return KrylovSchurResult(theta[:k], X, resid[:k], max_restarts, op.matvec_count, False)
