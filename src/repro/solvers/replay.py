"""Record-and-replay solver costing.

The Krylov trajectory of an eigensolve — which matvecs, dots, axpys and
restarts happen — depends only on the matrix, the start vector and the
tolerance, **not** on the data layout: every layout computes bit-equivalent
(up to summation order) results. Re-running the full distributed solve for
each of the paper's 8 layouts x 4 process counts would therefore redo
identical numerics 32 times only to charge different costs.

Instead, :func:`solve_profile` runs the real solver ONCE per matrix
against a :class:`RecordingSpace` that tallies abstract operation counts
(streamed entries per owned row, reduction calls, GEMM flops, matvecs),
and :func:`modeled_solve_seconds` prices that tally for any distribution —
with formulas identical to what :class:`DistVectorSpace` and
:meth:`DistSparseMatrix.charge_spmv` would have charged live (asserted by
tests). This is memoization, not approximation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import as_csr
from ..runtime.distmatrix import DistSparseMatrix
from ..runtime.machine import MachineModel
from ..runtime.trace import CostLedger
from .krylov_schur import eigsh_dist

__all__ = ["SolveProfile", "RecordingSpace", "RecordingOperator", "solve_profile",
           "modeled_solve_seconds"]


@dataclass
class SolveProfile:
    """Layout-independent operation tally of one eigensolve.

    ``stream_factor``: total per-owned-entry doubles streamed by vector ops;
    ``gemm_flop_factor``: total per-owned-entry flops of basis rotations;
    ``scalar_reductions`` / ``vector_reduction_words``: allreduce counts;
    ``matvecs``: number of operator applications.
    """

    matvecs: int
    stream_factor: float
    gemm_flop_factor: float
    scalar_reductions: int
    vector_reductions: int
    vector_reduction_words: int
    converged: bool
    eigenvalues: np.ndarray


class RecordingSpace:
    """Duck-typed :class:`DistVectorSpace` that tallies instead of charging."""

    def __init__(self, n: int):
        self.n = n
        self.stream_factor = 0.0
        self.gemm_flop_factor = 0.0
        self.scalar_reductions = 0
        self.vector_reductions = 0
        self.vector_reduction_words = 0
        self.checkpoints = 0
        self.checkpoint_cols = 0
        self.ledger = CostLedger()  # unused, kept for interface parity

    # mirror DistVectorSpace._charge semantics in abstract units
    def dot(self, x, y):
        self.stream_factor += 2.0
        self.scalar_reductions += 1
        return float(x @ y)

    def norm(self, x):
        self.stream_factor += 2.0
        self.scalar_reductions += 1
        return float(np.linalg.norm(x))

    def axpy(self, a, x, y):
        self.stream_factor += 3.0
        return a * x + y

    def scale(self, a, x):
        self.stream_factor += 2.0
        return a * x

    def multi_dot(self, basis, x):
        m = basis.shape[1] if basis.ndim == 2 else 1
        b = x.shape[1] if x.ndim == 2 else 1
        self.stream_factor += float(b * (m + 1))
        self.vector_reductions += 1
        self.vector_reduction_words += m * b
        return basis.T @ x

    def multi_axpy(self, basis, coef, x):
        m = basis.shape[1] if basis.ndim == 2 else 1
        b = x.shape[1] if x.ndim == 2 else 1
        self.stream_factor += float(b * (m + 2))
        return x - basis @ coef

    def qr(self, X):
        b = X.shape[1] if X.ndim == 2 else 1
        self.gemm_flop_factor += 2.0 * b * b
        self.stream_factor += 2.0 * b
        self.vector_reductions += 1
        self.vector_reduction_words += b * b
        return np.linalg.qr(X.reshape(len(X), -1))

    def gemm(self, V, S):
        m, l = S.shape
        self.gemm_flop_factor += 2.0 * m * l
        self.stream_factor += float(m + l)
        return V @ S

    def charge_checkpoint(self, ncols):
        self.checkpoints += 1
        self.checkpoint_cols += ncols
        return 0.0


class RecordingOperator:
    """Operator applying a scipy matrix directly (no distribution)."""

    def __init__(self, M):
        self.M = as_csr(M)
        self.space = RecordingSpace(self.M.shape[0])
        self.matvec_count = 0
        self.ledger = self.space.ledger

    @property
    def n(self) -> int:
        return self.M.shape[0]

    def matvec(self, x: np.ndarray) -> np.ndarray:
        self.matvec_count += 1
        return self.M @ x


def solve_profile(M, k: int = 10, tol: float = 1e-3, seed: int = 0, **kwargs) -> SolveProfile:
    """Run the eigensolver once on matrix *M*, returning its op tally."""
    op = RecordingOperator(M)
    res = eigsh_dist(op, k=k, tol=tol, seed=seed, **kwargs)
    s = op.space
    return SolveProfile(
        matvecs=op.matvec_count,
        stream_factor=s.stream_factor,
        gemm_flop_factor=s.gemm_flop_factor,
        scalar_reductions=s.scalar_reductions,
        vector_reductions=s.vector_reductions,
        vector_reduction_words=s.vector_reduction_words,
        converged=res.converged,
        eigenvalues=res.eigenvalues,
    )


def modeled_solve_seconds(
    profile: SolveProfile, dist: DistSparseMatrix, machine: MachineModel | None = None
) -> tuple[float, float]:
    """Price a recorded solve under a concrete distribution.

    Returns ``(total_seconds, spmv_seconds)`` — the two columns of the
    paper's Table 5 ("SpMV Time" vs "Total Solve Time"). The pricing
    formulas match :class:`DistVectorSpace` exactly: vector work scales
    with the busiest rank's owned-entry count (vector imbalance), SpMV
    with the distribution's plans and nonzero balance.
    """
    machine = machine if machine is not None else dist.machine
    spmv = profile.matvecs * dist.modeled_spmv_seconds(1)
    max_local = int(dist.vector_map.counts().max())
    p = dist.nprocs
    vec = machine.gamma_mem * profile.stream_factor * max_local
    vec += machine.gamma_flop * profile.gemm_flop_factor * max_local
    vec += profile.scalar_reductions * machine.allreduce_time(p)
    vec += profile.vector_reductions * machine.allreduce_time(p)  # latency part
    # bandwidth part of the m-word reductions beyond the 1-word latency term
    extra_words = profile.vector_reduction_words - profile.vector_reductions
    if extra_words > 0 and p > 1:
        hops = int(np.ceil(np.log2(p)))
        vec += hops * machine.beta * extra_words
    return spmv + vec, spmv
