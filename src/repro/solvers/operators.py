"""Distributed linear operators for the iterative solvers.

The eigensolver experiments run on the normalized Laplacian
``L_hat = I - D^{-1/2} A D^{-1/2}`` (paper section 5.3). Layouts are
computed from the adjacency structure (that is what the partitioners see)
and then applied to L_hat — whose off-diagonal pattern is A's and whose
diagonal entries land on the vector owner's rank, adding no communication.
"""

from __future__ import annotations

import numpy as np

from ..graphs.ops import normalized_laplacian
from ..layouts.base import Layout
from ..runtime.distmatrix import DistSparseMatrix
from ..runtime.distvector import DistVectorSpace
from ..runtime.machine import CAB, MachineModel
from ..runtime.trace import CostLedger

__all__ = ["DistOperator", "normalized_laplacian_operator"]


class DistOperator:
    """A distributed symmetric operator: matvec + vector space + ledger.

    ``threads`` sets the compiled engine's apply-thread budget (None =
    process default, 0 = all cores): every ``matvec``/``matvec_block``
    — and therefore every block Krylov-Schur iteration — fans its two
    fused multiplies across the engine's nnz-balanced row blocks,
    bit-identical to the serial kernel, so solver trajectories and
    checkpoints are unchanged at any budget.
    """

    def __init__(
        self,
        dist: DistSparseMatrix,
        ledger: CostLedger | None = None,
        threads: int | None = None,
    ):
        self.dist = dist
        self.ledger = ledger if ledger is not None else CostLedger()
        self.space = DistVectorSpace(dist.vector_map, dist.machine, self.ledger)
        self.matvec_count = 0
        if threads is not None:
            dist.engine.set_threads(threads)

    @property
    def n(self) -> int:
        """Operator dimension."""
        return self.dist.n

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Apply the operator via the four-phase distributed SpMV."""
        self.matvec_count += 1
        return self.dist.spmv(x, self.ledger)

    def matvec_block(self, X: np.ndarray) -> np.ndarray:
        """Apply the operator to an (n, k) block in one compiled pass.

        Counts (and charges) k matvecs — the block path amortizes index
        traffic, not modeled communication. Column j is bit-identical to
        ``matvec(X[:, j])``.
        """
        self.matvec_count += X.shape[1]
        return self.dist.spmm(X, self.ledger)


def normalized_laplacian_operator(
    A,
    layout: Layout,
    machine: MachineModel = CAB,
    ledger: CostLedger | None = None,
    threads: int | None = None,
) -> DistOperator:
    """Distribute ``L_hat(A)`` with *layout* and wrap it as an operator."""
    Lhat = normalized_laplacian(A)
    dist = DistSparseMatrix(Lhat, layout, machine)
    return DistOperator(dist, ledger, threads=threads)
