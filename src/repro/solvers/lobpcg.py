"""LOBPCG — locally optimal block preconditioned conjugate gradient.

The paper (section 4): "Anasazi contains a collection of different
eigensolvers, including Block Krylov-Schur (BKS) and LOBPCG. Preliminary
experiments indicate BKS is effective for scale-free graphs, so we use it
in our experiments." This module supplies the LOBPCG side of that
preliminary comparison (``benchmarks/bench_ablation_solvers.py``).

Unpreconditioned LOBPCG (Knyazev 2001), blocked over all k requested
pairs: each iteration applies the operator to the residual block only
(operator images of X and P are tracked through the subspace rotations, so
the per-iteration matvec count is k — same as block Lanczos at width k),
forms the locally optimal subspace span[X, R, P], solves the <=3k x 3k
Rayleigh-Ritz problem, and updates X and the CG-like direction block P.
All dense work routes through the :class:`DistVectorSpace`, so layout
costs are charged exactly as in Krylov-Schur.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .operators import DistOperator

__all__ = ["lobpcg_dist", "LobpcgResult"]


@dataclass
class LobpcgResult:
    """Outcome of a LOBPCG run (largest-eigenvalue convention)."""

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    residuals: np.ndarray
    iterations: int
    matvecs: int
    converged: bool


def _block_matvec(op: DistOperator, X: np.ndarray) -> np.ndarray:
    return np.column_stack([op.matvec(X[:, i]) for i in range(X.shape[1])])


def lobpcg_dist(
    op: DistOperator,
    k: int = 10,
    tol: float = 1e-3,
    max_iter: int = 500,
    X0: np.ndarray | None = None,
    seed: int = 0,
) -> LobpcgResult:
    """Compute the *k* largest eigenpairs of a distributed operator.

    Parameters mirror :func:`repro.solvers.krylov_schur.eigsh_dist` where
    they overlap; convergence requires every pair's residual norm below
    ``tol * max(|theta_i|, 1)``.

    Attainable accuracy: this implementation tracks operator images
    through least-squares basis transforms, which limits reliably
    reachable residuals to ~1e-5 relative. The paper's eigensolver
    tolerance (1e-3) is comfortably within range; for tighter tolerances
    use :func:`repro.solvers.krylov_schur.eigsh_dist`, which is also the
    paper's (and our) recommended solver for scale-free graphs.
    """
    n = op.n
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if 3 * k >= n:
        raise ValueError(f"need 3k < n, got k={k}, n={n}")
    space = op.space
    rng = np.random.default_rng(seed)

    X = X0 if X0 is not None else rng.standard_normal((n, k))
    X, _ = space.qr(X)
    AX = _block_matvec(op, X)
    P = np.zeros((n, 0))
    AP = np.zeros((n, 0))
    theta = np.zeros(k)
    resid = np.full(k, np.inf)

    for it in range(1, max_iter + 1):
        if it % 25 == 0:
            # the tracked image AX accumulates drift through the subspace
            # rotations (lstsq transforms); refresh it exactly so residual
            # estimates stay trustworthy on long runs
            AX = _block_matvec(op, X)
        # Rayleigh-Ritz within the block: rotating X to Ritz vectors pins
        # down near-degenerate pairs (clustered Laplacian spectra otherwise
        # rotate freely inside span(X) and residuals never settle)
        G = space.multi_dot(X, AX)  # (k, k) Rayleigh block
        G = (G + G.T) / 2.0
        vals, W = np.linalg.eigh(G)
        ordw = np.argsort(vals)[::-1]
        theta = vals[ordw]
        X = space.gemm(X, W[:, ordw])
        AX = space.gemm(AX, W[:, ordw])
        R = space.multi_axpy(X, np.diag(theta), AX)  # AX - X diag(theta)
        resid = np.linalg.norm(R, axis=0)
        space.ledger.add(
            "vector-ops", space.machine.gamma_mem * 2.0 * space._max_local * k
        )
        scale = np.maximum(np.abs(theta), 1.0)
        if (resid <= tol * scale).all():
            order = np.argsort(theta)[::-1]
            return LobpcgResult(theta[order], X[:, order], resid[order],
                                it, op.matvec_count, True)

        AR = _block_matvec(op, R)  # the only matvecs of the iteration

        # orthogonalise [R P] against X, tracking operator images through
        # the same linear maps (A is linear: A(M - X h) = AM - AX h)
        M = np.column_stack([R, P])
        AM = np.column_stack([AR, AP])
        h = space.multi_dot(X, M)
        M = space.multi_axpy(X, h, M)
        AM = space.multi_axpy(AX, h, AM)
        Q, Rfac = space.qr(M)
        diag = np.abs(np.diag(Rfac))
        keep = diag > 1e-10 * max(diag.max(initial=0.0), 1e-300)
        if not keep.any():
            break  # subspace exhausted: X is invariant to round-off
        # transform AM by the same basis change (least squares handles the
        # dropped, numerically dependent columns)
        T = np.linalg.lstsq(Rfac, np.eye(Rfac.shape[0])[:, keep], rcond=None)[0]
        Qc = Q[:, keep]
        AQc = space.gemm(AM, T)

        S = np.column_stack([X, Qc])
        AS = np.column_stack([AX, AQc])
        Hs = space.multi_dot(S, AS)
        Hs = (Hs + Hs.T) / 2.0
        vals, vecs = np.linalg.eigh(Hs)
        Y = vecs[:, np.argsort(vals)[::-1][:k]]

        X_new = space.gemm(S, Y)
        AX_new = space.gemm(AS, Y)
        cx = space.multi_dot(X, X_new)
        P = space.multi_axpy(X, cx, X_new)
        AP = space.multi_axpy(AX, cx, AX_new)
        X, AX = X_new, AX_new
        # re-orthonormalise X to stop drift from accumulating over sweeps
        X, Rx = space.qr(X)
        AX = space.gemm(AX, np.linalg.lstsq(Rx, np.eye(k), rcond=None)[0])

    order = np.argsort(theta)[::-1]
    return LobpcgResult(theta[order], X[:, order], resid[order],
                        max_iter, op.matvec_count, False)
