"""Persistent compiled-engine artifact store with zero-copy loads.

The paper's central economy is amortization: pay an expensive setup
phase once, then run many cheap SpMVs. The partition cache
(:func:`repro.bench.harness.cached_rpart`) already amortizes the
partitioner across processes, but every *new process* still re-ran the
rest of the cold path — :class:`~repro.runtime.distmatrix.DistSparseMatrix`
construction, ``CommPlan.build``, and the
:class:`~repro.runtime.engine.SpmvEngine` compile — on every serve cold
start, regress run, and bench worker. This module persists the *end
product* of that pipeline: the two compiled CSR operators, the
slot→rank vector, and the operator shapes, as one uncompressed
``.npz`` artifact keyed exactly like the partition cache.

Key discipline (shared with the partition cache)
------------------------------------------------
Artifacts are keyed by :class:`EngineKey` — ``(matrix content hash,
layout method, procs, seed[, variant])`` — where :func:`matrix_hash` is
the same sha1-of-structure digest ``cached_rpart`` uses, so an engine
artifact and its cached rpart always name the same partition. The
``variant`` field disambiguates engines whose layout was *derived*
rather than partitioned directly (e.g. ``n64`` for a p=16 layout nested
from the p=64 partition in a scaling sweep): nested and direct layouts
at the same p are different matrices-on-ranks and must never collide.

Write discipline (shared with the partition cache)
--------------------------------------------------
Writers land artifacts via a pid/thread-suffixed tmp file and one
atomic ``os.replace``, so concurrent writers of the same key race only
on the rename and readers can never observe a torn file. Before the
rename, the artifact is **verified**: it is read back through the same
loader clients use and the reconstructed engine's ``spmv``/``spmm``
must be *bit-identical* to the in-memory one on a seeded probe (plus a
member-by-member byte comparison). A machine that cannot round-trip its
own artifact raises :class:`StoreVerifyError` instead of publishing it.

Read discipline
---------------
Loads are **zero-copy** where the platform allows: the zip local
headers are parsed once, each member's ``.npy`` payload is located at
its absolute file offset, each payload is CRC-checked against the zip
directory in one sequential pass, and the arrays are built with
``np.frombuffer`` over a single ``np.memmap`` of the artifact — no
deserialization, no copies. (``np.load(..., mmap_mode=...)`` does not
mmap npz members, hence the explicit reader.) Any structural surprise
falls back to a plain ``np.load`` copy; any corruption — truncated
zip, damaged headers, a failed CRC on either path — is treated as a
**miss**, so a damaged entry costs a rebuild (which atomically
replaces it), never a crash or a wrong answer.

Invalidation
------------
Every artifact carries ``schema = ARTIFACT_SCHEMA`` in its metadata
member. Readers refuse (treat as a miss) any other value, so engines
compiled by older code are rebuilt, not mis-loaded; bump the constant
whenever the serialized layout or the engine's compiled form changes.
Content addressing handles matrix changes (new hash, new key); CI keys
its engine-store cache on the runtime/partitioning sources so code
changes start from an empty store.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import threading
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..graphs.csr import as_csr
from .engine import SpmvEngine

__all__ = [
    "ARTIFACT_SCHEMA",
    "EngineKey",
    "EngineStore",
    "LoadedEngine",
    "StoreVerifyError",
    "default_store_dir",
    "matrix_hash",
]

#: Serialized-artifact schema version. Bump whenever the member layout
#: or the engine's compiled form changes; readers treat any other value
#: as a miss (stale artifact → rebuild, never a mis-load). v2 added the
#: persisted apply-plan row splits (``plan_*`` members, ``dims[6]``).
ARTIFACT_SCHEMA = 2

#: npz member names an artifact must carry besides ``meta``.
_MEMBERS = (
    "dims",
    "local_data",
    "local_indices",
    "local_indptr",
    "fold_data",
    "fold_indices",
    "fold_indptr",
    "slot_rank",
    "plan_local_splits",
    "plan_fold_splits",
)


def matrix_hash(A) -> str:
    """Content hash of a CSR structure (the cache/store key prefix).

    sha1 over ``indptr`` + ``indices`` truncated to 12 hex chars — the
    same digest the partition cache files are named by, so one hash
    identifies a matrix across both caches.
    """
    A = as_csr(A)
    h = hashlib.sha1()
    h.update(np.ascontiguousarray(A.indptr).tobytes())
    h.update(np.ascontiguousarray(A.indices).tobytes())
    return h.hexdigest()[:12]


@dataclass(frozen=True)
class EngineKey:
    """Identity of one compiled engine (mirrors the partition-cache key).

    ``variant`` distinguishes derived layouts (e.g. ``"n64"`` for a
    partition nested from p=64) from directly partitioned ones; it is
    empty for the direct case so serve keys keep their historical form.
    """

    matrix_hash: str
    method: str
    procs: int
    seed: int
    variant: str = ""

    def __str__(self) -> str:
        base = f"{self.matrix_hash}_{self.method}_k{self.procs}_s{self.seed}"
        return f"{base}_{self.variant}" if self.variant else base


def default_store_dir() -> Path:
    """Engine-store location (override with $REPRO_ENGINE_STORE_DIR).

    Defaults to an ``engines/`` subdirectory of the partition cache, so
    everything honoring $REPRO_CACHE_DIR (tests, benches, serve
    fixtures) gets a hermetic engine store for free.
    """
    env = os.environ.get("REPRO_ENGINE_STORE_DIR")
    if env:
        base = Path(env)
    else:
        cache_env = os.environ.get("REPRO_CACHE_DIR")
        if cache_env:
            cache = Path(cache_env)
        else:
            cache = Path.home() / ".cache" / "repro-partitions"
        base = cache / "engines"
    base.mkdir(parents=True, exist_ok=True)
    return base


class StoreVerifyError(RuntimeError):
    """A just-written artifact failed its read-back bit-identity check."""


@dataclass
class LoadedEngine:
    """One successful store load: the engine plus artifact provenance."""

    engine: SpmvEngine
    meta: dict
    #: True when the arrays are zero-copy views over the mapped file
    mmapped: bool
    path: Path


def _meta_array(meta: dict) -> np.ndarray:
    return np.frombuffer(
        json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8
    ).copy()


def _decode_meta(arr: np.ndarray) -> dict:
    meta = json.loads(np.asarray(arr, dtype=np.uint8).tobytes().decode())
    if not isinstance(meta, dict):
        raise ValueError("artifact meta is not an object")
    return meta


def _probe_rng(key: EngineKey) -> np.random.Generator:
    """Deterministic per-key RNG for save-time verification probes."""
    digest = hashlib.sha1(str(key).encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def _read_npz_mmap(path: Path) -> dict[str, np.ndarray]:
    """Zero-copy npz read: frombuffer views over one memmap of *path*.

    Every member's payload is CRC-checked against the zip directory
    before its view is handed out — one sequential pass over the mapped
    bytes, no deserialization and no copies, so a bit flip anywhere in
    an array lands as corruption, exactly like the ``np.load`` fallback.

    Raises on any structural surprise (compressed member, unexpected
    npy version, object dtype, damaged header) or CRC mismatch — the
    caller falls back to a plain ``np.load`` copy, which re-checks zip
    CRCs as it reads, and treats a second failure as a miss.
    """
    out: dict[str, np.ndarray] = {}
    raw = np.memmap(path, mode="r", dtype=np.uint8)
    with zipfile.ZipFile(path) as zf, open(path, "rb") as f:
        for info in zf.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError(f"compressed member {info.filename!r}")
            name = info.filename
            if name.endswith(".npy"):
                name = name[:-4]
            f.seek(info.header_offset)
            hdr = f.read(30)
            if len(hdr) != 30 or hdr[:4] != b"PK\x03\x04":
                raise ValueError(f"bad local header for {info.filename!r}")
            name_len, extra_len = struct.unpack("<HH", hdr[26:30])
            payload = info.header_offset + 30 + name_len + extra_len
            if zlib.crc32(raw[payload : payload + info.file_size]) != info.CRC:
                raise ValueError(f"CRC mismatch for member {info.filename!r}")
            f.seek(payload)
            version = np.lib.format.read_magic(f)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(f)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(f)
            else:
                raise ValueError(f"unsupported npy format version {version}")
            if dtype.hasobject:
                raise ValueError("object arrays are not artifact material")
            if fortran and len(shape) > 1:
                raise ValueError("fortran-order members are not supported")
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            arr = np.frombuffer(raw, dtype=dtype, count=count, offset=f.tell())
            out[name] = arr.reshape(shape)
    return out


def _read_artifact(path: Path) -> tuple[dict[str, np.ndarray], bool]:
    """``(arrays, mmapped)`` for *path*; raises if unreadable either way."""
    try:
        return _read_npz_mmap(path), True
    except Exception:
        pass  # structural surprise or damage: the copy path decides
    with np.load(path, allow_pickle=False) as z:
        return {k: z[k] for k in z.files}, False


class EngineStore:
    """Content-hash-keyed persistent store of compiled SpMV engines.

    One instance is cheap (a directory handle plus counters); every
    operation re-resolves paths so concurrent stores over the same
    directory compose through the filesystem, exactly like the
    partition cache.
    """

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else default_store_dir()
        self.root.mkdir(parents=True, exist_ok=True)
        self.counters = {
            "hits": 0,
            "misses": 0,
            "stale": 0,
            "corrupt": 0,
            "saves": 0,
            "mmap_loads": 0,
            "copy_loads": 0,
        }

    def path(self, key: EngineKey | str) -> Path:
        return self.root / f"{key}.engine.npz"

    # -- write path --------------------------------------------------------

    def save(
        self,
        key: EngineKey,
        engine: SpmvEngine,
        extra_meta: dict | None = None,
        verify: bool = True,
    ) -> Path:
        """Persist *engine* under *key* atomically; returns the path.

        With ``verify`` (the default) the tmp file is read back through
        the client loader and checked bit-identical — members byte-equal
        and ``spmv``/``spmm`` equal on a seeded probe — before the
        rename publishes it. An existing entry is replaced atomically.
        """
        path = self.path(key)
        meta = {
            "schema": ARTIFACT_SCHEMA,
            "key": str(key),
            "matrix_hash": key.matrix_hash,
            "method": key.method,
            "procs": key.procs,
            "seed": key.seed,
            "variant": key.variant,
            "n": int(engine.n),
            "engine_nbytes": int(engine.nbytes),
            "plan_threads": int(engine.threads),
        }
        if extra_meta:
            meta.update(extra_meta)
        arrays = engine.to_arrays()
        tmp = path.with_name(
            f"{path.name}.tmp-{os.getpid()}-{threading.get_ident()}"
        )
        try:
            with open(tmp, "wb") as f:
                np.savez(f, meta=_meta_array(meta), **arrays)
            if verify:
                self._verify(tmp, key, engine, arrays)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        self.counters["saves"] += 1
        return path

    def _verify(
        self, tmp: Path, key: EngineKey, engine: SpmvEngine, arrays: dict
    ) -> None:
        loaded, _ = _read_artifact(tmp)
        for name in _MEMBERS:
            if not np.array_equal(arrays[name], loaded[name]):
                raise StoreVerifyError(
                    f"artifact member {name!r} did not round-trip for {key}"
                )
        clone = SpmvEngine.from_arrays(loaded)
        rng = _probe_rng(key)
        x = rng.standard_normal(engine.n)
        X = rng.standard_normal((engine.n, 2))
        if not np.array_equal(engine.spmv(x), clone.spmv(x)):
            raise StoreVerifyError(f"loaded spmv diverged from compiled for {key}")
        if not np.array_equal(engine.spmm(X), clone.spmm(X)):
            raise StoreVerifyError(f"loaded spmm diverged from compiled for {key}")

    # -- read path ---------------------------------------------------------

    def load(self, key: EngineKey) -> LoadedEngine | None:
        """Reconstruct the engine for *key*, or ``None`` on any miss.

        Misses include: no artifact, stale schema, and corruption of
        any kind (the caller rebuilds and the save replaces the entry).
        """
        path = self.path(key)
        if not path.exists():
            self.counters["misses"] += 1
            return None
        try:
            arrays, mmapped = _read_artifact(path)
            meta = _decode_meta(arrays.pop("meta"))
            if meta.get("schema") != ARTIFACT_SCHEMA:
                self.counters["stale"] += 1
                return None
            engine = SpmvEngine.from_arrays(arrays)
        except Exception:
            self.counters["corrupt"] += 1
            return None
        self.counters["hits"] += 1
        self.counters["mmap_loads" if mmapped else "copy_loads"] += 1
        return LoadedEngine(engine=engine, meta=meta, mmapped=mmapped, path=path)

    def load_meta(self, key: EngineKey) -> dict | None:
        """The metadata member alone (no array mapping); None on miss.

        This is the cheap probe the regress harness uses to skip whole
        cell builds: artifact metadata can carry precomputed
        ``cell_metrics`` alongside the engine bits.
        """
        meta = self._raw_meta(self.path(key))
        if meta is None or meta.get("schema") != ARTIFACT_SCHEMA:
            return None
        return meta

    @staticmethod
    def _raw_meta(path: Path) -> dict | None:
        try:
            with zipfile.ZipFile(path) as zf, zf.open("meta.npy") as f:
                return _decode_meta(np.lib.format.read_array(f, allow_pickle=False))
        except Exception:
            return None

    # -- maintenance -------------------------------------------------------

    def entries(self) -> list[dict]:
        """One record per artifact on disk (``repro cache list``)."""
        out = []
        for p in sorted(self.root.glob("*.engine.npz")):
            rec: dict = {"file": p.name, "bytes": p.stat().st_size}
            meta = self._raw_meta(p)
            if meta is None:
                rec["status"] = "corrupt"
            else:
                for field_name in ("key", "n", "procs", "method", "seed", "schema"):
                    rec[field_name] = meta.get(field_name)
                rec["matrix"] = meta.get("matrix")
                rec["status"] = (
                    "ok" if meta.get("schema") == ARTIFACT_SCHEMA else "stale"
                )
            out.append(rec)
        return out

    def evict(self, key: EngineKey | str) -> bool:
        """Drop one entry; True if it existed."""
        path = self.path(key)
        existed = path.exists()
        path.unlink(missing_ok=True)
        return existed

    def clear(self) -> int:
        """Drop every entry; returns the count removed."""
        removed = 0
        for p in self.root.glob("*.engine.npz"):
            p.unlink(missing_ok=True)
            removed += 1
        return removed

    def stats_dict(self) -> dict:
        """JSON view for serve ``stats`` and the cache CLI."""
        files = list(self.root.glob("*.engine.npz"))
        return {
            "dir": str(self.root),
            "entries": len(files),
            "bytes": sum(p.stat().st_size for p in files),
            "counters": dict(self.counters),
        }
