"""Communication and balance metrics — the columns of Tables 3 and 5.

All quantities here are *exact* (derived from the communication plans and
ownership maps), not modeled: they are machine-independent, which is why
the paper can compare them across its two platforms and why we can compare
ours against the paper's directly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from .distmatrix import DistSparseMatrix
from .plan import CommPlan

__all__ = ["CommStats", "comm_stats", "recovery_peers", "max_recovery_peers"]


@dataclass(frozen=True)
class CommStats:
    """Per-SpMV communication/balance metrics for one distribution.

    Attributes (paper table column in parentheses)
    ----------------------------------------------
    nnz_imbalance:
        max/avg nonzeros per process ("Imbal (nz)").
    vector_imbalance:
        max/avg owned vector entries per process ("Vector Imbal").
    max_messages:
        max over ranks of messages sent+received per SpMV, expand and fold
        combined ("Max Msgs").
    total_comm_volume:
        doubles moved per SpMV, expand + fold ("Total CV").
    expand_volume, fold_volume:
        per-phase breakdown of the above.
    expand_messages, fold_messages:
        total message counts per phase.
    """

    nprocs: int
    nnz_imbalance: float
    vector_imbalance: float
    max_messages: int
    total_comm_volume: int
    expand_volume: int
    fold_volume: int
    expand_messages: int
    fold_messages: int

    def row(self) -> tuple:
        """(imbal, max msgs, total CV) — Table 3's metric columns."""
        return (self.nnz_imbalance, self.max_messages, self.total_comm_volume)

    def as_dict(self) -> dict[str, int | float]:
        """Field -> value mapping (plain ints/floats, JSON-serializable)."""
        return dataclasses.asdict(self)


def comm_stats(dist: DistSparseMatrix) -> CommStats:
    """Compute :class:`CommStats` for a distributed matrix."""
    nnz = dist.local_nnz
    avg_nnz = max(nnz.sum() / dist.nprocs, 1e-300)
    # paper semantics (Table 3: 63 at p=64 for 1D, pr+pc-2 for 2D): per
    # phase, a rank's message count is the larger of its sends and receives
    # (they proceed concurrently); phases are sequential so they add
    per_rank_msgs = np.maximum(
        dist.import_plan.sent_counts(), dist.import_plan.recv_counts()
    ) + np.maximum(dist.fold_plan.sent_counts(), dist.fold_plan.recv_counts())
    return CommStats(
        nprocs=dist.nprocs,
        nnz_imbalance=float(nnz.max() / avg_nnz) if len(nnz) else 1.0,
        vector_imbalance=dist.vector_map.imbalance(),
        max_messages=int(per_rank_msgs.max()) if len(per_rank_msgs) else 0,
        total_comm_volume=dist.import_plan.total_volume + dist.fold_plan.total_volume,
        expand_volume=dist.import_plan.total_volume,
        fold_volume=dist.fold_plan.total_volume,
        expand_messages=dist.import_plan.nmessages,
        fold_messages=dist.fold_plan.nmessages,
    )


def _plan_peers(plan: CommPlan, rank: int) -> set[int]:
    """Ranks exchanging messages with *rank* under one plan."""
    peers = set(plan.src[plan.dst == rank].tolist())
    peers |= set(plan.dst[plan.src == rank].tolist())
    peers.discard(rank)
    return peers


def recovery_peers(dist: DistSparseMatrix, rank: int) -> int:
    """Distinct ranks that must participate in recovering *rank*.

    When a rank fails, rebuilding its runtime state touches exactly the
    ranks it exchanges messages with: expand sources/destinations (its
    ghost inputs and the consumers of its owned x-entries) and fold
    partners (the partial sums it ships and receives). For 2D Cartesian
    layouts this set lies inside the failed rank's process row and column,
    so it is bounded by ``pr + pc - 2`` regardless of the graph; for 1D
    layouts of scale-free graphs it approaches ``p - 1`` (a hub row talks
    to almost everyone) — the resilience analogue of the paper's
    max-messages argument (section 3.2).
    """
    peers = _plan_peers(dist.import_plan, rank) | _plan_peers(dist.fold_plan, rank)
    return len(peers)


def max_recovery_peers(dist: DistSparseMatrix) -> int:
    """Worst-case :func:`recovery_peers` over all ranks."""
    if dist.nprocs == 0:
        return 0
    return max(recovery_peers(dist, r) for r in range(dist.nprocs))
