"""Cost ledger: per-phase modeled-time accounting and fault-event trace.

Solvers and the SpMV engine charge modeled seconds to named phases
("expand", "local-compute", "fold", "sum", "vector-ops", "reduce", ...).
The ledger is what the benches read to reproduce the paper's timing
tables, including derived quantities like "fraction of solve time spent in
SpMV" (paper section 1 and Table 5).

The fault-tolerant runtime (:mod:`repro.runtime.faults`) extends the
accounting in two ways: three resilience phases (``detect``,
``checkpoint``, ``recover`` — see :data:`FAULT_PHASES`) and a chronological
:class:`FaultEvent` trace recorded alongside the seconds, so a campaign
report can say not only *how much* resilience cost but *which* injected
fault each charge answers.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

__all__ = ["CostLedger", "FaultEvent", "SPMV_PHASES", "FAULT_PHASES"]

#: The paper's four SpMV phases (section 2.1).
SPMV_PHASES = ("expand", "local-compute", "fold", "sum")

#: Resilience phases charged by the fault-tolerant runtime: ABFT/timeout
#: detection, periodic state snapshots, and post-failure reconstruction.
FAULT_PHASES = ("detect", "checkpoint", "recover")


@dataclass(frozen=True)
class FaultEvent:
    """One fault observed (or injected) during a simulated run.

    ``kind`` is ``"fail-stop"``, ``"corruption"`` or ``"straggler"``;
    ``phase`` says where it struck ("expand", "compute", "fold", or "-"
    for rank-level events); ``detected`` records the detector's verdict
    (stragglers are absorbed into phase times, never "detected");
    ``seconds`` is the modeled detection + recovery cost this event
    charged to the ledger.
    """

    iteration: int
    kind: str
    rank: int
    phase: str = "-"
    detected: bool = False
    seconds: float = 0.0
    note: str = ""

    def row(self) -> tuple:
        """(iter, kind, rank, phase, detected, seconds) — CLI table row."""
        return (self.iteration, self.kind, self.rank, self.phase,
                "yes" if self.detected else "no", f"{self.seconds:.3e}", self.note)


class CostLedger:
    """Accumulates modeled seconds by phase name, plus a fault-event trace."""

    def __init__(self) -> None:
        self._t: dict[str, float] = defaultdict(float)
        self.events: list[FaultEvent] = []

    def add(self, phase: str, seconds: float) -> None:
        """Charge *seconds* to *phase* (must be finite and non-negative)."""
        if not math.isfinite(seconds):
            raise ValueError(f"non-finite time charged to {phase!r}: {seconds!r}")
        if seconds < 0:
            raise ValueError(f"negative time charged to {phase!r}: {seconds}")
        self._t[phase] += seconds

    def record(self, event: FaultEvent) -> None:
        """Append a fault event to the chronological trace."""
        self.events.append(event)

    def get(self, phase: str) -> float:
        """Seconds charged to *phase* so far (0.0 if never charged)."""
        return self._t.get(phase, 0.0)

    def total(self) -> float:
        """Total modeled seconds across phases."""
        return sum(self._t.values())

    def spmv_total(self) -> float:
        """Seconds in the four SpMV phases only."""
        return sum(self._t.get(p, 0.0) for p in SPMV_PHASES)

    def fault_total(self) -> float:
        """Seconds in the three resilience phases only."""
        return sum(self._t.get(p, 0.0) for p in FAULT_PHASES)

    def breakdown(self) -> dict[str, float]:
        """Copy of the phase -> seconds mapping."""
        return dict(self._t)

    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger's charges (and events) into this one."""
        for phase, t in other._t.items():
            self._t[phase] += t
        self.events.extend(other.events)

    def reset(self) -> None:
        """Zero all charges and drop the event trace."""
        self._t.clear()
        self.events.clear()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.3e}" for k, v in sorted(self._t.items()))
        return f"CostLedger({inner})"
