"""Cost ledger: per-phase modeled-time accounting.

Solvers and the SpMV engine charge modeled seconds to named phases
("expand", "local-compute", "fold", "sum", "vector-ops", "reduce", ...).
The ledger is what the benches read to reproduce the paper's timing
tables, including derived quantities like "fraction of solve time spent in
SpMV" (paper section 1 and Table 5).
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["CostLedger", "SPMV_PHASES"]

#: The paper's four SpMV phases (section 2.1).
SPMV_PHASES = ("expand", "local-compute", "fold", "sum")


class CostLedger:
    """Accumulates modeled seconds by phase name."""

    def __init__(self) -> None:
        self._t: dict[str, float] = defaultdict(float)

    def add(self, phase: str, seconds: float) -> None:
        """Charge *seconds* to *phase* (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"negative time charged to {phase!r}: {seconds}")
        self._t[phase] += seconds

    def get(self, phase: str) -> float:
        """Seconds charged to *phase* so far (0.0 if never charged)."""
        return self._t.get(phase, 0.0)

    def total(self) -> float:
        """Total modeled seconds across phases."""
        return sum(self._t.values())

    def spmv_total(self) -> float:
        """Seconds in the four SpMV phases only."""
        return sum(self._t.get(p, 0.0) for p in SPMV_PHASES)

    def breakdown(self) -> dict[str, float]:
        """Copy of the phase -> seconds mapping."""
        return dict(self._t)

    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger's charges into this one."""
        for phase, t in other._t.items():
            self._t[phase] += t

    def reset(self) -> None:
        """Zero all charges."""
        self._t.clear()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.3e}" for k, v in sorted(self._t.items()))
        return f"CostLedger({inner})"
