"""Alternative communication algorithms for the expand/fold phases.

The paper notes its Epetra-based communication "is essentially
point-to-point, which may not be optimal (see [18])" — Hendrickson, Leland
& Plimpton's structured algorithms can beat direct sends when a process
must reach many peers. This module models the three classical options so
the trade can be quantified (``benchmarks/bench_ablation_collectives.py``):

``direct``
    One message per (source, destination) pair — what the plans schedule
    and what Epetra's Import/Export does. Latency cost scales with the
    number of distinct peers.
``tree``
    Each phase routed through a binomial tree per destination set:
    latency ~ alpha * ceil(log2 peers), but every payload is forwarded
    ~log p times, multiplying volume.
``hypercube``
    The HLP fold/expand on a d-dimensional hypercube (p = 2^d): exactly d
    message rounds regardless of the communication pattern, with payloads
    combined per dimension; volume inflates by the routing detour but
    latency is a flat d * alpha.

These are *cost models* of the same data movement (the numerics are
identical — tested); what changes is how the runtime charges time for a
given :class:`repro.runtime.plan.CommPlan`.

Every model takes an optional per-rank ``slowdown`` vector (>= 1.0,
default all-ones) from the fault-injection layer
(:mod:`repro.runtime.faults`): a straggling rank multiplies its own
per-rank cost before the max-over-ranks, which is exactly how a slow
process stretches a bulk-synchronous phase.
"""

from __future__ import annotations

import numpy as np

from .machine import MachineModel
from .plan import CommPlan

__all__ = ["phase_time_direct", "phase_time_tree", "phase_time_hypercube",
           "COLLECTIVE_ALGORITHMS", "phase_time"]


def phase_time_direct(
    plan: CommPlan, machine: MachineModel, slowdown: np.ndarray | None = None
) -> float:
    """Point-to-point: the plan's native cost (delegates to the plan)."""
    return plan.phase_time(machine, slowdown=slowdown)


def phase_time_tree(
    plan: CommPlan, machine: MachineModel, slowdown: np.ndarray | None = None
) -> float:
    """Binomial-tree routing per rank's send set.

    A rank with s distinct destinations pays ``alpha * ceil(log2(s+1))``
    latency instead of ``alpha * s``, but each of its payload words is
    stored-and-forwarded up to ``ceil(log2(s+1))`` times; receives
    symmetric. A win exactly when a rank talks to many peers with small
    payloads — the 1D scale-free regime.
    """
    if plan.nprocs == 0:
        return 0.0
    sizes = plan.message_sizes()
    sent_n = plan.sent_counts()
    recv_n = plan.recv_counts()
    sent_v = np.zeros(plan.nprocs)
    recv_v = np.zeros(plan.nprocs)
    np.add.at(sent_v, plan.src, sizes)
    np.add.at(recv_v, plan.dst, sizes)
    hops_s = np.ceil(np.log2(sent_n + 1.0))
    hops_r = np.ceil(np.log2(recv_n + 1.0))
    per_rank = (
        machine.alpha * (hops_s + hops_r)
        + machine.beta * (sent_v * np.maximum(hops_s, 1.0) + recv_v * np.maximum(hops_r, 1.0))
    )
    if slowdown is not None:
        per_rank = per_rank * slowdown
    return float(per_rank.max())


def phase_time_hypercube(
    plan: CommPlan, machine: MachineModel, slowdown: np.ndarray | None = None
) -> float:
    """HLP hypercube fold: d = ceil(log2 p) rounds, payloads combined.

    Every rank participates in all d rounds (alpha * d latency, flat). The
    routed volume per rank per round is bounded by its total traffic: a
    payload from s to t travels along the dimensions where s and t differ
    (on average d/2 hops), so we charge ``beta * (d/2) * traffic`` spread
    over rounds with the busiest rank setting the pace. Under stragglers
    the lock-step rounds make *every* round as slow as the slowest
    participant, so the whole phase scales by ``slowdown.max()``.
    """
    p = plan.nprocs
    if p <= 1:
        return 0.0
    d = int(np.ceil(np.log2(p)))
    sizes = plan.message_sizes()
    traffic = np.zeros(p)
    np.add.at(traffic, plan.src, sizes)
    np.add.at(traffic, plan.dst, sizes)
    max_traffic = float(traffic.max()) if len(traffic) else 0.0
    t = d * machine.alpha + machine.beta * (d / 2.0) * max_traffic
    if slowdown is not None and len(slowdown):
        t *= float(np.max(slowdown))
    return t


COLLECTIVE_ALGORITHMS = {
    "direct": phase_time_direct,
    "tree": phase_time_tree,
    "hypercube": phase_time_hypercube,
}


def phase_time(
    plan: CommPlan,
    machine: MachineModel,
    algorithm: str = "direct",
    slowdown: np.ndarray | None = None,
) -> float:
    """Phase cost under the named communication algorithm."""
    try:
        fn = COLLECTIVE_ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(COLLECTIVE_ALGORITHMS)}"
        ) from None
    return fn(plan, machine, slowdown=slowdown)
