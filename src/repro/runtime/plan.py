"""Communication plans (Epetra Import/Export equivalents).

A :class:`CommPlan` is the complete, explicit message schedule of one SpMV
communication phase: every (source, destination, index-list) triple. The
expand plan moves x-entries from their owners to consumers; the fold plan
moves partial y-sums from producers to row owners. All of the paper's
reported communication metrics — max messages per process, total
communication volume — fall directly out of this structure, exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .maps import Map

__all__ = ["CommPlan"]


@dataclass
class CommPlan:
    """Explicit point-to-point message schedule.

    Message *m* carries the values of global indices
    ``indices[ptr[m]:ptr[m+1]]`` from rank ``src[m]`` to rank ``dst[m]``.
    ``src[m] != dst[m]`` always — local data movement is not a message.
    """

    nprocs: int
    src: np.ndarray
    dst: np.ndarray
    ptr: np.ndarray
    indices: np.ndarray
    _by_src: list[np.ndarray] | None = field(default=None, repr=False)
    _by_dst: list[np.ndarray] | None = field(default=None, repr=False)
    _sent_counts: np.ndarray | None = field(default=None, repr=False)
    _recv_counts: np.ndarray | None = field(default=None, repr=False)
    _sent_volume: np.ndarray | None = field(default=None, repr=False)
    _recv_volume: np.ndarray | None = field(default=None, repr=False)

    @classmethod
    def build(cls, needed: list[np.ndarray], owner_map: Map) -> "CommPlan":
        """Build the plan that delivers ``needed[r]`` to each rank r.

        ``needed[r]`` lists the global indices rank r must receive;
        indices r already owns are skipped (no self-messages). Each
        message's indices are sorted ascending, which makes the payload
        layout deterministic on both sides.

        One sort-based pass over all (destination, index) pairs — no
        per-rank Python loop, so building a plan for 1024 ranks costs the
        same O(total log total) as for 4.
        """
        nprocs = owner_map.nprocs
        if len(needed) != nprocs:
            raise ValueError(f"needed has {len(needed)} entries, expected {nprocs}")
        empty = cls(
            nprocs=nprocs,
            src=np.empty(0, dtype=np.int64),
            dst=np.empty(0, dtype=np.int64),
            ptr=np.zeros(1, dtype=np.int64),
            indices=np.empty(0, dtype=np.int64),
        )
        lens = np.fromiter((len(a) for a in needed), dtype=np.int64, count=nprocs)
        if lens.sum() == 0:
            return empty
        dst_all = np.repeat(np.arange(nprocs, dtype=np.int64), lens)
        idx_all = np.concatenate([np.asarray(a, dtype=np.int64) for a in needed])
        # dedupe (dst, idx) pairs; ukey is sorted by dst then idx
        n = np.int64(owner_map.n)
        ukey = np.unique(dst_all * n + idx_all)
        dsts = ukey // n
        idxs = ukey - dsts * n
        owners = owner_map.owner[idxs]
        remote = owners != dsts
        dsts, idxs, owners = dsts[remote], idxs[remote], owners[remote]
        if len(idxs) == 0:
            return empty
        # message order: destination-major, then source; indices ascending
        order = np.lexsort((idxs, owners, dsts))
        dsts, idxs, owners = dsts[order], idxs[order], owners[order]
        cut = np.flatnonzero((np.diff(dsts) != 0) | (np.diff(owners) != 0)) + 1
        ptr = np.concatenate([[0], cut, [len(idxs)]]).astype(np.int64)
        return cls(
            nprocs=nprocs,
            src=owners[ptr[:-1]],
            dst=dsts[ptr[:-1]],
            ptr=ptr,
            indices=idxs,
        )

    # -- structure accessors -------------------------------------------------

    @property
    def nmessages(self) -> int:
        """Total number of point-to-point messages."""
        return len(self.src)

    def message_indices(self, m: int) -> np.ndarray:
        """Global indices carried by message *m* (view)."""
        return self.indices[self.ptr[m] : self.ptr[m + 1]]

    def message_sizes(self) -> np.ndarray:
        """Payload length (doubles) per message."""
        return np.diff(self.ptr)

    def messages_from(self, rank: int) -> np.ndarray:
        """Message ids sent by *rank* (cached grouping)."""
        if self._by_src is None:
            self._by_src = self._group(self.src)
        return self._by_src[rank]

    def messages_to(self, rank: int) -> np.ndarray:
        """Message ids received by *rank* (cached grouping)."""
        if self._by_dst is None:
            self._by_dst = self._group(self.dst)
        return self._by_dst[rank]

    def _group(self, key: np.ndarray) -> list[np.ndarray]:
        out = [np.empty(0, dtype=np.int64)] * self.nprocs
        if len(key) == 0:
            return out
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        cut = np.flatnonzero(np.diff(sorted_key)) + 1
        for block in np.split(order, cut):
            out[int(key[block[0]])] = block
        return out

    # -- per-rank statistics ---------------------------------------------------

    def sent_counts(self) -> np.ndarray:
        """Messages sent per rank (cached; treat as read-only)."""
        if self._sent_counts is None:
            self._sent_counts = np.bincount(self.src, minlength=self.nprocs)
        return self._sent_counts

    def recv_counts(self) -> np.ndarray:
        """Messages received per rank (cached; treat as read-only)."""
        if self._recv_counts is None:
            self._recv_counts = np.bincount(self.dst, minlength=self.nprocs)
        return self._recv_counts

    def sent_volume(self) -> np.ndarray:
        """Doubles sent per rank (cached; treat as read-only)."""
        if self._sent_volume is None:
            out = np.zeros(self.nprocs, dtype=np.int64)
            np.add.at(out, self.src, self.message_sizes())
            self._sent_volume = out
        return self._sent_volume

    def recv_volume(self) -> np.ndarray:
        """Doubles received per rank (cached; treat as read-only)."""
        if self._recv_volume is None:
            out = np.zeros(self.nprocs, dtype=np.int64)
            np.add.at(out, self.dst, self.message_sizes())
            self._recv_volume = out
        return self._recv_volume

    @property
    def total_volume(self) -> int:
        """Total doubles moved (the paper's "total CV" for this phase)."""
        return int(self.ptr[-1])

    def invariants(self) -> dict[str, int]:
        """The plan's exact, machine-independent invariants, as plain ints.

        These are the quantities the regression harness snapshots as golden
        values (see :mod:`repro.regress`): any refactor of plan construction
        or of the partitioners that changes the communication structure
        changes at least one of them. All are bit-exact — no floats.
        """
        sent, recv = self.sent_counts(), self.recv_counts()
        svol, rvol = self.sent_volume(), self.recv_volume()
        return {
            "messages": self.nmessages,
            "volume": self.total_volume,
            "max_sent_messages": int(sent.max()) if len(sent) else 0,
            "max_recv_messages": int(recv.max()) if len(recv) else 0,
            "max_sent_volume": int(svol.max()) if len(svol) else 0,
            "max_recv_volume": int(rvol.max()) if len(rvol) else 0,
        }

    def phase_time(self, machine, slowdown: np.ndarray | None = None) -> float:
        """Modeled wall-clock of this phase: max over ranks of send+recv.

        Each rank's cost is the sum over its messages of alpha + beta *
        payload, posted sends and receives both charged (no overlap — the
        conservative postal model). *slowdown*, when given, is a per-rank
        multiplier (>= 1 for stragglers) applied before the max — a slow
        rank stretches the whole phase because every peer waits on its
        sends and receives.
        """
        sizes = self.message_sizes()
        per_rank = np.zeros(self.nprocs)
        cost = machine.alpha + machine.beta * sizes
        np.add.at(per_rank, self.src, cost)
        np.add.at(per_rank, self.dst, cost)
        if slowdown is not None:
            per_rank *= slowdown
        return float(per_rank.max()) if self.nprocs else 0.0
