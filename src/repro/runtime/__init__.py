"""Simulated distributed-memory runtime.

This subpackage substitutes for MPI + Trilinos/Epetra (see DESIGN.md): p
logical ranks hold real local CSR blocks, SpMV executes the paper's four
phases (expand, local compute, fold, sum) with genuine data movement, and
an alpha-beta-gamma machine model converts the exact communication
structure into modeled wall-clock time. Communication metrics (max
messages, volumes, imbalance) are exact, machine-independent quantities.
"""

from .machine import MachineModel, CAB, HOPPER, ZERO_COMM, MACHINES
from .maps import Map
from .plan import CommPlan
from .trace import CostLedger, FaultEvent, SPMV_PHASES, FAULT_PHASES
from .distmatrix import DistSparseMatrix, DISTMATRIX_KERNELS, use_kernel
from .distvector import DistVectorSpace
from .engine import SpmvEngine, AbftCheck
from .threads import (
    THREAD_KERNELS,
    ApplyPlan,
    balanced_row_splits,
    default_threads,
    resolve_threads,
    set_default_threads,
)
from .store import (
    ARTIFACT_SCHEMA,
    EngineKey,
    EngineStore,
    LoadedEngine,
    StoreVerifyError,
    default_store_dir,
    matrix_hash,
)
from .metrics import CommStats, comm_stats, recovery_peers, max_recovery_peers
from .collectives import COLLECTIVE_ALGORITHMS, phase_time
from .migration import MigrationStats, migration_stats, price_pair_words
from .faults import (
    FailStop,
    Corruption,
    Straggler,
    FaultPlan,
    FaultConfig,
    RecoveryStats,
    FaultRunResult,
    CampaignCell,
    recovery_stats,
    run_with_faults,
    fault_campaign,
)

__all__ = [
    "MachineModel",
    "CAB",
    "HOPPER",
    "ZERO_COMM",
    "MACHINES",
    "Map",
    "CommPlan",
    "CostLedger",
    "FaultEvent",
    "SPMV_PHASES",
    "FAULT_PHASES",
    "DistSparseMatrix",
    "DISTMATRIX_KERNELS",
    "use_kernel",
    "DistVectorSpace",
    "SpmvEngine",
    "AbftCheck",
    "THREAD_KERNELS",
    "ApplyPlan",
    "balanced_row_splits",
    "default_threads",
    "resolve_threads",
    "set_default_threads",
    "ARTIFACT_SCHEMA",
    "EngineKey",
    "EngineStore",
    "LoadedEngine",
    "StoreVerifyError",
    "default_store_dir",
    "matrix_hash",
    "CommStats",
    "comm_stats",
    "recovery_peers",
    "max_recovery_peers",
    "COLLECTIVE_ALGORITHMS",
    "phase_time",
    "MigrationStats",
    "migration_stats",
    "price_pair_words",
    "FailStop",
    "Corruption",
    "Straggler",
    "FaultPlan",
    "FaultConfig",
    "RecoveryStats",
    "FaultRunResult",
    "CampaignCell",
    "recovery_stats",
    "run_with_faults",
    "fault_campaign",
]
