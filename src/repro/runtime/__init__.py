"""Simulated distributed-memory runtime.

This subpackage substitutes for MPI + Trilinos/Epetra (see DESIGN.md): p
logical ranks hold real local CSR blocks, SpMV executes the paper's four
phases (expand, local compute, fold, sum) with genuine data movement, and
an alpha-beta-gamma machine model converts the exact communication
structure into modeled wall-clock time. Communication metrics (max
messages, volumes, imbalance) are exact, machine-independent quantities.
"""

from .machine import MachineModel, CAB, HOPPER, ZERO_COMM, MACHINES
from .maps import Map
from .plan import CommPlan
from .trace import CostLedger, SPMV_PHASES
from .distmatrix import DistSparseMatrix
from .distvector import DistVectorSpace
from .engine import SpmvEngine
from .metrics import CommStats, comm_stats
from .collectives import COLLECTIVE_ALGORITHMS, phase_time
from .migration import MigrationStats, migration_stats

__all__ = [
    "MachineModel",
    "CAB",
    "HOPPER",
    "ZERO_COMM",
    "MACHINES",
    "Map",
    "CommPlan",
    "CostLedger",
    "SPMV_PHASES",
    "DistSparseMatrix",
    "DistVectorSpace",
    "SpmvEngine",
    "CommStats",
    "comm_stats",
    "COLLECTIVE_ALGORITHMS",
    "phase_time",
    "MigrationStats",
    "migration_stats",
]
