"""Distributed sparse matrix: per-rank local blocks + communication plans.

Mirrors Epetra's design (paper section 4): each rank holds the nonzeros a
layout assigns to it as a local CSR over *compressed* row/column index
sets; the row map / column map are exactly the global ids appearing in the
rank's nonzeros, the domain/range map is the vector distribution; and the
Importer (expand) / Exporter (fold) are derived from those maps alone —
"from these four maps Epetra can determine exactly what communication is
needed in SpMV".

The :meth:`DistSparseMatrix.spmv` method executes the paper's four phases
with genuine per-rank data movement (ghost values really are gathered from
the owner's buffer, partial sums really are shipped to the row owner), so
its result is bit-identical to ``A @ x`` only up to float addition order —
tests assert agreement to tight tolerance.

Cold-path kernels
-----------------
Construction and the gather/scatter helpers come in two kernels behind
the PR 5/6 dual-kernel convention (``DISTMATRIX_KERNELS`` /
:func:`use_kernel`): ``reference`` keeps the seed's per-rank Python
loops as the bit-identity oracle; ``vector`` (the default) assembles
every rank's local block from one ``lexsort`` over all nonzeros plus a
``bincount``-cumsum row pointer, and splits/merges vectors through the
:class:`~repro.runtime.maps.Map`'s grouped-index arrays. The two paths
produce bit-identical blocks, maps, and SpMV results —
``benchmarks/bench_coldstart.py`` gates that corpus-wide, the same
contract as the refine/coarsen kernels.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np
import scipy.sparse as sp

from ..graphs.csr import as_csr
from ..layouts.base import Layout
from .collectives import phase_time
from .engine import SpmvEngine
from .machine import CAB, MachineModel
from .maps import Map
from .plan import CommPlan
from .trace import CostLedger

__all__ = ["DistSparseMatrix", "DISTMATRIX_KERNELS", "use_kernel"]

#: Cold-path kernels (block assembly + vector gather/scatter); module
#: default is the vectorised one.
DISTMATRIX_KERNELS = ("vector", "reference")
_DEFAULT_KERNEL = "vector"


@contextmanager
def use_kernel(kernel: str):
    """Temporarily switch the module-default cold-path kernel (bench/test A/B)."""
    global _DEFAULT_KERNEL
    if kernel not in DISTMATRIX_KERNELS:
        raise ValueError(
            f"unknown distmatrix kernel {kernel!r}; choose from {DISTMATRIX_KERNELS}"
        )
    prev = _DEFAULT_KERNEL
    _DEFAULT_KERNEL = kernel
    try:
        yield
    finally:
        _DEFAULT_KERNEL = prev


def _resolve_kernel(kernel: str | None) -> str:
    """Validate *kernel*, defaulting to the module switch."""
    kernel = kernel if kernel is not None else _DEFAULT_KERNEL
    if kernel not in DISTMATRIX_KERNELS:
        raise ValueError(
            f"unknown distmatrix kernel {kernel!r}; choose from {DISTMATRIX_KERNELS}"
        )
    return kernel


class DistSparseMatrix:
    """A sparse matrix distributed over ``layout.nprocs`` simulated ranks."""

    def __init__(
        self,
        A,
        layout: Layout,
        machine: MachineModel = CAB,
        kernel: str | None = None,
    ):
        kernel = _resolve_kernel(kernel)
        self._kernel = kernel
        A = as_csr(A)
        if A.shape[0] != A.shape[1]:
            raise ValueError(f"square matrices only, got {A.shape}")
        if A.shape[0] != layout.n:
            raise ValueError(f"matrix dim {A.shape[0]} != layout dim {layout.n}")
        self.A_global = A
        self.layout = layout
        self.machine = machine
        self.nprocs = layout.nprocs
        self.n = A.shape[0]
        self.vector_map = Map(layout.vector_part, layout.nprocs)

        coo = A.tocoo()
        ranks = np.asarray(layout.nonzero_owner(coo.row, coo.col), dtype=np.int64)
        order = np.argsort(ranks, kind="stable")
        rows = coo.row[order].astype(np.int64)
        cols = coo.col[order].astype(np.int64)
        vals = coo.data[order]
        ranks_s = ranks[order]
        counts = np.bincount(ranks, minlength=self.nprocs)
        starts = np.concatenate([[0], np.cumsum(counts)])

        # Per-rank compressed index sets in one sort-based pass over all
        # nonzeros (no per-rank np.unique/searchsorted): unique (rank, id)
        # keys give every rank's sorted map, and each nonzero's local id is
        # its key's offset within the rank's segment.
        def per_rank_unique(ids: np.ndarray):
            key = ranks_s * np.int64(self.n) + ids
            uniq = np.unique(key)
            urank = uniq // self.n
            uid = uniq - urank * self.n
            seg = np.searchsorted(urank, np.arange(self.nprocs + 1))
            local = np.searchsorted(uniq, key) - seg[ranks_s]
            return uid, seg, local

        urow, rseg, lr = per_rank_unique(rows)
        ucol, cseg, lc = per_rank_unique(cols)
        self.local_nnz = counts.astype(np.int64)
        if kernel == "reference":
            # seed form: one COO->CSR conversion per rank
            self.row_maps: list[np.ndarray] = []  # global rows on rank
            self.col_maps: list[np.ndarray] = []  # global cols on rank
            self.local_blocks: list[sp.csr_matrix] = []
            for r in range(self.nprocs):
                sl = slice(starts[r], starts[r + 1])
                rmap = urow[rseg[r] : rseg[r + 1]]
                cmap = ucol[cseg[r] : cseg[r + 1]]
                block = sp.csr_matrix(
                    (vals[sl], (lr[sl], lc[sl])), shape=(len(rmap), len(cmap))
                )
                self.row_maps.append(rmap)
                self.col_maps.append(cmap)
                self.local_blocks.append(block)
        else:
            # One (rank, row, col) lexsort over all nonzeros replaces the
            # per-rank conversions: within a rank that order *is* the
            # canonical CSR entry order scipy's COO->CSR produces (row
            # sort is stable, sum_duplicates sorts columns within rows;
            # layouts assign each nonzero to one rank, so there are no
            # duplicates to sum and the data vectors match bit-for-bit).
            self.row_maps = np.split(urow, rseg[1:-1])
            self.col_maps = np.split(ucol, cseg[1:-1])
            order2 = np.lexsort((lc, lr, ranks_s))
            data2 = vals[order2]
            lc2 = lc[order2]
            # concatenated row pointers over all ranks' compressed rows
            # (bincount is order-free, so it runs on the pre-sort arrays)
            row_counts = np.bincount(
                rseg[ranks_s] + lr, minlength=int(rseg[-1])
            )
            indptr_all = np.concatenate(
                [[0], np.cumsum(row_counts)]
            ).astype(np.int64)
            self.local_blocks = []
            for r in range(self.nprocs):
                r0, r1 = int(rseg[r]), int(rseg[r + 1])
                block = sp.csr_matrix((r1 - r0, int(cseg[r + 1] - cseg[r])))
                i0, i1 = int(starts[r]), int(starts[r + 1])
                block.data = data2[i0:i1]
                block.indices = lc2[i0:i1]
                block.indptr = indptr_all[r0 : r1 + 1] - indptr_all[r0]
                self.local_blocks.append(block)

        # Importer: deliver x-entries listed in each rank's column map
        self.import_plan = CommPlan.build(self.col_maps, self.vector_map)
        # Exporter: ship partial y-sums for non-owned rows to the row owner.
        # Structurally this is the import pattern on the row maps with the
        # message direction reversed (owner <- producer).
        fold_forward = CommPlan.build(self.row_maps, self.vector_map)
        self.fold_plan = CommPlan(
            nprocs=fold_forward.nprocs,
            src=fold_forward.dst,
            dst=fold_forward.src,
            ptr=fold_forward.ptr,
            indices=fold_forward.indices,
        )
        self._verify_plans()
        self._engine: SpmvEngine | None = None

    def _verify_plans(self) -> None:
        """Check plan/ownership consistency once, at build time.

        Every import payload must come from the owner of its indices and
        every fold payload must go *to* the owner of its rows. With this
        established the hot paths skip per-message ownership validation
        (``Map.local_ids(..., validate=False)``).
        """
        vm = self.vector_map
        ip, fp = self.import_plan, self.fold_plan
        if not np.array_equal(
            vm.owner[ip.indices], np.repeat(ip.src, ip.message_sizes())
        ):
            raise ValueError("import plan sends indices their source does not own")
        if not np.array_equal(
            vm.owner[fp.indices], np.repeat(fp.dst, fp.message_sizes())
        ):
            raise ValueError("fold plan ships rows their destination does not own")

    @property
    def engine(self) -> SpmvEngine:
        """The compiled executor (built lazily on first apply)."""
        if self._engine is None:
            self._engine = SpmvEngine(self)
        return self._engine

    # -- data movement helpers ---------------------------------------------

    def scatter_vector(self, x: np.ndarray) -> list[np.ndarray]:
        """Split a global vector into per-rank owned segments.

        The vector kernel performs one fancy gather in the map's grouped
        order and splits it — the segments are the same values in the
        same (ascending global id) order as the reference's per-rank
        gathers, bit for bit.
        """
        if x.shape != (self.n,):
            raise ValueError(f"vector shape {x.shape} != ({self.n},)")
        if self._kernel == "reference":
            return [x[self.vector_map.indices_of(r)] for r in range(self.nprocs)]
        vm = self.vector_map
        return np.split(x[vm.grouped_indices()], vm.starts()[1:-1])

    def gather_vector(self, parts: list[np.ndarray]) -> np.ndarray:
        """Reassemble per-rank owned segments into a global vector.

        The vector kernel concatenates once and scatters through the
        grouped-index array; each global slot is written exactly once
        (ownership partitions the index space), so the result is
        bit-identical to the reference's per-rank assignments.
        """
        out = np.empty(self.n)
        if self._kernel == "reference":
            for r in range(self.nprocs):
                out[self.vector_map.indices_of(r)] = parts[r]
            return out
        vm = self.vector_map
        out[vm.grouped_indices()] = np.concatenate(parts) if parts else []
        return out

    # -- the four-phase SpMV ---------------------------------------------------

    def spmv(
        self,
        x: np.ndarray,
        ledger: CostLedger | None = None,
        reference: bool = False,
    ) -> np.ndarray:
        """y = A x with explicit expand / local-compute / fold / sum phases.

        Charges modeled per-phase time to *ledger* when given. The data
        movement is real: every ghost value crosses a message buffer, every
        remote partial sum is shipped and accumulated at the owner.

        By default the compiled :class:`~repro.runtime.engine.SpmvEngine`
        executes the phases (index plans flattened once, buffers reused);
        ``reference=True`` runs the original per-message loops instead.
        The two paths are bit-identical — same values moved, same per-slot
        summation order — which ``tests/test_engine.py`` asserts exactly.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n,):
            raise ValueError(f"vector shape {x.shape} != ({self.n},)")
        y = self._spmv_reference(x) if reference else self.engine.spmv(x)
        if ledger is not None:
            self.charge_spmv(ledger)
        return y

    def _spmv_reference(self, x: np.ndarray) -> np.ndarray:
        """The per-message four-phase executor (the engine's ground truth)."""
        vm = self.vector_map
        x_owned = self.scatter_vector(x)

        # --- phase 1: expand ---
        x_local: list[np.ndarray] = []
        for r in range(self.nprocs):
            cmap = self.col_maps[r]
            buf = np.zeros(len(cmap))
            own = vm.owner[cmap] == r
            if own.any():
                buf[own] = x_owned[r][vm.local_ids(cmap[own], r, validate=False)]
            x_local.append(buf)
        for m in range(self.import_plan.nmessages):
            s = int(self.import_plan.src[m])
            d = int(self.import_plan.dst[m])
            idx = self.import_plan.message_indices(m)
            payload = x_owned[s][vm.local_ids(idx, s, validate=False)]  # "send"
            x_local[d][np.searchsorted(self.col_maps[d], idx)] = payload  # "recv"

        # --- phase 2: local compute ---
        y_partial = [self.local_blocks[r] @ x_local[r] for r in range(self.nprocs)]

        # --- phases 3+4: fold and sum ---
        y_owned = [np.zeros(c) for c in vm.counts()]
        for r in range(self.nprocs):
            rmap = self.row_maps[r]
            own = vm.owner[rmap] == r
            if own.any():
                np.add.at(
                    y_owned[r],
                    vm.local_ids(rmap[own], r, validate=False),
                    y_partial[r][own],
                )
        for m in range(self.fold_plan.nmessages):
            s = int(self.fold_plan.src[m])
            d = int(self.fold_plan.dst[m])
            idx = self.fold_plan.message_indices(m)
            payload = y_partial[s][np.searchsorted(self.row_maps[s], idx)]
            np.add.at(y_owned[d], vm.local_ids(idx, d, validate=False), payload)

        return self.gather_vector(y_owned)

    def spmm(self, X: np.ndarray, ledger: CostLedger | None = None) -> np.ndarray:
        """Y = A X for an (n, k) block — k SpMVs through one compiled pass.

        Column j is bit-identical to ``spmv(X[:, j])``; the modeled cost
        charged to *ledger* is exactly k single-vector SpMVs (the cost
        model prices the scheduled messages, which are the same — block
        execution changes constants the model deliberately ignores).
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != self.n:
            raise ValueError(f"block shape {X.shape} != ({self.n}, k)")
        Y = self.engine.spmm(X)
        if ledger is not None and X.shape[1]:
            self.charge_spmv(ledger, count=X.shape[1])
        return Y

    # -- cost model ------------------------------------------------------------

    def charge_spmv(self, ledger: CostLedger, count: int = 1,
                    algorithm: str = "direct",
                    slowdown: np.ndarray | None = None) -> None:
        """Charge the modeled cost of *count* SpMVs to *ledger*.

        The communication structure is iteration-invariant, so cost scales
        linearly — this is how benches model "time for 100 SpMV" from one
        executed multiply. ``algorithm`` selects the communication model
        for the expand/fold phases ("direct", "tree" or "hypercube"; see
        :mod:`repro.runtime.collectives` and the paper's reference [18]).

        *slowdown* is an optional per-rank multiplier (>= 1 for
        stragglers, from :mod:`repro.runtime.faults`): every phase is a
        max-over-ranks, so one slow rank stretches all four phases.
        """
        mach = self.machine
        ledger.add("expand",
                   count * phase_time(self.import_plan, mach, algorithm, slowdown))
        flops_per_rank = 2.0 * self.local_nnz.astype(np.float64)
        if slowdown is not None:
            flops_per_rank = flops_per_rank * slowdown
        flops = flops_per_rank.max() if self.nprocs else 0.0
        ledger.add("local-compute", count * mach.compute_time(flops))
        ledger.add("fold",
                   count * phase_time(self.fold_plan, mach, algorithm, slowdown))
        recv = self.fold_plan.recv_volume().astype(np.float64)
        if slowdown is not None:
            recv = recv * slowdown
        sum_cost = mach.gamma_mem * (recv.max() if len(recv) else 0.0)
        ledger.add("sum", count * float(sum_cost))

    def modeled_spmv_seconds(self, count: int = 1, algorithm: str = "direct") -> float:
        """Modeled seconds for *count* SpMV operations."""
        ledger = CostLedger()
        self.charge_spmv(ledger, count, algorithm=algorithm)
        return ledger.spmv_total()

    # -- memory model ----------------------------------------------------------

    def memory_per_rank(self) -> np.ndarray:
        """Bytes each rank needs for its share of the problem.

        Counts the local CSR block (8-byte values + 4-byte column indices +
        4-byte row pointers over the compressed index sets), the owned
        vector entries (x and y, 8 bytes each), and the ghost/receive
        buffers implied by the communication plans. This is the quantity
        behind the paper's out-of-memory warning for imbalanced block
        layouts — a 130x nonzero imbalance is a 130x memory spike.
        """
        nnz = self.local_nnz.astype(np.int64)
        local_rows = np.array([len(r) for r in self.row_maps], dtype=np.int64)
        local_cols = np.array([len(c) for c in self.col_maps], dtype=np.int64)
        owned = self.vector_map.counts().astype(np.int64)
        ghosts = self.import_plan.recv_volume().astype(np.int64)
        fold_buf = self.fold_plan.recv_volume().astype(np.int64)
        matrix_bytes = 12 * nnz + 4 * (local_rows + 1)
        vector_bytes = 8 * (2 * owned + local_cols + ghosts + fold_buf)
        return matrix_bytes + vector_bytes

    def memory_imbalance(self) -> float:
        """Max/avg per-rank memory footprint (1.0 = even)."""
        mem = self.memory_per_rank()
        avg = max(mem.mean(), 1e-300)
        return float(mem.max() / avg)
