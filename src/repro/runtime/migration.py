"""Data redistribution (migration) cost between layouts.

The paper (section 3.1): "We also expect the data redistribution
(migration) time to be similar to 1D partitioning." Migration is what a
production system pays once to move from the ingest distribution
(typically 1D-Block, the order data arrives in) to the compute
distribution; this module computes that cost exactly — which nonzeros and
vector entries change ranks — and prices it with the machine model, so the
claim can be checked (``benchmarks/bench_ablation_migration.py``) and
users can amortise partitioning against SpMV savings (the paper's
section 5.1 trade-off).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import as_csr
from .machine import CAB, MachineModel

__all__ = ["MigrationStats", "migration_stats", "price_pair_words"]

#: doubles-equivalent on the wire per moved nonzero: value + row + column
#: index (Epetra ships (i, j, a_ij) triples during redistribution)
_NNZ_WORDS = 3
#: per moved vector entry: value + global index
_VEC_WORDS = 2


@dataclass(frozen=True)
class MigrationStats:
    """Cost of moving a matrix + vector from one layout to another."""

    moved_nonzeros: int
    moved_vector_entries: int
    total_words: int
    #: busiest rank's (sent + received) words
    max_rank_words: int
    #: messages in the busiest rank's schedule
    max_rank_messages: int
    modeled_seconds: float


def price_pair_words(
    pair_words: dict[tuple[int, int], int],
    nprocs: int,
    machine: MachineModel,
) -> tuple[float, int, int, int]:
    """Price a per-(source, destination) word schedule with alpha-beta.

    Each (s, d) pair is one message of ``pair_words[(s, d)]`` doubles; a
    rank's cost is the sum over its sends and receives of alpha + beta *
    payload, and the modeled wall-clock is the busiest rank's cost — the
    same postal accounting :meth:`CommPlan.phase_time` applies to SpMV
    phases. Negative ranks denote non-rank endpoints (checkpoint storage
    in the recovery model); their payloads are priced on the rank side
    only. Returns ``(modeled_seconds, max_rank_words, max_rank_messages,
    total_words)`` — the schedule-independent summary both migration and
    fail-stop recovery (:mod:`repro.runtime.faults`) report.
    """
    sent_w = np.zeros(nprocs, dtype=np.int64)
    recv_w = np.zeros(nprocs, dtype=np.int64)
    sent_m = np.zeros(nprocs, dtype=np.int64)
    recv_m = np.zeros(nprocs, dtype=np.int64)
    for (s, d), w in pair_words.items():
        if s >= 0:
            sent_w[s] += w
            sent_m[s] += 1
        if d >= 0:
            recv_w[d] += w
            recv_m[d] += 1
    per_rank_t = machine.alpha * (sent_m + recv_m) + machine.beta * (sent_w + recv_w)
    total_words = int(sum(pair_words.values()))
    rank_words = sent_w + recv_w
    rank_msgs = np.maximum(sent_m, recv_m)
    return (
        float(per_rank_t.max()) if nprocs else 0.0,
        int(rank_words.max()) if nprocs else 0,
        int(rank_msgs.max()) if nprocs else 0,
        total_words,
    )


def migration_stats(
    A,
    layout_from,
    layout_to,
    machine: MachineModel = CAB,
) -> MigrationStats:
    """Exact migration plan statistics from *layout_from* to *layout_to*.

    Both layouts must cover the same matrix. Every nonzero whose owner
    changes ships an (i, j, value) triple; every vector entry whose owner
    changes ships an (index, value) pair. Message counts are per distinct
    (source, destination) pair, the all-to-allv a real redistribution
    performs.
    """
    A = as_csr(A)
    coo = A.tocoo()
    src_nnz = np.asarray(layout_from.nonzero_owner(coo.row, coo.col), dtype=np.int64)
    dst_nnz = np.asarray(layout_to.nonzero_owner(coo.row, coo.col), dtype=np.int64)
    nprocs = max(layout_from.nprocs, layout_to.nprocs)

    moved = src_nnz != dst_nnz
    src_v = np.asarray(layout_from.vector_part, dtype=np.int64)
    dst_v = np.asarray(layout_to.vector_part, dtype=np.int64)
    moved_v = src_v != dst_v

    # per-(src, dst) word counts over both payload kinds
    pair_words: dict[tuple[int, int], int] = {}
    if moved.any():
        keys = src_nnz[moved] * nprocs + dst_nnz[moved]
        uniq, counts = np.unique(keys, return_counts=True)
        for key, c in zip(uniq.tolist(), counts.tolist()):
            pair = (key // nprocs, key % nprocs)
            pair_words[pair] = pair_words.get(pair, 0) + _NNZ_WORDS * c
    if moved_v.any():
        keys = src_v[moved_v] * nprocs + dst_v[moved_v]
        uniq, counts = np.unique(keys, return_counts=True)
        for key, c in zip(uniq.tolist(), counts.tolist()):
            pair = (key // nprocs, key % nprocs)
            pair_words[pair] = pair_words.get(pair, 0) + _VEC_WORDS * c

    seconds, max_words, max_msgs, total_words = price_pair_words(
        pair_words, nprocs, machine
    )
    return MigrationStats(
        moved_nonzeros=int(moved.sum()),
        moved_vector_entries=int(moved_v.sum()),
        total_words=total_words,
        max_rank_words=max_words,
        max_rank_messages=max_msgs,
        modeled_seconds=seconds,
    )
