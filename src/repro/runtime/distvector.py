"""Distributed dense vectors and multivectors with cost accounting.

Elementwise vector arithmetic needs no communication, so the *values* are
held globally (the math is identical to the per-rank computation); what a
distribution changes is the *time*: each rank streams only its owned
entries, so every operation is charged ``gamma_mem * (streamed doubles on
the busiest rank)`` plus a log-p latency tree for reductions. This is
precisely the mechanism behind the paper's Table 5: under 2D-GP the
hollywood-2009 vector imbalance reaches 45.6, and vector-heavy solver
phases (orthogonalisation) blow up even though SpMV itself is fast —
multiconstraint partitioning (2D-GP-MC) fixes it.
"""

from __future__ import annotations

import numpy as np

from .machine import CAB, MachineModel
from .maps import Map
from .trace import CostLedger

__all__ = ["DistVectorSpace"]


class DistVectorSpace:
    """Factory/cost-model for vectors distributed by a :class:`Map`.

    A "space" bundles the ownership map, the machine model and the ledger;
    solvers create one and route every dense operation through it so that
    vector imbalance is charged consistently.
    """

    def __init__(self, vmap: Map, machine: MachineModel = CAB, ledger: CostLedger | None = None):
        self.map = vmap
        self.machine = machine
        self.ledger = ledger if ledger is not None else CostLedger()
        self._max_local = int(vmap.counts().max()) if vmap.nprocs else 0

    @property
    def n(self) -> int:
        """Global vector length."""
        return self.map.n

    def _charge(self, streamed_per_entry: float, reductions: int = 0) -> None:
        t = self.machine.gamma_mem * streamed_per_entry * self._max_local
        if reductions:
            t += reductions * self.machine.allreduce_time(self.map.nprocs)
        self.ledger.add("vector-ops", t)

    # -- operations (numerics global, cost distributed) ---------------------

    def dot(self, x: np.ndarray, y: np.ndarray) -> float:
        """Global inner product: local dot + allreduce."""
        self._charge(2.0, reductions=1)
        return float(x @ y)

    def norm(self, x: np.ndarray) -> float:
        """2-norm: local sum of squares + allreduce + sqrt."""
        self._charge(2.0, reductions=1)
        return float(np.linalg.norm(x))

    def axpy(self, a: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return ``a*x + y`` (3 streams per owned entry: read x,y, write)."""
        self._charge(3.0)
        return a * x + y

    def scale(self, a: float, x: np.ndarray) -> np.ndarray:
        """Return ``a*x``."""
        self._charge(2.0)
        return a * x

    def multi_dot(self, basis: np.ndarray, x: np.ndarray) -> np.ndarray:
        """``basis.T @ x`` for an (n, m) basis: one fused pass + allreduce.

        The classical-Gram-Schmidt projection kernel: m dot products that
        share one sweep over x, then a single m-word allreduce. *x* may be
        an (n, b) block (block solvers): cost scales with b.
        """
        m = basis.shape[1] if basis.ndim == 2 else 1
        b = x.shape[1] if x.ndim == 2 else 1
        self._charge(float(b * (m + 1)), reductions=0)
        self.ledger.add("vector-ops", self.machine.allreduce_time(self.map.nprocs, m * b))
        return basis.T @ x

    def multi_axpy(self, basis: np.ndarray, coef: np.ndarray, x: np.ndarray) -> np.ndarray:
        """``x - basis @ coef``: the CGS update sweep (block-aware)."""
        m = basis.shape[1] if basis.ndim == 2 else 1
        b = x.shape[1] if x.ndim == 2 else 1
        self._charge(float(b * (m + 2)))
        return x - basis @ coef

    def qr(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Thin QR of an (n, b) block — the block-Lanczos normalisation.

        Modeled as TSQR: each rank factorises its owned rows (2*n_local*b^2
        flops) and the b x b R factors combine up a log-p tree.
        """
        b = X.shape[1] if X.ndim == 2 else 1
        self.ledger.add(
            "vector-ops",
            self.machine.gamma_flop * 2.0 * self._max_local * b * b
            + self.machine.gamma_mem * float(self._max_local) * 2.0 * b
            + self.machine.allreduce_time(self.map.nprocs, b * b),
        )
        Q, R = np.linalg.qr(X.reshape(len(X), -1))
        return Q, R

    def charge_checkpoint(self, ncols: int) -> float:
        """Charge one coordinated snapshot of *ncols* distributed vectors.

        Every rank streams its owned slice of the basis to stable storage —
        one alpha message plus beta per double, the busiest rank setting
        the pace (the same postal accounting as a communication phase) —
        charged to the ``checkpoint`` phase. Returns the modeled seconds.
        """
        t = self.machine.alpha + self.machine.beta * float(self._max_local) * ncols
        self.ledger.add("checkpoint", t)
        return t

    def gemm(self, V: np.ndarray, S: np.ndarray) -> np.ndarray:
        """``V @ S`` (basis rotation at a thick restart).

        Each rank transforms its owned rows: ``2*m*l`` flops per owned row
        plus streaming the old basis in and the new one out.
        """
        m, l = S.shape
        self.ledger.add(
            "vector-ops",
            self.machine.gamma_flop * 2.0 * self._max_local * m * l
            + self.machine.gamma_mem * float(self._max_local) * (m + l),
        )
        return V @ S
