"""Deterministic fault injection and recovery for the simulated machine.

The paper's argument is about behaviour at scale (64-16,384 processes),
and at those process counts real runs lose ranks, absorb silent data
corruption, and wait on stragglers. This module lets the simulator ask a
question the paper could not: *do 2D Cartesian layouts also win on
resilience?* Every fault, detection and repair is costed with the same
alpha-beta-gamma accounting that prices SpMV and migration, so the
resilience overhead of a layout is directly comparable to its SpMV time.

Three fault classes, all scheduled by a seeded :class:`FaultPlan`:

**Fail-stop** — a rank dies at iteration t. Detection is timeout-based
(priced as a multiple of the expected iteration time plus a consensus
allreduce, charged to the ``detect`` phase). Recovery restores the dead
rank's blocks and owned vector entries from checkpoint storage onto a
spare (or spreads them over survivors) and re-syncs with exactly the
ranks the victim exchanged messages with — so for 2D Cartesian layouts
the repair touches at most ``pr + pc - 2`` peers (the process row and
column), while a 1D layout of a scale-free graph talks to nearly
everyone. :func:`recovery_stats` computes the traffic exactly and prices
it through :func:`repro.runtime.migration.price_pair_words`.

**Silent data corruption** — a seeded perturbation injected into an
expand payload (a ghost x-value), a local CSR value, or a fold payload in
transit. Detection is Huang-Abraham ABFT: the engine's precomputed
checksum vectors (:meth:`repro.runtime.engine.SpmvEngine.abft_check`)
verify each rank's partial-sum buffer and the folded result at O(n/p)
modeled cost per SpMV, charged to ``detect``. A detected corruption
triggers a recompute of the iteration, charged to ``recover``.

**Stragglers** — per-rank slowdown multipliers folded into the
max-over-ranks phase times (every SpMV phase is bulk-synchronous, so one
slow rank stretches them all; see ``slowdown=`` in
:meth:`CommPlan.phase_time <repro.runtime.plan.CommPlan.phase_time>` and
:mod:`repro.runtime.collectives`).

Everything is deterministic: the same seed produces the same
:class:`FaultPlan`, the same injected values, the same detection
verdicts, and the same modeled seconds, bit-for-bit — which is what makes
fault campaigns regression-testable.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from .engine import ABFT_RTOL
from .machine import MachineModel
from .metrics import max_recovery_peers
from .migration import price_pair_words
from .trace import CostLedger, FaultEvent

if TYPE_CHECKING:  # avoid a hard import cycle in type hints only
    from .distmatrix import DistSparseMatrix

__all__ = [
    "FailStop",
    "Corruption",
    "Straggler",
    "FaultPlan",
    "FaultConfig",
    "RecoveryStats",
    "InjectionRecord",
    "FaultRunResult",
    "CampaignCell",
    "recovery_stats",
    "straggler_overhead_seconds",
    "abft_detect_seconds",
    "checkpoint_write_seconds",
    "run_with_faults",
    "fault_campaign",
]

#: Corruption phases an injection can target.
CORRUPTION_PHASES = ("expand", "compute", "fold")

#: Fail-stop recovery strategies.
RECOVERY_STRATEGIES = ("spare", "redistribute")


# ---------------------------------------------------------------------------
# fault classes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FailStop:
    """Rank *rank* dies at the start of iteration *iteration*."""

    iteration: int
    rank: int


@dataclass(frozen=True)
class Corruption:
    """One silent-data-corruption injection.

    ``phase`` picks the pipeline point: ``"expand"`` perturbs a ghost
    x-value delivered to *rank*, ``"compute"`` perturbs one stored CSR
    value of *rank*'s block, ``"fold"`` perturbs a partial-sum payload
    *rank* ships to a row owner (after the producer-side checksum, so only
    the global fold checksum can catch it). ``magnitude`` is the relative
    size of the perturbation (default 1e-3 — five orders above the
    detection threshold's reassociation noise).
    """

    iteration: int
    rank: int
    phase: str = "compute"
    magnitude: float = 1e-3


@dataclass(frozen=True)
class Straggler:
    """Rank *rank* runs *factor* x slower for *duration* iterations."""

    rank: int
    start: int
    duration: int = 5
    factor: float = 4.0


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seeded schedule of faults against one run.

    The plan is layout-independent (it speaks in ranks and iterations),
    so the same plan can be replayed against every layout of a campaign —
    the fair-comparison analogue of reusing one rpart across 1D and 2D.
    """

    nprocs: int
    iterations: int
    seed: int = 0
    failstops: tuple[FailStop, ...] = ()
    corruptions: tuple[Corruption, ...] = ()
    stragglers: tuple[Straggler, ...] = ()

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {self.nprocs}")
        if self.iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {self.iterations}")
        for ev in self.failstops + self.corruptions:
            if not 0 <= ev.rank < self.nprocs:
                raise ValueError(f"event rank {ev.rank} out of range [0, {self.nprocs})")
            if not 0 <= ev.iteration < max(self.iterations, 1):
                raise ValueError(
                    f"event iteration {ev.iteration} outside run of {self.iterations}"
                )
        for c in self.corruptions:
            if c.phase not in CORRUPTION_PHASES:
                raise ValueError(
                    f"corruption phase {c.phase!r} not in {CORRUPTION_PHASES}"
                )
            if not (math.isfinite(c.magnitude) and c.magnitude > 0):
                raise ValueError(f"corruption magnitude must be > 0, got {c.magnitude}")
        for s in self.stragglers:
            if not 0 <= s.rank < self.nprocs:
                raise ValueError(f"straggler rank {s.rank} out of range")
            if s.duration < 1 or not math.isfinite(s.factor) or s.factor < 1.0:
                raise ValueError(
                    f"straggler needs duration >= 1 and factor >= 1, got {s}"
                )

    @classmethod
    def from_rates(
        cls,
        nprocs: int,
        iterations: int,
        seed: int = 0,
        failstop_rate: float = 0.0,
        corruption_rate: float = 0.0,
        straggler_rate: float = 0.0,
        corruption_magnitude: float = 1e-3,
        straggler_factor: float = 4.0,
        straggler_duration: int = 5,
    ) -> "FaultPlan":
        """Sample a plan from per-iteration event probabilities.

        One Bernoulli draw per fault class per iteration, in a fixed
        order, from ``default_rng(SeedSequence(seed))`` — the same
        ``(nprocs, iterations, seed, rates)`` always yields the same plan.
        """
        rng = np.random.default_rng(np.random.SeedSequence(seed))
        failstops: list[FailStop] = []
        corruptions: list[Corruption] = []
        stragglers: list[Straggler] = []
        for t in range(iterations):
            if failstop_rate and rng.random() < failstop_rate:
                failstops.append(FailStop(t, int(rng.integers(nprocs))))
            if corruption_rate and rng.random() < corruption_rate:
                phase = CORRUPTION_PHASES[int(rng.integers(len(CORRUPTION_PHASES)))]
                corruptions.append(
                    Corruption(t, int(rng.integers(nprocs)), phase, corruption_magnitude)
                )
            if straggler_rate and rng.random() < straggler_rate:
                stragglers.append(
                    Straggler(int(rng.integers(nprocs)), t,
                              straggler_duration, straggler_factor)
                )
        return cls(
            nprocs=nprocs,
            iterations=iterations,
            seed=seed,
            failstops=tuple(failstops),
            corruptions=tuple(corruptions),
            stragglers=tuple(stragglers),
        )

    # -- per-iteration views -------------------------------------------------

    def failstops_at(self, t: int) -> list[FailStop]:
        """Fail-stop events scheduled for iteration *t*."""
        return [f for f in self.failstops if f.iteration == t]

    def corruptions_at(self, t: int) -> list[Corruption]:
        """Corruption events scheduled for iteration *t*."""
        return [c for c in self.corruptions if c.iteration == t]

    def slowdown_at(self, t: int) -> np.ndarray | None:
        """Per-rank slowdown multipliers at iteration *t* (None = all 1)."""
        active = [s for s in self.stragglers if s.start <= t < s.start + s.duration]
        if not active:
            return None
        slow = np.ones(self.nprocs)
        for s in active:
            slow[s.rank] = max(slow[s.rank], s.factor)
        return slow

    @property
    def nevents(self) -> int:
        """Total scheduled fault events."""
        return len(self.failstops) + len(self.corruptions) + len(self.stragglers)

    def as_dict(self) -> dict:
        """JSON-serializable view (bit-reproducibility checks, CLI)."""
        return {
            "nprocs": self.nprocs,
            "iterations": self.iterations,
            "seed": self.seed,
            "failstops": [asdict(f) for f in self.failstops],
            "corruptions": [asdict(c) for c in self.corruptions],
            "stragglers": [asdict(s) for s in self.stragglers],
        }


@dataclass(frozen=True)
class FaultConfig:
    """Knobs of the fault-tolerant runtime (not of the fault schedule).

    ``abft`` switches the always-on checksum verification (and its per-SpMV
    ``detect`` charge); ``checkpoint_interval`` is the number of iterations
    between state snapshots (0 disables both the snapshots and the rollback
    bound — a fail-stop then replays from iteration 0);
    ``detect_timeout_factor`` prices fail-stop detection as that multiple
    of the expected iteration time; ``execute_numerics=None`` runs real
    injected SpMVs exactly when the plan schedules corruption (campaigns
    that only model fail-stop/straggler cost skip the numerics).
    """

    abft: bool = True
    abft_rtol: float = ABFT_RTOL
    checkpoint_interval: int = 10
    detect_timeout_factor: float = 3.0
    recovery_strategy: str = "spare"
    execute_numerics: bool | None = None

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")
        if self.recovery_strategy not in RECOVERY_STRATEGIES:
            raise ValueError(
                f"recovery_strategy {self.recovery_strategy!r} not in "
                f"{RECOVERY_STRATEGIES}"
            )
        if not math.isfinite(self.detect_timeout_factor) or self.detect_timeout_factor < 0:
            raise ValueError("detect_timeout_factor must be finite and >= 0")


# ---------------------------------------------------------------------------
# detection / checkpoint / recovery cost models
# ---------------------------------------------------------------------------


def abft_detect_seconds(dist: "DistSparseMatrix") -> float:
    """Modeled per-SpMV cost of the ABFT checksum verification.

    Each rank sums its partial buffer and evaluates one checksum dot over
    its compressed column set — O(n/p) streaming on the busiest rank —
    then all ranks agree through a one-word allreduce. This is the
    always-on overhead ABFT charges even in fault-free runs.
    """
    if dist.nprocs == 0:
        return 0.0
    per_rank = np.fromiter(
        (len(rm) + len(cm) for rm, cm in zip(dist.row_maps, dist.col_maps)),
        dtype=np.float64,
        count=dist.nprocs,
    )
    mach = dist.machine
    return float(mach.gamma_mem * per_rank.max() + mach.allreduce_time(dist.nprocs, 1))


def checkpoint_write_seconds(dist: "DistSparseMatrix", words_per_entry: int = 2) -> float:
    """Modeled cost of one coordinated checkpoint of the vector state.

    Every rank streams its owned entries (x and y by default — the
    iterate state a rollback needs; the matrix itself is immutable and
    checkpointed once, off the critical path) to stable storage, priced
    as one alpha message plus beta per word, busiest rank setting the
    pace — the same postal accounting as a communication phase.
    """
    owned = dist.vector_map.counts()
    pair = {
        (int(r), -1): int(words_per_entry * c) for r, c in enumerate(owned) if c
    }
    seconds, _, _, _ = price_pair_words(pair, dist.nprocs, dist.machine)
    return seconds


@dataclass(frozen=True)
class RecoveryStats:
    """Exact traffic and modeled cost of recovering one failed rank.

    ``peers`` counts the distinct ranks other than the failed one (whose
    id the replacement inherits) that send or receive recovery messages —
    under ``"spare"`` exactly the victim's communication-plan peer set,
    the quantity bounded by ``pr + pc - 2`` for 2D Cartesian layouts.
    ``restore_words`` come from checkpoint storage ((i, j, value) triples
    for the lost block, (index, value) pairs for lost vector entries);
    ``resync_words`` are re-delivered ghost values and partial sums moving
    between ranks.
    """

    failed_rank: int
    strategy: str
    peers: int
    lost_nonzeros: int
    lost_vector_entries: int
    restore_words: int
    resync_words: int
    max_rank_words: int
    max_rank_messages: int
    modeled_seconds: float


def _accumulate(pair: dict, key: tuple[int, int], words: int) -> None:
    if words:
        pair[key] += int(words)


def recovery_stats(
    dist: "DistSparseMatrix",
    failed_rank: int,
    strategy: str = "spare",
    machine: MachineModel | None = None,
) -> RecoveryStats:
    """Exact recovery plan for a fail-stop of *failed_rank*.

    ``strategy="spare"`` restores the victim's blocks and owned vector
    entries from checkpoint storage onto a replacement rank (same grid
    position), then re-syncs runtime state with the victim's communication
    peers: ghost x-values are re-delivered by their owners, the restored
    block's partial sums are recomputed and re-folded to the row owners,
    consumers of the victim's owned x-entries get them re-sent, and
    producers of partials for the victim's owned rows re-ship them. Every
    one of those payloads is read off the communication plans, so the
    traffic (and the peer count) is exact, not estimated.

    ``strategy="redistribute"`` spreads the victim's block rows and owned
    vector entries round-robin over the survivors instead. Ghost inputs
    shared by rows that land on different survivors are then delivered
    more than once — the traffic amplification that makes spares the
    default in practice — and the fan-out is computed exactly from the
    block structure.
    """
    p = dist.nprocs
    f = int(failed_rank)
    if not 0 <= f < p:
        raise ValueError(f"failed_rank {f} out of range [0, {p})")
    if strategy not in RECOVERY_STRATEGIES:
        raise ValueError(f"strategy {strategy!r} not in {RECOVERY_STRATEGIES}")
    if strategy == "redistribute" and p < 2:
        raise ValueError("redistribute needs at least one survivor")
    machine = machine if machine is not None else dist.machine
    vm = dist.vector_map
    rmap, cmap, block = dist.row_maps[f], dist.col_maps[f], dist.local_blocks[f]
    owned = vm.indices_of(f)

    if strategy == "spare":
        row_target = np.full(len(rmap), f, dtype=np.int64)
        vec_target = np.full(len(owned), f, dtype=np.int64)
    else:
        survivors = np.delete(np.arange(p, dtype=np.int64), f)
        row_target = survivors[np.arange(len(rmap)) % len(survivors)]
        vec_target = survivors[np.arange(len(owned)) % len(survivors)]

    def new_owner(gidx: np.ndarray) -> np.ndarray:
        """Post-recovery owner of global indices the victim used to own."""
        return vec_target[np.searchsorted(owned, gidx)]

    pair: dict[tuple[int, int], int] = defaultdict(int)
    restore_words = 0

    # --- restore + re-sync each piece of the lost block -------------------
    for t in np.unique(row_target) if len(row_target) else []:
        t = int(t)
        lr = np.flatnonzero(row_target == t)
        sub = block[lr]
        _accumulate(pair, (-1, t), 3 * sub.nnz)  # (i, j, value) triples
        restore_words += 3 * int(sub.nnz)
        if sub.nnz:
            # ghost x-inputs this piece consumes, re-delivered by their
            # (possibly post-recovery) owners
            gidx = cmap[np.unique(sub.indices)]
            src = vm.owner[gidx]
            fown = src == f
            if fown.any():
                src = src.copy()
                src[fown] = new_owner(gidx[fown])
            src = src[src != t]
            for o, cnt in zip(*np.unique(src, return_counts=True)):
                _accumulate(pair, (int(o), t), int(cnt))
        # recomputed partial sums folded back to the row owners
        rows = rmap[lr]
        dst = vm.owner[rows]
        fown = dst == f
        if fown.any():
            dst = dst.copy()
            dst[fown] = new_owner(rows[fown])
        dst = dst[dst != t]
        for o, cnt in zip(*np.unique(dst, return_counts=True)):
            _accumulate(pair, (t, int(o)), int(cnt))

    # --- restore the lost owned vector entries from storage ----------------
    if len(vec_target):
        for t, cnt in zip(*np.unique(vec_target, return_counts=True)):
            _accumulate(pair, (-1, int(t)), 2 * int(cnt))  # (index, value)
            restore_words += 2 * int(cnt)

    # --- re-deliver the victim's owned x-entries to their consumers --------
    ip = dist.import_plan
    for m in np.flatnonzero(ip.src == f):
        d = int(ip.dst[m])
        src = new_owner(ip.message_indices(m))
        src = src[src != d]
        for o, cnt in zip(*np.unique(src, return_counts=True)):
            _accumulate(pair, (int(o), d), int(cnt))

    # --- re-ship partial sums destined for the victim's owned rows ---------
    fp = dist.fold_plan
    for m in np.flatnonzero(fp.dst == f):
        s = int(fp.src[m])
        dst = new_owner(fp.message_indices(m))
        dst = dst[dst != s]
        for o, cnt in zip(*np.unique(dst, return_counts=True)):
            _accumulate(pair, (s, int(o)), int(cnt))

    seconds, max_words, max_msgs, total_words = price_pair_words(pair, p, machine)
    # recompute the restored block's partial sums once (2 flops / nonzero)
    seconds += machine.gamma_flop * 2.0 * float(block.nnz)
    participants = {r for sd in pair for r in sd if r >= 0}
    peers = len(participants - {f})
    return RecoveryStats(
        failed_rank=f,
        strategy=strategy,
        peers=peers,
        lost_nonzeros=int(block.nnz),
        lost_vector_entries=int(len(owned)),
        restore_words=restore_words,
        resync_words=total_words - restore_words,
        max_rank_words=max_words,
        max_rank_messages=max_msgs,
        modeled_seconds=float(seconds),
    )


# ---------------------------------------------------------------------------
# fault-injected execution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InjectionRecord:
    """Ground truth of one executed corruption injection.

    ``effect`` is the exact change the injection made to the checksum the
    detector tests (the rank partial-sum for expand/compute, the global
    fold sum for fold); ``threshold`` the detector's noise bound at that
    point. ABFT guarantees detection whenever ``effect > threshold`` —
    the property the test suite asserts.
    """

    iteration: int
    rank: int
    phase: str
    effect: float
    threshold: float
    detected: bool


@dataclass
class FaultRunResult:
    """Outcome of one fault-injected run (see :func:`run_with_faults`)."""

    layout: str
    nprocs: int
    iterations: int
    plan: FaultPlan
    ledger: CostLedger
    clean_seconds: float
    total_seconds: float
    injections: tuple[InjectionRecord, ...]
    recoveries: tuple[RecoveryStats, ...]
    max_recovery_peers: int

    @property
    def overhead(self) -> float:
        """Fractional modeled-time overhead versus the fault-free run."""
        if self.clean_seconds <= 0:
            return 0.0
        return self.total_seconds / self.clean_seconds - 1.0


def _rank_slot_range(dist: "DistSparseMatrix", rank: int) -> tuple[int, int]:
    """[start, stop) of *rank*'s segment in the concatenated partials."""
    start = sum(len(dist.row_maps[r]) for r in range(rank))
    return start, start + len(dist.row_maps[rank])


def _inject_pre_fold(
    dist: "DistSparseMatrix",
    c: Corruption,
    x: np.ndarray,
    partials: np.ndarray,
    rng: np.random.Generator,
) -> tuple[str, float]:
    """Apply an expand/compute corruption to *partials* in place.

    Returns ``(phase_used, effect)`` where *effect* is the exact change to
    the victim rank's partial sum (the quantity the rank checksum tests).
    A scheduled expand corruption falls back to ``compute`` when the rank
    imports nothing (a rank with no ghosts has no expand payload to hit).
    """
    eng = dist.engine
    start, stop = _rank_slot_range(dist, c.rank)
    phase = c.phase
    if phase == "expand":
        msgs = np.flatnonzero(dist.import_plan.dst == c.rank)
        if len(msgs) == 0:
            phase = "compute"
        else:
            m = int(msgs[int(rng.integers(len(msgs)))])
            idx = dist.import_plan.message_indices(m)
            j = int(idx[int(rng.integers(len(idx)))])
            delta = c.magnitude * max(abs(float(x[j])), 1.0)
            x_bad = x.copy()
            x_bad[j] += delta
            before = float(partials[start:stop].sum())
            partials[start:stop] = eng._local[start:stop] @ x_bad
            return "expand", abs(float(partials[start:stop].sum()) - before)
    if phase == "compute":
        block = dist.local_blocks[c.rank]
        if block.nnz == 0:
            return "compute", 0.0
        k = int(rng.integers(block.nnz))
        lrow = int(np.searchsorted(block.indptr, k, side="right") - 1)
        gcol = int(dist.col_maps[c.rank][block.indices[k]])
        delta = c.magnitude * max(abs(float(block.data[k])), 1.0)
        effect = delta * float(x[gcol])
        partials[start + lrow] += effect
        return "compute", abs(effect)
    raise AssertionError(f"unexpected pre-fold phase {phase!r}")


def _inject_fold(
    dist: "DistSparseMatrix",
    c: Corruption,
    partials: np.ndarray,
    rng: np.random.Generator,
) -> float:
    """Corrupt a fold payload *rank* ships, in place. Returns |effect|."""
    start, _ = _rank_slot_range(dist, c.rank)
    msgs = np.flatnonzero(dist.fold_plan.src == c.rank)
    if len(msgs) == 0:
        return 0.0
    m = int(msgs[int(rng.integers(len(msgs)))])
    idx = dist.fold_plan.message_indices(m)
    row = int(idx[int(rng.integers(len(idx)))])
    slot = start + int(np.searchsorted(dist.row_maps[c.rank], row))
    delta = c.magnitude * max(abs(float(partials[slot])), 1.0)
    partials[slot] += delta
    return abs(delta)


def run_with_faults(
    dist: "DistSparseMatrix",
    plan: FaultPlan,
    config: FaultConfig | None = None,
    layout_name: str | None = None,
) -> FaultRunResult:
    """Simulate ``plan.iterations`` SpMV iterations under *plan*'s faults.

    Models a power-iteration-style workload: repeated SpMV with
    iteration-invariant communication. Per iteration the ledger is charged
    the four SpMV phases (stretched by any active straggler), the ``detect``
    phase (ABFT checksums every iteration; timeout detection on a
    fail-stop), ``checkpoint`` every ``config.checkpoint_interval``
    iterations, and ``recover`` for corruption recomputes and fail-stop
    reconstruction (including replay of the iterations lost since the last
    checkpoint). When the plan schedules corruption, the SpMVs execute for
    real through the engine with the perturbation applied at the scheduled
    pipeline point, and detection verdicts come from the actual checksum
    test — not from assumption.
    """
    config = config if config is not None else FaultConfig()
    if plan.nprocs != dist.nprocs:
        raise ValueError(
            f"plan is for {plan.nprocs} ranks, distribution has {dist.nprocs}"
        )
    execute = config.execute_numerics
    if execute is None:
        execute = len(plan.corruptions) > 0

    mach = dist.machine
    ledger = CostLedger()
    clean_iter = dist.modeled_spmv_seconds(1)
    abft_iter = abft_detect_seconds(dist) if config.abft else 0.0
    ckpt_iter = (
        checkpoint_write_seconds(dist) if config.checkpoint_interval else 0.0
    )
    injections: list[InjectionRecord] = []
    recoveries: list[RecoveryStats] = []
    last_checkpoint = 0

    x = None
    if execute:
        rng0 = np.random.default_rng(np.random.SeedSequence((plan.seed, 0xC1EA)))
        x = rng0.standard_normal(dist.n)
        nrm = np.linalg.norm(x)
        x = x / nrm if nrm > 0 else x

    for t in range(plan.iterations):
        slowdown = plan.slowdown_at(t)
        dist.charge_spmv(ledger, slowdown=slowdown)
        for s in plan.stragglers:
            if s.start == t:
                extra = (
                    dist_modeled_with_slowdown(dist, slowdown) - clean_iter
                )
                ledger.record(FaultEvent(
                    iteration=t, kind="straggler", rank=s.rank,
                    seconds=max(extra, 0.0) * s.duration,
                    note=f"x{s.factor:g} for {s.duration} it",
                ))
        if config.abft:
            ledger.add("detect", abft_iter)

        corrs = plan.corruptions_at(t)
        if execute and x is not None:
            eng = dist.engine
            partials = eng._local @ x
            rngs = {
                id(c): np.random.default_rng(
                    np.random.SeedSequence((plan.seed, t, c.rank, i))
                )
                for i, c in enumerate(corrs)
            }
            pre_fold: list[tuple[Corruption, str, float]] = []
            fold_effects: list[tuple[Corruption, float]] = []
            for c in corrs:
                if c.phase in ("expand", "compute"):
                    phase_used, effect = _inject_pre_fold(
                        dist, c, x, partials, rngs[id(c)]
                    )
                    pre_fold.append((c, phase_used, effect))
            for c in corrs:
                if c.phase == "fold":
                    fold_effects.append(
                        (c, _inject_fold(dist, c, partials, rngs[id(c)]))
                    )
            y = eng.fold(partials)
            check = eng.abft_check(x, partials, y, rtol=config.abft_rtol)
            flagged = set(int(r) for r in check.flagged_ranks)
            detected_any = False
            for c, phase_used, effect in pre_fold:
                thr = float(check.rank_threshold[c.rank])
                det = c.rank in flagged
                detected_any |= det
                injections.append(InjectionRecord(t, c.rank, phase_used, effect, thr, det))
                ledger.record(FaultEvent(t, "corruption", c.rank, phase_used, det))
            for c, effect in fold_effects:
                det = check.fold_flagged or c.rank in flagged
                detected_any |= det
                thr = float(check.rank_threshold[c.rank])
                injections.append(InjectionRecord(t, c.rank, "fold", effect, thr, det))
                ledger.record(FaultEvent(t, "corruption", c.rank, "fold", det))
            if detected_any:
                # discard the tainted iteration and recompute it cleanly
                ledger.add("recover", clean_iter + abft_iter)
                y = eng.spmv(x)
            nrm = np.linalg.norm(y)
            x = y / nrm if nrm > 0 else y
        else:
            for c in corrs:
                # numerics disabled: record the scheduled event; ABFT's
                # verdict is modeled as detected iff ABFT is on
                injections.append(
                    InjectionRecord(t, c.rank, c.phase, float("nan"),
                                    float("nan"), config.abft)
                )
                ledger.record(FaultEvent(t, "corruption", c.rank, c.phase, config.abft,
                                         note="modeled"))
                if config.abft:
                    ledger.add("recover", clean_iter + abft_iter)

        for fs in plan.failstops_at(t):
            detect_s = (
                config.detect_timeout_factor * clean_iter
                + mach.allreduce_time(dist.nprocs)
            )
            ledger.add("detect", detect_s)
            rec = recovery_stats(dist, fs.rank, config.recovery_strategy)
            recoveries.append(rec)
            lost_iters = t - last_checkpoint if config.checkpoint_interval else t
            redo_s = lost_iters * (clean_iter + abft_iter)
            ledger.add("recover", rec.modeled_seconds + redo_s)
            ledger.record(FaultEvent(
                iteration=t, kind="fail-stop", rank=fs.rank, detected=True,
                seconds=detect_s + rec.modeled_seconds + redo_s,
                note=f"{rec.strategy}: {rec.peers} peers, "
                     f"{rec.restore_words + rec.resync_words} words",
            ))

        if config.checkpoint_interval and (t + 1) % config.checkpoint_interval == 0:
            ledger.add("checkpoint", ckpt_iter)
            last_checkpoint = t + 1

    return FaultRunResult(
        layout=layout_name if layout_name is not None else dist.layout.name,
        nprocs=dist.nprocs,
        iterations=plan.iterations,
        plan=plan,
        ledger=ledger,
        clean_seconds=plan.iterations * clean_iter,
        total_seconds=ledger.total(),
        injections=tuple(injections),
        recoveries=tuple(recoveries),
        max_recovery_peers=max_recovery_peers(dist),
    )


def dist_modeled_with_slowdown(
    dist: "DistSparseMatrix", slowdown: np.ndarray | None
) -> float:
    """One-iteration modeled seconds under a per-rank slowdown vector."""
    ledger = CostLedger()
    dist.charge_spmv(ledger, slowdown=slowdown)
    return ledger.spmv_total()


def straggler_overhead_seconds(
    dist: "DistSparseMatrix", rank: int, factor: float
) -> float:
    """Modeled extra seconds one SpMV pays when *rank* runs *factor*x slow.

    The serving layer's slow-engine injections are priced through this:
    the stall a client observes is wall time, but the comparable ledger
    quantity is the modeled critical-path inflation of a single-rank
    straggler — the same number a :class:`Straggler` injection records in
    a fault campaign.
    """
    if factor < 1.0:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if not 0 <= rank < dist.nprocs:
        raise ValueError(f"rank {rank} out of range for nprocs {dist.nprocs}")
    slowdown = np.ones(dist.nprocs)
    slowdown[rank] = factor
    return max(
        dist_modeled_with_slowdown(dist, slowdown)
        - dist_modeled_with_slowdown(dist, None),
        0.0,
    )


# ---------------------------------------------------------------------------
# campaigns
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignCell:
    """Per-layout summary of one fault campaign."""

    layout: str
    nprocs: int
    clean_seconds: float
    total_seconds: float
    overhead: float
    detect_seconds: float
    checkpoint_seconds: float
    recover_seconds: float
    faults: int
    detected: int
    max_recovery_peers: int
    recovery_words: int

    def row(self) -> tuple:
        """CLI/bench table row."""
        return (
            self.layout,
            f"{self.clean_seconds:.4f}",
            f"{self.total_seconds:.4f}",
            f"{100.0 * self.overhead:.1f}%",
            f"{self.detect_seconds:.4f}",
            f"{self.checkpoint_seconds:.4f}",
            f"{self.recover_seconds:.4f}",
            self.faults,
            self.detected,
            self.max_recovery_peers,
            self.recovery_words,
        )


#: Column headers matching :meth:`CampaignCell.row`.
CAMPAIGN_COLUMNS = [
    "layout", "clean t", "faulty t", "overhead", "detect", "ckpt",
    "recover", "faults", "detected", "rec peers", "rec words",
]


def _campaign_cell_task(args: tuple) -> CampaignCell:
    """One layout's campaign replay — the ``fault_campaign`` fan-out unit.

    Module-level so it pickles into pool workers; every input (matrix,
    layout, plan, machine, config) is a plain dataclass or array, and the
    replay is deterministic, so where it runs cannot change the cell.
    """
    from .distmatrix import DistSparseMatrix

    A, layout, plan, machine, config = args
    dist = DistSparseMatrix(A, layout, machine)
    res = run_with_faults(dist, plan, config=config)
    bd = res.ledger.breakdown()
    events = [e for e in res.ledger.events if e.kind != "straggler"]
    return CampaignCell(
        layout=res.layout,
        nprocs=res.nprocs,
        clean_seconds=res.clean_seconds,
        total_seconds=res.total_seconds,
        overhead=res.overhead,
        detect_seconds=bd.get("detect", 0.0),
        checkpoint_seconds=bd.get("checkpoint", 0.0),
        recover_seconds=bd.get("recover", 0.0),
        faults=len(events),
        detected=sum(1 for e in events if e.detected),
        max_recovery_peers=res.max_recovery_peers,
        recovery_words=sum(r.restore_words + r.resync_words for r in res.recoveries),
    )


def fault_campaign(
    A,
    layouts,
    plan: FaultPlan,
    machine: MachineModel | None = None,
    config: FaultConfig | None = None,
    jobs: int | None = None,
) -> list[CampaignCell]:
    """Replay one :class:`FaultPlan` against several layouts of *A*.

    *layouts* is an iterable of :class:`~repro.layouts.base.Layout` (all
    with ``plan.nprocs`` ranks — the plan speaks in rank ids). Returns one
    :class:`CampaignCell` per layout; because the schedule, the injected
    values, and the cost model are all deterministic, two calls with the
    same arguments produce identical cells, bit for bit — including under
    ``jobs`` > 1, which fans the layouts across a process pool.
    """
    from ..parallel import parallel_map
    from .machine import CAB

    machine = machine if machine is not None else CAB
    tasks = [(A, layout, plan, machine, config) for layout in layouts]
    return parallel_map(_campaign_cell_task, tasks, jobs=jobs)
