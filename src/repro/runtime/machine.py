"""Machine cost model: alpha-beta-gamma (Hockney/postal) parameters.

The simulator computes communication structure *exactly* (which rank sends
which indices to whom) and converts it to modeled wall-clock with the
standard linear model the paper's own analysis (section 3.2) is phrased
in:

* ``alpha`` — per-message latency. This is the term that makes message
  *count* matter and gives 2D layouts their high-core-count win.
* ``beta`` — per-double transfer time (inverse bandwidth). This is the
  term graph/hypergraph partitioning lowers.
* ``gamma_flop`` — seconds per flop of sparse local compute (SpMV does two
  flops per stored nonzero; the effective rate is memory-bound, so this is
  calibrated to streaming, not peak, flops).
* ``gamma_mem`` — seconds per double streamed by dense vector operations
  (dot, axpy, orthogonalisation) — the term that exposes *vector*
  imbalance in the eigensolver experiments (paper Table 5).

Presets approximate the paper's two platforms; absolute seconds are not
expected to match the paper (different machine, different decade) — the
*ratios* between layouts are what the model preserves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["MachineModel", "CAB", "HOPPER", "ZERO_COMM", "MACHINES"]


@dataclass(frozen=True)
class MachineModel:
    """Linear (postal) machine model; see module docstring."""

    name: str
    alpha: float  # s per message
    beta: float  # s per double moved
    gamma_flop: float  # s per flop (sparse compute)
    gamma_mem: float  # s per double (dense vector streaming)

    def __post_init__(self) -> None:
        for field_name in ("alpha", "beta", "gamma_flop", "gamma_mem"):
            value = getattr(self, field_name)
            if not math.isfinite(value):
                raise ValueError(f"{field_name} must be finite, got {value!r}")
            if value < 0:
                raise ValueError(f"{field_name} must be non-negative")

    def message_time(self, ndoubles: int | np.ndarray) -> float | np.ndarray:
        """Time to send one message of *ndoubles* payload."""
        return self.alpha + self.beta * ndoubles

    def compute_time(self, nflops: float) -> float:
        """Time for *nflops* of sparse compute on one process."""
        return self.gamma_flop * nflops

    def allreduce_time(self, nprocs: int, ndoubles: int = 1) -> float:
        """Latency-dominated tree allreduce (dot products, norms)."""
        if nprocs <= 1:
            return 0.0
        hops = int(np.ceil(np.log2(nprocs)))
        return hops * (self.alpha + self.beta * ndoubles)


#: Intel Xeon + InfiniBand QDR cluster (LLNL *cab*): ~1.5 us MPI latency,
#: ~3 GB/s effective point-to-point per rank, ~1.5 Gflop/s sustained
#: sparse compute per core.
CAB = MachineModel(name="cab", alpha=1.5e-6, beta=2.7e-9, gamma_flop=6.5e-10, gamma_mem=1.0e-9)

#: Cray XE6 (NERSC Hopper): Gemini-like latency, slightly slower cores.
HOPPER = MachineModel(name="hopper", alpha=1.8e-6, beta=3.2e-9, gamma_flop=8.0e-10, gamma_mem=1.2e-9)

#: Communication-free model: isolates load-balance effects in ablations.
ZERO_COMM = MachineModel(name="zero-comm", alpha=0.0, beta=0.0, gamma_flop=6.5e-10, gamma_mem=1.0e-9)

#: Name -> preset registry (CLI flags, golden-file headers).
MACHINES: dict[str, MachineModel] = {m.name: m for m in (CAB, HOPPER, ZERO_COMM)}
