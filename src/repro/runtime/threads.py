"""nnz-balanced thread-parallel apply for the compiled SpMV engine.

Every ``spmv``/``spmm`` in the engine is two scipy CSR multiplies, and
scipy's CSR kernels release the GIL for the duration of the C loop — so
a plain :class:`~concurrent.futures.ThreadPoolExecutor` over
*row-disjoint* slices of each operator runs genuinely in parallel on a
multicore host, with zero data movement (every block shares the parent
operator's ``data``/``indices`` buffers and the same input vector).

The split is Ahrens-style contiguous partitioning (PAPERS.md):
:func:`balanced_row_splits` finds, by binary search over the bottleneck
value with a greedy max-fill feasibility check, contiguous row blocks
whose **maximum per-block nnz is minimal** over all contiguous
partitions into at most that many blocks. nnz is the right weight
because CSR multiply time is dominated by stored-entry traversal; the
bottleneck (not the sum) is what bounds wall-clock when each block runs
on its own thread.

Bit-identity, not tolerance
---------------------------
A CSR multiply computes each output row independently: one sequential
accumulation over that row's stored entries. Slicing rows neither
reorders any row's entries nor shares any output element between
blocks, so writing block results into disjoint slices of one output
array reproduces the fused multiply **bit-for-bit** — tested and gated
with ``np.array_equal``, never a tolerance. The serial fused multiply
is retained as the oracle under the repo's dual-kernel convention:
``THREAD_KERNELS = ("threaded", "serial")`` with :func:`use_kernel` to
pin either side.

Thread budget resolution
------------------------
``resolve_threads(None)`` consults, in order: a process-global override
(:func:`set_default_threads`, set by the CLI ``--threads`` flags), the
``REPRO_THREADS`` environment variable, then 1 (serial). ``0`` means
"all cores". Process-pool workers (``repro.parallel``) pin the default
to 1 so process- and thread-parallelism never nest.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import numpy as np
import scipy.sparse as sp

__all__ = [
    "THREAD_KERNELS",
    "use_kernel",
    "ApplyPlan",
    "balanced_row_splits",
    "bind_blocks",
    "block_nnz",
    "default_threads",
    "set_default_threads",
    "resolve_threads",
    "run_blocks",
    "pool_stats",
]

#: Apply kernels, fast-first (the dual-kernel convention shared with
#: ``distmatrix``/``coarsen``/``refine``): ``threaded`` dispatches
#: nnz-balanced row blocks across the shared pool, ``serial`` is the
#: fused single-multiply oracle the threaded path must match bit-for-bit.
THREAD_KERNELS = ("threaded", "serial")

_DEFAULT_KERNEL = THREAD_KERNELS[0]


def _resolve_kernel(kernel: str | None) -> str:
    k = _DEFAULT_KERNEL if kernel is None else kernel
    if k not in THREAD_KERNELS:
        raise ValueError(
            f"unknown thread kernel {k!r}; expected one of {THREAD_KERNELS}"
        )
    return k


@contextmanager
def use_kernel(kernel: str):
    """Temporarily pin the engine apply kernel (``threaded``/``serial``)."""
    global _DEFAULT_KERNEL
    prev = _DEFAULT_KERNEL
    _DEFAULT_KERNEL = _resolve_kernel(kernel)
    try:
        yield
    finally:
        _DEFAULT_KERNEL = prev


# -- thread-budget resolution ---------------------------------------------

_DEFAULT_THREADS: int | None = None


def _normalize(threads: int) -> int:
    if threads <= 0:
        return max(int(os.cpu_count() or 1), 1)
    return int(threads)


def set_default_threads(threads: int | None) -> None:
    """Set the process-global thread budget (None restores env/serial)."""
    global _DEFAULT_THREADS
    _DEFAULT_THREADS = None if threads is None else _normalize(int(threads))


def default_threads() -> int:
    """Current default budget: override, else $REPRO_THREADS, else 1."""
    if _DEFAULT_THREADS is not None:
        return _DEFAULT_THREADS
    env = os.environ.get("REPRO_THREADS", "").strip()
    if env:
        try:
            return _normalize(int(env))
        except ValueError:
            return 1
    return 1


def resolve_threads(threads: int | None) -> int:
    """An explicit budget (0 = all cores) or the process default."""
    return default_threads() if threads is None else _normalize(int(threads))


# -- the row-split primitive ----------------------------------------------


def _greedy_cuts(indptr: np.ndarray, nblocks: int, bound: int) -> list[int] | None:
    """Max-fill cuts covering all rows with per-block nnz <= *bound*.

    Greedy is exact for feasibility: if any contiguous partition into at
    most *nblocks* blocks respects *bound*, extending every block as far
    as *bound* allows does too. Returns None when infeasible.
    """
    nrows = len(indptr) - 1
    cuts = [0]
    row = 0
    for _ in range(nblocks):
        if row >= nrows:
            break
        nxt = int(np.searchsorted(indptr, indptr[row] + bound, side="right")) - 1
        if nxt <= row:
            return None  # a single row exceeds the bound
        row = min(nxt, nrows)
        cuts.append(row)
    return cuts if row >= nrows else None


def balanced_row_splits(indptr, nblocks: int) -> np.ndarray:
    """Bottleneck-optimal contiguous row splits over a CSR ``indptr``.

    Returns an int64 array ``s`` with ``s[0] == 0``, ``s[-1] == nrows``,
    strictly increasing in between: block i is rows ``s[i]:s[i+1]``.
    Among all partitions of the rows into at most *nblocks* contiguous
    blocks, the returned one minimizes the maximum per-block nnz
    (Ahrens' bottleneck objective), found by binary search over the
    bottleneck value with a greedy feasibility check — O(nblocks ·
    log(nrows) · log(nnz)), negligible next to operator compile time.

    Degenerate shapes are fine: empty rows ride along with their
    predecessor block, a single hub row larger than ``nnz/nblocks``
    becomes its own bottleneck block, fewer rows (or less nnz) than
    blocks simply yields fewer blocks, and ``nblocks=1`` returns the
    trivial split. The function is deterministic — a pure function of
    ``indptr`` and *nblocks* — which is what lets plans persist through
    the artifact store and verify byte-equal on reload.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    if indptr.ndim != 1 or len(indptr) < 1:
        raise ValueError("indptr must be a 1-d prefix array")
    nrows = len(indptr) - 1
    nblocks = int(nblocks)
    if nblocks < 1:
        raise ValueError(f"nblocks must be >= 1, got {nblocks}")
    if nrows <= 0:
        return np.array([0, 0], dtype=np.int64)
    if nblocks == 1:
        return np.array([0, nrows], dtype=np.int64)
    total = int(indptr[-1]) - int(indptr[0])
    max_row = int(np.max(np.diff(indptr)))
    lo = max((total + nblocks - 1) // nblocks, max_row)
    hi = max(total, lo)
    while lo < hi:
        mid = (lo + hi) // 2
        if _greedy_cuts(indptr, nblocks, mid) is None:
            lo = mid + 1
        else:
            hi = mid
    cuts = _greedy_cuts(indptr, nblocks, lo)
    assert cuts is not None  # lo is feasible by construction
    return np.asarray(cuts, dtype=np.int64)


def block_nnz(indptr, splits) -> np.ndarray:
    """Per-block stored-entry counts for *splits* over *indptr*."""
    indptr = np.asarray(indptr, dtype=np.int64)
    splits = np.asarray(splits, dtype=np.int64)
    return indptr[splits[1:]] - indptr[splits[:-1]]


def _validate_splits(M: sp.csr_matrix, splits: np.ndarray) -> np.ndarray:
    splits = np.asarray(splits, dtype=np.int64)
    if (
        splits.ndim != 1
        or len(splits) < 2
        or int(splits[0]) != 0
        or int(splits[-1]) != M.shape[0]
        or np.any(np.diff(splits) < 0)
    ):
        raise ValueError(f"invalid row splits for {M.shape[0]}-row operator")
    return splits


def _csr_row_block(M: sp.csr_matrix, r0: int, r1: int) -> sp.csr_matrix:
    """Rows ``r0:r1`` of *M* as a CSR sharing its data/indices buffers.

    Only the (small) per-block indptr is materialized; the entry arrays
    are slices of the parent's — read-only/mmapped parents included,
    since the multiply kernels never mutate operator storage.
    """
    p0 = int(M.indptr[r0])
    block = sp.csr_matrix((r1 - r0, M.shape[1]))
    block.data = M.data[p0 : int(M.indptr[r1])]
    block.indices = M.indices[p0 : int(M.indptr[r1])]
    block.indptr = M.indptr[r0 : r1 + 1] - p0
    return block


def bind_blocks(
    M: sp.csr_matrix, splits: np.ndarray
) -> list[tuple[int, int, sp.csr_matrix]]:
    """``(r0, r1, rows r0:r1 of M)`` per split block, zero-copy."""
    return [
        (int(r0), int(r1), _csr_row_block(M, int(r0), int(r1)))
        for r0, r1 in zip(splits[:-1], splits[1:])
    ]


class ApplyPlan:
    """nnz-balanced row blocking of one engine's two compiled operators.

    Computed once at engine build/load time (never per multiply) and
    persisted through ``SpmvEngine.to_arrays`` and the artifact store,
    so warm loads at the same thread budget pay no re-planning. The
    bound block operators are zero-copy row views; :attr:`nbytes`
    reports only what the plan actually allocates (the split arrays and
    each block's small indptr) so residency byte budgets stay honest.
    """

    __slots__ = (
        "threads",
        "local_splits",
        "fold_splits",
        "local_blocks",
        "fold_blocks",
    )

    def __init__(self, threads, local_splits, fold_splits, local_blocks, fold_blocks):
        self.threads = int(threads)
        self.local_splits = local_splits
        self.fold_splits = fold_splits
        self.local_blocks = local_blocks
        self.fold_blocks = fold_blocks

    @classmethod
    def build(
        cls, local: sp.csr_matrix, fold: sp.csr_matrix, threads: int
    ) -> "ApplyPlan":
        """Plan *threads* bottleneck-balanced blocks per operator."""
        t = max(int(threads), 1)
        ls = balanced_row_splits(local.indptr, t)
        fs = balanced_row_splits(fold.indptr, t)
        return cls(t, ls, fs, bind_blocks(local, ls), bind_blocks(fold, fs))

    @classmethod
    def from_splits(
        cls,
        local: sp.csr_matrix,
        fold: sp.csr_matrix,
        threads: int,
        local_splits,
        fold_splits,
    ) -> "ApplyPlan":
        """Adopt persisted splits (validated; raises ValueError if torn)."""
        ls = _validate_splits(local, local_splits)
        fs = _validate_splits(fold, fold_splits)
        return cls(
            max(int(threads), 1),
            ls,
            fs,
            bind_blocks(local, ls),
            bind_blocks(fold, fs),
        )

    @property
    def nbytes(self) -> int:
        """Bytes the plan allocates beyond the parent operators."""
        total = self.local_splits.nbytes + self.fold_splits.nbytes
        for blocks in (self.local_blocks, self.fold_blocks):
            for _, _, block in blocks:
                total += block.indptr.nbytes
        return int(total)

    def stats(self) -> dict:
        """Balance summary (bench/serve-stats view)."""

        def side(splits, blocks):
            nnz = [int(b.nnz) for _, _, b in blocks]
            bottleneck = max(nnz) if nnz else 0
            balance = 1.0
            if bottleneck:
                balance = round(sum(nnz) / (self.threads * bottleneck), 4)
            return {
                "blocks": len(blocks),
                "total_nnz": sum(nnz),
                "bottleneck_nnz": bottleneck,
                "balance": balance,
            }

        return {
            "threads": self.threads,
            "local": side(self.local_splits, self.local_blocks),
            "fold": side(self.fold_splits, self.fold_blocks),
        }


# -- the shared pool -------------------------------------------------------


class _Pool:
    """Process-wide grow-only thread pool for block multiplies.

    One pool serves every engine in the process (pool threads are cheap
    but not free; resident engines would otherwise each hold their
    own). It is sized to ``threads - 1`` workers because the caller's
    thread always executes the final block inline — at budget T the
    multiply occupies exactly T OS threads with one fewer handoff.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._executor: ThreadPoolExecutor | None = None
        self._workers = 0
        self.dispatches = 0
        self.block_tasks = 0

    def _ensure(self, workers: int) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None or self._workers < workers:
                old = self._executor
                self._executor = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-apply"
                )
                self._workers = workers
                if old is not None:
                    # in-flight work still completes; new submits go to
                    # the grown pool
                    old.shutdown(wait=False)
            return self._executor

    def run(self, tasks) -> None:
        ex = self._ensure(max(len(tasks) - 1, 1))
        with self._lock:
            self.dispatches += 1
            self.block_tasks += len(tasks)
        futures = [ex.submit(t) for t in tasks[:-1]]
        tasks[-1]()
        for f in futures:
            f.result()


_POOL = _Pool()


def run_blocks(blocks, X: np.ndarray, out: np.ndarray) -> None:
    """``out[r0:r1] = M @ X`` for every bound block, in parallel.

    scipy's CSR multiply releases the GIL, the blocks are row-disjoint,
    and each writes only its own slice of *out* — no synchronization
    beyond joining the futures, and bit-identical to the fused multiply.
    """

    def task(r0: int, r1: int, M: sp.csr_matrix):
        def _run() -> None:
            out[r0:r1] = M @ X

        return _run

    _POOL.run([task(r0, r1, M) for r0, r1, M in blocks])


def pool_stats() -> dict:
    """Shared-pool counters for serve ``stats`` and the benches."""
    return {
        "workers": _POOL._workers,
        "dispatches": _POOL.dispatches,
        "block_tasks": _POOL.block_tasks,
    }
