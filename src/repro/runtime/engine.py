"""Precompiled SpMV execution engine.

Every experiment in the paper is *repeated* four-phase SpMV — "time for
100 SpMV" tables, eigensolvers calling the operator hundreds of times —
and the communication structure is iteration-invariant. The reference
executor (:meth:`DistSparseMatrix.spmv` with ``reference=True``) walks
every import/fold message in Python on every call, re-translating global
ids with ``searchsorted`` each time. This module compiles all of that
index arithmetic once, at build time, into two sparse operators:

``local``
    The per-rank CSR blocks stacked block-diagonally, with each block's
    compressed column ids relabeled to the global ids its rank's ghost
    buffer would hold (the import plan guarantees every compressed column
    is either owned or delivered by exactly one message). One C-level
    multiply then performs the **expand** gather and every rank's
    **local compute** simultaneously, producing the concatenation of all
    per-rank partial-sum buffers.

``fold``
    A 0/1 matrix with one column per partial-sum slot and one row per
    global index, built from the owned-row copies and the fold plan's
    messages. One multiply performs **fold + sum**, accumulating each
    row's contributions *in the reference executor's order* (the owner's
    own partial first, then messages in plan order — the matrix stores
    its row entries in exactly that sequence, deliberately unsorted).

Results are **bit-identical** to the reference path, not merely close:
the relabeling changes where values are read from, never the values nor
the order in which CSR row-dot products accumulate them, and the fold
rows replay the reference's ``np.add.at`` sequences (multiplying by the
stored 1.0 is exact). ``tests/test_engine.py`` asserts equality with
``np.array_equal``. Modeled cost and communication metrics are untouched:
they are computed from the :class:`~repro.runtime.plan.CommPlan`
schedules, which the engine compiles but does not alter.

:meth:`SpmvEngine.spmm` pushes an (n, k) block of right-hand sides
through the same two operators in one shot — k SpMVs for two CSR-times-
dense calls — which is how the block Krylov-Schur solver amortizes index
traffic over its block width. Column j equals ``spmv(X[:, j])`` exactly.

Thread-parallel apply (:mod:`repro.runtime.threads`)
----------------------------------------------------
Each multiply can additionally fan out across cores: an
:class:`~repro.runtime.threads.ApplyPlan` — nnz-balanced contiguous row
blocks over each operator, computed once at build/load time and
persisted through :meth:`to_arrays` — lets the ``threaded`` kernel run
the row blocks on the shared GIL-releasing pool. Row-disjoint blocks
write disjoint output slices in the same stored-entry order as the
fused multiply, so the threaded kernel is **bit-identical** to the
retained ``serial`` oracle (``np.array_equal``, gated corpus-wide by
``BENCH_threads.json``); the ABFT checksum dots below ride the same
discipline over the checksum operator's rows.

ABFT checksums (Huang & Abraham 1984)
-------------------------------------
For fault tolerance the engine also precomputes *checksum vectors*: for
each rank r, the column sums of its block rows of ``local``, i.e. the
weight vector ``w_r = e^T A_r`` such that rank r's partial-sum buffer must
satisfy ``sum(partials_r) == w_r @ x`` for the *true* x. Comparing the two
sides (:meth:`abft_check`) detects any corruption injected into the
expand payloads, the local CSR values, or the local compute of rank r —
and localises it to the rank — at O(n/p) modeled cost per SpMV (each rank
sums its own buffer and evaluates one sparse dot, then one p-word
allreduce). A second, global identity ``sum(y) == sum_r w_r @ x`` catches
corruption of fold payloads in transit (after the per-rank checksums
passed at the producer). Thresholds scale with ``|w_r| @ |x|`` so float
reassociation never false-positives; see
:class:`~repro.runtime.faults.FaultPlan` for the injection side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..perf import phase
from . import threads as _threads
from .threads import ApplyPlan

__all__ = ["SpmvEngine", "AbftCheck"]

#: Relative detection threshold: generous against float-reassociation
#: noise (~1e3 ulp at double precision), far below any meaningful
#: corruption (the injection default is 1e-3 relative).
ABFT_RTOL = 1e-8


def _adopt_csr(data, indices, indptr, shape) -> sp.csr_matrix:
    """Build a CSR around existing (possibly read-only, mmapped) arrays.

    The tuple constructor would copy and validate; attribute assignment
    adopts the buffers as-is, which is what makes store loads zero-copy.
    Shape/pointer consistency is the artifact loader's job
    (:meth:`SpmvEngine.from_arrays` + the store's structural checks).
    """
    data = np.asarray(data)
    indices = np.asarray(indices)
    indptr = np.asarray(indptr)
    if len(indptr) != shape[0] + 1:
        raise ValueError(f"indptr length {len(indptr)} != rows {shape[0]} + 1")
    if len(indptr) and int(indptr[-1]) != len(data):
        raise ValueError(f"indptr[-1] {int(indptr[-1])} != nnz {len(data)}")
    if len(data) != len(indices):
        raise ValueError("data/indices length mismatch")
    M = sp.csr_matrix(shape)
    M.data = data
    M.indices = indices
    M.indptr = indptr
    return M


@dataclass(frozen=True)
class AbftCheck:
    """Verdict of one ABFT checksum test over a four-phase SpMV.

    ``rank_discrepancy[r]`` is ``|sum(partials_r) - w_r @ x|``;
    ``rank_threshold[r]`` the reassociation-noise bound it is compared
    against. ``flagged_ranks`` lists ranks whose discrepancy exceeded the
    bound (expand/compute-side corruption); ``fold_flagged`` is True when
    the per-rank sums passed but the folded result violates the global
    checksum (fold-transit corruption).
    """

    rank_discrepancy: np.ndarray
    rank_threshold: np.ndarray
    flagged_ranks: np.ndarray
    fold_flagged: bool

    @property
    def detected(self) -> bool:
        """True if any checksum test tripped."""
        return bool(len(self.flagged_ranks)) or self.fold_flagged


class SpmvEngine:
    """Compiled executor for one :class:`DistSparseMatrix`'s SpMV.

    Construction flattens the matrix's import/fold plans into the two
    operators described in the module docstring; :meth:`spmv` /
    :meth:`spmm` then run the four phases as two sparse multiplies with
    no per-message Python work.
    """

    def __init__(self, dist, threads: int | None = None) -> None:
        vm = dist.vector_map
        p = dist.nprocs
        n = dist.n
        self.n = n

        # --- expand + local compute ---------------------------------------
        # Stack the rank blocks block-diagonally, then relabel compressed
        # columns to global ids. Within one rank the relabeling is
        # monotonic (its column map is sorted), so rows keep their stored
        # entry order and every row-dot accumulates exactly as the
        # per-block matvec over that rank's ghost buffer does.
        blocks = sp.block_diag(dist.local_blocks, format="csr")
        col_concat = np.concatenate(dist.col_maps)
        self._local = sp.csr_matrix(
            (blocks.data, col_concat[blocks.indices], blocks.indptr),
            shape=(blocks.shape[0], n),
        )

        # --- fold + sum ---------------------------------------------------
        # Source slots into the concatenated partial sums, target global
        # rows, listed in the reference accumulation order: every rank's
        # own rows (rank-major, rows ascending), then the fold messages in
        # plan order. Positions are found with one searchsorted in the
        # (rank, row) keyspace; a stable sort by target groups each row's
        # contributions without reordering them.
        rlens = np.fromiter(
            (len(r) for r in dist.row_maps), dtype=np.int64, count=p
        )
        row_concat = np.concatenate(dist.row_maps)
        rank_of_slot = np.repeat(np.arange(p, dtype=np.int64), rlens)
        n64 = np.int64(max(n, 1))
        slot_key = rank_of_slot * n64 + row_concat  # sorted ascending

        own = np.flatnonzero(vm.owner[row_concat] == rank_of_slot)
        fp = dist.fold_plan
        msg_slot = np.searchsorted(
            slot_key, np.repeat(fp.src, fp.message_sizes()) * n64 + fp.indices
        )
        src = np.concatenate([own, msg_slot])
        tgt = np.concatenate([row_concat[own], fp.indices])
        order = np.argsort(tgt, kind="stable")
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(tgt, minlength=n), out=indptr[1:])
        self._fold = sp.csr_matrix(
            (np.ones(len(src)), src[order], indptr),
            shape=(n, len(row_concat)),
        )

        #: slot -> owning rank of the concatenated partial-sum buffer
        self._slot_rank = rank_of_slot
        self._nprocs = p
        self._abft: tuple[sp.csr_matrix, sp.csr_matrix, sp.csr_matrix] | None = None
        #: optional no-arg callback fired when the lazy ABFT operators
        #: materialize (the residency layer re-checks its byte budget)
        self.abft_listener = None
        self._threads = _threads.resolve_threads(threads)
        self._plans: dict[int, ApplyPlan] = {}
        self._abft_plans: dict[int, tuple] = {}
        self._plan()  # plan once at build time, never per multiply

    # -- thread budget and apply plans ------------------------------------

    @property
    def threads(self) -> int:
        """Current apply-thread budget (1 = serial fused multiply)."""
        return self._threads

    def set_threads(self, threads: int | None = None) -> int:
        """Set the budget (None = process default, 0 = all cores).

        Plans are cached per budget, so flipping between budgets — or
        loading an artifact planned at a different budget — re-plans at
        most once per distinct value (microseconds against ``indptr``).
        Returns the resolved budget.
        """
        self._threads = _threads.resolve_threads(threads)
        self._plan()
        return self._threads

    def _plan(self) -> ApplyPlan:
        plan = self._plans.get(self._threads)
        if plan is None:
            plan = ApplyPlan.build(self._local, self._fold, self._threads)
            self._plans[self._threads] = plan
        return plan

    def plan_stats(self) -> dict:
        """Balance summary of the active plan (serve stats / benches)."""
        return self._plan().stats()

    def _apply(self, op, blocks, X: np.ndarray) -> np.ndarray:
        """``op @ X``, fanned across row blocks when the budget allows."""
        if (
            self._threads <= 1
            or len(blocks) <= 1
            or _threads._resolve_kernel(None) != "threaded"
        ):
            return op @ X
        out = np.empty(
            (op.shape[0],) + X.shape[1:],
            dtype=np.result_type(op.dtype, X.dtype),
        )
        _threads.run_blocks(blocks, X, out)
        return out

    # -- (de)serialization -------------------------------------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        """The engine's full compiled state as flat arrays.

        Everything :meth:`spmv`/:meth:`spmm` touch — the two CSR
        operators, the slot→rank vector, and the shapes — round-trips
        through :meth:`from_arrays` *bit-identically by contract*: the
        reconstructed engine's results equal this one's to the last bit
        (the artifact store verifies that at save time, and
        ``BENCH_coldstart.json`` gates it corpus-wide). The lazy ABFT
        operators are deliberately excluded: they are derived purely
        from ``local`` and ``slot_rank``, so a loaded engine rebuilds
        them on first :meth:`abft_check` exactly as a compiled one does.
        The active :class:`~repro.runtime.threads.ApplyPlan` splits *are*
        included (with their budget as ``dims[6]``): planning is
        deterministic, so persisting the splits makes warm loads at the
        same budget pay no re-planning — and a load at a different
        budget re-plans once, cheaply, rather than trusting a stale
        blocking.
        """
        plan = self._plan()
        return {
            "dims": np.array(
                [
                    self.n,
                    self._nprocs,
                    *self._local.shape,
                    *self._fold.shape,
                    self._threads,
                ],
                dtype=np.int64,
            ),
            "plan_local_splits": np.asarray(plan.local_splits, dtype=np.int64),
            "plan_fold_splits": np.asarray(plan.fold_splits, dtype=np.int64),
            "local_data": self._local.data,
            "local_indices": self._local.indices,
            "local_indptr": self._local.indptr,
            "fold_data": self._fold.data,
            "fold_indices": self._fold.indices,
            "fold_indptr": self._fold.indptr,
            "slot_rank": np.asarray(self._slot_rank, dtype=np.int64),
        }

    @classmethod
    def from_arrays(cls, arrays: dict) -> "SpmvEngine":
        """Reassemble an engine from :meth:`to_arrays` output.

        The arrays are adopted *without copying* — mmap-backed
        (read-only) inputs are fine because the multiply kernels never
        mutate operator storage — so loading an artifact costs only
        header parsing, not data movement.
        """
        dims = np.asarray(arrays["dims"], dtype=np.int64)
        if dims.shape not in ((6,), (7,)):
            raise ValueError(f"bad dims member shape {dims.shape}")
        n, p = int(dims[0]), int(dims[1])
        eng = cls.__new__(cls)
        eng.n = n
        eng._nprocs = p
        eng._local = _adopt_csr(
            arrays["local_data"],
            arrays["local_indices"],
            arrays["local_indptr"],
            (int(dims[2]), int(dims[3])),
        )
        eng._fold = _adopt_csr(
            arrays["fold_data"],
            arrays["fold_indices"],
            arrays["fold_indptr"],
            (int(dims[4]), int(dims[5])),
        )
        eng._slot_rank = np.asarray(arrays["slot_rank"])
        if eng._fold.shape[0] != n or eng._local.shape[1] != n:
            raise ValueError("operator shapes inconsistent with n")
        if len(eng._slot_rank) != eng._local.shape[0]:
            raise ValueError("slot_rank length inconsistent with local operator")
        eng._abft = None
        eng.abft_listener = None
        eng._threads = _threads.resolve_threads(None)
        eng._plans = {}
        eng._abft_plans = {}
        if dims.shape == (7,) and "plan_local_splits" in arrays:
            # adopt the persisted plan under the budget it was planned
            # for; the runtime budget still wins (a mismatch re-plans)
            plan_threads = int(dims[6])
            eng._plans[plan_threads] = ApplyPlan.from_splits(
                eng._local,
                eng._fold,
                plan_threads,
                arrays["plan_local_splits"],
                arrays["plan_fold_splits"],
            )
        eng._plan()
        return eng

    @property
    def nbytes(self) -> int:
        """Resident bytes of the compiled operators.

        The residency layer (:mod:`repro.serve.residency`) budgets its LRU
        by this number: the two CSR operators dominate a resident engine's
        footprint, the apply plans (split arrays plus each bound block's
        small indptr — the entry arrays are zero-copy views and counted
        once with their parent) ride along per cached budget, the lazily
        built ABFT operators are counted only once they exist, and Python
        object overhead is ignored as noise.
        """
        total = self._slot_rank.nbytes
        for op in (self._local, self._fold):
            total += op.data.nbytes + op.indices.nbytes + op.indptr.nbytes
        for plan in self._plans.values():
            total += plan.nbytes
        return int(total) + self.abft_bytes

    @property
    def abft_bytes(self) -> int:
        """Bytes of the lazily built ABFT state (0 until first use).

        Split out from :attr:`nbytes` so the residency layer can report
        how much of an entry's footprint appeared *after* admission —
        the accounting drift the post-materialization budget re-check
        exists to correct. Counts all three checksum operators (the
        selector, weights, and |weights|) plus any checksum-row apply
        plans, since every one of them is resident once built.
        """
        if self._abft is None:
            return 0
        total = 0
        for op in self._abft:
            total += op.data.nbytes + op.indices.nbytes + op.indptr.nbytes
        for splits, e_blocks, eabs_blocks in self._abft_plans.values():
            total += splits.nbytes
            for _, _, block in (*e_blocks, *eabs_blocks):
                total += block.indptr.nbytes
        return int(total)

    # -- ABFT checksums ----------------------------------------------------

    def _abft_operators(self):
        """(S, E, Eabs): slot->rank selector, checksum weights, |weights|.

        ``S`` is the (p, slots) 0/1 matrix summing each rank's partial
        buffer; ``E = S @ local`` holds rank r's Huang-Abraham checksum
        vector ``w_r = e^T A_r`` in row r; ``Eabs`` the entrywise absolute
        values for the noise bound. Built lazily: campaigns with ABFT off
        never pay for it.
        """
        if self._abft is None:
            nslots = self._local.shape[0]
            S = sp.csr_matrix(
                (np.ones(nslots), self._slot_rank,
                 np.arange(nslots + 1, dtype=np.int64)),
                shape=(nslots, self._nprocs),
            ).T.tocsr()
            E = (S @ self._local).tocsr()
            Eabs = sp.csr_matrix(
                (np.abs(E.data), E.indices, E.indptr), shape=E.shape
            )
            self._abft = (S, E, Eabs)
            if self.abft_listener is not None:
                # the engine just grew abft_bytes after admission; let
                # the residency layer re-check its byte budget
                self.abft_listener()
        return self._abft

    def _abft_blocks(self) -> tuple:
        """Row blocks of (E, Eabs) for the active budget, planned once.

        The checksum dots ride the same nnz-balanced discipline as the
        main operators: ``E`` and ``Eabs`` share structure, so one split
        over ``E.indptr`` serves both.
        """
        entry = self._abft_plans.get(self._threads)
        if entry is None:
            _, E, Eabs = self._abft_operators()
            splits = _threads.balanced_row_splits(E.indptr, self._threads)
            entry = (
                splits,
                _threads.bind_blocks(E, splits),
                _threads.bind_blocks(Eabs, splits),
            )
            self._abft_plans[self._threads] = entry
        return entry

    def spmv_with_partials(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(y, partials)``: the result plus the pre-fold partial sums.

        ``partials`` is the concatenation of every rank's partial-sum
        buffer (the expand + local-compute output); ``y = fold @
        partials``. The fault injector perturbs ``partials`` between the
        two stages to model corruption at specific pipeline points.
        """
        plan = self._plan()
        with phase("engine.local"):
            partials = self._apply(self._local, plan.local_blocks, x)
        with phase("engine.fold"):
            return self._apply(self._fold, plan.fold_blocks, partials), partials

    def fold(self, partials: np.ndarray) -> np.ndarray:
        """Fold + sum a (possibly perturbed) partial-sum buffer."""
        plan = self._plan()
        with phase("engine.fold"):
            return self._apply(self._fold, plan.fold_blocks, partials)

    def abft_check(
        self,
        x: np.ndarray,
        partials: np.ndarray,
        y: np.ndarray | None = None,
        rtol: float = ABFT_RTOL,
    ) -> AbftCheck:
        """Huang-Abraham checksum test of one executed SpMV.

        Compares each rank's observed partial sum against its precomputed
        checksum dot ``w_r @ x``, flagging ranks whose discrepancy exceeds
        ``rtol * (|w_r| @ |x| + |observed|)`` — a bound the exact
        computation can only approach through float reassociation, so a
        clean run never trips it (tested over the golden corpus). When *y*
        is given, additionally checks the global identity
        ``sum(y) == sum_r w_r @ x`` that catches fold-transit corruption.
        """
        S, E, Eabs = self._abft_operators()
        with phase("engine.abft"):
            observed = S @ partials
            if self._threads > 1 and _threads._resolve_kernel(None) == "threaded":
                _, e_blocks, eabs_blocks = self._abft_blocks()
                expected = self._apply(E, e_blocks, x)
                noise_scale = self._apply(Eabs, eabs_blocks, np.abs(x))
            else:
                expected = E @ x
                noise_scale = Eabs @ np.abs(x)
        disc = np.abs(observed - expected)
        threshold = rtol * (noise_scale + np.abs(observed))
        flagged = np.flatnonzero(disc > threshold)
        fold_flagged = False
        if y is not None:
            total_disc = abs(float(np.sum(y)) - float(np.sum(expected)))
            total_thr = rtol * float(np.sum(noise_scale) + np.abs(y).sum())
            # only attribute to the fold if the producer-side sums passed
            fold_flagged = total_disc > total_thr and len(flagged) == 0
        return AbftCheck(
            rank_discrepancy=disc,
            rank_threshold=threshold,
            flagged_ranks=flagged,
            fold_flagged=fold_flagged,
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` through the compiled four phases.

        *x* must be a float64 vector of length n (the caller validates).
        With a thread budget > 1 the two multiplies fan out over the
        plan's row blocks, bit-identical to the serial kernel.
        """
        plan = self._plan()
        with phase("engine.local"):
            partials = self._apply(self._local, plan.local_blocks, x)
        with phase("engine.fold"):
            return self._apply(self._fold, plan.fold_blocks, partials)

    def spmm(self, X: np.ndarray) -> np.ndarray:
        """``A @ X`` for an (n, k) block — k SpMVs through one compiled pass.

        Column j of the result is bit-identical to ``spmv(X[:, j])``: CSR
        times a dense block performs each row-column accumulation in the
        same stored-entry order as the matvec. Threading splits rows,
        never columns, so the identity survives the threaded kernel.
        """
        plan = self._plan()
        with phase("engine.local"):
            partials = self._apply(self._local, plan.local_blocks, X)
        with phase("engine.fold"):
            return self._apply(self._fold, plan.fold_blocks, partials)
