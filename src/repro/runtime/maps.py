"""Epetra-style distribution maps.

A :class:`Map` records which process owns each global index of a vector
(or of the rows of a matrix). Epetra derives all SpMV communication from
four such maps (row, column, range, domain); our runtime does the same —
see :mod:`repro.runtime.distmatrix`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Map"]


class Map:
    """Ownership map: global index -> owner rank.

    Parameters
    ----------
    owner:
        int64 array of length n; ``owner[k]`` is the rank owning index k.
    nprocs:
        Number of ranks.

    Within a rank, owned indices are ordered by global id — the local id
    of global index k on its owner is its position in that sorted list.
    """

    def __init__(self, owner: np.ndarray, nprocs: int):
        self.owner = np.asarray(owner, dtype=np.int64)
        if self.owner.ndim != 1:
            raise ValueError("owner must be 1-D")
        self.nprocs = int(nprocs)
        if len(self.owner) and (self.owner.min() < 0 or self.owner.max() >= nprocs):
            raise ValueError(f"owner ranks out of range [0, {nprocs})")
        # group indices by owner once; all lookups derive from this
        order = np.argsort(self.owner, kind="stable")
        counts = np.bincount(self.owner, minlength=nprocs)
        self._starts = np.concatenate([[0], np.cumsum(counts)])
        self._grouped = order  # indices sorted by owner, global-id ascending
        self._counts = counts

    @property
    def n(self) -> int:
        """Number of global indices."""
        return len(self.owner)

    def counts(self) -> np.ndarray:
        """Owned-index count per rank, shape ``(nprocs,)``."""
        return self._counts.copy()

    def indices_of(self, rank: int) -> np.ndarray:
        """Global indices owned by *rank*, ascending (view, do not mutate)."""
        return self._grouped[self._starts[rank] : self._starts[rank + 1]]

    def grouped_indices(self) -> np.ndarray:
        """All global indices ordered by (owner rank, global id) — the
        concatenation of ``indices_of(r)`` over all ranks (view, do not
        mutate). The vectorized gather/scatter kernels index through
        this once instead of slicing per rank."""
        return self._grouped

    def starts(self) -> np.ndarray:
        """Per-rank segment starts into :meth:`grouped_indices`, length
        ``nprocs + 1`` (view, do not mutate)."""
        return self._starts

    def local_ids(
        self, global_ids: np.ndarray, rank: int, validate: bool = True
    ) -> np.ndarray:
        """Local ids (positions within the owner's list) of *global_ids*.

        All *global_ids* must be owned by *rank*; with ``validate=True``
        (the default) raises otherwise — a violated precondition here means
        a communication plan is wrong. Engine-internal call sites pass
        ``validate=False``: their plans are verified once at build time
        (:meth:`repro.runtime.distmatrix.DistSparseMatrix._verify_plans`),
        so re-checking ownership on every SpMV would only cost time.
        """
        owned = self.indices_of(rank)
        pos = np.searchsorted(owned, global_ids)
        if validate and len(global_ids) and (
            (pos >= len(owned)).any() or not np.array_equal(owned[np.minimum(pos, len(owned) - 1)], global_ids)
        ):
            raise ValueError(f"some indices are not owned by rank {rank}")
        return pos

    def imbalance(self) -> float:
        """Max/avg owned count (1.0 = perfectly balanced)."""
        if self.n == 0 or self.nprocs == 0:
            return 1.0
        avg = self.n / self.nprocs
        return float(self._counts.max() / max(avg, 1e-300))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Map)
            and self.nprocs == other.nprocs
            and np.array_equal(self.owner, other.owner)
        )

    def __repr__(self) -> str:
        return f"Map(n={self.n}, nprocs={self.nprocs}, imbalance={self.imbalance():.3f})"
