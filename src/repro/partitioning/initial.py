"""Initial bisection of the coarsest graph.

Three generators, best-of-k selected after refinement (METIS's strategy):

* greedy graph growing — BFS region growing from a random seed until the
  target weight is reached;
* spectral — weighted-median split of the Fiedler vector (dense solve, only
  attempted on small coarse graphs);
* random — weight-aware random assignment, the fallback that always works.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .partgraph import PartGraph

__all__ = ["greedy_graph_growing", "spectral_bisection", "random_bisection"]


def greedy_graph_growing(
    g: PartGraph, target_frac: float, rng: np.random.Generator
) -> np.ndarray:
    """Grow part 0 by BFS from a random seed until it holds ``target_frac``
    of the total primary weight. Disconnected leftovers are seeded again."""
    n = g.n
    part = np.ones(n, dtype=np.int64)
    target = g.total_weight()[0] * target_frac
    grown = 0.0
    visited = np.zeros(n, dtype=bool)
    order = rng.permutation(n)
    oi = 0
    from collections import deque

    queue: deque[int] = deque()
    while grown < target and oi <= n:
        if not queue:
            # (re)seed from the next unvisited vertex
            while oi < n and visited[order[oi]]:
                oi += 1
            if oi >= n:
                break
            queue.append(int(order[oi]))
            visited[order[oi]] = True
        v = queue.popleft()
        part[v] = 0
        grown += g.vwgt[v, 0]
        for u in g.neighbors(v):
            if not visited[u]:
                visited[u] = True
                queue.append(int(u))
    return part


def spectral_bisection(g: PartGraph, target_frac: float) -> np.ndarray | None:
    """Fiedler-vector bisection at the weighted median.

    Returns None when the eigensolve fails or the graph is trivially small;
    callers fall back to the other generators. Only intended for coarse
    graphs (dense solve below 600 vertices, Lanczos above).
    """
    n = g.n
    if n < 4 or n > 600 or g.xadj[-1] == 0:
        # dense solve only: shift-invert Lanczos on larger coarse graphs is
        # slower than the FM refinement it feeds and adds nothing over the
        # greedy starts — measured, not assumed
        return None
    W = g.adjacency_matrix()
    d = np.asarray(W.sum(axis=1)).ravel()
    L = sp.diags(d) - W
    try:
        _, vecs = np.linalg.eigh(L.toarray())
        fiedler = vecs[:, 1]
    except Exception:
        return None
    order = np.argsort(fiedler)
    cum = np.cumsum(g.vwgt[order, 0])
    target = g.total_weight()[0] * target_frac
    split = int(np.searchsorted(cum, target)) + 1
    split = min(max(split, 1), n - 1)
    part = np.ones(n, dtype=np.int64)
    part[order[:split]] = 0
    return part


def random_bisection(
    g: PartGraph, target_frac: float, rng: np.random.Generator
) -> np.ndarray:
    """Random weight-aware bisection: shuffle, take a prefix of the target
    weight into part 0."""
    order = rng.permutation(g.n)
    cum = np.cumsum(g.vwgt[order, 0])
    target = g.total_weight()[0] * target_frac
    split = int(np.searchsorted(cum, target)) + 1
    split = min(max(split, 1), g.n - 1) if g.n > 1 else 0
    part = np.ones(g.n, dtype=np.int64)
    part[order[:split]] = 0
    return part
