"""Initial bisection of the coarsest graph.

Three generators, best-of-k selected after refinement (METIS's strategy):

* greedy graph growing — BFS region growing from a random seed until the
  target weight is reached;
* spectral — weighted-median split of the Fiedler vector (dense solve, only
  attempted on small coarse graphs);
* random — weight-aware random assignment, the fallback that always works.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ._util import gather_slices
from .partgraph import PartGraph

__all__ = ["greedy_graph_growing", "spectral_bisection", "random_bisection"]


def greedy_graph_growing(
    g: PartGraph, target_frac: float, rng: np.random.Generator
) -> np.ndarray:
    """Grow part 0 by BFS from a random seed until it holds ``target_frac``
    of the total primary weight. Disconnected leftovers are seeded again.

    The BFS runs level-synchronously in numpy and replays the former
    per-vertex deque loop exactly: FIFO order equals level order with
    children gathered parent-by-parent in CSR neighbour order and
    deduplicated by first discovery, and the visit order never depends on
    the grown weight — the target only truncates the prefix. ``np.cumsum``
    accumulates float64 left to right exactly like the scalar ``grown +=``
    loop did, so the crossing vertex (and therefore the partition) is
    bit-identical.
    """
    n = g.n
    part = np.ones(n, dtype=np.int64)
    target = g.total_weight()[0] * target_frac
    if n == 0 or not 0.0 < target:
        return part
    visited = np.zeros(n, dtype=bool)
    order = rng.permutation(n)
    xadj, adjncy = g.xadj, g.adjncy
    bfs = np.empty(n, dtype=np.int64)
    pos = 0
    oi = 0
    while pos < n:
        # (re)seed from the next unvisited vertex in the random order
        while oi < n and visited[order[oi]]:
            oi += 1
        if oi >= n:
            break
        frontier = np.asarray([order[oi]], dtype=np.int64)
        visited[frontier] = True
        while len(frontier):
            bfs[pos : pos + len(frontier)] = frontier
            pos += len(frontier)
            # gather every neighbour slice of the frontier, in frontier
            # order then CSR order — the order the deque appended them
            cand = gather_slices(xadj, adjncy, frontier)
            cand = cand[~visited[cand]]
            if len(cand) == 0:
                break
            # first-discovery dedupe preserving order
            _, first = np.unique(cand, return_index=True)
            frontier = cand[np.sort(first)]
            visited[frontier] = True
    cum = np.cumsum(g.vwgt[bfs[:pos], 0])
    # vertex i is grown while the weight before it is < target, so the
    # grown prefix ends one past the last cumsum entry strictly below it
    k = min(int(np.searchsorted(cum[:-1], target, side="left")) + 1, pos)
    part[bfs[:k]] = 0
    return part


def spectral_bisection(g: PartGraph, target_frac: float) -> np.ndarray | None:
    """Fiedler-vector bisection at the weighted median.

    Returns None when the eigensolve fails or the graph is trivially small;
    callers fall back to the other generators. Only intended for coarse
    graphs (dense solve below 600 vertices, Lanczos above).
    """
    n = g.n
    if n < 4 or n > 600 or g.xadj[-1] == 0:
        # dense solve only: shift-invert Lanczos on larger coarse graphs is
        # slower than the FM refinement it feeds and adds nothing over the
        # greedy starts — measured, not assumed
        return None
    W = g.adjacency_matrix()
    d = np.asarray(W.sum(axis=1)).ravel()
    L = sp.diags(d) - W
    try:
        _, vecs = np.linalg.eigh(L.toarray())
        fiedler = vecs[:, 1]
    except Exception:
        return None
    order = np.argsort(fiedler)
    cum = np.cumsum(g.vwgt[order, 0])
    target = g.total_weight()[0] * target_frac
    split = int(np.searchsorted(cum, target)) + 1
    split = min(max(split, 1), n - 1)
    part = np.ones(n, dtype=np.int64)
    part[order[:split]] = 0
    return part


def random_bisection(
    g: PartGraph, target_frac: float, rng: np.random.Generator
) -> np.ndarray:
    """Random weight-aware bisection: shuffle, take a prefix of the target
    weight into part 0."""
    order = rng.permutation(g.n)
    cum = np.cumsum(g.vwgt[order, 0])
    target = g.total_weight()[0] * target_frac
    split = int(np.searchsorted(cum, target)) + 1
    split = min(max(split, 1), g.n - 1) if g.n > 1 else 0
    part = np.ones(g.n, dtype=np.int64)
    part[order[:split]] = 0
    return part
