"""Hypergraph coarsening via heavy-overlap handshake matching.

Vertices that share many (small) nets should merge: collapsing them removes
those nets from consideration and preserves the connectivity cut. We build
the similarity graph ``S = H'^T diag(1/(size-1)) H'`` (the inner-product /
heavy-connectivity measure used by PaToH and Zoltan PHG), where ``H'``
excludes very large nets — a hub column with thousands of pins would
otherwise create a quadratic-size similarity clique while carrying almost
no matching signal. Matching on S reuses the graph handshake matcher.

Both hypergraph stages run behind the same kernel switch as the graph
stages (:data:`repro.partitioning.coarsen.COARSEN_KERNELS`):

* ``"vector"`` — :func:`similarity_graph` builds the scaled incidence
  directly from the kept rows' CSR arrays instead of the intermediate
  ``diags @ Hs`` matmul; :func:`hcontract` relabels pins with one sorted
  packed-key pass (net id, coarse pin) instead of the ``H @ P`` sparse
  matmul;
* ``"reference"`` — the seed scipy implementations kept verbatim as the
  bit-identity oracle.

Both produce bit-identical coarse hypergraphs; the full-corpus gate lives
in ``benchmarks/bench_coarsen_kernels.py``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .. import perf
from ..graphs.csr import as_csr
from .coarsen import _resolve_kernel, handshake_matching
from .hypergraph import Hypergraph
from .partgraph import PartGraph

__all__ = ["similarity_graph", "hcontract", "hcoarsen_level", "hcoarsen_to"]


def similarity_graph(
    hg: Hypergraph, max_net_size: int = 50, kernel: str | None = None
) -> PartGraph:
    """Vertex-similarity graph weighted by shared-net overlap.

    ``kernel`` selects the implementation (``"vector"``/``"reference"``,
    default the module kernel in :mod:`repro.partitioning.coarsen`); both
    produce bit-identical similarity graphs.
    """
    sizes = hg.net_sizes()
    keep = (sizes >= 2) & (sizes <= max_net_size)
    Hs = hg.H[keep]
    if Hs.nnz == 0:
        # no usable nets: empty similarity graph (matching degenerates to
        # singletons, coarsening stalls and the driver stops)
        empty = sp.csr_matrix((hg.n, hg.n))
        return PartGraph.from_scipy(empty, hg.vwgt)
    w = 1.0 / np.maximum(sizes[keep] - 1, 1)
    scale = np.sqrt(w * hg.netwgt[keep])
    if _resolve_kernel(kernel) == "vector":
        # diags(scale) @ Hs multiplies every (binary) pin entry of row e by
        # scale[e]: with data 1.0 the products are exactly scale[e], so the
        # scaled incidence can be assembled from Hs's own CSR arrays with a
        # repeat — same pattern, bit-equal data, no SpGEMM
        data = np.repeat(scale, np.diff(Hs.indptr))
        Hw = sp.csr_matrix((data, Hs.indices, Hs.indptr), shape=Hs.shape)
    else:
        Hw = sp.diags(scale) @ Hs
    S = as_csr(Hw.T @ Hw)
    S.setdiag(0.0)
    S.eliminate_zeros()
    return PartGraph.from_scipy(S, hg.vwgt)


def _coarse_map(match: np.ndarray) -> tuple[np.ndarray, int]:
    """Fine-to-coarse vertex map: representative = min(v, match[v])."""
    n = len(match)
    rep = np.minimum(np.arange(n, dtype=np.int64), match)
    is_rep = rep == np.arange(n)
    cmap = (np.cumsum(is_rep) - 1)[rep]
    return cmap, int(is_rep.sum())


def _coarse_vwgt(hg: Hypergraph, cmap: np.ndarray, nc: int) -> np.ndarray:
    """Coarse vertex weights: per-constraint histogram over ``cmap``.

    ``np.bincount`` sums in vertex order, exactly like the former
    ``np.add.at`` accumulation (see the identity test in
    ``tests/test_hypergraph.py``), but several times faster.
    """
    vwgt_c = np.empty((nc, hg.ncon))
    for c in range(hg.ncon):
        vwgt_c[:, c] = np.bincount(cmap, weights=hg.vwgt[:, c], minlength=nc)
    return vwgt_c


def hcontract(
    hg: Hypergraph, match: np.ndarray, kernel: str | None = None
) -> tuple[Hypergraph, np.ndarray]:
    """Contract matched vertex pairs; drop nets that fall below 2 pins.

    ``kernel`` selects the implementation; both produce bit-identical
    coarse hypergraphs (same incidence pattern, weights, net set).
    """
    if _resolve_kernel(kernel) == "vector":
        return _hcontract_vector(hg, match)
    return _hcontract_reference(hg, match)


def _hcontract_reference(hg: Hypergraph, match: np.ndarray) -> tuple[Hypergraph, np.ndarray]:
    """Seed contraction kernel: pin relabeling via the ``H @ P`` matmul."""
    n = hg.n
    cmap, nc = _coarse_map(match)
    P = sp.csr_matrix((np.ones(n), (np.arange(n), cmap)), shape=(n, nc))
    Hc = as_csr(hg.H @ P)
    Hc.data[:] = 1.0
    keep = np.diff(Hc.indptr) >= 2
    vwgt_c = _coarse_vwgt(hg, cmap, nc)
    return Hypergraph(as_csr(Hc[keep]), vwgt_c, hg.netwgt[keep]), cmap


def _hcontract_vector(hg: Hypergraph, match: np.ndarray) -> tuple[Hypergraph, np.ndarray]:
    """Sort-based contraction: relabel pins, dedupe (net, coarse-pin) pairs.

    ``H @ P`` maps every pin of net e to its coarse vertex and merges
    duplicates (two matched pins of the same net become one coarse pin);
    the resulting data counts are >= 1, so the reference's
    ``eliminate_zeros`` inside ``as_csr`` never fires and its
    ``data[:] = 1.0`` erases the counts anyway. The same set arrives
    without a matmul: pack each pin as ``net_id * nc + cmap[pin]``, sort,
    drop duplicates. Sorting the packed key yields nets ascending with
    coarse pins ascending inside each net — the canonical CSR layout
    ``as_csr`` produces — so the incidence arrays are identical. The
    below-2-pin net filter and the net-weight restriction then operate on
    identical inputs in both kernels.
    """
    cmap, nc = _coarse_map(match)
    H = hg.H
    net_of_pin = np.repeat(
        np.arange(hg.nnets, dtype=np.int64), np.diff(H.indptr)
    )
    key = net_of_pin * np.int64(nc) + cmap[H.indices]
    key = np.unique(key)  # sorts and dedupes merged pins in one pass
    nets = key // nc
    pins = key % nc
    counts = np.bincount(nets, minlength=hg.nnets)
    keep = counts >= 2

    # compact to kept nets: pins are already grouped by net in net order
    keep_pin = keep[nets]
    pins = pins[keep_pin]
    indptr = np.zeros(int(keep.sum()) + 1, dtype=np.int64)
    np.cumsum(counts[keep], out=indptr[1:])
    Hc = sp.csr_matrix(
        (np.ones(len(pins)), pins, indptr), shape=(len(indptr) - 1, nc)
    )
    vwgt_c = _coarse_vwgt(hg, cmap, nc)
    return Hypergraph(Hc, vwgt_c, hg.netwgt[keep]), cmap


def hcoarsen_level(
    hg: Hypergraph,
    rng: np.random.Generator,
    max_vertex_weight: np.ndarray | None = None,
    max_net_size: int = 50,
    kernel: str | None = None,
) -> tuple[Hypergraph, np.ndarray]:
    """One coarsening level: similarity, matching, contraction (profiled)."""
    with perf.phase("similarity"):
        sim = similarity_graph(hg, max_net_size=max_net_size, kernel=kernel)
    with perf.phase("match"):
        match = handshake_matching(
            sim, rng, max_vertex_weight=max_vertex_weight, kernel=kernel
        )
    with perf.phase("contract"):
        return hcontract(hg, match, kernel=kernel)


def hcoarsen_to(
    hg: Hypergraph,
    min_vertices: int,
    rng: np.random.Generator,
    max_weight_fraction: float = 0.25,
    min_shrink: float = 0.95,
    kernel: str | None = None,
) -> list[tuple[Hypergraph, np.ndarray | None]]:
    """Coarsen until under *min_vertices* vertices or matching stalls.

    ``kernel`` selects the similarity/matching/contraction implementation
    for every level (see :func:`repro.partitioning.coarsen.use_kernel`).
    """
    levels: list[tuple[Hypergraph, np.ndarray | None]] = [(hg, None)]
    max_w = hg.total_weight() * max_weight_fraction
    while levels[-1][0].n > min_vertices:
        cur = levels[-1][0]
        hgc, cmap = hcoarsen_level(cur, rng, max_vertex_weight=max_w, kernel=kernel)
        if hgc.n >= cur.n * min_shrink:
            break
        levels.append((hgc, cmap))
    return levels
