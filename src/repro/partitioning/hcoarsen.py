"""Hypergraph coarsening via heavy-overlap handshake matching.

Vertices that share many (small) nets should merge: collapsing them removes
those nets from consideration and preserves the connectivity cut. We build
the similarity graph ``S = H'^T diag(1/(size-1)) H'`` (the inner-product /
heavy-connectivity measure used by PaToH and Zoltan PHG), where ``H'``
excludes very large nets — a hub column with thousands of pins would
otherwise create a quadratic-size similarity clique while carrying almost
no matching signal. Matching on S reuses the graph handshake matcher.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graphs.csr import as_csr
from .coarsen import handshake_matching
from .hypergraph import Hypergraph
from .partgraph import PartGraph

__all__ = ["similarity_graph", "hcontract", "hcoarsen_level", "hcoarsen_to"]


def similarity_graph(hg: Hypergraph, max_net_size: int = 50) -> PartGraph:
    """Vertex-similarity graph weighted by shared-net overlap."""
    sizes = hg.net_sizes()
    keep = (sizes >= 2) & (sizes <= max_net_size)
    Hs = hg.H[keep]
    if Hs.nnz == 0:
        # no usable nets: empty similarity graph (matching degenerates to
        # singletons, coarsening stalls and the driver stops)
        empty = sp.csr_matrix((hg.n, hg.n))
        return PartGraph.from_scipy(empty, hg.vwgt)
    w = 1.0 / np.maximum(sizes[keep] - 1, 1)
    Hw = sp.diags(np.sqrt(w * hg.netwgt[keep])) @ Hs
    S = as_csr(Hw.T @ Hw)
    S.setdiag(0.0)
    S.eliminate_zeros()
    return PartGraph.from_scipy(S, hg.vwgt)


def hcontract(hg: Hypergraph, match: np.ndarray) -> tuple[Hypergraph, np.ndarray]:
    """Contract matched vertex pairs; drop nets that fall below 2 pins."""
    n = hg.n
    rep = np.minimum(np.arange(n, dtype=np.int64), match)
    is_rep = rep == np.arange(n)
    cmap = (np.cumsum(is_rep) - 1)[rep]
    nc = int(is_rep.sum())
    P = sp.csr_matrix((np.ones(n), (np.arange(n), cmap)), shape=(n, nc))
    Hc = as_csr(hg.H @ P)
    Hc.data[:] = 1.0
    keep = np.diff(Hc.indptr) >= 2
    vwgt_c = np.zeros((nc, hg.ncon))
    np.add.at(vwgt_c, cmap, hg.vwgt)
    return Hypergraph(as_csr(Hc[keep]), vwgt_c, hg.netwgt[keep]), cmap


def hcoarsen_level(
    hg: Hypergraph,
    rng: np.random.Generator,
    max_vertex_weight: np.ndarray | None = None,
    max_net_size: int = 50,
) -> tuple[Hypergraph, np.ndarray]:
    """One coarsening level: similarity matching then contraction."""
    sim = similarity_graph(hg, max_net_size=max_net_size)
    match = handshake_matching(sim, rng, max_vertex_weight=max_vertex_weight)
    return hcontract(hg, match)


def hcoarsen_to(
    hg: Hypergraph,
    min_vertices: int,
    rng: np.random.Generator,
    max_weight_fraction: float = 0.25,
    min_shrink: float = 0.95,
) -> list[tuple[Hypergraph, np.ndarray | None]]:
    """Coarsen until under *min_vertices* vertices or matching stalls."""
    levels: list[tuple[Hypergraph, np.ndarray | None]] = [(hg, None)]
    max_w = hg.total_weight() * max_weight_fraction
    while levels[-1][0].n > min_vertices:
        cur = levels[-1][0]
        hgc, cmap = hcoarsen_level(cur, rng, max_vertex_weight=max_w)
        if hgc.n >= cur.n * min_shrink:
            break
        levels.append((hgc, cmap))
    return levels
