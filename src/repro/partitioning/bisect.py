"""Multilevel bisection driver: coarsen -> initial partition -> refine up.

Mirrors the METIS pipeline. The initial partition is chosen best-of-k:
several greedy-graph-growing starts, a spectral split, and a random split
are each FM-refined on the coarsest graph, and the (balanced, min-cut)
winner is projected back up with refinement at every level.
"""

from __future__ import annotations

import numpy as np

from .. import perf
from .coarsen import coarsen_to
from .initial import greedy_graph_growing, random_bisection, spectral_bisection
from .partgraph import PartGraph
from .refine import balance_allowance, fm_refine, is_balanced

__all__ = ["multilevel_bisect"]


def _score(g: PartGraph, part: np.ndarray, allow) -> tuple:
    sw = np.zeros((2, g.ncon))
    np.add.at(sw, part, g.vwgt)
    over = float(np.maximum(sw - allow, 0.0).sum())
    return (not is_balanced(sw, allow), over, g.edgecut(part))


def multilevel_bisect(
    g: PartGraph,
    target_fracs: tuple[float, float] = (0.5, 0.5),
    ub: float = 1.05,
    seed: int = 0,
    min_coarse: int = 120,
    n_initial: int = 4,
    refine_passes: int = 3,
    coarsen_kernel: str | None = None,
) -> np.ndarray:
    """Bisect *g* into parts {0, 1} with target weight fractions.

    Parameters
    ----------
    g:
        Graph to bisect (any number of balance constraints; constraint 0
        drives the initial partition, all constraints bound refinement).
    target_fracs:
        Desired weight fractions, e.g. (0.5, 0.5) or (0.375, 0.625) for
        uneven recursive splits.
    ub:
        Imbalance tolerance per side (1.05 = 5% overweight allowed).
    seed:
        Deterministic seed for matching/initial-partition randomness.
    min_coarse:
        Stop coarsening below this many vertices.
    n_initial:
        Number of greedy-graph-growing starts to try.
    coarsen_kernel:
        Coarsening kernel ("vector"/"reference"); ``None`` uses the module
        default (see :func:`repro.partitioning.coarsen.use_kernel`). Both
        kernels produce bit-identical partitions.
    """
    if abs(sum(target_fracs) - 1.0) > 1e-9:
        raise ValueError(f"target fractions must sum to 1, got {target_fracs}")
    if g.n == 0:
        return np.zeros(0, dtype=np.int64)
    if g.n == 1:
        return np.zeros(1, dtype=np.int64)
    rng = np.random.default_rng(seed)

    with perf.phase("coarsen"):
        levels = coarsen_to(g, min_coarse, rng, kernel=coarsen_kernel)
    gc = levels[-1][0]
    allow_c = balance_allowance(gc, target_fracs, ub)

    # --- initial partitions on the coarsest graph ---
    with perf.phase("initial"):
        candidates: list[np.ndarray] = []
        for _ in range(n_initial):
            candidates.append(greedy_graph_growing(gc, target_fracs[0], rng))
        spec = spectral_bisection(gc, target_fracs[0])
        if spec is not None:
            candidates.append(spec)
        candidates.append(random_bisection(gc, target_fracs[0], rng))

        refined = [
            fm_refine(gc, p, target_fracs, ub, passes=refine_passes, rng=rng)
            for p in candidates
        ]
        part = min(refined, key=lambda p: _score(gc, p, allow_c))

    # --- uncoarsen with refinement at each level ---
    for (g_fine, _), (_, cmap) in zip(reversed(levels[:-1]), reversed(levels[1:])):
        with perf.phase("project"):
            part = part[cmap]  # project coarse part onto the finer level
        with perf.phase("refine"):
            part = fm_refine(g_fine, part, target_fracs, ub, passes=refine_passes, rng=rng)
    return part
