"""Front-door partitioning API.

``partition_matrix`` is what the layout layer calls: it hides the choice
between the graph partitioner (ParMETIS's role — method ``"gp"``), the
hypergraph partitioner (Zoltan PHG's role — ``"hp"``) and the
multiconstraint variant (``"gp-mc"``, balancing rows *and* nonzeros, used
by the paper's eigensolver experiments).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import perf
from .hkway import hypergraph_recursive_bisection
from .hypergraph import Hypergraph
from .kway import kway_balance_refine, recursive_bisection
from .partgraph import PartGraph

__all__ = ["partition_matrix", "PartitionResult", "PARTITION_METHODS"]

#: Methods accepted by :func:`partition_matrix`.
PARTITION_METHODS = ("gp", "hp", "gp-mc")


@dataclass(frozen=True)
class PartitionResult:
    """A k-way row/column partition of a matrix.

    Attributes
    ----------
    part:
        int64 part id per row (``rpart`` in the paper's Algorithm 1).
    nparts, method, seed:
        How it was produced.
    edgecut:
        Graph edge cut (gp methods) or connectivity-1 cut (hp) — the
        partitioner's own objective value, for diagnostics.
    imbalance:
        Realised max/avg imbalance per balance constraint.
    """

    part: np.ndarray
    nparts: int
    method: str
    seed: int
    edgecut: float
    imbalance: tuple[float, ...]


def partition_matrix(
    A,
    nparts: int,
    method: str = "gp",
    seed: int = 0,
    ub: float = 1.10,
    jobs: int | None = None,
    executor=None,
    **kwargs,
) -> PartitionResult:
    """Partition the rows/columns of square matrix *A* into *nparts* parts.

    Parameters
    ----------
    A:
        Square sparse matrix (any scipy-coercible form). The partitioners
        operate on the symmetrised pattern.
    nparts:
        Number of parts (= number of processes p in the paper).
    method:
        ``"gp"``  — multilevel graph partitioning, balancing nonzeros
        (the paper's default for SpMV layouts);
        ``"hp"``  — multilevel hypergraph partitioning on the column-net
        model, balancing nonzeros (used for the paper's largest matrices);
        ``"gp-mc"`` — graph partitioning with two balance constraints,
        rows and nonzeros (the paper's 1D/2D-GP-MC eigensolver variants).
    seed:
        Deterministic seed.
    ub:
        K-way imbalance tolerance (1.10 = 10%). Note that on scale-free
        graphs a single hub row can exceed the average part weight, in
        which case the realised imbalance is vertex-granularity-bound.
    jobs, executor:
        Fan the recursive-bisection tree across a process pool
        (:mod:`repro.parallel`). ``jobs=None``/``1`` keeps the serial
        reference path; results are bit-identical either way.
    kwargs:
        Forwarded to the bisection driver (``min_coarse``, ``n_initial``,
        ``refine_passes``, ``seed_scheme``, ``coarsen_kernel``).
    """
    if method not in PARTITION_METHODS:
        if method == "hp-mc":
            raise ValueError(
                "multiconstraint partitioning is not available with the "
                "hypergraph partitioner (the paper hits the same limitation: "
                "'multiconstraint partitioning was not available with "
                "hypergraph partitioning')"
            )
        raise ValueError(f"unknown method {method!r}; choose from {PARTITION_METHODS}")
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")

    parallel_rb = (jobs is not None and int(jobs) != 1) or executor is not None

    if method == "hp":
        with perf.phase("build-graph"):
            hg = Hypergraph.from_matrix_column_net(A, vertex_weights="nnz")
        if parallel_rb:
            from ..parallel import parallel_hypergraph_recursive_bisection

            part = parallel_hypergraph_recursive_bisection(
                hg, nparts, ub=ub, seed=seed, jobs=jobs, executor=executor, **kwargs
            )
        else:
            part = hypergraph_recursive_bisection(hg, nparts, ub=ub, seed=seed, **kwargs)
        # hypergraph FM controls the cut well but leaves more imbalance than
        # the graph path; reuse the k-way balance repair on the adjacency
        # structure (balance is a vertex-weight property, not a cut-model
        # property, so the graph view is the right tool for both methods).
        # Rows are repaired alongside nonzeros: an nnz-only-balanced
        # partition of a power-law graph concentrates low-degree rows, and
        # the resulting vector imbalance poisons every vector-bound use of
        # the partition (the production tools this emulates do not exhibit
        # that pathology at their operating scale)
        g_bal = PartGraph.from_matrix(A, vertex_weights=("unit", "nnz"))
        with perf.phase("balance-repair"):
            part = kway_balance_refine(
                g_bal, part, nparts, ub=np.array([1.15, max(ub, 1.25)])
            )
        cut = hg.cut_connectivity_minus_one(part, nparts)
        imb = tuple(float(x) for x in g_bal.imbalance(part, nparts))  # (rows, nnz)
        return PartitionResult(part, nparts, method, seed, float(cut), imb)

    weights = ("unit", "nnz") if method == "gp-mc" else "nnz"
    with perf.phase("build-graph"):
        g = PartGraph.from_matrix(A, vertex_weights=weights)
    if parallel_rb:
        from ..parallel import parallel_recursive_bisection

        part = parallel_recursive_bisection(
            g, nparts, ub=ub, seed=seed, jobs=jobs, executor=executor, **kwargs
        )
    else:
        part = recursive_bisection(g, nparts, ub=ub, seed=seed, **kwargs)
    imb = tuple(float(x) for x in g.imbalance(part, nparts))
    return PartitionResult(part, nparts, method, seed, g.edgecut(part), imb)
