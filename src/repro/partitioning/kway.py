"""K-way partitioning by recursive bisection, with hierarchical numbering.

Recursive bisection (RB) is how METIS's ``pmetis`` and Zoltan's PHG obtain
k parts: split the graph (k0, k1)-proportionally, recurse on the induced
subgraphs. Part ids follow the recursion tree — the left subtree owns ids
``[lo, lo+k0)`` — which gives a useful *nesting* property for free: for
power-of-two part counts, ``part_k' = part_k * k' // k`` is exactly the RB
partition with k' parts. The bench harness exploits this to amortise one
deep partition across every process count of a scaling study
(:func:`derive_nested_partition`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .. import perf
from ._util import check_part_vector, child_seeds
from .bisect import multilevel_bisect
from .partgraph import PartGraph

__all__ = [
    "recursive_bisection",
    "kway_balance_refine",
    "derive_nested_partition",
    "partition_quality",
    "PartitionQuality",
]


def recursive_bisection(
    g: PartGraph,
    nparts: int,
    ub: float = 1.05,
    seed: int = 0,
    seed_scheme: str = "legacy",
    **bisect_kwargs,
) -> np.ndarray:
    """Partition *g* into *nparts* parts; returns the part vector.

    The per-level imbalance tolerance is ``ub ** (1/ceil(log2 k))`` so the
    *compounded* k-way imbalance stays near ``ub`` (RB multiplies the
    per-level slack down the tree). ``seed_scheme`` picks how subtree
    seeds derive from *seed* (see :func:`repro.partitioning._util.child_seeds`);
    the default matches every historical partition and golden snapshot.
    """
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    part = np.zeros(g.n, dtype=np.int64)
    if nparts == 1 or g.n == 0:
        return part
    depth = int(np.ceil(np.log2(nparts)))
    ub_level = float(ub) ** (1.0 / depth)
    _rb(g, np.arange(g.n, dtype=np.int64), 0, nparts, part, ub_level, seed,
        bisect_kwargs, seed_scheme)
    with perf.phase("balance-repair"):
        part = kway_balance_refine(g, part, nparts, ub=ub)
    return check_part_vector(part, g.n, nparts)


def _split(g: PartGraph, k: int, ub: float, seed, kwargs: dict) -> tuple[np.ndarray, int]:
    """One RB node: bisect *g* (k0 : k-k0)-proportionally.

    Returns the 0/1 side vector and k0. This is the unit of work the
    process-pool driver (:mod:`repro.parallel`) ships to workers, so it
    must stay a pure function of its arguments.
    """
    k0 = k // 2
    # proportional target: excess weight inherited from upper levels is
    # spread across both subtrees rather than pushed into one part
    # (targeting multiples of a root-level ideal instead concentrates all
    # the accumulated excess in the last part — measurably worse)
    frac0 = k0 / k
    with perf.phase("bisect"):
        bis = multilevel_bisect(g, (frac0, 1.0 - frac0), ub=ub, seed=seed, **kwargs)
    # degenerate split (can happen on tiny/star graphs): fall back to a
    # proportional split of the weight-sorted vertex list so every part id
    # stays populated
    if (bis == 0).sum() == 0 or (bis == 1).sum() == 0:
        order = np.argsort(-g.vwgt[:, 0], kind="stable")
        nleft = max(1, min(g.n - 1, int(round(g.n * frac0))))
        bis = np.ones(g.n, dtype=np.int64)
        bis[order[:nleft]] = 0
    return bis, k0


def _rb(
    g: PartGraph,
    vertices: np.ndarray,
    lo: int,
    k: int,
    part: np.ndarray,
    ub: float,
    seed,
    kwargs: dict,
    seed_scheme: str = "legacy",
) -> None:
    if k == 1 or len(vertices) == 0:
        part[vertices] = lo
        return
    bis, k0 = _split(g, k, ub, seed, kwargs)
    s_left, s_right = child_seeds(seed, seed_scheme)
    g_left = g.induced_subgraph(np.flatnonzero(bis == 0))
    g_right = g.induced_subgraph(np.flatnonzero(bis == 1))
    _rb(g_left, vertices[bis == 0], lo, k0, part, ub, s_left, kwargs, seed_scheme)
    _rb(g_right, vertices[bis == 1], lo + k0, k - k0, part, ub, s_right, kwargs, seed_scheme)


def kway_balance_refine(
    g: PartGraph,
    part: np.ndarray,
    nparts: int,
    ub: float | np.ndarray = 1.05,
    max_rounds: int = 8,
) -> np.ndarray:
    """Greedy k-way balance repair after recursive bisection.

    RB controls balance per bisection, but per-level slack compounds and
    scale-free hubs add vertex-granularity error. This pass empties
    overweight parts directly: each round it computes every vertex's edge
    weight towards each part (one sparse product) and moves vertices out of
    overweight parts into parts with room, preferring moves that keep the
    most edge weight internal. Cut may increase — on scale-free graphs
    trading a little volume for balance is the right trade (the paper's
    randomised layouts make the same trade much more aggressively).

    ``ub`` may be a per-constraint array: repairing a *secondary*
    constraint (e.g. row counts on an nnz-balanced partition) requires
    slack on the primary one, because a partition balanced to its cap has
    no headroom to receive anything.
    """
    part = np.asarray(part, dtype=np.int64).copy()
    if g.n == 0 or nparts == 1:
        return part
    total = g.total_weight()
    vmax = g.vwgt.max(axis=0)
    ub = np.broadcast_to(np.asarray(ub, dtype=np.float64), (g.ncon,))
    # granularity floor: a part holding one maximal vertex is irreducible,
    # but nothing forces extra weight to pile on top of it — so the floor
    # is vmax itself, not avg + vmax (the wider form would declare a
    # hub-plus-full-average part "balanced")
    allow = np.maximum(ub * total / nparts, 1.02 * vmax)  # (ncon,)
    pw = g.part_weights(part, nparts)

    W = g.adjacency_matrix()
    for _ in range(max_rounds):
        over = np.flatnonzero((pw > allow[None, :] + 1e-9).any(axis=1))
        if len(over) == 0:
            break
        onehot = sp.csr_matrix(
            (np.ones(g.n), (np.arange(g.n), part)), shape=(g.n, nparts)
        )
        C = (W @ onehot).tocsr()  # C[v, t] = edge weight from v into part t
        # the apply loop below reads C through raw CSR arrays (a scipy
        # row extraction per candidate vertex dominated this whole pass)
        indptr, cind, cdat = C.indptr, C.indices, C.data
        moved_any = False
        for s in over:
            cand = np.flatnonzero(part == s)
            if len(cand) <= 1:
                continue
            # cheapest-to-move first *in the violated dimension*: order by
            # internal edge weight per unit of the constraint this part is
            # most over on. (Ordering by a different constraint's weight
            # moves the wrong vertices and burns the targets' headroom —
            # e.g. shedding thousands of leaf rows when moving a few hub
            # rows would fix an nnz overage.)
            cstar = int(np.argmax(pw[s] / allow))
            # batched gather of C[cand, s]: flatten the candidate rows once
            # and pick out the column-s entries (rows without one keep 0)
            starts, ends = indptr[cand], indptr[cand + 1]
            counts = ends - starts
            flat = (
                np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
                + np.arange(counts.sum())
            )
            rows_rep = np.repeat(np.arange(len(cand)), counts)
            hit = cind[flat] == s
            internal = np.zeros(len(cand))
            internal[rows_rep[hit]] = cdat[flat[hit]]
            order = cand[np.argsort(internal / np.maximum(g.vwgt[cand, cstar], 1e-12))]
            for v in order.tolist():
                if not (pw[s] > allow + 1e-9).any():
                    break  # s is balanced now
                sl = slice(indptr[v], indptr[v + 1])
                keep = cind[sl] != s
                targets = cind[sl][keep]
                gains = cdat[sl][keep]
                w = g.vwgt[v]
                # consider neighbour parts by descending attraction, then —
                # as teleport fallbacks — the parts with the most headroom
                # on their *worst* constraint (a part minimal on one
                # constraint may be pinned at the cap of another)
                moved = False
                for t in targets[np.argsort(-gains)]:
                    if (pw[t] + w <= allow + 1e-9).all():
                        part[v] = t
                        pw[s] -= w
                        pw[t] += w
                        moved_any = moved = True
                        break
                if moved:
                    continue
                headroom = (pw / allow[None, :]).max(axis=1)
                for t in np.argsort(headroom)[:3].tolist():
                    if t == s:
                        continue
                    if (pw[t] + w <= allow + 1e-9).all():
                        part[v] = t
                        pw[s] -= w
                        pw[t] += w
                        moved_any = True
                        break
        if not moved_any:
            break
    return part


def derive_nested_partition(part: np.ndarray, nparts: int, nparts_coarse: int) -> np.ndarray:
    """Coarsen an RB part vector from *nparts* to *nparts_coarse* parts.

    Valid because RB numbering is hierarchical; requires both counts to be
    powers of two with ``nparts_coarse`` dividing ``nparts``.
    """
    for k in (nparts, nparts_coarse):
        if k < 1 or (k & (k - 1)) != 0:
            raise ValueError(f"part counts must be powers of two, got {k}")
    if nparts % nparts_coarse != 0:
        raise ValueError(f"{nparts_coarse} does not divide {nparts}")
    return np.asarray(part, dtype=np.int64) * nparts_coarse // nparts


@dataclass(frozen=True)
class PartitionQuality:
    """Edge cut and per-constraint imbalance of a k-way partition."""

    nparts: int
    edgecut: float
    imbalance: tuple[float, ...]
    min_part_weight: float
    max_part_weight: float


def partition_quality(g: PartGraph, part: np.ndarray, nparts: int) -> PartitionQuality:
    """Measure a partition: cut, imbalance, extreme part weights."""
    part = check_part_vector(part, g.n, nparts)
    pw = g.part_weights(part, nparts)
    imb = g.imbalance(part, nparts)
    return PartitionQuality(
        nparts=nparts,
        edgecut=g.edgecut(part),
        imbalance=tuple(float(x) for x in imb),
        min_part_weight=float(pw[:, 0].min()),
        max_part_weight=float(pw[:, 0].max()),
    )
