"""Shared numpy helpers for the partitioners."""

from __future__ import annotations

import numpy as np

__all__ = [
    "segment_argmax",
    "segment_argmax_last",
    "segment_sum",
    "gather_slices",
    "gather_csr_slots",
    "check_part_vector",
    "child_seeds",
]

#: Seed-derivation schemes for the recursive-bisection tree.
SEED_SCHEMES = ("legacy", "spawn")


def child_seeds(seed, scheme: str = "legacy") -> tuple:
    """Derive the two subtree seeds of a recursive-bisection node.

    ``"legacy"`` is the heap-numbering walk (``2s+1``, ``2s+2``) the
    partitioners have always used; it is what every golden snapshot and
    cached partition was generated under, so it stays the default. Its
    weakness is cross-root collisions: the left child of root seed 1 and
    the root of seed 3 share a stream.

    ``"spawn"`` derives children with ``np.random.SeedSequence.spawn``,
    giving collision-free streams keyed by tree position. The root is
    unchanged (``default_rng(s)`` and ``default_rng(SeedSequence(s))``
    are the same generator), so k=2 partitions agree between schemes.

    Both schemes are pure functions of (seed, tree position): the serial
    recursion and the process-pool driver in :mod:`repro.parallel` derive
    identical seeds for identical subtrees, which is what makes parallel
    partitions bit-identical to serial ones.
    """
    if scheme == "legacy":
        if isinstance(seed, np.random.SeedSequence):
            raise TypeError("legacy seed scheme needs an integer seed")
        return seed * 2 + 1, seed * 2 + 2
    if scheme == "spawn":
        ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
        left, right = ss.spawn(2)
        return left, right
    raise ValueError(f"unknown seed scheme {scheme!r}; choose from {SEED_SCHEMES}")


def segment_argmax(values: np.ndarray, xadj: np.ndarray) -> np.ndarray:
    """Per-segment argmax for CSR-style segments.

    ``values`` has one entry per CSR slot; segment *i* is
    ``values[xadj[i]:xadj[i+1]]``. Returns, for each non-empty segment, the
    *global* index (into ``values``) of its maximum; empty segments get -1.

    Implemented with a single lexsort: sorting by (segment, value) puts each
    segment's maximum last within the segment, at position ``xadj[i+1]-1``
    of the sorted order.
    """
    n = len(xadj) - 1
    if len(values) == 0:
        return np.full(n, -1, dtype=np.int64)
    seg = np.repeat(np.arange(n, dtype=np.int64), np.diff(xadj))
    order = np.lexsort((values, seg))
    out = np.full(n, -1, dtype=np.int64)
    nonempty = np.flatnonzero(np.diff(xadj) > 0)
    out[nonempty] = order[xadj[nonempty + 1] - 1]
    return out


def segment_argmax_last(values: np.ndarray, xadj: np.ndarray) -> np.ndarray:
    """Bit-identical :func:`segment_argmax` without the lexsort.

    The lexsort in :func:`segment_argmax` orders every slot, but all it is
    used for is "global index of the segment maximum, last occurrence on
    ties" — which one ``np.maximum.reduceat`` sweep plus a searchsorted
    extraction computes directly: find each segment's maximum, list the
    slots attaining it (ascending), and take the last such slot before
    each segment's end. Equal-value ties resolve to the highest slot index
    in both implementations (a stable sort by value puts the last
    occurrence of the maximum at the segment end), so the outputs are
    identical for any NaN-free input, including all-``-inf`` segments
    (``-inf == -inf`` holds, so every non-empty segment has at least one
    attaining slot). ~20x faster than the lexsort at 10^6 slots; this is
    the matching kernels' inner primitive.
    """
    n = len(xadj) - 1
    out = np.full(n, -1, dtype=np.int64)
    if len(values) == 0 or n == 0:
        return out
    counts = np.diff(xadj)
    nonempty = np.flatnonzero(counts > 0)
    if len(nonempty) == 0:
        return out
    starts = xadj[nonempty]
    seg_max = np.maximum.reduceat(values, starts)
    # ascending slot ids attaining their segment's maximum; the last one
    # before a segment's end boundary is that segment's argmax-last
    expanded = np.repeat(seg_max, counts[nonempty])
    hits = np.flatnonzero(values == expanded)
    ends = np.searchsorted(hits, xadj[nonempty + 1])
    out[nonempty] = hits[ends - 1]
    return out


def segment_sum(values: np.ndarray, xadj: np.ndarray) -> np.ndarray:
    """Per-segment sum for CSR-style segments (empty segments give 0)."""
    n = len(xadj) - 1
    out = np.zeros(n, dtype=np.float64)
    if len(values):
        seg = np.repeat(np.arange(n, dtype=np.int64), np.diff(xadj))
        np.add.at(out, seg, values)
    return out


def gather_slices(indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Concatenate CSR slices ``indices[indptr[r]:indptr[r+1]]`` for *rows*.

    Pure-numpy equivalent of ``np.concatenate([indices[indptr[r]:indptr[r+1]]
    for r in rows])`` — the output keeps row order, then in-slice order, with
    duplicates preserved. This is the frontier-expansion gather of the
    vectorised BFS region growers.
    """
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    offs = np.cumsum(counts) - counts
    rel = np.arange(total, dtype=np.int64) - np.repeat(offs, counts)
    return indices[np.repeat(starts, counts) + rel]


def gather_csr_slots(indptr: np.ndarray, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Global slot ids of the CSR slices of *rows*, plus the compacted indptr.

    Like :func:`gather_slices`, but returns the *positions* (slot indices
    into the data/indices arrays) rather than gathered values, together
    with the indptr of the compacted sub-CSR — so callers can gather
    several parallel arrays (indices, weights, keys) with one index pass
    and run segment reductions on the compacted layout. Row order and
    in-slice order are preserved exactly.
    """
    rows = np.asarray(rows, dtype=np.int64)
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    sub_xadj = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(counts, out=sub_xadj[1:])
    total = int(sub_xadj[-1])
    if total == 0:
        return np.empty(0, dtype=np.int64), sub_xadj
    offs = sub_xadj[:-1]
    rel = np.arange(total, dtype=np.int64) - np.repeat(offs, counts)
    return np.repeat(starts, counts) + rel, sub_xadj


def check_part_vector(part: np.ndarray, n: int, nparts: int) -> np.ndarray:
    """Validate and canonicalise a part vector (int64, entries in range)."""
    part = np.asarray(part, dtype=np.int64)
    if part.shape != (n,):
        raise ValueError(f"part vector shape {part.shape} != ({n},)")
    if len(part) and (part.min() < 0 or part.max() >= nparts):
        raise ValueError(
            f"part ids out of range [0, {nparts}): min={part.min()}, max={part.max()}"
        )
    return part
