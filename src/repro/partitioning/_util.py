"""Shared numpy helpers for the partitioners."""

from __future__ import annotations

import numpy as np

__all__ = ["segment_argmax", "segment_sum", "check_part_vector"]


def segment_argmax(values: np.ndarray, xadj: np.ndarray) -> np.ndarray:
    """Per-segment argmax for CSR-style segments.

    ``values`` has one entry per CSR slot; segment *i* is
    ``values[xadj[i]:xadj[i+1]]``. Returns, for each non-empty segment, the
    *global* index (into ``values``) of its maximum; empty segments get -1.

    Implemented with a single lexsort: sorting by (segment, value) puts each
    segment's maximum last within the segment, at position ``xadj[i+1]-1``
    of the sorted order.
    """
    n = len(xadj) - 1
    if len(values) == 0:
        return np.full(n, -1, dtype=np.int64)
    seg = np.repeat(np.arange(n, dtype=np.int64), np.diff(xadj))
    order = np.lexsort((values, seg))
    out = np.full(n, -1, dtype=np.int64)
    nonempty = np.flatnonzero(np.diff(xadj) > 0)
    out[nonempty] = order[xadj[nonempty + 1] - 1]
    return out


def segment_sum(values: np.ndarray, xadj: np.ndarray) -> np.ndarray:
    """Per-segment sum for CSR-style segments (empty segments give 0)."""
    n = len(xadj) - 1
    out = np.zeros(n, dtype=np.float64)
    if len(values):
        seg = np.repeat(np.arange(n, dtype=np.int64), np.diff(xadj))
        np.add.at(out, seg, values)
    return out


def check_part_vector(part: np.ndarray, n: int, nparts: int) -> np.ndarray:
    """Validate and canonicalise a part vector (int64, entries in range)."""
    part = np.asarray(part, dtype=np.int64)
    if part.shape != (n,):
        raise ValueError(f"part vector shape {part.shape} != ({n},)")
    if len(part) and (part.min() < 0 or part.max() >= nparts):
        raise ValueError(
            f"part ids out of range [0, {nparts}): min={part.min()}, max={part.max()}"
        )
    return part
