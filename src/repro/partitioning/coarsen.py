"""Graph coarsening by heavy-edge handshake matching.

Heavy-edge matching (HEM) is the coarsening scheme of METIS: collapsing
heavy edges keeps as much edge weight as possible *inside* coarse vertices,
so the coarse graph's cuts approximate the fine graph's. The sequential HEM
loop vectorises poorly, so we use the standard parallel relaxation —
*handshake matching*: every unmatched vertex points at its heaviest
unmatched neighbour; mutual pointers form matches; repeat a few rounds.
Each round is pure numpy (one lexsort), and 3-4 rounds recover most of the
matching sequential HEM finds.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ._util import segment_argmax
from .partgraph import PartGraph

__all__ = ["handshake_matching", "contract", "coarsen_level", "coarsen_to"]


def handshake_matching(
    g: PartGraph,
    rng: np.random.Generator,
    rounds: int = 4,
    max_vertex_weight: np.ndarray | None = None,
) -> np.ndarray:
    """Heavy-edge handshake matching.

    Returns ``match`` with ``match[v] = u`` when v and u are matched
    (``match[v] = v`` for unmatched vertices). When *max_vertex_weight* is
    given, pairs whose combined primary weight would exceed it are not
    matched — this keeps giant coarse vertices (hubs absorbing everything)
    from destroying balance options later, the scale-free pitfall noted by
    Abou-Rjeili & Karypis [3].
    """
    n = g.n
    match = np.arange(n, dtype=np.int64)
    if g.xadj[-1] == 0:
        return match
    src = g.edge_sources()
    # random tiebreak jitter keeps the matching from degenerating on
    # unweighted graphs where every edge weight is 1
    jitter = rng.random(len(g.adjncy)) * 1e-6
    unmatched_mask = np.ones(n, dtype=bool)

    for _ in range(rounds):
        if not unmatched_mask.any():
            break
        keys = g.adjwgt + jitter
        ok = unmatched_mask[g.adjncy] & unmatched_mask[src]
        if max_vertex_weight is not None:
            combined = g.vwgt[src, 0] + g.vwgt[g.adjncy, 0]
            ok &= combined <= max_vertex_weight[0]
        keys = np.where(ok, keys, -np.inf)
        best = segment_argmax(keys, g.xadj)  # slot index or -1
        proposal = np.full(n, -1, dtype=np.int64)
        has = (best >= 0) & unmatched_mask
        valid = has.copy()
        valid[has] = keys[best[has]] > -np.inf
        proposal[valid] = g.adjncy[best[valid]]
        v = np.flatnonzero(valid)
        u = proposal[v]
        mutual = proposal[u] == v
        v, u = v[mutual], u[mutual]
        pick = v < u  # each pair appears twice; keep one orientation
        v, u = v[pick], u[pick]
        match[v] = u
        match[u] = v
        unmatched_mask[v] = False
        unmatched_mask[u] = False

    _two_hop_matching(g, match, unmatched_mask, jitter, max_vertex_weight)
    return match


def _two_hop_matching(
    g: PartGraph,
    match: np.ndarray,
    unmatched_mask: np.ndarray,
    jitter: np.ndarray,
    max_vertex_weight: np.ndarray | None,
) -> None:
    """Pair leftover vertices that share a heaviest neighbour.

    On scale-free graphs direct matching stalls: every leaf of a hub wants
    the hub, only one gets it, and coarsening grinds to a halt (the failure
    mode Abou-Rjeili & Karypis identified). Two-hop matching pairs the
    leaves of a common hub with each other instead, restoring geometric
    shrink rates. Fully vectorised: group unmatched vertices by their
    heaviest neighbour, then pair consecutive members of each group.
    """
    um = np.flatnonzero(unmatched_mask)
    if len(um) < 2:
        return
    keys = g.adjwgt + jitter
    best = segment_argmax(keys, g.xadj)
    # isolated vertices (no neighbours) share the sentinel anchor -1 and are
    # paired with each other — merging edgeless vertices is always safe and
    # keeps them from stalling the coarsening
    anchor = np.where(best[um] >= 0, g.adjncy[np.maximum(best[um], 0)], -1)
    order = np.argsort(anchor, kind="stable")
    um_sorted = um[order]
    anch_sorted = anchor[order]
    # pair positions (2i, 2i+1) that share an anchor
    a = um_sorted[:-1:2]
    b = um_sorted[1::2]
    same = anch_sorted[: len(a) * 2 : 2] == anch_sorted[1 : len(b) * 2 : 2]
    if max_vertex_weight is not None:
        same &= g.vwgt[a, 0] + g.vwgt[b, 0] <= max_vertex_weight[0]
    a, b = a[same], b[same]
    match[a] = b
    match[b] = a
    unmatched_mask[a] = False
    unmatched_mask[b] = False


def contract(g: PartGraph, match: np.ndarray) -> tuple[PartGraph, np.ndarray]:
    """Contract matched pairs into coarse vertices.

    Returns the coarse graph and ``cmap`` (fine vertex -> coarse vertex).
    Coarse edge weights are the summed fine weights between clusters;
    internal edges vanish (they become coarse self-loops and are dropped).
    """
    n = g.n
    # number coarse vertices: representative = min(v, match[v])
    rep = np.minimum(np.arange(n, dtype=np.int64), match)
    is_rep = rep == np.arange(n)
    cmap = np.cumsum(is_rep) - 1  # coarse id of each representative
    cmap = cmap[rep]  # fine -> coarse
    nc = int(is_rep.sum())

    # coarse adjacency via sparse triple product P^T W P
    W = g.adjacency_matrix()
    P = sp.csr_matrix(
        (np.ones(n), (np.arange(n), cmap)), shape=(n, nc)
    )
    Wc = (P.T @ W @ P).tocsr()
    Wc.setdiag(0.0)
    Wc.eliminate_zeros()
    Wc.sort_indices()

    # histogram per constraint: np.bincount sums in vertex order, exactly
    # like the former np.add.at accumulation, but several times faster
    vwgt_c = np.empty((nc, g.ncon))
    for c in range(g.ncon):
        vwgt_c[:, c] = np.bincount(cmap, weights=g.vwgt[:, c], minlength=nc)
    return PartGraph(Wc.indptr, Wc.indices, Wc.data, vwgt_c), cmap


def coarsen_level(
    g: PartGraph, rng: np.random.Generator, max_vertex_weight: np.ndarray | None = None
) -> tuple[PartGraph, np.ndarray]:
    """One coarsening level: match then contract."""
    match = handshake_matching(g, rng, max_vertex_weight=max_vertex_weight)
    return contract(g, match)


def coarsen_to(
    g: PartGraph,
    min_vertices: int,
    rng: np.random.Generator,
    max_weight_fraction: float = 0.25,
    min_shrink: float = 0.95,
) -> list[tuple[PartGraph, np.ndarray | None]]:
    """Coarsen until fewer than *min_vertices* vertices remain.

    Returns the level stack ``[(g0, None), (g1, cmap1), ...]`` where
    ``cmap_k`` maps level k-1 vertices to level k vertices. Stops early
    when a level shrinks by less than ``1 - min_shrink`` (matching has
    stalled, typical for star-like scale-free cores).

    ``max_weight_fraction`` bounds any coarse vertex to that fraction of
    total weight so bisection balance stays achievable.
    """
    levels: list[tuple[PartGraph, np.ndarray | None]] = [(g, None)]
    max_w = g.total_weight() * max_weight_fraction
    while levels[-1][0].n > min_vertices:
        cur = levels[-1][0]
        gc, cmap = coarsen_level(cur, rng, max_vertex_weight=max_w)
        if gc.n >= cur.n * min_shrink:
            break
        levels.append((gc, cmap))
    return levels
