"""Graph coarsening by heavy-edge handshake matching.

Heavy-edge matching (HEM) is the coarsening scheme of METIS: collapsing
heavy edges keeps as much edge weight as possible *inside* coarse vertices,
so the coarse graph's cuts approximate the fine graph's. The sequential HEM
loop vectorises poorly, so we use the standard parallel relaxation —
*handshake matching*: every unmatched vertex points at its heaviest
unmatched neighbour; mutual pointers form matches; repeat a few rounds.

Two kernels implement each coarsening stage (the pattern proven on FM
refinement, see :mod:`repro.partitioning.refine`):

* ``"vector"`` (default) — matching hoists the loop-invariant
  ``adjwgt + jitter`` keys, compacts every round onto the shrinking
  unmatched frontier (round 1 is the only full-width round; later rounds
  touch only still-unmatched CSR slices) and replaces the lexsort-based
  segment argmax with the reduceat form
  (:func:`repro.partitioning._util.segment_argmax_last`); contraction
  replaces the scipy ``P^T W P`` triple product with one sort-based edge
  relabel + run-length segment sum over ``(cmap[src], cmap[dst])`` keys,
  and seeds the coarse graph's memoized derived state (adjacency matrix,
  edge sources) from construction by-products so the next level's
  matching and refinement skip their first-touch rebuilds;
* ``"reference"`` — the seed implementations kept verbatim as the
  bit-identity oracle and timing baseline.

Both kernels are bit-identical by contract: same matching, same coarse
CSR arrays, same partitions all the way up — which
``benchmarks/bench_coarsen_kernels.py`` gates across the whole corpus.
The vector contraction relies on
:meth:`~repro.partitioning.partgraph.PartGraph.exactly_summable_weights`
(edge-weight sums are order-independent in float64 for the integer
weights every graph in this package carries); graphs without that
guarantee fall back to the reference contraction automatically.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np
import scipy.sparse as sp

from .. import perf
from ._util import gather_csr_slots, gather_slices, segment_argmax, segment_argmax_last
from .partgraph import PartGraph

__all__ = [
    "handshake_matching",
    "contract",
    "coarsen_level",
    "coarsen_to",
    "use_kernel",
    "COARSEN_KERNELS",
]

#: Coarsening kernels (matching + contraction + the hypergraph stages in
#: :mod:`repro.partitioning.hcoarsen`); module default is the vectorised one.
COARSEN_KERNELS = ("vector", "reference")
_DEFAULT_KERNEL = "vector"


@contextmanager
def use_kernel(kernel: str):
    """Temporarily switch the module-default coarsening kernel (bench/test A/B).

    Covers every stage behind the switch: graph matching and contraction
    here, similarity graph and hypergraph contraction in
    :mod:`repro.partitioning.hcoarsen`.
    """
    global _DEFAULT_KERNEL
    if kernel not in COARSEN_KERNELS:
        raise ValueError(f"unknown coarsen kernel {kernel!r}; choose from {COARSEN_KERNELS}")
    prev = _DEFAULT_KERNEL
    _DEFAULT_KERNEL = kernel
    try:
        yield
    finally:
        _DEFAULT_KERNEL = prev


def _resolve_kernel(kernel: str | None) -> str:
    """Validate *kernel*, defaulting to the module switch."""
    kernel = kernel if kernel is not None else _DEFAULT_KERNEL
    if kernel not in COARSEN_KERNELS:
        raise ValueError(f"unknown coarsen kernel {kernel!r}; choose from {COARSEN_KERNELS}")
    return kernel


def handshake_matching(
    g: PartGraph,
    rng: np.random.Generator,
    rounds: int = 4,
    max_vertex_weight: np.ndarray | None = None,
    kernel: str | None = None,
) -> np.ndarray:
    """Heavy-edge handshake matching.

    Returns ``match`` with ``match[v] = u`` when v and u are matched
    (``match[v] = v`` for unmatched vertices). When *max_vertex_weight* is
    given, pairs whose combined primary weight would exceed it are not
    matched — this keeps giant coarse vertices (hubs absorbing everything)
    from destroying balance options later, the scale-free pitfall noted by
    Abou-Rjeili & Karypis [3]. ``kernel`` selects the implementation
    (``"vector"``/``"reference"``, default the module kernel, see
    :func:`use_kernel`); both produce bit-identical matchings.
    """
    if _resolve_kernel(kernel) == "vector":
        return _handshake_matching_vector(g, rng, rounds, max_vertex_weight)
    return _handshake_matching_reference(g, rng, rounds, max_vertex_weight)


def _handshake_matching_reference(
    g: PartGraph,
    rng: np.random.Generator,
    rounds: int = 4,
    max_vertex_weight: np.ndarray | None = None,
) -> np.ndarray:
    """Seed matching kernel, kept verbatim as the bit-identity oracle.

    Every round recomputes the keys and masks over the *full* edge array
    and runs the lexsort-based :func:`segment_argmax` — the per-round
    costs the vector kernel removes.
    """
    n = g.n
    match = np.arange(n, dtype=np.int64)
    if g.xadj[-1] == 0:
        return match
    src = g.edge_sources()
    # random tiebreak jitter keeps the matching from degenerating on
    # unweighted graphs where every edge weight is 1
    jitter = rng.random(len(g.adjncy)) * 1e-6
    unmatched_mask = np.ones(n, dtype=bool)

    for _ in range(rounds):
        if not unmatched_mask.any():
            break
        keys = g.adjwgt + jitter
        ok = unmatched_mask[g.adjncy] & unmatched_mask[src]
        if max_vertex_weight is not None:
            combined = g.vwgt[src, 0] + g.vwgt[g.adjncy, 0]
            ok &= combined <= max_vertex_weight[0]
        keys = np.where(ok, keys, -np.inf)
        best = segment_argmax(keys, g.xadj)  # slot index or -1
        proposal = np.full(n, -1, dtype=np.int64)
        has = (best >= 0) & unmatched_mask
        valid = has.copy()
        valid[has] = keys[best[has]] > -np.inf
        proposal[valid] = g.adjncy[best[valid]]
        v = np.flatnonzero(valid)
        u = proposal[v]
        mutual = proposal[u] == v
        v, u = v[mutual], u[mutual]
        pick = v < u  # each pair appears twice; keep one orientation
        v, u = v[pick], u[pick]
        match[v] = u
        match[u] = v
        unmatched_mask[v] = False
        unmatched_mask[u] = False

    _two_hop_matching(g, match, unmatched_mask, jitter, max_vertex_weight)
    return match


def _handshake_matching_vector(
    g: PartGraph,
    rng: np.random.Generator,
    rounds: int = 4,
    max_vertex_weight: np.ndarray | None = None,
) -> np.ndarray:
    """Vector matching kernel — replays the reference rounds exactly.

    Bit-identity notes (each is load-bearing):

    * the ``adjwgt + jitter`` keys are loop-invariant — the reference
      recomputes the identical float array every round, so hoisting it is
      bit-neutral; the weight-cap mask is equally static per level, so the
      cap-masked keys ``k0`` are built once;
    * a vertex's proposal is a pure function of its slot keys and its
      neighbours' matched/unmatched state. Between rounds the only state
      change is the set of newly matched vertices, so only *their
      unmatched neighbours* can compute a different argmax — every other
      stored proposal is exactly what the reference would recompute.
      Rounds after the first therefore refresh just that affected set
      (``gather_csr_slots`` + :func:`segment_argmax_last` on its
      compacted slices, bit-equal to the full-width lexsort form);
    * a new mutual pair must involve at least one refreshed proposal —
      two unmatched vertices whose proposals both survived from the
      previous round would have been matched then — so scanning the
      refreshed set for mutuality finds exactly the reference's pairs
      (deduped via the packed ``min*n + max`` key; the reference applies
      all of a round's pairs simultaneously, so order is immaterial);
    * when a round matches nothing, the state is a fixpoint: every later
      reference round recomputes identical proposals and matches nothing,
      so breaking early leaves ``match`` bit-identical.

    On scale-free graphs this is the difference between four O(nnz)
    sweeps and one: direct matching stalls against hubs (round one
    matches a few percent), so the affected sets of later rounds are
    tiny while the reference pays full width every time.
    """
    n = g.n
    match = np.arange(n, dtype=np.int64)
    if g.xadj[-1] == 0:
        return match
    unmatched_mask = np.ones(n, dtype=bool)

    # hoisted keys, identical every reference round; built in place
    # (jitter * 1e-6 then += adjwgt — float addition is commutative, so
    # the bits match the reference's adjwgt + jitter)
    keys = rng.random(len(g.adjncy))
    keys *= 1e-6
    keys += g.adjwgt
    xadj, adjncy = g.xadj, g.adjncy
    vwgt0 = g.vwgt[:, 0]
    proposal = np.full(n, -1, dtype=np.int64)

    # cap-masked keys, built once: the cap compares static vertex weights.
    # When even the two heaviest vertices together fit under the cap the
    # mask is all-true, so the raw keys are used unmasked — bit-identical,
    # and it skips two O(nnz) gathers per level (on scale-free corpora the
    # cap only binds on coarse levels, after hubs absorb real weight).
    if max_vertex_weight is None or 2.0 * vwgt0.max() <= max_vertex_weight[0]:
        k0 = keys
    else:
        combined = vwgt0[g.edge_sources()] + vwgt0[adjncy]
        k0 = np.where(combined <= max_vertex_weight[0], keys, -np.inf)

    # round one at full width: every vertex is unmatched, so the
    # unmatched factor is all-true and the gather is the identity
    best = segment_argmax_last(k0, xadj)
    # when the keys are unmasked this is also the full-graph raw-key argmax
    # the two-hop stage needs — reuse it instead of recomputing
    best_full = best if k0 is keys else None
    has = best >= 0
    valid = has.copy()
    valid[has] = k0[best[has]] > -np.inf
    vv = np.flatnonzero(valid)
    proposal[vv] = adjncy[best[vv]]
    u = proposal[vv]
    mutual = proposal[u] == vv
    v, u = vv[mutual], u[mutual]
    pick = v < u  # each pair appears twice; keep one orientation
    v, u = v[pick], u[pick]
    match[v] = u
    match[u] = v
    unmatched_mask[v] = False
    unmatched_mask[u] = False

    affmask = np.zeros(n, dtype=bool)
    for _ in range(1, rounds):
        if len(v) == 0:
            break  # fixpoint: later rounds would match nothing
        # refresh proposals whose inputs changed: the unmatched
        # neighbours of the vertices matched last round (mask-deduped —
        # cheaper than hashing, and flatnonzero keeps ids ascending)
        newly = np.concatenate((v, u))
        affmask[:] = False
        affmask[gather_slices(xadj, adjncy, newly)] = True
        affmask &= unmatched_mask
        aff = np.flatnonzero(affmask)
        if len(aff) == 0:
            break
        slots, sub_xadj = gather_csr_slots(xadj, aff)
        nbr = adjncy[slots]
        k = np.where(unmatched_mask[nbr], k0[slots], -np.inf)
        best = segment_argmax_last(k, sub_xadj)
        has = best >= 0
        ok = has.copy()
        ok[has] = k[best[has]] > -np.inf
        newprop = np.full(len(aff), -1, dtype=np.int64)
        newprop[ok] = nbr[best[ok]]
        proposal[aff] = newprop
        # new mutual pairs all touch the refreshed set (see docstring)
        cand = aff[newprop >= 0]
        t = proposal[cand]
        mutual = proposal[t] == cand
        a, b = cand[mutual], t[mutual]
        pairkey = np.unique(np.minimum(a, b) * n + np.maximum(a, b))
        v = pairkey // n
        u = pairkey % n
        match[v] = u
        match[u] = v
        unmatched_mask[v] = False
        unmatched_mask[u] = False

    _two_hop_matching_vector(g, match, unmatched_mask, keys, max_vertex_weight, best_full)
    return match


def _two_hop_matching(
    g: PartGraph,
    match: np.ndarray,
    unmatched_mask: np.ndarray,
    jitter: np.ndarray,
    max_vertex_weight: np.ndarray | None,
) -> None:
    """Pair leftover vertices that share a heaviest neighbour.

    On scale-free graphs direct matching stalls: every leaf of a hub wants
    the hub, only one gets it, and coarsening grinds to a halt (the failure
    mode Abou-Rjeili & Karypis identified). Two-hop matching pairs the
    leaves of a common hub with each other instead, restoring geometric
    shrink rates. Fully vectorised: group unmatched vertices by their
    heaviest neighbour, then pair consecutive members of each group.

    This is the reference form (full-graph lexsort argmax), kept verbatim;
    the vector matching kernel uses :func:`_two_hop_matching_vector`.
    """
    um = np.flatnonzero(unmatched_mask)
    if len(um) < 2:
        return
    keys = g.adjwgt + jitter
    best = segment_argmax(keys, g.xadj)
    # isolated vertices (no neighbours) share the sentinel anchor -1 and are
    # paired with each other — merging edgeless vertices is always safe and
    # keeps them from stalling the coarsening
    anchor = np.where(best[um] >= 0, g.adjncy[np.maximum(best[um], 0)], -1)
    _pair_by_anchor(g, match, unmatched_mask, um, anchor, max_vertex_weight)


def _two_hop_matching_vector(
    g: PartGraph,
    match: np.ndarray,
    unmatched_mask: np.ndarray,
    keys: np.ndarray,
    max_vertex_weight: np.ndarray | None,
    best_full: np.ndarray | None = None,
) -> None:
    """Two-hop pairing without the reference's second full-width argmax.

    Anchors ignore matched/unmatched status by design — the heaviest
    neighbour may well be matched — so the anchor argmax runs on the raw
    hoisted ``adjwgt + jitter`` keys, exactly the reference's. When the
    matching rounds ran on unmasked keys (*best_full*), their round-one
    argmax is that exact computation and is reused outright; otherwise the
    argmax runs on the compacted CSR slices of the unmatched vertices only
    (still far cheaper than the reference's full-graph lexsort).
    """
    um = np.flatnonzero(unmatched_mask)
    if len(um) < 2:
        return
    if best_full is not None:
        bu = best_full[um]
        anchor = np.where(bu >= 0, g.adjncy[np.maximum(bu, 0)], -1)
    else:
        slots, sub_xadj = gather_csr_slots(g.xadj, um)
        best = segment_argmax_last(keys[slots], sub_xadj)
        anchor = np.full(len(um), -1, dtype=np.int64)  # sentinel: isolated rows
        has = best >= 0
        anchor[has] = g.adjncy[slots[best[has]]]
    _pair_by_anchor(g, match, unmatched_mask, um, anchor, max_vertex_weight)


def _pair_by_anchor(
    g: PartGraph,
    match: np.ndarray,
    unmatched_mask: np.ndarray,
    um: np.ndarray,
    anchor: np.ndarray,
    max_vertex_weight: np.ndarray | None,
) -> None:
    """Pair consecutive members of each anchor group (shared by both kernels)."""
    order = np.argsort(anchor, kind="stable")
    um_sorted = um[order]
    anch_sorted = anchor[order]
    # pair positions (2i, 2i+1) that share an anchor
    a = um_sorted[:-1:2]
    b = um_sorted[1::2]
    same = anch_sorted[: len(a) * 2 : 2] == anch_sorted[1 : len(b) * 2 : 2]
    if max_vertex_weight is not None:
        same &= g.vwgt[a, 0] + g.vwgt[b, 0] <= max_vertex_weight[0]
    a, b = a[same], b[same]
    match[a] = b
    match[b] = a
    unmatched_mask[a] = False
    unmatched_mask[b] = False


def _coarse_map(match: np.ndarray) -> tuple[np.ndarray, int]:
    """Fine-to-coarse vertex map: representative = min(v, match[v])."""
    n = len(match)
    rep = np.minimum(np.arange(n, dtype=np.int64), match)
    is_rep = rep == np.arange(n)
    cmap = np.cumsum(is_rep) - 1  # coarse id of each representative
    return cmap[rep], int(is_rep.sum())


def contract(
    g: PartGraph, match: np.ndarray, kernel: str | None = None
) -> tuple[PartGraph, np.ndarray]:
    """Contract matched pairs into coarse vertices.

    Returns the coarse graph and ``cmap`` (fine vertex -> coarse vertex).
    Coarse edge weights are the summed fine weights between clusters;
    internal edges vanish (they become coarse self-loops and are dropped).
    ``kernel`` selects the implementation (``"vector"``/``"reference"``,
    default the module kernel); both produce bit-identical coarse graphs.
    """
    if _resolve_kernel(kernel) == "vector" and g.exactly_summable_weights():
        return _contract_vector(g, match)
    return _contract_reference(g, match)


def _contract_reference(g: PartGraph, match: np.ndarray) -> tuple[PartGraph, np.ndarray]:
    """Seed contraction kernel: scipy ``P^T W P`` triple product (verbatim)."""
    n = g.n
    cmap, nc = _coarse_map(match)

    # coarse adjacency via sparse triple product P^T W P
    W = g.adjacency_matrix()
    P = sp.csr_matrix(
        (np.ones(n), (np.arange(n), cmap)), shape=(n, nc)
    )
    Wc = (P.T @ W @ P).tocsr()
    Wc.setdiag(0.0)
    Wc.eliminate_zeros()
    Wc.sort_indices()

    # histogram per constraint: np.bincount sums in vertex order, exactly
    # like the former np.add.at accumulation, but several times faster
    vwgt_c = np.empty((nc, g.ncon))
    for c in range(g.ncon):
        vwgt_c[:, c] = np.bincount(cmap, weights=g.vwgt[:, c], minlength=nc)
    return PartGraph(Wc.indptr, Wc.indices, Wc.data, vwgt_c), cmap


def _contract_vector(g: PartGraph, match: np.ndarray) -> tuple[PartGraph, np.ndarray]:
    """Sort-based contraction: relabel edges, segment-sum duplicate runs.

    Each fine edge slot becomes the pair ``(cmap[src], cmap[dst])``; one
    stable argsort of the packed int64 key groups duplicates into runs,
    and a bincount over run ids sums their weights. Equality with the
    triple product holds bit-for-bit because

    * the coarse *pattern* is a set construction (which coarse pairs have
      any fine edge) — order-free;
    * coarse edge *weights* are sums of fine weights, and the caller
      (:func:`contract`) only dispatches here under
      :meth:`~repro.partitioning.partgraph.PartGraph.exactly_summable_weights`,
      which makes every such sum exact in float64 — the same number under
      any summation order, scipy's or ours;
    * dropped entries match: self-loops are excluded up front
      (``setdiag(0)``), and zero-total runs are filtered like
      ``eliminate_zeros`` (with exact sums, "total is 0.0" is the same
      predicate in both kernels);
    * sorting the packed key yields row-major, column-ascending runs —
      exactly the ``tocsr`` + ``sort_indices`` layout.

    The packed keys need ``nc * nc * nslots < 2**63`` (checked; the wider
    argsort form covers the overflow case). The coarse graph's memoized
    adjacency matrix and edge-source array are seeded from construction
    by-products, so the next coarsening level and the uncoarsening
    refinement skip their first-touch rebuilds.
    """
    cmap, nc = _coarse_map(match)

    cs = cmap[g.edge_sources()]
    cd = cmap[g.adjncy]
    keep = cs != cd  # coarse self-loops (internal edges) vanish
    # bit-packed (row, col) key: cd < nc <= 2**bits, so the packing is
    # lexicographic by (cs, cd) — the same run grouping and order as the
    # arithmetic cs*nc+cd form, recoverable with shifts instead of divmod
    bits = int(nc - 1).bit_length()
    key = cs[keep]
    key <<= bits
    key |= cd[keep]
    w = g.adjwgt[keep]

    if len(key):
        nslots = len(key)
        shift = int(nslots - 1).bit_length()
        if (int(nc) << bits) << shift < 2**63:
            # pack the slot index into the low bits: sorting the packed
            # value reproduces the stable argsort of `key` exactly (ties
            # break by ascending position) with one index-free in-place
            # np.sort — about half the cost of an argsort at this width
            packed = key << shift
            packed += np.arange(nslots, dtype=np.int64)
            packed.sort()
            order = packed & ((np.int64(1) << shift) - 1)
            ks = packed >> shift
        else:  # packed key would overflow int64: plain stable argsort
            order = np.argsort(key, kind="stable")
            ks = key[order]
        head = np.empty(len(ks), dtype=bool)
        head[0] = True
        np.not_equal(ks[1:], ks[:-1], out=head[1:])
        starts = np.flatnonzero(head)
        # run sums as differences of the inclusive prefix sum at run ends.
        # Every partial sum is an integer below 2**53 (the kernel's gate),
        # so prefix sums and their differences are exact — bit-identical
        # to summing each run directly, in any order
        csum = np.cumsum(w[order])
        ends1 = np.empty(len(starts), dtype=np.int64)
        ends1[:-1] = starts[1:] - 1
        ends1[-1] = nslots - 1
        sums = np.diff(csum[ends1], prepend=0.0)
        uk = ks[head]
        nonzero = sums != 0.0  # mirror eliminate_zeros on exact totals
        uk, sums = uk[nonzero], sums[nonzero]
        rows = uk >> bits
        cols = uk & ((np.int64(1) << bits) - 1)
    else:
        rows = cols = np.empty(0, dtype=np.int64)
        sums = np.empty(0, dtype=np.float64)

    indptr = np.zeros(nc + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=nc), out=indptr[1:])

    vwgt_c = np.empty((nc, g.ncon))
    for c in range(g.ncon):
        vwgt_c[:, c] = np.bincount(cmap, weights=g.vwgt[:, c], minlength=nc)

    gc = PartGraph(indptr, cols, sums, vwgt_c)
    # coarse weights are sums of the fine integer weights this kernel is
    # gated on, with a no-larger absolute total — still exactly summable
    gc.seed_derived(
        adjacency=sp.csr_matrix((gc.adjwgt, gc.adjncy, gc.xadj), shape=(nc, nc)),
        edge_sources=rows,
        exactly_summable=True,
    )
    return gc, cmap


def coarsen_level(
    g: PartGraph,
    rng: np.random.Generator,
    max_vertex_weight: np.ndarray | None = None,
    kernel: str | None = None,
) -> tuple[PartGraph, np.ndarray]:
    """One coarsening level: match then contract (each a profiler phase)."""
    with perf.phase("match"):
        match = handshake_matching(g, rng, max_vertex_weight=max_vertex_weight, kernel=kernel)
    with perf.phase("contract"):
        return contract(g, match, kernel=kernel)


def coarsen_to(
    g: PartGraph,
    min_vertices: int,
    rng: np.random.Generator,
    max_weight_fraction: float = 0.25,
    min_shrink: float = 0.95,
    kernel: str | None = None,
) -> list[tuple[PartGraph, np.ndarray | None]]:
    """Coarsen until fewer than *min_vertices* vertices remain.

    Returns the level stack ``[(g0, None), (g1, cmap1), ...]`` where
    ``cmap_k`` maps level k-1 vertices to level k vertices. Stops early
    when a level shrinks by less than ``1 - min_shrink`` (matching has
    stalled, typical for star-like scale-free cores).

    ``max_weight_fraction`` bounds any coarse vertex to that fraction of
    total weight so bisection balance stays achievable. ``kernel`` selects
    the matching/contraction implementation for every level (see
    :func:`use_kernel`).
    """
    levels: list[tuple[PartGraph, np.ndarray | None]] = [(g, None)]
    max_w = g.total_weight() * max_weight_fraction
    while levels[-1][0].n > min_vertices:
        cur = levels[-1][0]
        gc, cmap = coarsen_level(cur, rng, max_vertex_weight=max_w, kernel=kernel)
        if gc.n >= cur.n * min_shrink:
            break
        levels.append((gc, cmap))
    return levels
