"""Weighted graph structure used by the multilevel partitioner.

``PartGraph`` is a METIS-style CSR adjacency with float edge weights and a
2-D vertex-weight array supporting multiple balance constraints (the paper
uses one constraint — nonzeros — for SpMV layouts, and two constraints —
rows and nonzeros — for the eigensolver's 1D/2D-GP-MC variants).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..graphs.csr import as_csr, drop_diagonal, nonzeros_per_row
from ..graphs.ops import symmetrize

__all__ = ["PartGraph"]


@dataclass
class PartGraph:
    """CSR adjacency with vertex/edge weights.

    Attributes
    ----------
    xadj, adjncy:
        CSR adjacency arrays (int64). Neighbours of vertex *v* are
        ``adjncy[xadj[v]:xadj[v+1]]``. No self loops; every undirected edge
        is stored twice.
    adjwgt:
        Edge weights aligned with ``adjncy`` (float64, symmetric).
    vwgt:
        Vertex weights, shape ``(n, ncon)`` float64. Constraint 0 is the
        primary balance objective.
    """

    xadj: np.ndarray
    adjncy: np.ndarray
    adjwgt: np.ndarray
    vwgt: np.ndarray

    def __post_init__(self) -> None:
        self.xadj = np.asarray(self.xadj, dtype=np.int64)
        self.adjncy = np.asarray(self.adjncy, dtype=np.int64)
        self.adjwgt = np.asarray(self.adjwgt, dtype=np.float64)
        self.vwgt = np.atleast_2d(np.asarray(self.vwgt, dtype=np.float64))
        if self.vwgt.shape[0] != self.n and self.vwgt.shape[1] == self.n:
            self.vwgt = self.vwgt.T.copy()
        if len(self.adjncy) != self.xadj[-1] or len(self.adjwgt) != len(self.adjncy):
            raise ValueError("inconsistent CSR arrays")
        if self.vwgt.shape[0] != self.n:
            raise ValueError(f"vwgt rows {self.vwgt.shape[0]} != n {self.n}")
        # PartGraph is immutable after construction, so derived views are
        # memoized: the FM refiner asks for the adjacency matrix, the edge
        # sources and the weighted degrees once per *pass*, and rebuilding
        # them (csr validation, an O(nnz) repeat, a matvec) dominated the
        # per-pass setup on fine levels.
        self._adj: sp.csr_matrix | None = None
        self._edge_src: np.ndarray | None = None
        self._degw: np.ndarray | None = None
        self._adj_lists: tuple[list, list, list] | None = None
        self._vwgt_lists: tuple[list, ...] | None = None
        self._intw: bool | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_matrix(cls, A, vertex_weights: str | tuple[str, ...] = "nnz") -> "PartGraph":
        """Build the partitioning graph of sparse matrix *A*.

        The graph is the symmetrised pattern of *A* without the diagonal
        (self loops carry no communication). Vertex-weight constraints are
        named: ``"unit"`` (1 per row — balances rows / vector entries) or
        ``"nnz"`` (nonzeros in the row of *A* — balances SpMV work, the
        paper's default). Pass a tuple for multiconstraint partitioning,
        e.g. ``("unit", "nnz")`` for the paper's GP-MC variants.
        """
        A = as_csr(A)
        if A.shape[0] != A.shape[1]:
            raise ValueError(f"partitioning needs a square matrix, got {A.shape}")
        S = drop_diagonal(symmetrize(A))
        names = (vertex_weights,) if isinstance(vertex_weights, str) else tuple(vertex_weights)
        cols = []
        for name in names:
            if name == "unit":
                cols.append(np.ones(A.shape[0]))
            elif name == "nnz":
                # weight by nnz of the *original* matrix row: that is the
                # SpMV work assigned to the owner of this row in 1D
                cols.append(np.maximum(nonzeros_per_row(A), 1).astype(np.float64))
            else:
                raise ValueError(f"unknown vertex weight {name!r} (use 'unit' or 'nnz')")
        vwgt = np.column_stack(cols)
        return cls(S.indptr, S.indices, S.data.copy(), vwgt)

    @classmethod
    def from_scipy(cls, W, vwgt: np.ndarray | None = None) -> "PartGraph":
        """Wrap a symmetric weighted scipy matrix (weights = data)."""
        W = as_csr(W)
        if vwgt is None:
            vwgt = np.ones((W.shape[0], 1))
        return cls(W.indptr, W.indices, W.data.copy(), vwgt)

    # -- basic properties ----------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self.xadj) - 1

    @property
    def ncon(self) -> int:
        """Number of balance constraints."""
        return self.vwgt.shape[1]

    @property
    def nedges(self) -> int:
        """Number of undirected edges (each stored twice in ``adjncy``)."""
        return len(self.adjncy) // 2

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbour ids of vertex *v* (view into ``adjncy``)."""
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def edge_weights(self, v: int) -> np.ndarray:
        """Weights of *v*'s incident edges (view into ``adjwgt``)."""
        return self.adjwgt[self.xadj[v] : self.xadj[v + 1]]

    def total_weight(self) -> np.ndarray:
        """Total vertex weight per constraint, shape ``(ncon,)``."""
        return self.vwgt.sum(axis=0)

    def adjacency_matrix(self) -> sp.csr_matrix:
        """The weighted adjacency as a scipy CSR matrix (memoized).

        Callers must treat the returned matrix as read-only — it is shared
        across every consumer of this graph (refinement, contraction,
        induced subgraphs, balance repair).
        """
        if self._adj is None:
            self._adj = sp.csr_matrix(
                (self.adjwgt, self.adjncy, self.xadj), shape=(self.n, self.n)
            )
        return self._adj

    def seed_derived(
        self,
        adjacency: sp.csr_matrix | None = None,
        edge_sources: np.ndarray | None = None,
        exactly_summable: bool | None = None,
    ) -> None:
        """Pre-populate memoized derived state from construction by-products.

        The sort-based contraction kernel produces the coarse adjacency
        matrix and the per-slot source array as intermediates; seeding them
        here lets the next coarsening level and the uncoarsening refinement
        skip their first-touch rebuilds. Seeded values must be exactly what
        the lazy builders would compute (same canonical CSR, same values) —
        callers own that contract.
        """
        if adjacency is not None:
            self._adj = adjacency
        if edge_sources is not None:
            self._edge_src = np.asarray(edge_sources, dtype=np.int64)
        if exactly_summable is not None:
            self._intw = bool(exactly_summable)

    def edge_sources(self) -> np.ndarray:
        """Source vertex of every CSR slot, aligned with ``adjncy`` (memoized)."""
        if self._edge_src is None:
            self._edge_src = np.repeat(
                np.arange(self.n, dtype=np.int64), np.diff(self.xadj)
            )
        return self._edge_src

    def weighted_degrees(self) -> np.ndarray:
        """Total incident edge weight per vertex (memoized)."""
        if self._degw is None:
            self._degw = self.adjacency_matrix() @ np.ones(self.n)
        return self._degw

    def adjacency_lists(self) -> tuple[list, list, list]:
        """``(xadj, adjncy, adjwgt)`` as plain Python lists (memoized).

        The FM refiner's scalar inner loop indexes these — Python list
        reads are several times cheaper than numpy 0-d indexing, and the
        one-time conversion amortises over every pass on this graph.
        Callers must treat the lists as read-only.
        """
        if self._adj_lists is None:
            self._adj_lists = (
                self.xadj.tolist(),
                self.adjncy.tolist(),
                self.adjwgt.tolist(),
            )
        return self._adj_lists

    def vwgt_lists(self) -> tuple[list, ...]:
        """Vertex-weight columns as flat Python lists (memoized, read-only)."""
        if self._vwgt_lists is None:
            self._vwgt_lists = tuple(
                self.vwgt[:, c].tolist() for c in range(self.ncon)
            )
        return self._vwgt_lists

    def exactly_summable_weights(self) -> bool:
        """True when every edge-weight sum is exact in float64 (memoized).

        Holds for integer weights whose total stays below 2**53 — the case
        for every graph this package builds (pattern weights are 1.0/2.0
        and contraction only adds them), and the condition under which an
        incrementally tracked edge cut is bit-identical to a fresh
        recomputation.
        """
        if self._intw is None:
            a = self.adjwgt
            self._intw = bool(
                len(a) == 0 or (np.all(a == np.floor(a)) and np.abs(a).sum() < 2.0**53)
            )
        return self._intw

    # -- partition metrics -------------------------------------------------

    def edgecut(self, part: np.ndarray) -> float:
        """Total weight of edges whose endpoints lie in different parts."""
        part = np.asarray(part)
        cut = part[self.edge_sources()] != part[self.adjncy]
        return float(self.adjwgt[cut].sum() / 2.0)

    def part_weights(self, part: np.ndarray, nparts: int) -> np.ndarray:
        """Per-part vertex weight, shape ``(nparts, ncon)``.

        A pure histogram, so it runs on ``np.bincount`` — bit-identical to
        the former ``np.add.at`` accumulation (both sum in vertex order)
        and several times faster on fine graphs.
        """
        part = np.asarray(part, dtype=np.int64)
        out = np.empty((nparts, self.ncon))
        for c in range(self.ncon):
            out[:, c] = np.bincount(part, weights=self.vwgt[:, c], minlength=nparts)
        return out

    def imbalance(self, part: np.ndarray, nparts: int) -> np.ndarray:
        """Max part weight / average part weight, per constraint."""
        pw = self.part_weights(part, nparts)
        avg = np.maximum(pw.mean(axis=0), 1e-300)
        return pw.max(axis=0) / avg

    def induced_subgraph(self, vertices: np.ndarray) -> "PartGraph":
        """Subgraph induced by *vertices* (local ids follow input order)."""
        vertices = np.asarray(vertices, dtype=np.int64)
        W = self.adjacency_matrix()
        Wsub = W[vertices][:, vertices]
        return PartGraph.from_scipy(Wsub, self.vwgt[vertices])
