"""Multilevel hypergraph bisection and recursive-bisection k-way driver.

Same pipeline as the graph partitioner (coarsen / initial / refine /
project), with the hypergraph-specific pieces swapped in. Part numbering is
hierarchical, so :func:`repro.partitioning.kway.derive_nested_partition`
applies to hypergraph partitions too.
"""

from __future__ import annotations

import numpy as np

from .. import perf
from ._util import check_part_vector, child_seeds, gather_slices
from .hcoarsen import hcoarsen_to
from .hrefine import fm_refine_hypergraph, hg_balance_allowance
from .hypergraph import Hypergraph
from .refine import is_balanced

__all__ = ["multilevel_hypergraph_bisect", "hypergraph_recursive_bisection"]


def _greedy_net_growing(
    hg: Hypergraph, target_frac: float, rng: np.random.Generator
) -> np.ndarray:
    """Grow part 0 by net-BFS from a random seed until the target weight.

    Level-synchronous numpy replay of the former per-pin deque loop (same
    argument as :func:`repro.partitioning.initial.greedy_graph_growing`):
    the frontier expands through two CSR gathers — vertex to incident nets,
    nets to pins, duplicates preserved exactly as the nested loops visited
    them — then first-discovery dedupe; the weight target only truncates
    the prefix of the visit order, and ``np.cumsum`` reproduces the scalar
    ``grown +=`` accumulation bit for bit.
    """
    n = hg.n
    part = np.ones(n, dtype=np.int64)
    target = hg.total_weight()[0] * target_frac
    if n == 0 or not 0.0 < target:
        return part
    visited = np.zeros(n, dtype=bool)
    order = rng.permutation(n)
    H = hg.H
    HT = hg.transpose_incidence()
    bfs = np.empty(n, dtype=np.int64)
    pos = 0
    oi = 0
    while pos < n:
        while oi < n and visited[order[oi]]:
            oi += 1
        if oi >= n:
            break
        frontier = np.asarray([order[oi]], dtype=np.int64)
        visited[frontier] = True
        while len(frontier):
            bfs[pos : pos + len(frontier)] = frontier
            pos += len(frontier)
            nets = gather_slices(HT.indptr, HT.indices, frontier)
            if len(nets) == 0:
                break
            cand = gather_slices(H.indptr, H.indices, nets.astype(np.int64))
            cand = cand[~visited[cand]]
            if len(cand) == 0:
                break
            _, first = np.unique(cand, return_index=True)
            frontier = cand[np.sort(first)].astype(np.int64)
            visited[frontier] = True
    cum = np.cumsum(hg.vwgt[bfs[:pos], 0])
    k = min(int(np.searchsorted(cum[:-1], target, side="left")) + 1, pos)
    part[bfs[:k]] = 0
    return part


def _random_bisection(hg: Hypergraph, target_frac: float, rng: np.random.Generator) -> np.ndarray:
    order = rng.permutation(hg.n)
    cum = np.cumsum(hg.vwgt[order, 0])
    target = hg.total_weight()[0] * target_frac
    split = int(np.searchsorted(cum, target)) + 1
    split = min(max(split, 1), hg.n - 1) if hg.n > 1 else 0
    part = np.ones(hg.n, dtype=np.int64)
    part[order[:split]] = 0
    return part


def _score(hg: Hypergraph, part: np.ndarray, allow: np.ndarray) -> tuple:
    sw = np.zeros((2, hg.ncon))
    np.add.at(sw, part, hg.vwgt)
    over = float(np.maximum(sw - allow, 0.0).sum())
    return (not is_balanced(sw, allow), over, hg.cut_connectivity_minus_one(part, 2))


def multilevel_hypergraph_bisect(
    hg: Hypergraph,
    target_fracs: tuple[float, float] = (0.5, 0.5),
    ub: float = 1.05,
    seed: int = 0,
    min_coarse: int = 120,
    n_initial: int = 3,
    refine_passes: int = 3,
    coarsen_kernel: str | None = None,
) -> np.ndarray:
    """Bisect hypergraph *hg* minimising connectivity-1 under balance.

    ``coarsen_kernel`` selects the coarsening implementation (see
    :func:`repro.partitioning.coarsen.use_kernel`); partitions are
    bit-identical either way.
    """
    if hg.n == 0:
        return np.zeros(0, dtype=np.int64)
    if hg.n == 1:
        return np.zeros(1, dtype=np.int64)
    rng = np.random.default_rng(seed)
    with perf.phase("coarsen"):
        levels = hcoarsen_to(hg, min_coarse, rng, kernel=coarsen_kernel)
    hgc = levels[-1][0]
    allow_c = hg_balance_allowance(hgc, target_fracs, ub)

    with perf.phase("initial"):
        candidates = [_greedy_net_growing(hgc, target_fracs[0], rng) for _ in range(n_initial)]
        candidates.append(_random_bisection(hgc, target_fracs[0], rng))
        refined = [
            fm_refine_hypergraph(hgc, p, target_fracs, ub, passes=refine_passes, rng=rng)
            for p in candidates
        ]
        part = min(refined, key=lambda p: _score(hgc, p, allow_c))

    for (hg_fine, _), (_, cmap) in zip(reversed(levels[:-1]), reversed(levels[1:])):
        with perf.phase("project"):
            part = part[cmap]
        with perf.phase("refine"):
            part = fm_refine_hypergraph(
                hg_fine, part, target_fracs, ub, passes=refine_passes, rng=rng
            )
    return part


def hypergraph_recursive_bisection(
    hg: Hypergraph,
    nparts: int,
    ub: float = 1.05,
    seed: int = 0,
    seed_scheme: str = "legacy",
    **bisect_kwargs,
) -> np.ndarray:
    """K-way hypergraph partition via recursive bisection."""
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    part = np.zeros(hg.n, dtype=np.int64)
    if nparts == 1 or hg.n == 0:
        return part
    depth = int(np.ceil(np.log2(nparts)))
    ub_level = float(ub) ** (1.0 / depth)
    # root-level ideal part weight: splits below target multiples of it so
    # imbalance does not compound down the recursion (see kway._rb)
    ideal = hg.total_weight()[0] / nparts
    _rb(hg, np.arange(hg.n, dtype=np.int64), 0, nparts, part, ub_level, ideal, seed,
        bisect_kwargs, seed_scheme)
    return check_part_vector(part, hg.n, nparts)


def _split(
    hg: Hypergraph, k: int, ub: float, ideal: float, seed, kwargs: dict
) -> tuple[np.ndarray, int]:
    """One hypergraph RB node; pure function of its arguments (see kway._split)."""
    k0 = k // 2
    total = hg.total_weight()[0]
    frac0 = float(np.clip(k0 * ideal / max(total, 1e-300), 0.05, 0.95))
    with perf.phase("bisect"):
        bis = multilevel_hypergraph_bisect(
            hg, (frac0, 1.0 - frac0), ub=ub, seed=seed, **kwargs
        )
    if (bis == 0).sum() == 0 or (bis == 1).sum() == 0:
        order = np.argsort(-hg.vwgt[:, 0], kind="stable")
        nleft = max(1, min(hg.n - 1, int(round(hg.n * frac0))))
        bis = np.ones(hg.n, dtype=np.int64)
        bis[order[:nleft]] = 0
    return bis, k0


def _rb(
    hg: Hypergraph,
    vertices: np.ndarray,
    lo: int,
    k: int,
    part: np.ndarray,
    ub: float,
    ideal: float,
    seed,
    kwargs: dict,
    seed_scheme: str = "legacy",
) -> None:
    if k == 1 or len(vertices) == 0:
        part[vertices] = lo
        return
    bis, k0 = _split(hg, k, ub, ideal, seed, kwargs)
    s_left, s_right = child_seeds(seed, seed_scheme)
    sel0, sel1 = np.flatnonzero(bis == 0), np.flatnonzero(bis == 1)
    _rb(hg.induced(sel0), vertices[sel0], lo, k0, part, ub, ideal, s_left, kwargs, seed_scheme)
    _rb(hg.induced(sel1), vertices[sel1], lo + k0, k - k0, part, ub, ideal, s_right, kwargs, seed_scheme)
