"""FM refinement for hypergraph bisections on the connectivity-1 metric.

For a bisection the connectivity-1 cut reduces to the weighted number of
nets with pins on both sides. The gain of moving vertex v from side s to
side t is::

    gain(v) = sum_{e in nets(v), pins_s(e) == 1} w_e     (net becomes uncut)
            - sum_{e in nets(v), pins_t(e) == 0} w_e     (net becomes cut)

The pass uses lazy heaps with recompute-on-pop: hypergraph gain updates
have many threshold cases, and recomputing a popped vertex's gain from the
current per-net pin counts (O(net-degree)) is both simpler and immune to
update bugs. Stale entries are reinserted with their fresh gain.

The batch paths — heap seeding and waking the pins of a threshold-crossing
net — compute gains through :func:`_compute_gain_many`, which gathers every
vertex's net slice into one concatenated fancy-indexed pass and then sums
each vertex's contiguous slice with ``np.sum``. The slices have the same
lengths and contents as the per-vertex arrays, so numpy applies the same
pairwise-summation tree and the batched gains are bit-identical to the
scalar ones (``np.add.reduceat`` would not be: it accumulates strictly left
to right).
"""

from __future__ import annotations

import heapq

import numpy as np

from ._util import gather_slices
from .hypergraph import Hypergraph
from .refine import balance_allowance, is_balanced

__all__ = ["hg_balance_allowance", "fm_refine_hypergraph"]

#: Alias of the shared (duck-typed) allowance helper in :mod:`.refine` —
#: the graph and hypergraph refiners use the identical widening rule.
hg_balance_allowance = balance_allowance


def _violation(sw: np.ndarray, allow: np.ndarray) -> float:
    return float(np.maximum(sw - allow, 0.0).sum())


def fm_refine_hypergraph(
    hg: Hypergraph,
    part: np.ndarray,
    target_fracs: tuple[float, float] = (0.5, 0.5),
    ub: float = 1.05,
    passes: int = 3,
    hill_limit: int = 64,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Refine a hypergraph bisection; returns an improved copy."""
    part = np.asarray(part, dtype=np.int64).copy()
    if hg.n <= 1 or hg.nnets == 0:
        return part
    allow = hg_balance_allowance(hg, target_fracs, ub)
    for _ in range(passes):
        if not _pass(hg, part, allow, hill_limit):
            break
    return part


def _gain_from_nets(
    netwgt: np.ndarray, counts: np.ndarray, nets: np.ndarray, s: int
) -> float:
    """Gain of moving a side-*s* vertex whose incident nets are *nets*."""
    w = netwgt[nets]
    uncut = counts[nets, s] == 1  # v is the last pin on its side
    cut_new = counts[nets, 1 - s] == 0  # net currently entirely on v's side
    return float((w * uncut).sum() - (w * cut_new).sum())


def _compute_gain(hg: Hypergraph, part: np.ndarray, counts: np.ndarray, v: int) -> float:
    return _gain_from_nets(hg.netwgt, counts, hg.nets_of(v), int(part[v]))


def _compute_gain_many(
    hg: Hypergraph, part: np.ndarray, counts: np.ndarray, vs: np.ndarray
) -> list[float]:
    """Gains of every vertex in *vs*, bit-identical to :func:`_compute_gain`.

    One concatenated gather replaces ``len(vs)`` per-vertex ``nets_of`` /
    ``netwgt`` / ``counts`` fancy-indexing rounds; only the final per-vertex
    reduction stays a loop, over contiguous slices (see the module notes on
    why that reduction must be ``np.sum`` per slice).
    """
    vs = np.asarray(vs, dtype=np.int64)
    if len(vs) == 0:
        return []
    HT = hg.transpose_incidence()
    lengths = (HT.indptr[vs + 1] - HT.indptr[vs]).astype(np.int64)
    nets = gather_slices(HT.indptr, HT.indices, vs)
    w = hg.netwgt[nets]
    s_rep = np.repeat(part[vs], lengths)
    wu = w * (counts[nets, s_rep] == 1)
    wc = w * (counts[nets, 1 - s_rep] == 0)
    out: list[float] = []
    lo = 0
    for length in lengths.tolist():
        hi = lo + length
        out.append(float(wu[lo:hi].sum()) - float(wc[lo:hi].sum()))
        lo = hi
    return out


def _pass(hg: Hypergraph, part: np.ndarray, allow: np.ndarray, hill_limit: int) -> bool:
    """One FM pass over the hypergraph bisection; returns True if it moved.

    Stale-entry counter semantics: a popped entry whose recorded gain no
    longer matches the recomputed one is reinserted at the true gain with
    a **fresh** counter value (the counter increments on every push,
    reinserts included) — unlike the graph-FM kernels in
    :mod:`~repro.partitioning.refine`, which reuse the current counter.
    Either convention is deterministic: the counter sequence is a pure
    function of the move history, so ``(-gain, counter, v)`` tuples give
    the same total order on every run with the same inputs. What matters
    for golden stability is only that each kernel keeps its own
    convention fixed.
    """
    nparts = 2
    counts = np.zeros((hg.nnets, nparts), dtype=np.int64)
    M = hg.net_part_counts(part, nparts).toarray().astype(np.int64)
    counts[:, : M.shape[1]] = M

    sw = np.zeros((2, hg.ncon))
    np.add.at(sw, part, hg.vwgt)

    # cached net/pin slice bounds: the hot loop indexes the incidence CSR
    # arrays directly instead of going through nets_of()/pins() accessors
    HT = hg.transpose_incidence()
    htp, hti = HT.indptr, HT.indices
    hp, hi_ = hg.H.indptr, hg.H.indices
    netwgt = hg.netwgt

    # boundary vertices: pins of cut nets
    cut_net_ids = np.flatnonzero((counts > 0).sum(axis=1) > 1)
    if len(cut_net_ids) == 0 and is_balanced(sw, allow):
        return False
    boundary = np.unique(hg.H[cut_net_ids].indices) if len(cut_net_ids) else np.arange(hg.n)

    in_heap = np.zeros(hg.n, dtype=bool)

    # batched seeding: entry i of the boundary gets counter i, exactly the
    # sequence the former per-vertex push loop produced, and a heapified
    # list pops identically to a push-built heap (pop order is a function
    # of heap *contents* only)
    seed_gains = _compute_gain_many(hg, part, counts, boundary)
    heap: list[tuple[float, int, int]] = [
        (-g, i, v) for i, (g, v) in enumerate(zip(seed_gains, boundary.tolist()))
    ]
    heapq.heapify(heap)
    ctr = len(heap)
    in_heap[boundary] = True

    locked = np.zeros(hg.n, dtype=bool)
    cur_cut = float((netwgt * ((counts > 0).sum(axis=1) > 1)).sum())
    best_key = (_violation(sw, allow) > 1e-9, cur_cut)
    moves: list[int] = []
    best_prefix = 0
    since_best = 0
    max_pops = 30 * hg.n + 1000

    pops = 0
    while since_best < hill_limit and pops < max_pops:
        pops += 1
        if not heap:
            break
        negg, _, v = heapq.heappop(heap)
        if locked[v]:
            continue
        g = _gain_from_nets(netwgt, counts, hti[htp[v] : htp[v + 1]], int(part[v]))
        if g != -negg:
            heapq.heappush(heap, (-g, ctr, v))  # stale: reinsert at the true gain
            ctr += 1
            continue
        in_heap[v] = False
        s = int(part[v])
        w = hg.vwgt[v]
        new_sw = sw.copy()
        new_sw[s] -= w
        new_sw[1 - s] += w
        admissible = is_balanced(new_sw, allow) or (
            _violation(new_sw, allow) < _violation(sw, allow) - 1e-12
        )
        if not admissible:
            continue  # this vertex can't move now; it stays out of the heap

        part[v] = 1 - s
        locked[v] = True
        sw = new_sw
        cur_cut -= g
        nets = hti[htp[v] : htp[v + 1]]
        counts[nets, s] -= 1
        counts[nets, 1 - s] += 1
        moves.append(v)

        # wake pins whose gain could have changed materially. Scanning every
        # pin of every touched net would cost O(moves x max-net-size) — fatal
        # with hub nets — so we only scan a net when it crossed a gain
        # threshold: it just became cut (its pins just became boundary), or
        # one side is down to its last pin (that pin can now uncut the net).
        # Each crossing net wakes its eligible pins as one batch, in pin
        # order — the same vertices, gains and counter values the former
        # per-pin loop produced (in_heap only changes through the pushes
        # themselves, so the sequential filter equals the batch filter).
        for e in nets.tolist():
            ct, cs = counts[e, 1 - s], counts[e, s]
            if ct == 1 or cs <= 1:
                pins_e = hi_[hp[e] : hp[e + 1]]
                wake = pins_e[~(locked[pins_e] | in_heap[pins_e])]
                if len(wake) == 0:
                    continue
                for u, gu in zip(wake.tolist(), _compute_gain_many(hg, part, counts, wake)):
                    heapq.heappush(heap, (-gu, ctr, u))
                    ctr += 1
                in_heap[wake] = True

        key = (_violation(sw, allow) > 1e-9, cur_cut)
        if key < best_key:
            best_key = key
            best_prefix = len(moves)
            since_best = 0
        else:
            since_best += 1

    for v in moves[best_prefix:]:
        part[v] = 1 - part[v]
    return best_prefix > 0
