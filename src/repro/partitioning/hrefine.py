"""FM refinement for hypergraph bisections on the connectivity-1 metric.

For a bisection the connectivity-1 cut reduces to the weighted number of
nets with pins on both sides. The gain of moving vertex v from side s to
side t is::

    gain(v) = sum_{e in nets(v), pins_s(e) == 1} w_e     (net becomes uncut)
            - sum_{e in nets(v), pins_t(e) == 0} w_e     (net becomes cut)

The pass uses lazy heaps with recompute-on-pop: hypergraph gain updates
have many threshold cases, and recomputing a popped vertex's gain from the
current per-net pin counts (O(net-degree)) is both simpler and immune to
update bugs. Stale entries are reinserted with their fresh gain.
"""

from __future__ import annotations

import heapq

import numpy as np

from .hypergraph import Hypergraph
from .refine import is_balanced

__all__ = ["hg_balance_allowance", "fm_refine_hypergraph"]


def hg_balance_allowance(
    hg: Hypergraph, target_fracs: tuple[float, float], ub: float
) -> np.ndarray:
    """Side-weight allowance per (side, constraint), hub-widened."""
    total = hg.total_weight()
    vmax = hg.vwgt.max(axis=0) if hg.n else np.zeros(hg.ncon)
    out = np.empty((2, hg.ncon))
    for side, frac in enumerate(target_fracs):
        out[side] = np.maximum(ub * frac * total, frac * total + vmax)
    return out


def _violation(sw: np.ndarray, allow: np.ndarray) -> float:
    return float(np.maximum(sw - allow, 0.0).sum())


def fm_refine_hypergraph(
    hg: Hypergraph,
    part: np.ndarray,
    target_fracs: tuple[float, float] = (0.5, 0.5),
    ub: float = 1.05,
    passes: int = 3,
    hill_limit: int = 64,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Refine a hypergraph bisection; returns an improved copy."""
    part = np.asarray(part, dtype=np.int64).copy()
    if hg.n <= 1 or hg.nnets == 0:
        return part
    allow = hg_balance_allowance(hg, target_fracs, ub)
    for _ in range(passes):
        if not _pass(hg, part, allow, hill_limit):
            break
    return part


def _compute_gain(hg: Hypergraph, part: np.ndarray, counts: np.ndarray, v: int) -> float:
    s = part[v]
    nets = hg.nets_of(v)
    w = hg.netwgt[nets]
    uncut = counts[nets, s] == 1  # v is the last pin on its side
    cut_new = counts[nets, 1 - s] == 0  # net currently entirely on v's side
    return float((w * uncut).sum() - (w * cut_new).sum())


def _pass(hg: Hypergraph, part: np.ndarray, allow: np.ndarray, hill_limit: int) -> bool:
    nparts = 2
    counts = np.zeros((hg.nnets, nparts), dtype=np.int64)
    M = hg.net_part_counts(part, nparts).toarray().astype(np.int64)
    counts[:, : M.shape[1]] = M

    sw = np.zeros((2, hg.ncon))
    np.add.at(sw, part, hg.vwgt)

    # boundary vertices: pins of cut nets
    cut_net_ids = np.flatnonzero((counts > 0).sum(axis=1) > 1)
    if len(cut_net_ids) == 0 and is_balanced(sw, allow):
        return False
    boundary = np.unique(hg.H[cut_net_ids].indices) if len(cut_net_ids) else np.arange(hg.n)

    heap: list[tuple[float, int, int]] = []
    ctr = 0
    in_heap = np.zeros(hg.n, dtype=bool)

    def push(v: int, g: float) -> None:
        nonlocal ctr
        heapq.heappush(heap, (-g, ctr, v))
        ctr += 1
        in_heap[v] = True

    for v in boundary.tolist():
        push(v, _compute_gain(hg, part, counts, v))

    locked = np.zeros(hg.n, dtype=bool)
    cur_cut = float((hg.netwgt * ((counts > 0).sum(axis=1) > 1)).sum())
    best_key = (_violation(sw, allow) > 1e-9, cur_cut)
    moves: list[int] = []
    best_prefix = 0
    since_best = 0
    max_pops = 30 * hg.n + 1000

    pops = 0
    while since_best < hill_limit and pops < max_pops:
        pops += 1
        if not heap:
            break
        negg, _, v = heapq.heappop(heap)
        if locked[v]:
            continue
        g = _compute_gain(hg, part, counts, v)
        if g != -negg:
            push(v, g)  # stale: reinsert at the true gain
            continue
        in_heap[v] = False
        s = int(part[v])
        w = hg.vwgt[v]
        new_sw = sw.copy()
        new_sw[s] -= w
        new_sw[1 - s] += w
        admissible = is_balanced(new_sw, allow) or (
            _violation(new_sw, allow) < _violation(sw, allow) - 1e-12
        )
        if not admissible:
            continue  # this vertex can't move now; it stays out of the heap

        part[v] = 1 - s
        locked[v] = True
        sw = new_sw
        cur_cut -= g
        nets = hg.nets_of(v)
        counts[nets, s] -= 1
        counts[nets, 1 - s] += 1
        moves.append(v)

        # wake pins whose gain could have changed materially. Scanning every
        # pin of every touched net would cost O(moves x max-net-size) — fatal
        # with hub nets — so we only scan a net when it crossed a gain
        # threshold: it just became cut (its pins just became boundary), or
        # one side is down to its last pin (that pin can now uncut the net).
        for e in nets.tolist():
            ct, cs = counts[e, 1 - s], counts[e, s]
            if ct == 1 or cs <= 1:
                for u in hg.pins(e).tolist():
                    if not locked[u] and not in_heap[u]:
                        push(u, _compute_gain(hg, part, counts, u))

        key = (_violation(sw, allow) > 1e-9, cur_cut)
        if key < best_key:
            best_key = key
            best_prefix = len(moves)
            since_best = 0
        else:
            since_best += 1

    for v in moves[best_prefix:]:
        part[v] = 1 - part[v]
    return best_prefix > 0
