"""Fiduccia-Mattheyses boundary refinement for bisections.

Classic FM with the features the multilevel scheme needs:

* two gain heaps (one per side) with lazy invalidation;
* hill climbing — the pass keeps moving through negative-gain states and
  rolls back to the best prefix, which lets it escape local minima;
* multiconstraint balance — a move is admissible when every constraint
  stays inside its allowance, or when it strictly reduces the worst
  violation (so an unbalanced initial partition gets repaired first);
* boundary seeding — only boundary vertices enter the heaps; interior
  vertices are added lazily as their neighbours move.

The inner loop cost is proportional to the boundary size, not n, which
keeps refinement fast even on the finest level of large graphs.

Two kernels implement the pass:

* ``"vector"`` (default) — batched boundary seeding (one heap build per
  side), memoized graph state (adjacency matrix, edge sources, CSR list
  mirrors — :class:`~repro.partitioning.partgraph.PartGraph` is immutable
  after construction), scalar incremental balance tracking (no
  per-candidate ``sw.copy()``), and a two-tier neighbour update: masked
  fancy-indexed numpy over the CSR slice for hub moves, a plain-scalar
  loop over the memoized list mirrors below ``_HUB_DEGREE``;
* ``"reference"`` — the seed per-vertex kernel, kept verbatim including
  its per-pass derived-state rebuilds (adjacency matrix, weighted
  degrees, ``np.repeat`` edge sources), as the correctness oracle and
  timing baseline.

Both replay the **exact same move sequence**: every heap key, gain value
and balance decision is arithmetically identical (see the bit-identity
notes on :func:`_fm_pass`), which ``benchmarks/bench_refine_kernels.py``
and the golden regression corpus verify bit-for-bit.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager

import numpy as np
import scipy.sparse as sp

from .partgraph import PartGraph

__all__ = ["fm_refine", "balance_allowance", "is_balanced", "use_kernel"]

#: FM pass kernels; module default is the vectorised one.
FM_KERNELS = ("vector", "reference")
_DEFAULT_KERNEL = "vector"

#: degree at or above which the vector kernels' neighbour update switches
#: from the scalar loop to the masked fancy-indexed numpy path — both are
#: bit-identical, the threshold only trades constant factors
_HUB_DEGREE = 64

#: CSR slot count at or above which the vector passes skip the full list
#: mirrors (three O(nnz) ``tolist`` conversions) and convert each moved
#: vertex's slice on demand instead. FM touches only boundary vertices, so
#: on fine levels the mirrors convert millions of slots to move a few
#: thousand — the conversion dominated the whole refine phase. Values are
#: identical either way (``tolist`` of a slice == slice of ``tolist``), so
#: the threshold only trades constant factors.
_MIRROR_SLOTS = 200_000


@contextmanager
def use_kernel(kernel: str):
    """Temporarily switch the module-default FM kernel (bench/test A/B)."""
    global _DEFAULT_KERNEL
    if kernel not in FM_KERNELS:
        raise ValueError(f"unknown FM kernel {kernel!r}; choose from {FM_KERNELS}")
    prev = _DEFAULT_KERNEL
    _DEFAULT_KERNEL = kernel
    try:
        yield
    finally:
        _DEFAULT_KERNEL = prev


def balance_allowance(g, target_fracs: tuple[float, float], ub: float) -> np.ndarray:
    """Maximum admissible side weight per (side, constraint).

    ``ub`` is the multiplicative imbalance tolerance (1.05 = 5%). The
    allowance is widened by the largest single vertex weight: a partition
    can never balance below the granularity of its heaviest vertex (on
    scale-free graphs a hub row can hold >1/p of all nonzeros — the paper's
    130x 2D-Block imbalance is exactly this effect).

    *g* may be a :class:`PartGraph` or a
    :class:`~repro.partitioning.hypergraph.Hypergraph` — both expose the
    ``total_weight`` / ``vwgt`` / ``ncon`` / ``n`` surface this needs (the
    hypergraph refiner's ``hg_balance_allowance`` is an alias of this
    function).
    """
    total = g.total_weight()  # (ncon,)
    vmax = g.vwgt.max(axis=0) if g.n else np.zeros(g.ncon)
    out = np.empty((2, g.ncon))
    for side, frac in enumerate(target_fracs):
        out[side] = np.maximum(ub * frac * total, frac * total + vmax)
    return out


def is_balanced(side_weights: np.ndarray, allow: np.ndarray) -> bool:
    """True when every (side, constraint) weight is within its allowance."""
    return bool((side_weights <= allow + 1e-9).all())


def _violation(side_weights: np.ndarray, allow: np.ndarray) -> float:
    """Total overweight across sides/constraints (0 when balanced)."""
    return float(np.maximum(side_weights - allow, 0.0).sum())


def fm_refine(
    g: PartGraph,
    part: np.ndarray,
    target_fracs: tuple[float, float] = (0.5, 0.5),
    ub: float = 1.05,
    passes: int = 3,
    hill_limit: int = 64,
    rng: np.random.Generator | None = None,
    kernel: str | None = None,
) -> np.ndarray:
    """Refine a bisection without mutating the input (returns a copy).

    Runs up to *passes* FM passes; stops early when a pass improves
    neither the cut nor the balance violation. ``kernel`` selects the pass
    implementation (``"vector"``/``"reference"``, default the module
    kernel, see :func:`use_kernel`); both produce bit-identical results.
    """
    part = np.asarray(part, dtype=np.int64).copy()
    if g.n <= 1:
        return part
    allow = balance_allowance(g, target_fracs, ub)
    rng = rng or np.random.default_rng(0)
    kernel = kernel if kernel is not None else _DEFAULT_KERNEL
    if kernel not in FM_KERNELS:
        raise ValueError(f"unknown FM kernel {kernel!r}; choose from {FM_KERNELS}")

    if kernel == "vector":
        carry: dict = {}
        for _ in range(passes):
            if not _fm_pass(g, part, allow, hill_limit, rng, carry):
                break
    else:
        for _ in range(passes):
            if not _fm_pass_reference(g, part, allow, hill_limit, rng):
                break
    return part


def _gains_and_boundary(g: PartGraph, part: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised gain (= external - internal weight) and boundary mask.

    Uses the graph's memoized adjacency matrix and weighted degrees; the
    seed rebuilt both on every pass (see
    :func:`_gains_and_boundary_reference`).
    """
    W = g.adjacency_matrix()
    to1 = W @ (part == 1).astype(np.float64)
    degw = g.weighted_degrees()
    ed = np.where(part == 0, to1, degw - to1)
    gain = 2.0 * ed - degw
    return gain, ed > 0.0


def _seed_heaps(gain: np.ndarray, boundary: np.ndarray, part: np.ndarray):
    """Batched boundary seeding: the heaps the per-vertex push loop built.

    Entry *i* of the boundary got counter ``i`` from the reference's push
    loop; splitting by side preserves those counters (``flatnonzero`` of
    the side mask *is* the counter sequence), and ``heapify`` produces a
    heap with the same *contents* — pop order from a binary heap depends
    only on its contents (each pop returns the minimum tuple), never on
    the internal layout, so the replayed pop sequence is identical.
    Returns ``(heaps, boundary_ids, counter)``.
    """
    bnd = np.flatnonzero(boundary)
    negg = -gain[bnd]
    sides = part[bnd]
    heaps: list[list] = []
    for s in (0, 1):
        m = sides == s
        h = list(zip(negg[m].tolist(), np.flatnonzero(m).tolist(), bnd[m].tolist()))
        heapq.heapify(h)
        heaps.append(h)
    return heaps, bnd, len(bnd)


def _fm_pass(
    g: PartGraph,
    part: np.ndarray,
    allow: np.ndarray,
    hill_limit: int,
    rng: np.random.Generator,
    carry: dict | None = None,
) -> bool:
    """Vectorised FM pass — replays the reference move sequence exactly.

    Dispatches to the single-constraint fast path (the corpus-dominant
    case), the general 2-3 constraint path, or — above three constraints,
    where the scalar balance mirrors would no longer match numpy's
    reduction order — the reference kernel. *carry* is an opaque dict
    :func:`fm_refine` threads through consecutive passes so per-pass
    O(n) state (the partition list mirror, the tracked edge cut) survives
    pass boundaries; pass ``None`` (the default) for a standalone pass.

    Bit-identity notes (each is load-bearing for golden stability):

    * heap pops depend only on the heap *contents* — tuples are totally
      ordered and each pop returns the minimum — so batched seeding via
      ``heapify`` pops in exactly the order the per-vertex ``heappush``
      loop did, as long as counters are assigned in the same order;
    * the balance state is mirrored in plain Python floats. Every scalar
      op (subtract, add, compare) is the same IEEE double op numpy
      applied elementwise, and numpy's small-array reductions (< 8
      elements, which covers ``2 * ncon`` for every supported constraint
      set) accumulate sequentially from 0.0 in C order — the scalar
      mirrors replicate that order term by term;
    * neighbour gain updates apply the same IEEE double ops in both
      tiers: the hub tier's ``gain + (-2.0) * w`` is bit-equal to the
      scalar tier's (and the reference's) ``gain - 2.0 * w`` because IEEE
      negation is exact;
    * gains of locked vertices are dead state — the pop path checks
      ``locked`` before ever reading a gain, and the wake path skips
      locked neighbours — so the vector kernels update them
      unconditionally (one branch less per touch) without affecting any
      decision the reference makes;
    * the reference's ``in_heap`` flag never returns to False except at
      the moment a vertex is locked, so ``locked or in_heap`` ("seen") is
      monotone — the wake test collapses to one byte read. ``locked``
      is still tracked separately for the pop path;
    * the edge cut the reference recomputes at the start of each pass is
      carried over from the previous pass's tracked value when
      :meth:`~repro.partitioning.partgraph.PartGraph.exactly_summable_weights`
      holds: cut and gain values are then exact integers in float64, so
      the tracked cut and a fresh recomputation are the same number.

    Stale-entry semantics (shared with the reference kernel): a popped
    entry whose recorded gain no longer matches is **reinserted with the
    current value of the push counter, without incrementing it** —
    several reinserted entries may therefore share a counter, and the
    heap tuple falls through to the vertex id. Tie-break order stays
    deterministic because ``(-gain, counter, v)`` is still a total order:
    equal-gain, equal-counter entries pop in ascending vertex id, and the
    reinserting side's counter snapshot is itself a deterministic
    function of the move history.
    """
    ncon = g.ncon
    if carry is None:
        carry = {}
    if ncon == 1:
        return _fm_pass_vec1(g, part, allow, hill_limit, rng, carry)
    if ncon > 3:
        return _fm_pass_reference(g, part, allow, hill_limit, rng)
    return _fm_pass_vecn(g, part, allow, hill_limit, rng, carry)


def _fm_pass_vec1(
    g: PartGraph,
    part: np.ndarray,
    allow: np.ndarray,
    hill_limit: int,
    rng: np.random.Generator,
    carry: dict,
) -> bool:
    """Single-constraint vector pass; see :func:`_fm_pass` for the notes.

    All per-vertex state lives in list/bytearray mirrors — Python scalar
    reads and writes in the hot loop are several times cheaper than numpy
    0-d indexing — and the (2, 1) balance state collapses to two floats.
    The two pop loops are inlined (no per-move function calls).
    """
    gain, boundary = _gains_and_boundary(g, part)
    adjncy, adjwgt = g.adjncy, g.adjwgt
    big = len(adjncy) >= _MIRROR_SLOTS
    if big:
        xadj_l = g.xadj  # scalar int64 reads; slices convert per move
        adjncy_l = adjwgt_l = None
    else:
        xadj_l, adjncy_l, adjwgt_l = g.adjacency_lists()
    vw = g.vwgt_lists()[0]

    sw0, sw1 = np.bincount(part, weights=g.vwgt[:, 0], minlength=2).tolist()
    a0, a1 = allow[:, 0].tolist()
    a0e = a0 + 1e-9
    a1e = a1 + 1e-9

    gain_l = gain.tolist()
    part_l = carry.get("part_l")
    if part_l is None:
        part_l = part.tolist()
        carry["part_l"] = part_l
    locked_b = bytearray(g.n)
    seen_b = bytearray(g.n)  # locked-or-in-heap; monotone (see _fm_pass)
    seen_np = np.frombuffer(seen_b, dtype=np.uint8)

    heaps, bnd, counter = _seed_heaps(gain, boundary, part)
    h0, h1 = heaps
    seen_np[bnd] = 1

    heappush = heapq.heappush
    heappop = heapq.heappop

    cut0 = carry.get("cut")
    if cut0 is None or not g.exactly_summable_weights():
        cut0 = g.edgecut(part)
    cur_cut = cut0
    d0 = sw0 - a0
    d1 = sw1 - a1
    viol_cur = (d0 if d0 > 0.0 else 0.0) + (d1 if d1 > 0.0 else 0.0)
    r0 = sw0 / a0
    r1 = sw1 / a1
    # prefer balanced states, then lower cut, then tighter balance — the
    # last term stops FM from parking exactly at the allowance edge when an
    # equally cheap, better-balanced prefix exists
    best_key = (viol_cur > 1e-9, cut0, r0 if r1 <= r0 else r1)
    moves: list[int] = []
    moves_append = moves.append
    best_prefix = 0
    since_best = 0

    while since_best < hill_limit:
        # pop the freshest max-gain vertex of each side (stale entries are
        # reinserted with the current counter, not incremented)
        v0 = -1
        h = h0
        while h:
            negg, _, u = heappop(h)
            if locked_b[u] or part_l[u] != 0:
                continue
            if -negg != gain_l[u]:  # stale entry; reinsert with current gain
                heappush(h, (-gain_l[u], counter, u))
                continue
            v0 = u
            break
        v1 = -1
        h = h1
        while h:
            negg, _, u = heappop(h)
            if locked_b[u] or part_l[u] != 1:
                continue
            if -negg != gain_l[u]:  # stale entry; reinsert with current gain
                heappush(h, (-gain_l[u], counter, u))
                continue
            v1 = u
            break
        if v0 < 0 and v1 < 0:
            break
        # a move v: s -> 1-s is admissible if it keeps (or repairs) balance
        if v0 >= 0:
            w = vw[v0]
            n0 = sw0 - w
            n1 = sw1 + w
            adm0 = n0 <= a0e and n1 <= a1e
            if not adm0:
                e0 = n0 - a0
                e1 = n1 - a1
                nv = (e0 if e0 > 0.0 else 0.0) + (e1 if e1 > 0.0 else 0.0)
                adm0 = nv < viol_cur - 1e-12
            g0 = gain_l[v0]
        if v1 >= 0:
            w = vw[v1]
            n0 = sw0 + w
            n1 = sw1 - w
            adm1 = n0 <= a0e and n1 <= a1e
            if not adm1:
                e0 = n0 - a0
                e1 = n1 - a1
                nv = (e0 if e0 > 0.0 else 0.0) + (e1 if e1 > 0.0 else 0.0)
                adm1 = nv < viol_cur - 1e-12
            g1 = gain_l[v1]
        # replay the reference's stable sort on (not admissible, -gain):
        # the side-0 candidate wins ties; the loser is reinserted with the
        # current counter (not incremented)
        if v0 < 0:
            admissible, gv, s, v = adm1, g1, 1, v1
        elif v1 < 0:
            admissible, gv, s, v = adm0, g0, 0, v0
        elif (not adm0, -g0) <= (not adm1, -g1):
            admissible, gv, s, v = adm0, g0, 0, v0
            heappush(h1, (-g1, counter, v1))
        else:
            admissible, gv, s, v = adm1, g1, 1, v1
            heappush(h0, (-g0, counter, v0))
        if not admissible:
            # no move can keep or repair balance; stop the pass
            break

        # apply the move
        t = 1 - s
        part[v] = t
        part_l[v] = t
        locked_b[v] = 1
        w = vw[v]
        if s == 0:
            sw0 -= w
            sw1 += w
        else:
            sw1 -= w
            sw0 += w
        cur_cut -= gv
        moves_append(v)

        # update neighbour gains: edge (u,v) flips internal<->external.
        # Hub moves (hundreds to thousands of neighbours — the scale-free
        # case the paper's 2D layouts exist for) compute all deltas with
        # one masked fancy-indexed numpy expression over the CSR slice;
        # low-degree moves loop over the memoized list mirrors, which
        # beats numpy's per-call overhead on ~10-element slices.
        lo = xadj_l[v]
        hi = xadj_l[v + 1]
        if hi - lo >= _HUB_DEGREE:
            nbrs = adjncy[lo:hi]
            delta = np.where(part[nbrs] == s, 2.0, -2.0) * adjwgt[lo:hi]
            for u, d_u in zip(nbrs.tolist(), delta.tolist()):
                ng = gain_l[u] + d_u
                gain_l[u] = ng
                if not seen_b[u]:
                    heappush(h0 if part_l[u] == 0 else h1, (-ng, counter, u))
                    counter += 1
                    seen_b[u] = 1
        else:
            if big:
                nbr_l = adjncy[lo:hi].tolist()
                wuv_l = adjwgt[lo:hi].tolist()
            else:
                nbr_l = adjncy_l[lo:hi]
                wuv_l = adjwgt_l[lo:hi]
            for u, w_uv in zip(nbr_l, wuv_l):
                if part_l[u] == s:  # was internal for u, now external
                    ng = gain_l[u] + 2.0 * w_uv
                else:  # was external, now internal
                    ng = gain_l[u] - 2.0 * w_uv
                gain_l[u] = ng
                if not seen_b[u]:
                    heappush(h0 if part_l[u] == 0 else h1, (-ng, counter, u))
                    counter += 1
                    seen_b[u] = 1

        d0 = sw0 - a0
        d1 = sw1 - a1
        viol_cur = (d0 if d0 > 0.0 else 0.0) + (d1 if d1 > 0.0 else 0.0)
        r0 = sw0 / a0
        r1 = sw1 / a1
        key = (viol_cur > 1e-9, cur_cut, r0 if r1 <= r0 else r1)
        if key < best_key:
            best_key = key
            best_prefix = len(moves)
            since_best = 0
        else:
            since_best += 1

    # roll back moves after the best prefix (maintaining the carried
    # mirror), and carry the best-prefix cut into the next pass
    for v in moves[best_prefix:]:
        t = 1 - part_l[v]
        part[v] = t
        part_l[v] = t
    carry["cut"] = best_key[1]
    return best_prefix > 0


def _fm_pass_vecn(
    g: PartGraph,
    part: np.ndarray,
    allow: np.ndarray,
    hill_limit: int,
    rng: np.random.Generator,
    carry: dict,
) -> bool:
    """2-3 constraint vector pass; see :func:`_fm_pass` for the notes.

    Same structure as :func:`_fm_pass_vec1` with the balance state held
    in per-side Python lists (one slot per constraint) instead of two
    floats.
    """
    gain, boundary = _gains_and_boundary(g, part)
    ncon = g.ncon
    adjncy, adjwgt = g.adjncy, g.adjwgt
    big = len(adjncy) >= _MIRROR_SLOTS
    if big:
        xadj_l = g.xadj  # scalar int64 reads; slices convert per move
        adjncy_l = adjwgt_l = None
    else:
        xadj_l, adjncy_l, adjwgt_l = g.adjacency_lists()
    vcols = g.vwgt_lists()

    sw_np = np.zeros((2, ncon))
    np.add.at(sw_np, part, g.vwgt)
    # scalar mirrors of the per-candidate balance state; see _fm_pass
    sw = [row[:] for row in sw_np.tolist()]
    allow_l = allow.tolist()
    allow_eps = (allow + 1e-9).tolist()
    crange = range(ncon)

    gain_l = gain.tolist()
    part_l = carry.get("part_l")
    if part_l is None:
        part_l = part.tolist()
        carry["part_l"] = part_l
    locked_b = bytearray(g.n)
    seen_b = bytearray(g.n)  # locked-or-in-heap; monotone (see _fm_pass)
    seen_np = np.frombuffer(seen_b, dtype=np.uint8)

    def viol_of(rows) -> float:
        t = 0.0
        for side in (0, 1):
            row, arow = rows[side], allow_l[side]
            for c in crange:
                d = row[c] - arow[c]
                if d > 0.0:
                    t += d
        return t

    def balanced(rows) -> bool:
        for side in (0, 1):
            row, lim = rows[side], allow_eps[side]
            for c in crange:
                if row[c] > lim[c]:
                    return False
        return True

    def load_of(rows) -> float:
        m = -np.inf
        for side in (0, 1):
            row, arow = rows[side], allow_l[side]
            for c in crange:
                r = row[c] / arow[c]
                if r > m:
                    m = r
        return m

    heaps, bnd, counter = _seed_heaps(gain, boundary, part)
    seen_np[bnd] = 1

    heappush = heapq.heappush
    heappop = heapq.heappop

    cut0 = carry.get("cut")
    if cut0 is None or not g.exactly_summable_weights():
        cut0 = g.edgecut(part)
    cur_cut = cut0
    viol_cur = viol_of(sw)
    # prefer balanced states, then lower cut, then tighter balance — the
    # last term stops FM from parking exactly at the allowance edge when an
    # equally cheap, better-balanced prefix exists
    best_key = (viol_cur > 1e-9, cut0, load_of(sw))
    moves: list[int] = []
    best_prefix = 0
    since_best = 0

    def pop_valid(side: int):
        """Pop the freshest max-gain vertex from *side*'s heap."""
        h = heaps[side]
        while h:
            negg, _, v = heappop(h)
            if locked_b[v] or part_l[v] != side:
                continue
            if -negg != gain_l[v]:  # stale entry; reinsert with current gain
                heappush(h, (-gain_l[v], counter, v))
                continue
            return v
        return None

    while since_best < hill_limit:
        # choose source side: a move v: s -> 1-s is admissible if it keeps
        # (or repairs) balance on every constraint
        cand = []
        for s in (0, 1):
            v = pop_valid(s)
            if v is None:
                continue
            new_rows = [
                [sw[s][c] - vcols[c][v] for c in crange],
                [sw[1 - s][c] + vcols[c][v] for c in crange],
            ]
            if s == 1:
                new_rows.reverse()
            admissible = balanced(new_rows) or (
                viol_of(new_rows) < viol_cur - 1e-12
            )
            cand.append((admissible, gain_l[v], s, v))
        if not cand:
            break
        # prefer admissible moves, then higher gain
        cand.sort(key=lambda t: (not t[0], -t[1]))
        admissible, gv, s, v = cand[0]
        # reinsert the unused candidate
        for _, _, s2, v2 in cand[1:]:
            heappush(heaps[s2], (-gain_l[v2], counter, v2))
        if not admissible:
            # no move can keep or repair balance; stop the pass
            break

        # apply the move
        t = 1 - s
        part[v] = t
        part_l[v] = t
        locked_b[v] = 1
        row_s, row_t = sw[s], sw[1 - s]
        for c in crange:
            row_s[c] -= vcols[c][v]
            row_t[c] += vcols[c][v]
        cur_cut -= gv
        moves.append(v)

        # update neighbour gains — same two-tier scheme as _fm_pass_vec1
        lo = xadj_l[v]
        hi = xadj_l[v + 1]
        if hi - lo >= _HUB_DEGREE:
            nbrs = adjncy[lo:hi]
            delta = np.where(part[nbrs] == s, 2.0, -2.0) * adjwgt[lo:hi]
            for u, d_u in zip(nbrs.tolist(), delta.tolist()):
                ng = gain_l[u] + d_u
                gain_l[u] = ng
                if not seen_b[u]:
                    heappush(heaps[part_l[u]], (-ng, counter, u))
                    counter += 1
                    seen_b[u] = 1
        else:
            if big:
                nbr_l = adjncy[lo:hi].tolist()
                wuv_l = adjwgt[lo:hi].tolist()
            else:
                nbr_l = adjncy_l[lo:hi]
                wuv_l = adjwgt_l[lo:hi]
            for u, w_uv in zip(nbr_l, wuv_l):
                if part_l[u] == s:  # was internal for u, now external
                    ng = gain_l[u] + 2.0 * w_uv
                else:  # was external, now internal
                    ng = gain_l[u] - 2.0 * w_uv
                gain_l[u] = ng
                if not seen_b[u]:
                    heappush(heaps[part_l[u]], (-ng, counter, u))
                    counter += 1
                    seen_b[u] = 1

        viol_cur = viol_of(sw)
        key = (viol_cur > 1e-9, cur_cut, load_of(sw))
        if key < best_key:
            best_key = key
            best_prefix = len(moves)
            since_best = 0
        else:
            since_best += 1

    # roll back moves after the best prefix (maintaining the carried
    # mirror), and carry the best-prefix cut into the next pass
    for v in moves[best_prefix:]:
        t = 1 - part_l[v]
        part[v] = t
        part_l[v] = t
    carry["cut"] = best_key[1]
    return best_prefix > 0


def _gains_and_boundary_reference(g: PartGraph, part: np.ndarray):
    """Seed gain/boundary computation: rebuilds derived state every call.

    Kept for the reference kernel so its per-pass cost profile matches
    the seed exactly (the vector kernels' memoized graph state is part of
    what the bench measures).
    """
    W = sp.csr_matrix((g.adjwgt, g.adjncy, g.xadj), shape=(g.n, g.n))
    to1 = W @ (part == 1).astype(np.float64)
    degw = W @ np.ones(g.n)
    ed = np.where(part == 0, to1, degw - to1)
    gain = 2.0 * ed - degw
    return gain, ed > 0.0


def _edgecut_reference(g: PartGraph, part: np.ndarray) -> float:
    """Seed edge-cut: rebuilds the ``np.repeat`` source array every call."""
    src = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(g.xadj))
    cut = part[src] != part[g.adjncy]
    return float(g.adjwgt[cut].sum() / 2.0)


def _fm_pass_reference(
    g: PartGraph,
    part: np.ndarray,
    allow: np.ndarray,
    hill_limit: int,
    rng: np.random.Generator,
) -> bool:
    """Reference FM pass: the seed kernel, per-neighbour Python loops.

    Kept verbatim — including the seed's per-pass rebuilds of the
    adjacency matrix, weighted degrees and edge-source array — as the
    bit-identity oracle and timing baseline for the vectorised kernels
    (``benchmarks/bench_refine_kernels.py`` gates on agreement over the
    whole corpus). Stale-entry reinserts reuse the *current* counter
    without incrementing it — see :func:`_fm_pass` for why tie-break
    order is still deterministic.
    """
    gain, boundary = _gains_and_boundary_reference(g, part)
    sw = np.zeros((2, g.ncon))
    np.add.at(sw, part, g.vwgt)

    heaps: list[list] = [[], []]  # one heap per *source* side
    in_heap = np.zeros(g.n, dtype=bool)
    counter = 0

    def push(v: int) -> None:
        nonlocal counter
        heapq.heappush(heaps[part[v]], (-gain[v], counter, v))
        counter += 1
        in_heap[v] = True

    for v in np.flatnonzero(boundary):
        push(int(v))

    locked = np.zeros(g.n, dtype=bool)
    cut0 = _edgecut_reference(g, part)
    cur_cut = cut0
    viol0 = _violation(sw, allow)
    # prefer balanced states, then lower cut, then tighter balance — the
    # last term stops FM from parking exactly at the allowance edge when an
    # equally cheap, better-balanced prefix exists
    best_key = (viol0 > 1e-9, cut0, float((sw / allow).max()))
    moves: list[int] = []
    best_prefix = 0
    since_best = 0

    def pop_valid(side: int):
        """Pop the freshest max-gain vertex from *side*'s heap."""
        h = heaps[side]
        while h:
            negg, _, v = heapq.heappop(h)
            if locked[v] or part[v] != side:
                continue
            if -negg != gain[v]:  # stale entry; reinsert with current gain
                heapq.heappush(h, (-gain[v], counter, v))
                continue
            return v
        return None

    while since_best < hill_limit:
        # choose source side: a move v: s -> 1-s is admissible if it keeps
        # (or repairs) balance on every constraint
        cand = []
        for s in (0, 1):
            v = pop_valid(s)
            if v is None:
                continue
            w = g.vwgt[v]
            new_sw = sw.copy()
            new_sw[s] -= w
            new_sw[1 - s] += w
            admissible = is_balanced(new_sw, allow) or (
                _violation(new_sw, allow) < _violation(sw, allow) - 1e-12
            )
            cand.append((admissible, gain[v], s, v))
        if not cand:
            break
        # prefer admissible moves, then higher gain
        cand.sort(key=lambda t: (not t[0], -t[1]))
        admissible, gv, s, v = cand[0]
        # reinsert the unused candidate
        for _, _, s2, v2 in cand[1:]:
            heapq.heappush(heaps[s2], (-gain[v2], counter, v2))
        if not admissible:
            # no move can keep or repair balance; stop the pass
            break

        # apply the move
        part[v] = 1 - s
        locked[v] = True
        in_heap[v] = False
        sw[s] -= g.vwgt[v]
        sw[1 - s] += g.vwgt[v]
        cur_cut -= gv
        moves.append(v)

        # update neighbour gains: edge (u,v) flips internal<->external
        nbrs = g.neighbors(v)
        wgts = g.edge_weights(v)
        for u, w_uv in zip(nbrs.tolist(), wgts.tolist()):
            if locked[u]:
                continue
            if part[u] == s:  # was internal for u, now external
                gain[u] += 2.0 * w_uv
            else:  # was external, now internal
                gain[u] -= 2.0 * w_uv
            if not in_heap[u]:
                push(u)

        key = (_violation(sw, allow) > 1e-9, cur_cut, float((sw / allow).max()))
        if key < best_key:
            best_key = key
            best_prefix = len(moves)
            since_best = 0
        else:
            since_best += 1

    # roll back moves after the best prefix
    for v in moves[best_prefix:]:
        part[v] = 1 - part[v]
    return best_prefix > 0
