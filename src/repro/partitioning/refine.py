"""Fiduccia-Mattheyses boundary refinement for bisections.

Classic FM with the features the multilevel scheme needs:

* two gain heaps (one per side) with lazy invalidation;
* hill climbing — the pass keeps moving through negative-gain states and
  rolls back to the best prefix, which lets it escape local minima;
* multiconstraint balance — a move is admissible when every constraint
  stays inside its allowance, or when it strictly reduces the worst
  violation (so an unbalanced initial partition gets repaired first);
* boundary seeding — only boundary vertices enter the heaps; interior
  vertices are added lazily as their neighbours move.

The inner loop is plain Python over heap pops; its cost is proportional to
the boundary size, not n, which keeps refinement fast even on the finest
level of large graphs.
"""

from __future__ import annotations

import heapq

import numpy as np

from .partgraph import PartGraph

__all__ = ["fm_refine", "balance_allowance", "is_balanced"]


def balance_allowance(
    g: PartGraph, target_fracs: tuple[float, float], ub: float
) -> np.ndarray:
    """Maximum admissible side weight per (side, constraint).

    ``ub`` is the multiplicative imbalance tolerance (1.05 = 5%). The
    allowance is widened by the largest single vertex weight: a partition
    can never balance below the granularity of its heaviest vertex (on
    scale-free graphs a hub row can hold >1/p of all nonzeros — the paper's
    130x 2D-Block imbalance is exactly this effect).
    """
    total = g.total_weight()  # (ncon,)
    vmax = g.vwgt.max(axis=0) if g.n else np.zeros(g.ncon)
    out = np.empty((2, g.ncon))
    for side, frac in enumerate(target_fracs):
        out[side] = np.maximum(ub * frac * total, frac * total + vmax)
    return out


def is_balanced(side_weights: np.ndarray, allow: np.ndarray) -> bool:
    """True when every (side, constraint) weight is within its allowance."""
    return bool((side_weights <= allow + 1e-9).all())


def _violation(side_weights: np.ndarray, allow: np.ndarray) -> float:
    """Total overweight across sides/constraints (0 when balanced)."""
    return float(np.maximum(side_weights - allow, 0.0).sum())


def fm_refine(
    g: PartGraph,
    part: np.ndarray,
    target_fracs: tuple[float, float] = (0.5, 0.5),
    ub: float = 1.05,
    passes: int = 3,
    hill_limit: int = 64,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Refine a bisection in place-sematics-free fashion (returns a copy).

    Runs up to *passes* FM passes; stops early when a pass improves
    neither the cut nor the balance violation.
    """
    part = np.asarray(part, dtype=np.int64).copy()
    if g.n <= 1:
        return part
    allow = balance_allowance(g, target_fracs, ub)
    rng = rng or np.random.default_rng(0)

    for _ in range(passes):
        improved = _fm_pass(g, part, allow, hill_limit, rng)
        if not improved:
            break
    return part


def _gains_and_boundary(g: PartGraph, part: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised gain (= external - internal weight) and boundary mask."""
    W = g.adjacency_matrix()
    to1 = W @ (part == 1).astype(np.float64)
    degw = W @ np.ones(g.n)
    ed = np.where(part == 0, to1, degw - to1)
    gain = 2.0 * ed - degw
    return gain, ed > 0.0


def _fm_pass(
    g: PartGraph,
    part: np.ndarray,
    allow: np.ndarray,
    hill_limit: int,
    rng: np.random.Generator,
) -> bool:
    gain, boundary = _gains_and_boundary(g, part)
    sw = np.zeros((2, g.ncon))
    np.add.at(sw, part, g.vwgt)

    heaps: list[list] = [[], []]  # one heap per *source* side
    in_heap = np.zeros(g.n, dtype=bool)
    counter = 0

    def push(v: int) -> None:
        nonlocal counter
        heapq.heappush(heaps[part[v]], (-gain[v], counter, v))
        counter += 1
        in_heap[v] = True

    for v in np.flatnonzero(boundary):
        push(int(v))

    locked = np.zeros(g.n, dtype=bool)
    cut0 = g.edgecut(part)
    cur_cut = cut0
    viol0 = _violation(sw, allow)
    # prefer balanced states, then lower cut, then tighter balance — the
    # last term stops FM from parking exactly at the allowance edge when an
    # equally cheap, better-balanced prefix exists
    best_key = (viol0 > 1e-9, cut0, float((sw / allow).max()))
    moves: list[int] = []
    best_prefix = 0
    since_best = 0

    def pop_valid(side: int):
        """Pop the freshest max-gain vertex from *side*'s heap."""
        h = heaps[side]
        while h:
            negg, _, v = heapq.heappop(h)
            if locked[v] or part[v] != side:
                continue
            if -negg != gain[v]:  # stale entry; reinsert with current gain
                heapq.heappush(h, (-gain[v], counter, v))
                continue
            return v
        return None

    while since_best < hill_limit:
        # choose source side: a move v: s -> 1-s is admissible if it keeps
        # (or repairs) balance on every constraint
        cand = []
        for s in (0, 1):
            v = pop_valid(s)
            if v is None:
                continue
            w = g.vwgt[v]
            new_sw = sw.copy()
            new_sw[s] -= w
            new_sw[1 - s] += w
            admissible = is_balanced(new_sw, allow) or (
                _violation(new_sw, allow) < _violation(sw, allow) - 1e-12
            )
            cand.append((admissible, gain[v], s, v))
        if not cand:
            break
        # prefer admissible moves, then higher gain
        cand.sort(key=lambda t: (not t[0], -t[1]))
        admissible, gv, s, v = cand[0]
        # reinsert the unused candidate
        for _, _, s2, v2 in cand[1:]:
            heapq.heappush(heaps[s2], (-gain[v2], counter, v2))
        if not admissible:
            # no move can keep or repair balance; stop the pass
            break

        # apply the move
        part[v] = 1 - s
        locked[v] = True
        in_heap[v] = False
        sw[s] -= g.vwgt[v]
        sw[1 - s] += g.vwgt[v]
        cur_cut -= gv
        moves.append(v)

        # update neighbour gains: edge (u,v) flips internal<->external
        nbrs = g.neighbors(v)
        wgts = g.edge_weights(v)
        for u, w_uv in zip(nbrs.tolist(), wgts.tolist()):
            if locked[u]:
                continue
            if part[u] == s:  # was internal for u, now external
                gain[u] += 2.0 * w_uv
            else:  # was external, now internal
                gain[u] -= 2.0 * w_uv
            if not in_heap[u]:
                push(u)

        key = (_violation(sw, allow) > 1e-9, cur_cut, float((sw / allow).max()))
        if key < best_key:
            best_key = key
            best_prefix = len(moves)
            since_best = 0
        else:
            since_best += 1

    # roll back moves after the best prefix
    for v in moves[best_prefix:]:
        part[v] = 1 - part[v]
    return best_prefix > 0
