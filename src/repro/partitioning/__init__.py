"""From-scratch multilevel graph and hypergraph partitioners.

This subpackage plays the role ParMETIS 4.0.2 and Zoltan's parallel
hypergraph partitioner (PHG) play in the paper: given a sparse matrix, it
produces the row/column part vector ``rpart`` that Algorithm 1 consumes.

Both partitioners follow the standard multilevel scheme the cited tools
use:

coarsening
    heavy-edge matching (graphs) / heavy-overlap matching (hypergraphs),
    implemented as a vectorised handshake matching;
initial partitioning
    greedy graph growing, spectral (Fiedler) bisection and random starts,
    best-of-k after refinement;
refinement
    Fiduccia-Mattheyses boundary refinement with hill-climbing and
    multiconstraint balance support;
k-way
    recursive bisection with hierarchical part numbering, so partitions
    for any power-of-two part count nest inside the finest one.

Front door: :func:`repro.partitioning.partition_matrix`.
"""

from .partgraph import PartGraph
from .hypergraph import Hypergraph
from .bisect import multilevel_bisect
from .kway import recursive_bisection, partition_quality, derive_nested_partition
from .hkway import hypergraph_recursive_bisection
from .api import partition_matrix, PartitionResult

__all__ = [
    "PartGraph",
    "Hypergraph",
    "multilevel_bisect",
    "recursive_bisection",
    "hypergraph_recursive_bisection",
    "partition_quality",
    "derive_nested_partition",
    "partition_matrix",
    "PartitionResult",
]
