"""Hypergraph structure (column-net model) and cut metrics.

Hypergraph partitioning models SpMV communication volume *exactly* (the
paper, section 2.2): in the column-net model each matrix column j becomes a
net containing the rows that need x_j — plus j itself, since with aligned
vector distributions the owner of x_j is the owner of row j. A net spanning
lambda parts forces lambda - 1 sent copies of x_j, so the
connectivity-minus-one metric *is* the expand-phase volume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..graphs.csr import as_csr, nonzeros_per_row

__all__ = ["Hypergraph"]


@dataclass
class Hypergraph:
    """Binary incidence hypergraph with weighted vertices and nets.

    Attributes
    ----------
    H:
        ``(nnets, n)`` binary CSR incidence matrix; row e lists the pins of
        net e.
    vwgt:
        Vertex weights, shape ``(n, ncon)``.
    netwgt:
        Net weights, shape ``(nnets,)``.
    """

    H: sp.csr_matrix
    vwgt: np.ndarray
    netwgt: np.ndarray

    def __post_init__(self) -> None:
        self.H = as_csr(self.H)
        self.H.data[:] = 1.0
        self.vwgt = np.atleast_2d(np.asarray(self.vwgt, dtype=np.float64))
        if self.vwgt.shape[0] != self.n and self.vwgt.shape[1] == self.n:
            self.vwgt = self.vwgt.T.copy()
        self.netwgt = np.asarray(self.netwgt, dtype=np.float64)
        if self.vwgt.shape[0] != self.n:
            raise ValueError(f"vwgt rows {self.vwgt.shape[0]} != n {self.n}")
        if len(self.netwgt) != self.nnets:
            raise ValueError(f"netwgt length {len(self.netwgt)} != nnets {self.nnets}")
        self._HT: sp.csr_matrix | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_matrix_column_net(
        cls, A, vertex_weights: str | tuple[str, ...] = "nnz"
    ) -> "Hypergraph":
        """Column-net hypergraph of square matrix *A*.

        Net j = { i : a_ij != 0 } ∪ { j }. Vertex weights as in
        :meth:`PartGraph.from_matrix` ("unit" and/or "nnz").
        """
        A = as_csr(A)
        if A.shape[0] != A.shape[1]:
            raise ValueError(f"column-net model needs a square matrix, got {A.shape}")
        n = A.shape[0]
        # incidence: net (row of H) = matrix column -> H = A^T pattern + I
        H = as_csr((A.T + sp.identity(n, format="csr")))
        H.data[:] = 1.0
        names = (vertex_weights,) if isinstance(vertex_weights, str) else tuple(vertex_weights)
        cols = []
        for name in names:
            if name == "unit":
                cols.append(np.ones(n))
            elif name == "nnz":
                cols.append(np.maximum(nonzeros_per_row(A), 1).astype(np.float64))
            else:
                raise ValueError(f"unknown vertex weight {name!r}")
        return cls(H, np.column_stack(cols), np.ones(H.shape[0]))

    # -- properties ----------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.H.shape[1]

    @property
    def nnets(self) -> int:
        """Number of nets."""
        return self.H.shape[0]

    @property
    def ncon(self) -> int:
        """Number of balance constraints."""
        return self.vwgt.shape[1]

    @property
    def npins(self) -> int:
        """Total pins (sum of net sizes)."""
        return self.H.nnz

    def transpose_incidence(self) -> sp.csr_matrix:
        """``(n, nnets)`` CSR: nets incident to each vertex (cached)."""
        if self._HT is None:
            self._HT = as_csr(self.H.T)
        return self._HT

    def net_sizes(self) -> np.ndarray:
        """Pin count per net."""
        return np.diff(self.H.indptr).astype(np.int64)

    def pins(self, e: int) -> np.ndarray:
        """Pins of net *e* (view)."""
        return self.H.indices[self.H.indptr[e] : self.H.indptr[e + 1]]

    def nets_of(self, v: int) -> np.ndarray:
        """Nets incident to vertex *v* (view into the cached transpose)."""
        HT = self.transpose_incidence()
        return HT.indices[HT.indptr[v] : HT.indptr[v + 1]]

    def total_weight(self) -> np.ndarray:
        """Total vertex weight per constraint."""
        return self.vwgt.sum(axis=0)

    # -- metrics -------------------------------------------------------------

    def net_part_counts(self, part: np.ndarray, nparts: int) -> sp.csr_matrix:
        """``(nnets, nparts)`` sparse pin counts of each net in each part."""
        part = np.asarray(part, dtype=np.int64)
        P = sp.csr_matrix(
            (np.ones(self.n), (np.arange(self.n), part)), shape=(self.n, nparts)
        )
        return as_csr(self.H @ P)

    def connectivity(self, part: np.ndarray, nparts: int) -> np.ndarray:
        """lambda_e: number of parts each net touches."""
        M = self.net_part_counts(part, nparts)
        return np.diff(M.indptr).astype(np.int64)

    def cut_connectivity_minus_one(self, part: np.ndarray, nparts: int) -> float:
        """Sum of ``w_e * (lambda_e - 1)`` — the SpMV expand volume."""
        lam = self.connectivity(part, nparts)
        return float((self.netwgt * np.maximum(lam - 1, 0)).sum())

    def cut_nets(self, part: np.ndarray, nparts: int) -> int:
        """Number of nets spanning more than one part (hyperedge cut)."""
        return int((self.connectivity(part, nparts) > 1).sum())

    def part_weights(self, part: np.ndarray, nparts: int) -> np.ndarray:
        """Per-part vertex weights, shape ``(nparts, ncon)``."""
        out = np.zeros((nparts, self.ncon))
        np.add.at(out, np.asarray(part, dtype=np.int64), self.vwgt)
        return out

    def induced(self, vertices: np.ndarray) -> "Hypergraph":
        """Sub-hypergraph on *vertices*: nets restricted, <2-pin nets dropped.

        This is the standard recursive-bisection restriction (PaToH): a net
        already cut at an outer level keeps only its local pins, and nets
        that can no longer be cut locally are removed.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        Hs = as_csr(self.H[:, vertices])
        keep = np.diff(Hs.indptr) >= 2
        return Hypergraph(as_csr(Hs[keep]), self.vwgt[vertices], self.netwgt[keep])
