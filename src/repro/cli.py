"""Command-line interface: ``python -m repro <command>``.

Commands mirror the production workflow the paper describes — partition
once on a workstation, reuse for many analyses:

``corpus``
    List the built-in proxy matrices and their Table-1 statistics.
``stats MATRIX``
    Structural statistics of a matrix (corpus name or MatrixMarket path).
``partition MATRIX -k K [--method gp|hp|gp-mc] [-o OUT.npy]``
    Run the partitioner; prints cut/imbalance, optionally saves rpart.
``spmv MATRIX -p P [--methods ...]``
    Compare data layouts for SpMV on the simulated machine (a Table-2 row).
``eigen MATRIX -p P [--methods ...] [-k K]``
    Compare layouts for the normalized-Laplacian eigensolve (a Table-4 row).
``regress {generate,check,diff}``
    Golden-invariant regression harness: snapshot the plan-level metrics
    of the layout x matrix x p grid, or check the working tree against
    the snapshots in ``tests/golden/`` (see :mod:`repro.regress`).
``faults {run,campaign}``
    Deterministic fault-injection campaigns (fail-stop, silent data
    corruption, stragglers) with ABFT detection and costed recovery —
    ``run`` replays one seeded plan against one layout and prints the
    event trace; ``campaign`` sweeps fail-stop rates across layouts
    (see :mod:`repro.runtime.faults`).
``serve --socket PATH [--http PORT]``
    Long-lived matvec server: compiled engines stay resident behind an
    LRU, concurrent matvecs coalesce into batched ``spmm`` calls, cold
    partitions run on a resilient worker pool (see :mod:`repro.serve`).
``serve warmup --socket PATH --preload MATRIX...``
    Prefetch engines into a running server through the residency tiers
    (memory → artifact store → build-and-persist) and report where each
    came from.
``cache {list,evict,clear}``
    Inspect or drop compiled-engine artifacts in the persistent store
    (see :mod:`repro.runtime.store`).
``serve chaos [--seed S]``
    Self-contained chaos demo: boots a fault-injectable server plus a
    seeded :class:`~repro.serve.chaos.ChaosProxy` (torn frames,
    corruption, resets, delays, drops) and soaks it with retrying
    clients, asserting every acknowledged answer is bit-identical to a
    local reference engine (see DESIGN.md §13).
``loadgen MATRIX --socket PATH [--deadline S] [--chaos]``
    Closed-loop load generator against a running server; reports
    throughput, latency percentiles, bitwise divergences and deadline
    expiries. ``--chaos`` interposes a seeded chaos proxy and drives
    the load through retrying clients instead.

Every subcommand that uses randomness (partitioning, fault schedules,
solver start vectors) takes the same ``--seed`` flag; one seed makes the
whole pipeline — plans, injections, detection verdicts, modeled seconds —
bit-reproducible.

Heavy subcommands additionally share a ``--jobs N`` flag that fans
independent work (RB subtrees, sweep cells, campaign layouts) across a
process pool (:mod:`repro.parallel`). Output is bit-identical to a serial
run at any job count — parallelism is an execution detail, never a result
parameter.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main"]


def _load(matrix: str):
    from .generators.corpus import CORPUS, load_corpus_matrix
    from .io import read_matrix_market

    if matrix in CORPUS:
        return load_corpus_matrix(matrix)
    path = Path(matrix)
    if not path.exists():
        raise SystemExit(
            f"error: {matrix!r} is neither a corpus name nor a file "
            f"(corpus: {', '.join(CORPUS)})"
        )
    return read_matrix_market(path)


def _cmd_corpus(_args) -> int:
    from .bench.reporting import format_table
    from .generators.corpus import CORPUS, load_corpus_matrix
    from .graphs import graph_stats

    rows = []
    for name, spec in CORPUS.items():
        s = graph_stats(load_corpus_matrix(name), name)
        rows.append((name, spec.partitioner, s.n_rows, s.n_nonzeros,
                     s.max_nnz_per_row, spec.description))
    print(format_table(["name", "part", "rows", "nnz", "max/row", "description"], rows))
    return 0


def _cmd_stats(args) -> int:
    from .graphs import graph_stats

    A = _load(args.matrix)
    s = graph_stats(A, args.matrix)
    print(f"rows           {s.n_rows}")
    print(f"nonzeros       {s.n_nonzeros}")
    print(f"max nnz/row    {s.max_nnz_per_row}")
    print(f"mean nnz/row   {s.mean_nnz_per_row:.2f}")
    print(f"power-law MLE  {s.powerlaw_gamma:.2f}")
    print(f"skew (max/avg) {s.skew:.1f}")
    return 0


def _cmd_partition(args) -> int:
    from . import perf
    from .partitioning import partition_matrix

    A = _load(args.matrix)
    kwargs = {}
    if args.coarsen_kernel is not None:
        kwargs["coarsen_kernel"] = args.coarsen_kernel
    if args.profile:
        with perf.profile() as prof:
            res = partition_matrix(
                A, args.nparts, method=args.method, seed=args.seed, jobs=args.jobs,
                **kwargs,
            )
    else:
        prof = None
        res = partition_matrix(
            A, args.nparts, method=args.method, seed=args.seed, jobs=args.jobs,
            **kwargs,
        )
    print(f"method     {res.method}")
    print(f"parts      {res.nparts}")
    print(f"cut        {res.edgecut:.0f}")
    print(f"imbalance  {', '.join(f'{x:.3f}' for x in res.imbalance)}")
    if prof is not None:
        print()
        print(prof.report())
    if args.output:
        np.save(args.output, res.part)
        print(f"saved rpart to {args.output}")
    return 0


def _resolve_engine_store(value) -> Path | None:
    """``--engine-store`` semantics: absent -> None, bare flag -> default
    store directory, explicit value -> that directory."""
    if value is None:
        return None
    if value == "":
        from .runtime.store import default_store_dir

        return default_store_dir()
    return Path(value)


def _cmd_spmv(args) -> int:
    from .bench.harness import _spmv_cell_task, default_cache_dir
    from .bench.reporting import format_table
    from .parallel import parallel_map

    A = _load(args.matrix)
    cache_dir = default_cache_dir()
    store_dir = _resolve_engine_store(args.engine_store)
    tasks = [
        (A, args.matrix, method, args.procs, args.seed, cache_dir, store_dir)
        for method in args.methods
    ]
    rows = []
    for rec in parallel_map(_spmv_cell_task, tasks, jobs=args.jobs):
        rows.append((rec.method, f"{rec.stats.nnz_imbalance:.2f}",
                     rec.stats.max_messages, rec.stats.total_comm_volume,
                     f"{rec.time100:.4f}"))
    print(format_table(["layout", "imbal(nz)", "max msgs", "total CV", "t(100 SpMV)"], rows))
    return 0


def _cmd_eigen(args) -> int:
    from .bench.reporting import format_table
    from .bench.harness import layout_for
    from .graphs import normalized_laplacian
    from .runtime import CAB, DistSparseMatrix
    from .solvers import modeled_solve_seconds, solve_profile

    A = _load(args.matrix)
    Lhat = normalized_laplacian(A)
    prof = solve_profile(Lhat, k=args.k, tol=args.tol, seed=args.seed)
    rows = []
    for method in args.methods:
        layout = layout_for(A, method, args.procs, seed=args.seed)
        dist = DistSparseMatrix(Lhat, layout, CAB)
        total, spmv = modeled_solve_seconds(prof, dist)
        rows.append((layout.name, prof.matvecs, f"{spmv:.4f}", f"{total:.4f}",
                     f"{dist.vector_map.imbalance():.2f}"))
    print(format_table(["layout", "matvecs", "SpMV t", "solve t", "vec imbal"], rows))
    if not prof.converged:
        print("warning: eigensolve did not converge at the requested tolerance")
    return 0


def _regress_spec(args):
    from .generators.corpus import CORPUS
    from .regress import DEFAULT_SPEC, GridSpec

    if args.matrices is None and args.procs is None and args.seed == 0:
        return DEFAULT_SPEC
    matrices = tuple(args.matrices) if args.matrices else DEFAULT_SPEC.matrices
    for name in matrices:
        if name not in CORPUS:
            raise SystemExit(
                f"error: {name!r} is not a corpus matrix (corpus: {', '.join(CORPUS)})"
            )
    procs = tuple(args.procs) if args.procs else DEFAULT_SPEC.procs
    return GridSpec(matrices=matrices, procs=procs, seed=args.seed)


def _cmd_regress(args) -> int:
    from .regress import (
        check_goldens,
        diff_golden_dirs,
        format_mismatches,
        generate_goldens,
    )

    if args.action == "diff":
        mismatches = diff_golden_dirs(args.dir_a, args.dir_b)
        print(format_mismatches(mismatches))
        return 1 if mismatches else 0

    spec = _regress_spec(args)
    golden_dir = Path(args.golden_dir)
    cache_dir = Path(args.cache_dir) if args.cache_dir else None
    engine_store = _resolve_engine_store(args.engine_store)
    if args.action == "generate":
        paths = generate_goldens(
            spec, golden_dir, cache_dir=cache_dir, progress=print, jobs=args.jobs,
            engine_store=engine_store,
        )
        print(f"wrote {len(paths)} golden file(s) under {golden_dir}")
        return 0

    # distinguish "no snapshots at all" (exit 3, before the expensive
    # recompute) from "snapshots disagree" (exit 1)
    from .regress import golden_path

    if not any(golden_path(golden_dir, m).exists() for m in spec.matrices):
        print(
            f"regress check: no golden snapshots under {golden_dir} — "
            f"run `python -m repro regress generate` first"
        )
        return 3

    mismatches, ncells = check_goldens(
        spec, golden_dir, cache_dir=cache_dir, rtol=args.rtol, progress=print,
        jobs=args.jobs, engine_store=engine_store,
    )
    if not mismatches:
        print(
            f"regress check OK: {ncells} cells across {len(spec.matrices)} "
            f"matrices match {golden_dir}"
        )
        return 0
    report = format_mismatches(mismatches)
    print(f"regress check FAILED: {len(mismatches)} mismatch(es) in {ncells} cells")
    print(report)
    if args.report:
        Path(args.report).write_text(report + "\n")
        print(f"diff report written to {args.report}")
    return 1


def _cmd_faults(args) -> int:
    from .bench.harness import layout_for
    from .bench.reporting import format_table
    from .runtime import CAB, DistSparseMatrix, FaultConfig, FaultPlan
    from .runtime.faults import CAMPAIGN_COLUMNS, fault_campaign, run_with_faults

    A = _load(args.matrix)
    config = FaultConfig(
        abft=not args.no_abft,
        checkpoint_interval=args.checkpoint_interval,
        recovery_strategy=args.strategy,
    )

    def plan_for(failstop_rate: float) -> FaultPlan:
        return FaultPlan.from_rates(
            args.procs,
            args.iterations,
            seed=args.seed,
            failstop_rate=failstop_rate,
            corruption_rate=args.corruption_rate,
            straggler_rate=args.straggler_rate,
        )

    if args.action == "run":
        plan = plan_for(args.failstop_rate)
        layout = layout_for(A, args.method, args.procs, seed=args.seed)
        dist = DistSparseMatrix(A, layout, CAB)
        res = run_with_faults(dist, plan, config=config, layout_name=layout.name)
        print(
            f"{layout.name} p={args.procs}: {plan.nevents} scheduled fault(s), "
            f"seed {args.seed}"
        )
        if res.ledger.events:
            print(format_table(
                ["iter", "kind", "rank", "phase", "detected", "seconds", "note"],
                [e.row() for e in res.ledger.events],
            ))
        for phase, t in sorted(res.ledger.breakdown().items()):
            print(f"  {phase:<14} {t:.4e} s")
        print(
            f"clean {res.clean_seconds:.4e} s -> faulty {res.total_seconds:.4e} s "
            f"({100.0 * res.overhead:.1f}% resilience overhead)"
        )
        return 0

    layouts = [layout_for(A, mth, args.procs, seed=args.seed) for mth in args.methods]
    for rate in args.failstop_rates:
        plan = plan_for(rate)
        cells = fault_campaign(A, layouts, plan, config=config, jobs=args.jobs)
        print(
            f"-- fail-stop rate {rate:g}/iter over {args.iterations} iterations "
            f"({plan.nevents} event(s), seed {args.seed})"
        )
        print(format_table(CAMPAIGN_COLUMNS, [c.row() for c in cells]))
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .serve import MatvecServer, ServeConfig

    if args.mode == "chaos":
        return _cmd_serve_chaos(args)
    if args.mode == "warmup":
        return _cmd_serve_warmup(args)
    if not args.socket:
        print("error: --socket is required (except in 'serve chaos' mode)",
              file=sys.stderr)
        return 2
    config = ServeConfig(
        socket_path=args.socket,
        http_port=args.http,
        max_batch=args.max_batch,
        batch_deadline_ms=args.deadline_ms,
        max_engines=args.max_engines,
        max_resident_bytes=(
            int(args.max_resident_mb * 1024 * 1024) if args.max_resident_mb else None
        ),
        partition_timeout_s=args.partition_timeout,
        partition_retries=args.partition_retries,
        pool_workers=args.jobs if args.jobs else 1,
        cache_dir=args.cache_dir,
        allow_fault_injection=args.allow_fault_injection,
        preload=tuple(args.preload or ()),
        default_seed=args.seed,
        engine_store_dir=args.engine_store_dir,
        use_engine_store=not args.no_engine_store,
        engine_threads=args.threads,
    )
    server = MatvecServer(config)

    def on_started(srv: MatvecServer) -> None:
        print(f"serving on {config.socket_path}")
        if srv.http_port is not None:
            print(f"http on 127.0.0.1:{srv.http_port}")
        for ref in config.preload:
            print(f"preloaded {ref}")

    try:
        asyncio.run(server.serve(on_started=on_started))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_serve_warmup(args) -> int:
    """Prefetch engines into a *running* server via the ``warmup`` op.

    A deploy script points this at the serve socket with the matrices
    traffic is about to hit; the server walks each through its tiers
    (memory -> artifact store -> build-and-persist) and reports where
    every engine came from, so the script can verify first requests will
    be served from mmap loads, not cold builds.
    """
    from .serve import ServeClient

    if not args.socket:
        print("error: serve warmup requires --socket", file=sys.stderr)
        return 2
    if not args.preload:
        print("error: serve warmup requires --preload MATRIX [MATRIX ...]",
              file=sys.stderr)
        return 2
    msg = {
        "op": "warmup",
        "matrices": list(args.preload),
        "procs": args.warm_procs,
        "seed": args.seed,
    }
    if args.warm_method:
        msg["method"] = args.warm_method
    with ServeClient(args.socket, timeout=args.partition_timeout) as c:
        resp, _ = c.request(msg)
    if not resp.get("ok"):
        print(f"warmup failed: {resp.get('error')}", file=sys.stderr)
        return 1
    for rec in resp.get("warmed", ()):
        print(f"{rec['matrix']:<20} {rec['engine_key']:<40} "
              f"{rec['engine_source']:<7} {rec['seconds']:.3f}s")
    tiers = resp.get("tiers", {})
    print(f"tiers: {tiers}")
    return 0


def _cmd_cache(args) -> int:
    """Inspect/evict compiled-engine artifacts (``repro cache ...``)."""
    from .bench.reporting import format_table
    from .runtime.store import EngineStore

    store = EngineStore(args.store) if args.store else EngineStore()
    if args.action == "list":
        entries = store.entries()
        if not entries:
            print(f"engine store {store.root}: empty")
            return 0
        rows = [
            (e.get("key") or e["file"], e.get("matrix") or "-",
             e.get("n") or "-", e["status"], e["bytes"])
            for e in entries
        ]
        print(format_table(["key", "matrix", "n", "status", "bytes"], rows))
        total = sum(e["bytes"] for e in entries)
        print(f"{len(entries)} artifact(s), {total} bytes under {store.root}")
        return 0
    if args.action == "evict":
        missing = 0
        for key in args.keys:
            if store.evict(key):
                print(f"evicted {key}")
            else:
                print(f"no artifact for {key}", file=sys.stderr)
                missing += 1
        return 1 if missing else 0
    # clear
    removed = store.clear()
    print(f"removed {removed} artifact(s) from {store.root}")
    return 0


def _default_chaos_schedule(seed: int):
    """The stock schedule CLI chaos runs use: every wire class active."""
    from .serve import ChaosSchedule

    return ChaosSchedule(
        seed=seed, p_torn=0.03, p_corrupt=0.05, p_reset=0.03,
        p_delay=0.08, p_drop=0.03, delay_ms=3.0,
    )


def _print_chaos_result(result) -> int:
    """Print a chaos soak summary; nonzero on a violated invariant."""
    d = result.as_dict()
    width = max(len(k) for k in d)
    for k, v in d.items():
        print(f"{k:<{width}}  {v}")
    if result.divergences or result.lost_acked:
        print("FAILED: a fault was returned to a client as wrong data")
        return 1
    if result.failed:
        print("FAILED: request(s) exhausted their retry budget")
        return 1
    print("OK: every acknowledged answer bit-identical under chaos")
    return 0


def _run_chaos_soak_against(
    server_socket: str,
    matrix: str,
    *,
    chaos_seed: int,
    procs: int,
    seed: int,
    method: str = "2d-gp",
    concurrency: int = 4,
    requests_per_client: int = 25,
) -> int:
    """Interpose a chaos proxy on *server_socket* and soak through it."""
    import os

    from .serve import start_chaos_proxy
    from .serve.loadgen import run_chaos_soak

    listen = server_socket + ".chaos"
    proxy = start_chaos_proxy(
        server_socket, listen, _default_chaos_schedule(chaos_seed)
    )
    try:
        result = run_chaos_soak(
            listen,
            matrix,
            method=method,
            procs=procs,
            seed=seed,
            warm_socket_path=server_socket,
            chaos_seed=chaos_seed,
            concurrency=concurrency,
            requests_per_client=requests_per_client,
            attempt_deadline_s=2.0,
            inject_kill=True,
            p_slow=0.05,
        )
        result.injected_wire = proxy.proxy.executed_counts()
    finally:
        proxy.stop()
        if os.path.exists(listen):  # pragma: no cover - defensive cleanup
            os.unlink(listen)
    return _print_chaos_result(result)


def _cmd_serve_chaos(args) -> int:
    """Self-contained chaos demo: server + proxy + seeded soak, one command.

    Boots a fault-injectable server on a private socket (a generated
    scale-10 RMAT graph unless ``--preload`` names a matrix), interposes
    the chaos proxy, runs the soak and reports the invariant verdict.
    """
    import os
    import tempfile

    from .serve import ServeConfig, start_in_thread

    tmp = tempfile.mkdtemp(prefix="repro-chaos-", dir="/tmp")
    matrix = args.preload[0] if args.preload else None
    if matrix is None:
        from .generators import rmat
        from .io import write_matrix_market

        A = rmat(scale=10, edge_factor=8, seed=args.seed)
        matrix = os.path.join(tmp, "rmat10.mtx")
        write_matrix_market(matrix, A)
        print(f"generated {matrix} (rmat scale 10, seed {args.seed})")
    config = ServeConfig(
        socket_path=args.socket or os.path.join(tmp, "serve.sock"),
        max_batch=args.max_batch,
        batch_deadline_ms=args.deadline_ms,
        cache_dir=args.cache_dir or os.path.join(tmp, "cache"),
        allow_fault_injection=True,
    )
    handle = start_in_thread(config)
    print(f"chaos target on {config.socket_path} (seed {args.seed})")
    try:
        return _run_chaos_soak_against(
            config.socket_path,
            matrix,
            chaos_seed=args.seed,
            procs=4,
            seed=0,
        )
    finally:
        handle.stop()


def _cmd_loadgen(args) -> int:
    from .serve import run_loadgen

    if args.chaos:
        return _run_chaos_soak_against(
            args.socket,
            args.matrix,
            chaos_seed=args.chaos_seed,
            procs=args.procs,
            seed=args.seed,
            method=args.method,
            concurrency=args.concurrency,
            requests_per_client=args.requests,
        )
    result = run_loadgen(
        args.socket,
        args.matrix,
        method=args.method,
        procs=args.procs,
        seed=args.seed,
        concurrency=args.concurrency,
        requests_per_client=args.requests,
        check=not args.no_check,
        encoding=args.encoding,
        deadline=args.deadline,
    )
    d = result.as_dict()
    width = max(len(k) for k in d if k != "batch_sizes")
    for k, v in d.items():
        if k != "batch_sizes":
            print(f"{k:<{width}}  {v}")
    if result.batch_sizes:
        sizes = ", ".join(f"{k}x{v}" for k, v in sorted(result.batch_sizes.items()))
        print(f"{'batch_sizes':<{width}}  {sizes}")
    if result.errors or result.divergences:
        print("FAILED: errors or bitwise divergences observed")
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="2D Cartesian graph partitioning toolkit (SC13 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # one --seed, shared verbatim by every randomness-using subcommand:
    # a single value reproduces the whole pipeline bit-for-bit
    seeded = argparse.ArgumentParser(add_help=False)
    seeded.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed for partitioning, start vectors and fault schedules "
             "(default: 0; one seed makes the run bit-reproducible)",
    )

    # one --jobs, shared by every heavy subcommand: results are
    # bit-identical at any value, so it is safe to tune per machine
    jobbed = argparse.ArgumentParser(add_help=False)
    jobbed.add_argument(
        "--jobs", type=int, default=None,
        help="process-pool workers for independent work (default: serial; "
             "0 = all cores; output is identical at any job count)",
    )

    # one --threads, shared by every engine-applying subcommand: the
    # threaded kernel is bit-identical to serial, so it too is safe to
    # tune per machine (process pools pin their workers back to 1)
    threaded = argparse.ArgumentParser(add_help=False)
    threaded.add_argument(
        "--threads", type=int, default=None,
        help="engine apply threads per multiply (default: $REPRO_THREADS "
             "or serial; 0 = all cores; output is identical at any count)",
    )

    sub.add_parser("corpus", help="list the proxy corpus").set_defaults(fn=_cmd_corpus)

    p = sub.add_parser("stats", help="matrix structural statistics")
    p.add_argument("matrix")
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser("partition", help="run the graph/hypergraph partitioner",
                       parents=[seeded, jobbed])
    p.add_argument("matrix")
    p.add_argument("-k", "--nparts", type=int, required=True)
    p.add_argument("--method", choices=("gp", "hp", "gp-mc"), default="gp")
    p.add_argument("-o", "--output", help="save the part vector as .npy")
    p.add_argument("--profile", action="store_true",
                   help="print a phase-time breakdown (coarsen/initial/refine/project, "
                        "with per-level match/contract under coarsen)")
    p.add_argument("--coarsen-kernel", choices=("vector", "reference"), default=None,
                   help="coarsening kernel for matching/contraction (default: vector; "
                        "both produce bit-identical partitions)")
    p.set_defaults(fn=_cmd_partition)

    default_methods = ["1d-block", "1d-random", "1d-gp", "2d-block", "2d-random", "2d-gp"]
    p = sub.add_parser("spmv", help="compare SpMV data layouts",
                       parents=[seeded, jobbed, threaded])
    p.add_argument("matrix")
    p.add_argument("-p", "--procs", type=int, default=64)
    p.add_argument("--methods", nargs="+", default=default_methods)
    p.add_argument("--engine-store", nargs="?", const="", default=None,
                   metavar="DIR",
                   help="reuse compiled engines from the artifact store "
                        "(bare flag: $REPRO_ENGINE_STORE_DIR or the default "
                        "store; with DIR: that directory)")
    p.set_defaults(fn=_cmd_spmv)

    p = sub.add_parser("eigen", help="compare layouts for the eigensolver",
                       parents=[seeded, threaded])
    p.add_argument("matrix")
    p.add_argument("-p", "--procs", type=int, default=64)
    p.add_argument("-k", type=int, default=10)
    p.add_argument("--tol", type=float, default=1e-3)
    p.add_argument("--methods", nargs="+",
                   default=["1d-block", "2d-block", "2d-gp", "2d-gp-mc"])
    p.set_defaults(fn=_cmd_eigen)

    p = sub.add_parser(
        "regress", help="golden-invariant regression harness (see tests/golden/)"
    )
    rsub = p.add_subparsers(dest="action", required=True)
    common = argparse.ArgumentParser(add_help=False, parents=[seeded, jobbed])
    common.add_argument("--golden-dir", default="tests/golden",
                        help="golden tree location (default: tests/golden)")
    common.add_argument("--matrices", nargs="+",
                        help="corpus subset (default: all ten)")
    common.add_argument("--procs", nargs="+", type=int,
                        help="process counts (default: 4 16 64)")
    common.add_argument("--cache-dir",
                        help="partition cache (default: $REPRO_CACHE_DIR)")
    common.add_argument("--engine-store", nargs="?", const="", default=None,
                        metavar="DIR",
                        help="compiled-engine artifact store: warm cells skip "
                             "their builds (bare flag: the default store "
                             "directory; with DIR: that directory)")
    g = rsub.add_parser("generate", parents=[common],
                        help="recompute the grid and (over)write goldens")
    g.set_defaults(fn=_cmd_regress)
    c = rsub.add_parser("check", parents=[common],
                        help="recompute the grid and compare against goldens")
    c.add_argument("--rtol", type=float, default=1e-9,
                   help="relative tolerance for modeled-seconds metrics")
    c.add_argument("--report", help="also write the mismatch table to this file")
    c.set_defaults(fn=_cmd_regress)
    d = rsub.add_parser("diff", help="compare two golden trees file-by-file")
    d.add_argument("dir_a")
    d.add_argument("dir_b")
    d.set_defaults(fn=_cmd_regress)

    p = sub.add_parser(
        "faults", help="deterministic fault-injection campaigns (see DESIGN.md §8)"
    )
    fsub = p.add_subparsers(dest="action", required=True)
    fcommon = argparse.ArgumentParser(add_help=False, parents=[seeded])
    fcommon.add_argument("matrix")
    fcommon.add_argument("-p", "--procs", type=int, default=64)
    fcommon.add_argument("--iterations", type=int, default=100,
                         help="SpMV iterations to simulate (default: 100)")
    fcommon.add_argument("--corruption-rate", type=float, default=0.0,
                         help="per-iteration silent-corruption probability")
    fcommon.add_argument("--straggler-rate", type=float, default=0.0,
                         help="per-iteration straggler-onset probability")
    fcommon.add_argument("--checkpoint-interval", type=int, default=10,
                         help="iterations between checkpoints (0 disables)")
    fcommon.add_argument("--strategy", choices=("spare", "redistribute"),
                         default="spare", help="fail-stop recovery strategy")
    fcommon.add_argument("--no-abft", action="store_true",
                         help="disable ABFT checksum detection")
    f = fsub.add_parser("run", parents=[fcommon],
                        help="one seeded plan against one layout, with event trace")
    f.add_argument("--method", default="2d-gp")
    f.add_argument("--failstop-rate", type=float, default=0.02,
                   help="per-iteration fail-stop probability (default: 0.02)")
    f.set_defaults(fn=_cmd_faults)
    f = fsub.add_parser("campaign", parents=[fcommon, jobbed],
                        help="sweep fail-stop rates across layouts")
    f.add_argument("--methods", nargs="+", default=default_methods)
    f.add_argument("--failstop-rates", nargs="+", type=float,
                   default=[0.0, 0.02, 0.05],
                   help="fail-stop rates to sweep (default: 0 0.02 0.05)")
    f.set_defaults(fn=_cmd_faults)

    p = sub.add_parser(
        "serve", help="long-lived batched matvec server (see DESIGN.md §12)",
        parents=[seeded, jobbed, threaded],
    )
    p.add_argument("mode", nargs="?", choices=("chaos", "warmup"),
                   help="'chaos': self-contained seeded chaos demo — boots a "
                        "server + ChaosProxy and soaks it with retrying "
                        "clients (see DESIGN.md §13). 'warmup': prefetch "
                        "--preload matrices into a running server (--socket) "
                        "through the engine tiers and report where each "
                        "engine came from")
    p.add_argument("--socket", help="unix socket path to listen on "
                                    "(required except in chaos mode)")
    p.add_argument("--http", type=int, default=None, metavar="PORT",
                   help="also listen for HTTP POST /rpc on 127.0.0.1:PORT "
                        "(0 = ephemeral)")
    p.add_argument("--max-batch", type=int, default=16,
                   help="matvecs coalesced per spmm flush (default: 16)")
    p.add_argument("--deadline-ms", type=float, default=2.0,
                   help="max wait for a batch to fill before flushing "
                        "(default: 2.0)")
    p.add_argument("--max-engines", type=int, default=8,
                   help="resident compiled engines before LRU eviction")
    p.add_argument("--max-resident-mb", type=float, default=None,
                   help="optional byte budget for resident engines")
    p.add_argument("--partition-timeout", type=float, default=300.0,
                   help="per-request timeout for a cold pool partition (s)")
    p.add_argument("--partition-retries", type=int, default=2,
                   help="retries after a worker death or timeout (default: 2)")
    p.add_argument("--cache-dir", help="partition cache (default: $REPRO_CACHE_DIR)")
    p.add_argument("--preload", nargs="+", metavar="MATRIX",
                   help="matrices to partition and compile before accepting load")
    p.add_argument("--allow-fault-injection", action="store_true",
                   help="honor fault:{kill_worker} requests (tests/benches only)")
    p.add_argument("--engine-store-dir", default=None, metavar="DIR",
                   help="compiled-engine artifact store directory "
                        "(default: engines/ under the partition cache)")
    p.add_argument("--no-engine-store", action="store_true",
                   help="disable the on-disk engine store (every cold start "
                        "rebuilds from the partition)")
    p.add_argument("--warm-procs", type=int, default=16,
                   help="warmup mode: process count per engine (default: 16)")
    p.add_argument("--warm-method", default=None,
                   help="warmup mode: layout method (default: the server's "
                        "per-matrix paper choice)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "cache", help="inspect/evict compiled-engine artifacts "
                      "(see DESIGN.md §14)"
    )
    csub = p.add_subparsers(dest="action", required=True)
    ccommon = argparse.ArgumentParser(add_help=False)
    ccommon.add_argument("--store", default=None, metavar="DIR",
                         help="store directory (default: "
                              "$REPRO_ENGINE_STORE_DIR, else engines/ under "
                              "the partition cache)")
    c = csub.add_parser("list", parents=[ccommon],
                        help="list artifacts with status (ok/stale/corrupt)")
    c.set_defaults(fn=_cmd_cache)
    c = csub.add_parser("evict", parents=[ccommon],
                        help="drop artifacts by key "
                             "(e.g. 69caba9d744c_2d-gp_k8_s0)")
    c.add_argument("keys", nargs="+", help="engine keys to drop")
    c.set_defaults(fn=_cmd_cache)
    c = csub.add_parser("clear", parents=[ccommon],
                        help="drop every artifact in the store")
    c.set_defaults(fn=_cmd_cache)

    p = sub.add_parser(
        "loadgen", help="closed-loop load generator against a running server",
        parents=[seeded, threaded],
    )
    p.add_argument("matrix")
    p.add_argument("--socket", required=True, help="server unix socket path")
    p.add_argument("--method", default="2d-gp")
    p.add_argument("-p", "--procs", type=int, default=16)
    p.add_argument("-c", "--concurrency", type=int, default=16,
                   help="concurrent closed-loop sessions (default: 16)")
    p.add_argument("-n", "--requests", type=int, default=50,
                   help="timed requests per session (default: 50)")
    p.add_argument("--no-check", action="store_true",
                   help="skip the bitwise divergence check against a local "
                        "reference engine")
    p.add_argument("--encoding", choices=("bin", "b64", "list"), default="bin",
                   help="vector wire encoding (default: bin)")
    p.add_argument("--deadline", type=float, default=None,
                   help="per-request deadline in seconds; expiries are "
                        "reported as a distinct 'timeouts' outcome class")
    p.add_argument("--chaos", action="store_true",
                   help="interpose a seeded chaos proxy and drive load "
                        "through retrying clients (server must run with "
                        "--allow-fault-injection)")
    p.add_argument("--chaos-seed", type=int, default=7,
                   help="seed for the chaos schedule and retry jitter "
                        "(default: 7)")
    p.set_defaults(fn=_cmd_loadgen)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "threads", None) is not None:
        # --threads sets the process-wide default budget: every engine
        # this command builds or loads fans its multiplies out,
        # bit-identically to serial at any count
        from .runtime.threads import set_default_threads

        set_default_threads(args.threads)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
