"""Layout factory: the six distributions of the paper's section 5.2.

``make_layout`` builds any of:

========== ==========================================================
name        distribution
========== ==========================================================
1d-block    row blocks of ~n/p consecutive rows
1d-random   rows assigned uniformly at random
1d-gp       rows by graph partitioning (nonzero-balanced)
1d-hp       rows by hypergraph partitioning
1d-gp-mc    rows by multiconstraint GP (rows + nonzeros balanced)
2d-block    Cartesian on the block rpart (Yoo et al. [34])
2d-random   Cartesian on the random rpart
2d-gp       **the paper's method**: Cartesian on the GP rpart
2d-hp       Cartesian on the HP rpart
2d-gp-mc    Cartesian on the multiconstraint GP rpart
========== ==========================================================

A precomputed ``rpart`` can be passed to amortise one partitioner run
across the 1D and 2D variants — exactly how the paper ran its comparison
("We used the same row-based graph or hypergraph partition rpart for
1D-GP/HP and for 2D-GP/HP").
"""

from __future__ import annotations

import numpy as np

from .base import Layout, process_grid_shape
from .cartesian import cartesian_layout
from .oned import oned_layout
from .providers import block_rpart, partitioned_rpart, random_rpart

__all__ = ["make_layout", "LAYOUT_NAMES", "canonical_name", "paper_methods"]

#: Accepted method names, lowercase.
LAYOUT_NAMES = (
    "1d-block", "1d-random", "1d-gp", "1d-hp", "1d-gp-mc",
    "2d-block", "2d-random", "2d-gp", "2d-hp", "2d-gp-mc",
)

_DISPLAY = {
    "1d-block": "1D-Block", "1d-random": "1D-Random", "1d-gp": "1D-GP",
    "1d-hp": "1D-HP", "1d-gp-mc": "1D-GP-MC",
    "2d-block": "2D-Block", "2d-random": "2D-Random", "2d-gp": "2D-GP",
    "2d-hp": "2D-HP", "2d-gp-mc": "2D-GP-MC",
}

_PARTITIONER_OF = {"gp": "gp", "hp": "hp", "gp-mc": "gp-mc"}


def canonical_name(method: str) -> str:
    """Display name used in the paper's tables (e.g. ``"2D-GP"``)."""
    return _DISPLAY[method.lower()]


def paper_methods(partitioner: str, include_mc: bool = False) -> list[str]:
    """The paper's Table-2 method set with the GP-vs-HP choice resolved.

    Six layouts per matrix — block, random and partitioned in 1D and 2D —
    where ``partitioner`` ("gp" or "hp", from the matrix's
    :class:`~repro.generators.corpus.CorpusSpec`) picks the partitioned
    variant, exactly as the paper's "(GP)"/"(HP)" table labels do.
    ``include_mc`` appends the multiconstraint variants (Table 4's extra
    columns; only defined for GP matrices).
    """
    if partitioner not in _PARTITIONER_OF:
        raise ValueError(f"unknown partitioner {partitioner!r}; choose from "
                         f"{sorted(_PARTITIONER_OF)}")
    methods = [
        "1d-block", "1d-random", f"1d-{partitioner}",
        "2d-block", "2d-random", f"2d-{partitioner}",
    ]
    if include_mc and partitioner == "gp":
        methods.insert(3, "1d-gp-mc")
        methods.append("2d-gp-mc")
    return methods


def make_layout(
    method: str,
    A,
    nprocs: int,
    seed: int = 0,
    rpart: np.ndarray | None = None,
    grid: tuple[int, int] | None = None,
    orientation: str = "fixed",
    **partition_kwargs,
) -> Layout:
    """Build a named layout for matrix *A* on *nprocs* processes.

    Parameters
    ----------
    method:
        One of :data:`LAYOUT_NAMES` (case-insensitive).
    A:
        Square sparse matrix.
    nprocs:
        Number of processes p.
    seed:
        Seed for random rpart / the partitioner.
    rpart:
        Optional precomputed row partition (skips the partitioner /
        randomisation). Ignored for block layouts.
    grid:
        Optional explicit (pr, pc) for 2D layouts; default most-square.
    orientation:
        phi/psi orientation for 2D layouts: "fixed", "swapped" or "best"
        (see :func:`repro.layouts.cartesian.cartesian_layout`).
    partition_kwargs:
        Forwarded to the partitioner (``ub``, ``min_coarse``, ...).
    """
    method = method.lower()
    if method not in LAYOUT_NAMES:
        raise ValueError(f"unknown layout {method!r}; choose from {LAYOUT_NAMES}")
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError(f"layouts need a square matrix, got {A.shape}")

    dim, _, kind = method.partition("-")
    if rpart is None:
        if kind == "block":
            rpart = block_rpart(n, nprocs)
        elif kind == "random":
            rpart = random_rpart(n, nprocs, seed=seed)
        else:
            rpart = partitioned_rpart(
                A, nprocs, method=_PARTITIONER_OF[kind], seed=seed, **partition_kwargs
            )
    else:
        rpart = np.asarray(rpart, dtype=np.int64)
        if len(rpart) != n:
            raise ValueError(f"rpart length {len(rpart)} != n {n}")

    display = canonical_name(method)
    if dim == "1d":
        return oned_layout(display, rpart, nprocs)
    pr, pc = grid if grid is not None else process_grid_shape(nprocs)
    return cartesian_layout(display, A, rpart, pr, pc, orientation=orientation)
