"""Fine-grain 2D partitioning (Catalyurek & Aykanat [12]).

The other end of the paper's section-2.3 spectrum: every nonzero becomes a
vertex of a hypergraph with one net per matrix row and one per column (a
nonzero a_ij pins nets row_i and col_j). Partitioning those vertices
minimises communication volume *optimally* among all assignments — but,
as the paper notes, "the number of messages may be high, and such
partitions are expensive to compute": the hypergraph has nnz vertices, so
this is only practical for matrices that fit a serial partitioner.

We include it to complete the methods catalogue and for the ablation
bench: fine-grain sets the volume floor that 2D Cartesian GP approaches
while keeping the O(sqrt p) message bound fine-grain lacks.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graphs.csr import as_csr
from ..partitioning.hkway import hypergraph_recursive_bisection
from ..partitioning.hypergraph import Hypergraph
from .explicit import ExplicitLayout

__all__ = ["finegrain_layout", "finegrain_hypergraph"]


def finegrain_hypergraph(A) -> Hypergraph:
    """The fine-grain model: vertices = nonzeros, nets = rows and columns."""
    A = as_csr(A)
    n = A.shape[0]
    coo = A.tocoo()
    nnz = A.nnz
    vtx = np.arange(nnz, dtype=np.int64)
    # net ids: rows occupy [0, n), columns [n, 2n)
    net = np.concatenate([coo.row, coo.col + n])
    pin = np.concatenate([vtx, vtx])
    H = sp.csr_matrix((np.ones(2 * nnz), (net, pin)), shape=(2 * n, nnz))
    keep = np.diff(H.indptr) >= 2
    return Hypergraph(as_csr(H[keep]), np.ones((nnz, 1)), np.ones(int(keep.sum())))


def finegrain_layout(
    A, nprocs: int, ub: float = 1.10, seed: int = 0, name: str = "Fine-grain"
) -> ExplicitLayout:
    """Partition every nonzero independently; vectors placed greedily.

    Expensive by construction (see module docstring); intended for small
    matrices and the methods ablation, not production sweeps.
    """
    A = as_csr(A)
    if A.shape[0] != A.shape[1]:
        raise ValueError(f"square matrices only, got {A.shape}")
    if nprocs < 1:
        raise ValueError(f"nprocs must be >= 1, got {nprocs}")
    hg = finegrain_hypergraph(A)
    ranks = hypergraph_recursive_bisection(hg, nprocs, ub=ub, seed=seed)

    # vector placement: x_k/y_k to the least-loaded rank touching row/col k
    coo = A.tocoo()
    n = A.shape[0]
    cand: list[set] = [set() for _ in range(n)]
    for i, r in zip(coo.row.tolist(), ranks.tolist()):
        cand[i].add(r)
    for j, r in zip(coo.col.tolist(), ranks.tolist()):
        cand[j].add(r)
    load = np.zeros(nprocs, dtype=np.int64)
    vector_part = np.empty(n, dtype=np.int64)
    for k in sorted(range(n), key=lambda i: len(cand[i]) or nprocs):
        options = list(cand[k]) if cand[k] else list(range(nprocs))
        best = min(options, key=lambda r: load[r])
        vector_part[k] = best
        load[best] += 1
    return ExplicitLayout(name, A, ranks, vector_part, nprocs)
