"""Layout protocol: how a matrix and its vectors map onto p processes.

A :class:`Layout` answers two questions, exactly the two the paper's
"matrix partitioning problem" (section 2) poses:

* which process owns vector entry / matrix row k  (``vector_part``), and
* which process owns nonzero a_ij              (``nonzero_owner``).

Every concrete layout — 1D or 2D — is defined by a row partition vector
``rpart`` plus a rule for the nonzeros, which keeps the implementation
faithful to the paper's framing: the 2D-Block layout of Yoo et al. [34]
*is* Algorithm 2 applied to a block rpart, 2D-Random is Algorithm 2 on a
random rpart, and 2D-GP/HP is Algorithm 2 on a partitioner rpart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Layout", "process_grid_shape"]


def process_grid_shape(nprocs: int) -> tuple[int, int]:
    """Choose a pr x pc grid for p processes: the most-square factorisation.

    For perfect squares this is sqrt(p) x sqrt(p) (the paper's setting);
    otherwise the factor pair closest to square, preferring pr <= pc.
    """
    if nprocs < 1:
        raise ValueError(f"nprocs must be >= 1, got {nprocs}")
    pr = int(np.sqrt(nprocs))
    while pr > 1 and nprocs % pr != 0:
        pr -= 1
    return pr, nprocs // pr


@dataclass(frozen=True)
class Layout:
    """A complete data distribution for SpMV on *nprocs* processes.

    Attributes
    ----------
    name:
        Display name, e.g. ``"2D-GP"`` (matches the paper's tables).
    nprocs, pr, pc:
        Process count and logical grid shape (1D layouts use ``pr = p,
        pc = 1``).
    vector_part:
        int64 array, length n: owner process of vector entry k (and of
        matrix row k for ownership/fold purposes). The input and output
        vectors share this distribution — the paper requires x and y
        aligned so no remap communication is incurred per iteration.
    procrow, proccol:
        int64 arrays, length n: grid row of matrix row i, grid column of
        matrix column j. Nonzero a_ij lives at grid process
        ``(procrow[i], proccol[j])`` = rank ``procrow[i] + proccol[j]*pr``
        (column-major, as in Algorithm 1 line 6).
    """

    name: str
    nprocs: int
    pr: int
    pc: int
    vector_part: np.ndarray = field(repr=False)
    procrow: np.ndarray = field(repr=False)
    proccol: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if self.pr * self.pc != self.nprocs:
            raise ValueError(f"grid {self.pr}x{self.pc} != nprocs {self.nprocs}")
        for arr_name in ("vector_part", "procrow", "proccol"):
            arr = np.asarray(getattr(self, arr_name), dtype=np.int64)
            object.__setattr__(self, arr_name, arr)
            if arr.ndim != 1 or len(arr) != self.n:
                raise ValueError(f"{arr_name} must be 1-D of length n")
        if len(self.vector_part) and (
            self.vector_part.min() < 0 or self.vector_part.max() >= self.nprocs
        ):
            raise ValueError("vector_part entries out of range")
        if len(self.procrow) and (self.procrow.min() < 0 or self.procrow.max() >= self.pr):
            raise ValueError("procrow entries out of range")
        if len(self.proccol) and (self.proccol.min() < 0 or self.proccol.max() >= self.pc):
            raise ValueError("proccol entries out of range")

    @property
    def n(self) -> int:
        """Matrix dimension."""
        return len(self.vector_part)

    def nonzero_owner(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Rank owning each nonzero ``a_{rows[k], cols[k]}`` (vectorised).

        Column-major grid numbering: ``rank = procrow(i) + proccol(j)*pr``,
        Algorithm 1 line 6 of the paper.
        """
        return self.procrow[np.asarray(rows)] + self.proccol[np.asarray(cols)] * self.pr

    def is_one_dimensional(self) -> bool:
        """True for row layouts (every nonzero owned by its row's owner)."""
        return self.pc == 1

    def max_messages_bound(self) -> int:
        """Upper bound on messages per process per SpMV.

        ``pr + pc - 2`` for Cartesian layouts (paper section 3.2); for 1D
        layouts this degenerates to ``p - 1`` (expand only).
        """
        if self.is_one_dimensional():
            return self.nprocs - 1
        return self.pr + self.pc - 2
