"""Explicit (non-Cartesian) nonzero distributions.

The paper's method is Cartesian by design — that is what buys the
O(sqrt p) message bound. Competing 2D methods it cites (Mondriaan [33],
fine-grain [12]) assign nonzeros more freely and lose that bound. To
compare against them (the paper's stated future work), the runtime needs a
layout whose nonzero->rank map is an arbitrary table rather than a
(phi, psi) product; this module provides it.

:class:`ExplicitLayout` duck-types the parts of :class:`repro.layouts.base.
Layout` the runtime consumes: ``n``, ``nprocs``, ``vector_part`` and
``nonzero_owner``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graphs.csr import as_csr

__all__ = ["ExplicitLayout"]


class ExplicitLayout:
    """A per-nonzero ownership table over the pattern of a host matrix.

    Parameters
    ----------
    name:
        Display name (e.g. "Mondriaan").
    A:
        Host matrix whose nonzero pattern the table covers.
    nonzero_ranks:
        int64 array aligned with the canonical CSR data order of *A*:
        ``nonzero_ranks[k]`` owns the k-th stored entry.
    vector_part:
        Owner rank per vector entry (x and y share it, as the paper
        requires for iterative methods).
    nprocs:
        Rank count.
    """

    def __init__(self, name: str, A, nonzero_ranks: np.ndarray,
                 vector_part: np.ndarray, nprocs: int):
        A = as_csr(A)
        nonzero_ranks = np.asarray(nonzero_ranks, dtype=np.int64)
        vector_part = np.asarray(vector_part, dtype=np.int64)
        if len(nonzero_ranks) != A.nnz:
            raise ValueError(f"nonzero_ranks length {len(nonzero_ranks)} != nnz {A.nnz}")
        if len(vector_part) != A.shape[0]:
            raise ValueError(f"vector_part length {len(vector_part)} != n {A.shape[0]}")
        for arr, label in ((nonzero_ranks, "nonzero_ranks"), (vector_part, "vector_part")):
            if len(arr) and (arr.min() < 0 or arr.max() >= nprocs):
                raise ValueError(f"{label} entries out of range [0, {nprocs})")
        self.name = name
        self.nprocs = int(nprocs)
        self.vector_part = vector_part
        # ownership stored as a matrix sharing A's pattern (data = rank+1 so
        # that rank 0 survives sparse storage)
        self._owner = sp.csr_matrix(
            (nonzero_ranks + 1, A.indices.copy(), A.indptr.copy()), shape=A.shape
        )

    @property
    def n(self) -> int:
        """Matrix dimension."""
        return len(self.vector_part)

    def nonzero_owner(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Owner rank of each queried nonzero (must exist in the pattern)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        O = self._owner
        out = np.empty(len(rows), dtype=np.int64)
        if len(rows) == 0:
            return out
        # group queries by row, then binary-search each row's sorted column
        # segment once per group (row counts, not query counts, bound the
        # Python-level loop)
        order = np.argsort(rows, kind="stable")
        for idx in np.split(order, np.flatnonzero(np.diff(rows[order])) + 1):
            r = rows[idx[0]]
            seg = O.indices[O.indptr[r]: O.indptr[r + 1]]
            p = np.searchsorted(seg, cols[idx])
            if (p >= len(seg)).any() or not np.array_equal(seg[np.minimum(p, len(seg) - 1)], cols[idx]):
                raise ValueError(f"queried nonzero not in pattern (row {r})")
            out[idx] = O.data[O.indptr[r] + p] - 1
        return out

    def is_one_dimensional(self) -> bool:
        """Explicit layouts are general 2D distributions."""
        return False

    def max_messages_bound(self) -> int:
        """No Cartesian structure -> only the trivial bound."""
        return 2 * (self.nprocs - 1)
