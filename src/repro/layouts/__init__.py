"""Data distributions (layouts) for sparse matrices and vectors.

Implements all six distributions compared in the paper (section 5.2) plus
the multiconstraint variants of section 5.3, on a single abstraction:
every layout is a row partition ``rpart`` plus a nonzero rule — row-owner
for 1D, Algorithm 2's Cartesian (phi, psi) mapping for 2D.
"""

from .base import Layout, process_grid_shape
from .providers import block_rpart, random_rpart, partitioned_rpart
from .oned import oned_layout
from .cartesian import nonzero_partition, cartesian_layout, nonzero_balance
from .explicit import ExplicitLayout
from .mondriaan import mondriaan_layout
from .finegrain import finegrain_layout, finegrain_hypergraph
from .factory import make_layout, LAYOUT_NAMES, canonical_name, paper_methods

__all__ = [
    "Layout",
    "process_grid_shape",
    "block_rpart",
    "random_rpart",
    "partitioned_rpart",
    "oned_layout",
    "nonzero_partition",
    "cartesian_layout",
    "nonzero_balance",
    "ExplicitLayout",
    "mondriaan_layout",
    "finegrain_layout",
    "finegrain_hypergraph",
    "make_layout",
    "LAYOUT_NAMES",
    "canonical_name",
    "paper_methods",
]
