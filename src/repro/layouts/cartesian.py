"""2D Cartesian graph partitioning — the paper's contribution.

Algorithm 1: partition rows/columns into p parts (any rpart provider),
then impose a Cartesian pr x pc structure on the nonzeros via Algorithm 2::

    procrow(k) = phi(k) = rpart(k) mod pr
    proccol(k) = psi(k) = floor(rpart(k) / pr)

so nonzero a_ij goes to grid process (phi(i), psi(j)), i.e. rank
``phi(i) + psi(j) * pr`` in column-major numbering. Vector entry k stays
with process rpart(k) — which is exactly grid process (phi(k), psi(k)), so
diagonal entries and vector entries live together.

Why this caps messages at pr + pc - 2 (paper section 3.2): all vector
entries owned by process q share ``psi = q div pr``, so q only ever sends
x-entries within its own grid *column* (pr - 1 peers) during expand, and
only ever exchanges partial y-sums within its own grid *row* (pc - 1
peers) during fold.

``phi`` and ``psi`` may be interchanged (section 3.1); the paper suggests
evaluating both and keeping the better-balanced one, implemented here as
``orientation="best"``.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import as_csr
from .base import Layout

__all__ = ["nonzero_partition", "cartesian_layout", "nonzero_balance"]


def nonzero_partition(
    rpart: np.ndarray, pr: int, pc: int, swap: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Algorithm 2: map the 1D part vector to grid rows/columns.

    Returns ``(procrow, proccol)``. With ``swap=True`` the roles of phi
    and psi are interchanged (the alternative orientation of section 3.1).
    """
    rpart = np.asarray(rpart, dtype=np.int64)
    nparts = pr * pc
    if len(rpart) and (rpart.min() < 0 or rpart.max() >= nparts):
        raise ValueError(f"rpart entries must lie in [0, {nparts})")
    if swap:
        # interchange phi and psi: distribute along columns first
        procrow = rpart // pc
        proccol = rpart % pc
    else:
        procrow = rpart % pr
        proccol = rpart // pr
    return procrow, proccol


def nonzero_balance(A, procrow: np.ndarray, proccol: np.ndarray, pr: int, pc: int) -> float:
    """Max/avg nonzeros per process under a (procrow, proccol) mapping."""
    A = as_csr(A).tocoo()
    ranks = procrow[A.row] + proccol[A.col] * pr
    counts = np.bincount(ranks, minlength=pr * pc)
    avg = max(A.nnz / (pr * pc), 1e-300)
    return float(counts.max() / avg)


def cartesian_layout(
    name: str,
    A,
    rpart: np.ndarray,
    pr: int,
    pc: int,
    orientation: str = "fixed",
) -> Layout:
    """Build the 2D Cartesian layout for a given row partition.

    Parameters
    ----------
    name:
        Display name for tables ("2D-GP", "2D-Block", ...).
    A:
        The matrix (needed only when ``orientation="best"`` to score the
        two orientations by realised nonzero balance).
    rpart:
        Row/column/vector part vector over ``pr * pc`` parts.
    orientation:
        ``"fixed"`` — Algorithm 2 as printed; ``"swapped"`` — phi/psi
        interchanged; ``"best"`` — evaluate both and keep the one with
        better nonzero balance (the cheap improvement suggested in
        section 3.1; its cost is two bincounts, negligible next to
        partitioning).
    """
    rpart = np.asarray(rpart, dtype=np.int64)
    if orientation not in ("fixed", "swapped", "best"):
        raise ValueError(f"unknown orientation {orientation!r}")
    if orientation == "best":
        fixed = nonzero_partition(rpart, pr, pc, swap=False)
        swapped = nonzero_partition(rpart, pr, pc, swap=True)
        bal_f = nonzero_balance(A, *fixed, pr, pc)
        bal_s = nonzero_balance(A, *swapped, pr, pc)
        procrow, proccol = fixed if bal_f <= bal_s else swapped
    else:
        procrow, proccol = nonzero_partition(rpart, pr, pc, swap=(orientation == "swapped"))
    # vector entry k lives at the *diagonal* grid process (phi(k), psi(k)).
    # For the printed Algorithm 2 this equals rpart(k); for the swapped
    # orientation it is a renumbering — and the pr+pc-2 message bound only
    # holds when the vector owner sits in the grid column/row it serves.
    vector_part = procrow + proccol * pr
    return Layout(
        name=name,
        nprocs=pr * pc,
        pr=pr,
        pc=pc,
        vector_part=vector_part,
        procrow=procrow,
        proccol=proccol,
    )
