"""Mondriaan-style 2D matrix partitioning (Vastenhouw & Bisseling [33]).

The comparison method the paper's conclusions single out as future work.
Mondriaan recursively bisects the *nonzero set*: at every step it
partitions either the rows or the columns of the current submatrix with a
hypergraph bisection (column-net for a row split, row-net for a column
split), keeps whichever direction cuts less, and recurses. The result is
a non-Cartesian 2D distribution with excellent communication volume but —
the paper's point — no O(sqrt p) bound on messages per process.

After the nonzeros are placed, vector entries are assigned greedily: each
x_k/y_k goes to the least-loaded rank among those already owning nonzeros
in row/column k, which keeps both vector balance and locality (a
simplified version of Mondriaan's vector distribution phase).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graphs.csr import as_csr
from ..partitioning.hkway import multilevel_hypergraph_bisect
from ..partitioning.hypergraph import Hypergraph
from .explicit import ExplicitLayout

__all__ = ["mondriaan_layout"]


def _bisect_block(
    A_block: sp.csr_matrix, frac0: float, ub: float, seed: int
) -> tuple[np.ndarray, str]:
    """Split a submatrix's nonzeros two ways; keep the cheaper direction.

    Returns (side per *local* nonzero in CSR data order, direction).
    """
    A_block = as_csr(A_block)
    nr, nc = A_block.shape
    best: tuple[float, np.ndarray, str] | None = None

    for direction in ("rows", "cols"):
        inc = A_block.T if direction == "rows" else A_block  # nets x vertices
        inc = as_csr(inc)
        nvtx = inc.shape[1]
        if nvtx < 2:
            continue
        vwgt = np.maximum(
            np.asarray(abs(inc).sum(axis=0)).ravel(), 1.0
        )  # nnz per vertex (row or column) within the block
        keep = np.diff(inc.indptr) >= 2
        hg = Hypergraph(as_csr(inc[keep]), vwgt, np.ones(int(keep.sum())))
        part = multilevel_hypergraph_bisect(hg, (frac0, 1.0 - frac0), ub=ub, seed=seed)
        if len(np.unique(part)) < 2:
            continue
        cut = hg.cut_connectivity_minus_one(part, 2)
        if best is None or cut < best[0]:
            best = (cut, part, direction)

    coo = A_block.tocoo()
    if best is None:
        # degenerate block: split nonzeros evenly in storage order
        side = (np.arange(A_block.nnz) >= A_block.nnz * frac0).astype(np.int64)
        return side, "storage"
    _, part, direction = best
    key = coo.row if direction == "rows" else coo.col
    return part[key], direction


def mondriaan_layout(
    A, nprocs: int, ub: float = 1.10, seed: int = 0, name: str = "Mondriaan"
) -> ExplicitLayout:
    """Partition matrix *A*'s nonzeros Mondriaan-style over *nprocs* ranks."""
    A = as_csr(A)
    if A.shape[0] != A.shape[1]:
        raise ValueError(f"square matrices only, got {A.shape}")
    if nprocs < 1:
        raise ValueError(f"nprocs must be >= 1, got {nprocs}")
    coo = A.tocoo()
    ranks = np.zeros(A.nnz, dtype=np.int64)
    _assign_driver(coo.row, coo.col, ranks, nprocs, ub, seed)

    vector_part = _vector_assignment(A, coo, ranks, nprocs)
    return ExplicitLayout(name, A, ranks, vector_part, nprocs)


def _assign_driver(rows, cols, ranks, nprocs, ub, seed):
    """Top-level recursion with index bookkeeping (ranks updated in place)."""
    idx = np.arange(len(rows), dtype=np.int64)
    _rec(rows, cols, idx, ranks, 0, nprocs, ub, seed)


def _rec(rows, cols, idx, ranks, lo, k, ub, seed):
    if k == 1 or len(idx) == 0:
        ranks[idx] = lo
        return
    urows, ri = np.unique(rows[idx], return_inverse=True)
    ucols, ci = np.unique(cols[idx], return_inverse=True)
    block = sp.csr_matrix((np.ones(len(idx)), (ri, ci)), shape=(len(urows), len(ucols)))
    k0 = k // 2
    side_per_stored, _ = _bisect_block(block, k0 / k, ub, seed)
    order = np.lexsort((ci, ri))
    side = np.empty(len(idx), dtype=np.int64)
    side[order] = side_per_stored
    _rec(rows, cols, idx[side == 0], ranks, lo, k0, ub, seed * 2 + 1)
    _rec(rows, cols, idx[side == 1], ranks, lo + k0, k - k0, ub, seed * 2 + 2)


def _vector_assignment(A, coo, ranks, nprocs) -> np.ndarray:
    """Greedy balanced vector placement among per-index candidate owners."""
    n = A.shape[0]
    # candidate ranks touching each index, via two sparse group-bys
    cand: list[set] = [set() for _ in range(n)]
    for i, r in zip(coo.row.tolist(), ranks.tolist()):
        cand[i].add(r)
    for j, r in zip(coo.col.tolist(), ranks.tolist()):
        cand[j].add(r)
    load = np.zeros(nprocs, dtype=np.int64)
    out = np.empty(n, dtype=np.int64)
    # most-constrained first, then greedy least-loaded candidate
    order = sorted(range(n), key=lambda i: len(cand[i]) or nprocs)
    for i in order:
        options = list(cand[i]) if cand[i] else list(range(nprocs))
        best = min(options, key=lambda r: load[r])
        out[i] = best
        load[best] += 1
    return out
