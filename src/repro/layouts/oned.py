"""1D (row / vertex) layouts.

A 1D layout owns whole rows: nonzero a_ij goes to the owner of row i, and
vector entries follow rows. In :class:`Layout` terms this is a degenerate
``p x 1`` grid — procrow = rpart, proccol = 0 — which lets the runtime
treat 1D and 2D uniformly (1D simply has an empty fold phase, matching the
paper's observation that 1D needs only expand + local compute).
"""

from __future__ import annotations

import numpy as np

from .base import Layout

__all__ = ["oned_layout"]


def oned_layout(name: str, rpart: np.ndarray, nprocs: int) -> Layout:
    """Build a 1D row layout from a row partition vector."""
    rpart = np.asarray(rpart, dtype=np.int64)
    return Layout(
        name=name,
        nprocs=nprocs,
        pr=nprocs,
        pc=1,
        vector_part=rpart,
        procrow=rpart,
        proccol=np.zeros(len(rpart), dtype=np.int64),
    )
