"""Row-partition (rpart) providers: block, random, and partitioner-based.

These produce the ``rpart`` vector of Algorithm 1 — the assignment of
matrix rows/columns (and vector entries) to p parts — which both the 1D
layouts and the 2D Cartesian construction consume.
"""

from __future__ import annotations

import numpy as np

from ..partitioning import partition_matrix

__all__ = ["block_rpart", "random_rpart", "partitioned_rpart"]


def block_rpart(n: int, nparts: int) -> np.ndarray:
    """Contiguous blocks of ~n/p consecutive rows (Epetra's default map).

    Uses the standard balanced split: the first ``n % p`` parts get
    ``ceil(n/p)`` rows, the rest ``floor(n/p)``.
    """
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    return (np.arange(n, dtype=np.int64) * nparts) // max(n, 1)


def random_rpart(n: int, nparts: int, seed: int = 0) -> np.ndarray:
    """Uniform random owner per row (the paper's randomisation, section 2.4).

    Each row is assigned independently and uniformly; in expectation both
    rows and nonzeros balance, at the price of destroying any locality.
    """
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    rng = np.random.default_rng(seed)
    return rng.integers(0, nparts, size=n, dtype=np.int64)


def partitioned_rpart(
    A, nparts: int, method: str = "gp", seed: int = 0, **kwargs
) -> np.ndarray:
    """rpart from the graph/hypergraph partitioner (see ``partition_matrix``)."""
    return partition_matrix(A, nparts, method=method, seed=seed, **kwargs).part
