"""Performance profiles (paper Figures 6 and 7).

A performance profile plots, for each method, the fraction of problem
instances (y) on which the method's time is within a factor x of the best
method's time for that instance. A method that is always best is a
vertical line at x = 1; the paper uses this to show 2D-GP/HP is best on
97.5% of instances.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

__all__ = ["performance_profile", "fraction_best", "profile_value_at"]


def performance_profile(
    records: list, time_of=lambda r: r.time100, key_of=lambda r: (r.matrix, r.nprocs),
    method_of=lambda r: r.method,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Compute profile curves from a list of sweep records.

    Returns ``{method: (ratios, fractions)}`` where ``ratios`` is the
    sorted array of time-to-best ratios over all instances and
    ``fractions[i] = (i+1)/n_instances`` — plot as a step curve.
    """
    by_instance: dict = defaultdict(dict)
    for r in records:
        by_instance[key_of(r)][method_of(r)] = time_of(r)
    methods = sorted({method_of(r) for r in records})
    ratios: dict[str, list[float]] = {m: [] for m in methods}
    for times in by_instance.values():
        best = min(times.values())
        for m in methods:
            if m in times:
                ratios[m].append(times[m] / max(best, 1e-300))
    out = {}
    n_instances = len(by_instance)
    for m in methods:
        arr = np.sort(np.asarray(ratios[m]))
        fracs = np.arange(1, len(arr) + 1) / max(n_instances, 1)
        out[m] = (arr, fracs)
    return out


def fraction_best(profile: dict[str, tuple[np.ndarray, np.ndarray]], method: str,
                  tol: float = 1.0 + 1e-9) -> float:
    """Fraction of instances on which *method* is (tied-)best."""
    ratios, _ = profile[method]
    if len(ratios) == 0:
        return 0.0
    return float((ratios <= tol).sum() / len(ratios))


def profile_value_at(profile: dict[str, tuple[np.ndarray, np.ndarray]], method: str,
                     x: float) -> float:
    """Profile height of *method* at ratio *x* (fraction within x of best).

    E.g. the paper reads (x=2, y=0.4) for 1D-GP/HP off Figure 6.
    """
    ratios, fracs = profile[method]
    idx = int(np.searchsorted(ratios, x, side="right"))
    return float(fracs[idx - 1]) if idx > 0 else 0.0
