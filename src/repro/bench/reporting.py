"""Plain-text table rendering in the shape of the paper's tables."""

from __future__ import annotations

from collections import defaultdict

__all__ = ["format_table", "table2_rows", "reduction_vs_best", "format_seconds"]


def format_seconds(t: float) -> str:
    """Compact fixed-ish formatting matching the paper's tables."""
    if t >= 100:
        return f"{t:.1f}"
    if t >= 1:
        return f"{t:.2f}"
    return f"{t:.4f}"


def format_table(headers: list[str], rows: list[tuple], align: str = "r") -> str:
    """Render an aligned monospace table.

    ``align`` is one character per column ("l" or "r"); a single character
    applies to every column (default: right-aligned, the numeric-table
    shape of the paper).
    """
    if len(align) == 1:
        align = align * len(headers)
    if len(align) != len(headers):
        raise ValueError(f"align {align!r} does not match {len(headers)} columns")
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for ri, row in enumerate(cells):
        padded = [c.ljust(w) if a == "l" else c.rjust(w)
                  for c, w, a in zip(row, widths, align)]
        lines.append("  ".join(padded).rstrip())
        if ri == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def reduction_vs_best(times: dict[str, float], ours: str) -> float:
    """Paper Table 2 last column: % reduction of *ours* vs the best other.

    Positive means our method is faster; the paper's one negative cell
    (uk-2005 at 64 procs, -5.9%) corresponds to a negative value here.
    """
    other = [t for m, t in times.items() if m != ours]
    if not other or ours not in times:
        return float("nan")
    best_other = min(other)
    return (1.0 - times[ours] / best_other) * 100.0


def table2_rows(records: list, ours_prefix: str = "2D-GP") -> list[tuple]:
    """Group SpMV sweep records into Table-2-shaped rows.

    One row per (matrix, nprocs): the six method times in the paper's
    column order plus the reduction-vs-next-best column. Methods are
    normalised so that GP and HP variants share a column, as in the paper
    ("1D-GP/HP").
    """
    col_order = ["1D-Block", "1D-Random", "1D-GP/HP", "2D-Block", "2D-Random", "2D-GP/HP"]

    def norm(method: str) -> str:
        if method in ("1D-GP", "1D-HP", "1D-GP-MC"):
            return "1D-GP/HP"
        if method in ("2D-GP", "2D-HP", "2D-GP-MC"):
            return "2D-GP/HP"
        return method

    grouped: dict[tuple, dict[str, float]] = defaultdict(dict)
    for r in records:
        grouped[(r.matrix, r.nprocs)][norm(r.method)] = r.time100
    rows = []
    for (matrix, p), times in sorted(grouped.items()):
        red = reduction_vs_best(times, "2D-GP/HP")
        rows.append(
            (matrix, p)
            + tuple(format_seconds(times[c]) if c in times else "-" for c in col_order)
            + (f"{red:.1f}%",)
        )
    return rows
