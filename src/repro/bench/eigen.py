"""Eigensolver experiment harness (paper section 5.3, Tables 4-5, Fig 9).

Runs the Krylov-Schur solve once per (matrix, start vector) through the
record-and-replay costing (see :mod:`repro.solvers.replay` — the Krylov
trajectory is layout-independent, so re-running numerics per layout would
be redundant), then prices the recorded op tally under every layout and
process count, averaging over several random starts exactly as the paper
averages ten solves.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

import numpy as np

from ..generators.corpus import load_corpus_matrix
from ..graphs.csr import as_csr
from ..graphs.ops import normalized_laplacian
from ..runtime import CAB, CommStats, DistSparseMatrix, MachineModel, comm_stats
from ..solvers.replay import SolveProfile, modeled_solve_seconds, solve_profile
from .harness import PROXY_PROCS, default_cache_dir, layout_for

__all__ = ["EigenRecord", "eigen_grid", "profiles_for"]


@dataclass(frozen=True)
class EigenRecord:
    """One cell of the paper's Table 4 / Table 5 grids."""

    matrix: str
    method: str
    nprocs: int
    #: modeled seconds of the full eigensolve (avg over starts)
    solve_time: float
    #: modeled seconds spent in SpMV within the solve (avg over starts)
    spmv_time: float
    matvecs: float
    stats: CommStats
    converged: bool


def _profile_path(matrix_name: str, k: int, tol: float, seed: int):
    from .harness import _matrix_hash

    h = _matrix_hash(load_corpus_matrix(matrix_name))
    return default_cache_dir() / f"profile_{matrix_name}_{h}_k{k}_t{tol:g}_s{seed}.npz"


def _one_profile(matrix_name: str, k: int, tol: float, seed: int) -> SolveProfile:
    """Solve profile with on-disk caching (eigensolves are the expensive
    pre-processing of the eigen benches, like partitions are for SpMV)."""
    path = _profile_path(matrix_name, k, tol, seed)
    if path.exists():
        z = np.load(path)
        return SolveProfile(
            matvecs=int(z["matvecs"]),
            stream_factor=float(z["stream_factor"]),
            gemm_flop_factor=float(z["gemm_flop_factor"]),
            scalar_reductions=int(z["scalar_reductions"]),
            vector_reductions=int(z["vector_reductions"]),
            vector_reduction_words=int(z["vector_reduction_words"]),
            converged=bool(z["converged"]),
            eigenvalues=z["eigenvalues"],
        )
    A = load_corpus_matrix(matrix_name)
    prof = solve_profile(normalized_laplacian(A), k=k, tol=tol, seed=seed)
    np.savez(
        path,
        matvecs=prof.matvecs,
        stream_factor=prof.stream_factor,
        gemm_flop_factor=prof.gemm_flop_factor,
        scalar_reductions=prof.scalar_reductions,
        vector_reductions=prof.vector_reductions,
        vector_reduction_words=prof.vector_reduction_words,
        converged=prof.converged,
        eigenvalues=prof.eigenvalues,
    )
    return prof


@lru_cache(maxsize=64)
def _cached_profiles(matrix_name: str, k: int, tol: float, nstarts: int) -> tuple:
    return tuple(_one_profile(matrix_name, k, tol, 1000 + s) for s in range(nstarts))


def profiles_for(
    matrix_name: str, k: int = 10, tol: float = 1e-3, nstarts: int = 3
) -> tuple[SolveProfile, ...]:
    """Recorded solve profiles (one per random start) for a corpus matrix."""
    return _cached_profiles(matrix_name, k, tol, nstarts)


def eigen_grid(
    matrix_names: list[str],
    methods: list[str],
    procs: tuple[int, ...] = PROXY_PROCS,
    k: int = 10,
    tol: float = 1e-3,
    nstarts: int = 3,
    machine: MachineModel = CAB,
    seed: int = 0,
    cache_dir: Path | None = None,
    nested: bool = True,
) -> list[EigenRecord]:
    """Table-4 style sweep: eigensolve time per (matrix, layout, p)."""
    records: list[EigenRecord] = []
    pmax = max(procs)
    for name in matrix_names:
        A = as_csr(load_corpus_matrix(name))
        Lhat = normalized_laplacian(A)
        profiles = profiles_for(name, k=k, tol=tol, nstarts=nstarts)
        for p in procs:
            for method in methods:
                nested_from = pmax if (nested and p != pmax) else None
                # layout/partition computed on the adjacency structure,
                # applied to the Laplacian (same off-diagonal pattern)
                layout = layout_for(
                    A, method, p, seed=seed, cache_dir=cache_dir, nested_from=nested_from
                )
                dist = DistSparseMatrix(Lhat, layout, machine)
                totals, spmvs = zip(
                    *(modeled_solve_seconds(pr, dist, machine) for pr in profiles)
                )
                records.append(
                    EigenRecord(
                        matrix=name,
                        method=layout.name,
                        nprocs=p,
                        solve_time=float(np.mean(totals)),
                        spmv_time=float(np.mean(spmvs)),
                        matvecs=float(np.mean([pr.matvecs for pr in profiles])),
                        stats=comm_stats(dist),
                        converged=all(pr.converged for pr in profiles),
                    )
                )
    return records
