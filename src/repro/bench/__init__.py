"""Benchmark harness regenerating every table and figure of the paper.

See DESIGN.md's experiment index for the mapping from paper table/figure
to the bench module in ``benchmarks/`` that drives these helpers.
"""

from .harness import (
    PAPER_TO_PROXY_PROCS,
    PROXY_PROCS,
    SpmvRecord,
    atomic_save_npy,
    cached_rpart,
    default_cache_dir,
    gp_or_hp,
    layout_for,
    run_spmv_cell,
    spmv_grid,
)
from .eigen import EigenRecord, eigen_grid, profiles_for
from .profiles import performance_profile, fraction_best, profile_value_at
from .reporting import format_table, format_seconds, reduction_vs_best, table2_rows

__all__ = [
    "PAPER_TO_PROXY_PROCS",
    "PROXY_PROCS",
    "SpmvRecord",
    "atomic_save_npy",
    "cached_rpart",
    "default_cache_dir",
    "gp_or_hp",
    "layout_for",
    "run_spmv_cell",
    "spmv_grid",
    "EigenRecord",
    "eigen_grid",
    "profiles_for",
    "performance_profile",
    "fraction_best",
    "profile_value_at",
    "format_table",
    "format_seconds",
    "reduction_vs_best",
    "table2_rows",
]
