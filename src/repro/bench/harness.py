"""Experiment harness: (matrix x layout x process-count) sweeps.

Reproduces the paper's experimental procedure:

* partitioning is a cached pre-processing step ("graph/hypergraph
  partitioning was done as a pre-processing step... partitions might be
  reused for several analyses") — rpart vectors are cached on disk keyed
  by matrix content hash, method, part count and seed;
* for GP/HP methods the same rpart feeds both the 1D and 2D layout of a
  cell ("We used the same row-based graph or hypergraph partition rpart
  for 1D-GP/HP and for 2D-GP/HP");
* recursive-bisection partitions nest across power-of-two part counts, so
  a scaling study partitions once at the largest p and derives the rest;
* process counts are scaled from the paper's 64..16384 to 4..1024
  (matching the ~1/250 matrix-size scaling of the proxy corpus).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

import numpy as np

from ..generators.corpus import corpus_spec, load_corpus_matrix
from ..graphs.csr import as_csr
from ..layouts import make_layout
from ..layouts.base import Layout
from ..partitioning import partition_matrix
from ..partitioning.kway import derive_nested_partition, kway_balance_refine
from ..partitioning.partgraph import PartGraph
from ..runtime import CAB, CommStats, DistSparseMatrix, MachineModel, comm_stats
from ..runtime.store import EngineKey, EngineStore, matrix_hash

__all__ = [
    "PAPER_TO_PROXY_PROCS",
    "PROXY_PROCS",
    "SpmvRecord",
    "default_cache_dir",
    "atomic_save_npy",
    "cached_rpart",
    "layout_for",
    "engine_store_key",
    "run_spmv_cell",
    "spmv_grid",
    "gp_or_hp",
]

#: Paper process counts -> proxy process counts (scaled with matrix size).
PAPER_TO_PROXY_PROCS = {64: 4, 256: 16, 1024: 64, 4096: 256, 16384: 1024}

#: The standard strong-scaling sweep (paper: 64, 256, 1024, 4096).
PROXY_PROCS = (4, 16, 64, 256)


@lru_cache(maxsize=None)
def _ensure_cache_dir(base: Path) -> Path:
    base.mkdir(parents=True, exist_ok=True)
    return base


def default_cache_dir() -> Path:
    """Partition cache location (override with $REPRO_CACHE_DIR).

    The environment variable is re-read on every call (tests and CLI
    subprocesses point it at scratch space), but the mkdir happens once
    per distinct directory per process.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    base = Path(env) if env else Path.home() / ".cache" / "repro-partitions"
    return _ensure_cache_dir(base)


def atomic_save_npy(path: Path, arr: np.ndarray) -> None:
    """Write an .npy file atomically (tmp file + ``os.replace``).

    Concurrent writers of the same key each write a distinct pid-suffixed
    tmp file and race only on the atomic rename, so readers can never
    observe a torn file. ``np.save`` gets an open handle because it
    appends ``.npy`` to bare path names.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as f:
            np.save(f, arr)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _load_cached_part(path: Path, n: int) -> np.ndarray | None:
    """Double-checked cache read: any unreadable/stale file is a miss."""
    try:
        part = np.load(path)
    except (OSError, ValueError, EOFError):
        return None
    if part.ndim != 1 or len(part) != n:
        return None
    return part.astype(np.int64)


#: Canonical content hash lives with the engine store now; the partition
#: cache and the engine artifacts share one digest per matrix.
_matrix_hash = matrix_hash


def cached_rpart(
    A,
    kind: str,
    nparts: int,
    seed: int = 0,
    cache_dir: Path | None = None,
    nested_from: int | None = None,
    jobs: int | None = None,
    executor=None,
) -> np.ndarray:
    """Partition with on-disk caching; optionally derive from a finer one.

    ``nested_from`` (a power-of-two multiple of *nparts*) makes this call
    partition at that finer count — hitting its cache entry — and coarsen
    by the RB nesting property, which is how the scaling benches amortise
    one partitioner run over a whole sweep.

    The cache is safe under concurrent writers: entries land via atomic
    rename and reads treat torn or stale files as misses. ``jobs``/
    ``executor`` parallelise a cache-miss partitioner run
    (:mod:`repro.parallel`) without changing the cached bits.
    """
    if nested_from is not None and nested_from != nparts:
        fine = cached_rpart(
            A, kind, nested_from, seed=seed, cache_dir=cache_dir,
            jobs=jobs, executor=executor,
        )
        part = derive_nested_partition(fine, nested_from, nparts)
        # the RB tree balanced each level to its own tolerance; grouping
        # leaves compounds those errors (and hub granularity at the fine
        # level disappears at the coarse one), so repair at the target k —
        # same weights (and the same row-awareness for hp) that
        # partition_matrix itself balances
        if kind == "hp":
            g = PartGraph.from_matrix(A, vertex_weights=("unit", "nnz"))
            return kway_balance_refine(g, part, nparts, ub=np.array([1.15, 1.25]))
        weights = ("unit", "nnz") if kind == "gp-mc" else "nnz"
        g = PartGraph.from_matrix(A, vertex_weights=weights)
        return kway_balance_refine(g, part, nparts, ub=1.10)
    cache_dir = cache_dir if cache_dir is not None else default_cache_dir()
    key = f"{_matrix_hash(A)}_{kind}_k{nparts}_s{seed}.npy"
    path = cache_dir / key
    if path.exists():
        part = _load_cached_part(path, A.shape[0])
        if part is not None:
            return part
    part = partition_matrix(
        A, nparts, method=kind, seed=seed, jobs=jobs, executor=executor
    ).part
    atomic_save_npy(path, part)
    return part


def gp_or_hp(matrix_name: str, dim: str) -> str:
    """The paper's per-matrix GP-vs-HP choice, as a layout method name.

    ``dim`` is "1d" or "2d". E.g. uk-2005 used hypergraph partitioning,
    com-orkut used graph partitioning (Table 2's "(GP)"/"(HP)" labels).
    """
    kind = corpus_spec(matrix_name).partitioner
    return f"{dim}-{kind}"


def layout_for(
    A,
    method: str,
    nprocs: int,
    seed: int = 0,
    cache_dir: Path | None = None,
    nested_from: int | None = None,
    orientation: str = "fixed",
) -> Layout:
    """Build a layout, routing partitioner-based rpart through the cache."""
    method = method.lower()
    _, _, kind = method.partition("-")
    rpart = None
    if kind in ("gp", "hp", "gp-mc"):
        rpart = cached_rpart(
            A, kind, nprocs, seed=seed, cache_dir=cache_dir, nested_from=nested_from
        )
    return make_layout(method, A, nprocs, seed=seed, rpart=rpart, orientation=orientation)


@dataclass(frozen=True)
class SpmvRecord:
    """One cell of the paper's Table 2 grid."""

    matrix: str
    method: str  # display name, e.g. "2D-GP"
    nprocs: int
    #: modeled seconds for 100 SpMV operations (the paper's reported unit)
    time100: float
    stats: CommStats
    #: max |y_dist - y_scipy| from the validation multiply (nan if skipped)
    validation_error: float


def engine_store_key(
    A,
    method: str,
    nprocs: int,
    seed: int = 0,
    nested_from: int | None = None,
) -> EngineKey:
    """The :class:`EngineKey` a sweep cell's compiled engine stores under.

    Nested-derivation cells get a ``n{pmax}`` variant: a p=16 layout
    derived from the p=64 partition is a different matrix-on-ranks than
    one partitioned directly at 16, and the two must never collide.
    """
    variant = f"n{nested_from}" if nested_from is not None else ""
    return EngineKey(matrix_hash(A), method.lower(), nprocs, seed, variant)


def run_spmv_cell(
    A,
    matrix_name: str,
    method: str,
    nprocs: int,
    machine: MachineModel = CAB,
    seed: int = 0,
    cache_dir: Path | None = None,
    nested_from: int | None = None,
    validate: bool | None = None,
    orientation: str = "fixed",
    engine_store: EngineStore | None = None,
) -> SpmvRecord:
    """Evaluate one (matrix, layout, p) cell.

    ``validate=None`` auto-enables the real four-phase multiply check for
    p <= 64 (the data movement is identical in structure at higher p; the
    check is skipped there only to keep sweep time down).

    ``engine_store``, when given, is probed for a previously compiled
    engine before the validation multiply (a hit skips the plan-build +
    compile inside ``dist.spmv``); a miss compiles as usual and persists
    the result for the next sweep.
    """
    layout = layout_for(
        A, method, nprocs, seed=seed, cache_dir=cache_dir,
        nested_from=nested_from, orientation=orientation,
    )
    dist = DistSparseMatrix(A, layout, machine)
    stats = comm_stats(dist)
    if validate is None:
        validate = nprocs <= 64
    err = float("nan")
    if validate:
        store_key = None
        if engine_store is not None:
            store_key = engine_store_key(
                A, method, nprocs, seed=seed, nested_from=nested_from
            )
            hit = engine_store.load(store_key)
            if hit is not None:
                dist._engine = hit.engine
                store_key = None  # already stored; skip the save below
        rng = np.random.default_rng(12345)
        x = rng.standard_normal(A.shape[0])
        err = float(np.abs(dist.spmv(x) - A @ x).max())
        if store_key is not None:
            engine_store.save(store_key, dist.engine, {"matrix": matrix_name})
    return SpmvRecord(
        matrix=matrix_name,
        method=layout.name,
        nprocs=nprocs,
        time100=dist.modeled_spmv_seconds(100),
        stats=stats,
        validation_error=err,
    )


def _spmv_cell_task(args: tuple) -> SpmvRecord:
    """One (matrix, method, p) cell — the ``repro spmv`` CLI fan-out unit.

    Concurrent methods may race to create the same cached rpart on a cold
    cache; the atomic writer makes that a benign duplicated computation,
    never a torn read.
    """
    A, name, method, p, seed, cache_dir, store_dir = args
    store = EngineStore(store_dir) if store_dir is not None else None
    return run_spmv_cell(
        A, name, method, p, seed=seed, cache_dir=cache_dir, engine_store=store
    )


def _matrix_grid_task(args: tuple) -> list[SpmvRecord]:
    """One matrix's full (p x method) grid column — the spmv_grid fan-out
    unit. Module-level so it pickles into pool workers; each worker reuses
    the shared partition cache (one deep rpart per method serves every p
    via nesting), so concurrent columns do not repeat partitioner work.
    """
    name, A, methods, procs, machine, seed, cache_dir, nested, store_dir = args
    A = as_csr(A)
    store = EngineStore(store_dir) if store_dir is not None else None
    records: list[SpmvRecord] = []
    pmax = max(procs)
    for p in procs:
        for method in methods:
            nested_from = pmax if (nested and p != pmax) else None
            records.append(
                run_spmv_cell(
                    A, name, method, p, machine=machine, seed=seed,
                    cache_dir=cache_dir, nested_from=nested_from,
                    engine_store=store,
                )
            )
    return records


def spmv_grid(
    matrices: dict[str, object] | list[str],
    methods: list[str],
    procs: tuple[int, ...] = PROXY_PROCS,
    machine: MachineModel = CAB,
    seed: int = 0,
    cache_dir: Path | None = None,
    nested: bool = True,
    jobs: int | None = None,
    engine_store: Path | str | None = None,
) -> list[SpmvRecord]:
    """Run the full sweep; matrices may be corpus names or name->matrix.

    ``jobs`` fans matrices across a process pool (cells within a matrix
    share cached partitions, so the matrix is the natural grain). Record
    order and contents are identical to the serial sweep.
    ``engine_store`` (a directory) lets validation cells reuse compiled
    engines across runs and workers; pool workers each open the same
    directory, composing through the store's atomic writes.
    """
    if isinstance(matrices, list):
        matrices = {name: load_corpus_matrix(name) for name in matrices}
    if jobs is not None and cache_dir is None:
        # workers must agree on one cache directory even if the pool was
        # forked before the caller exported $REPRO_CACHE_DIR
        cache_dir = default_cache_dir()
    store_dir = Path(engine_store) if engine_store is not None else None
    tasks = [
        (name, as_csr(A), methods, procs, machine, seed, cache_dir, nested,
         store_dir)
        for name, A in matrices.items()
    ]
    from ..parallel import parallel_map

    per_matrix = parallel_map(_matrix_grid_task, tasks, jobs=jobs)
    return [rec for column in per_matrix for rec in column]
