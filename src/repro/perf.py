"""Lightweight nested phase profiler for the partitioning pipeline.

The multilevel partitioner is the dominant end-to-end cost of every sweep
in this repo (SpMV itself was made ~29x faster by the execution engine),
so knowing *where* a partition call spends its time — coarsening, initial
partitions, per-level refinement, projection — is the first step of any
kernel optimisation. This module provides exactly that, with the same
discipline as the rest of the runtime:

* **near-zero overhead when disabled** — :func:`phase` returns a shared
  no-op context manager after a single global read, so instrumented code
  pays one dict-free branch per phase boundary (phases wrap whole levels,
  never inner loops);
* **nested aggregation** — timers are keyed by the full phase *stack*
  (``partition / bisect / coarsen``), so a phase appearing under several
  parents is reported separately under each;
* **deterministic output** — :meth:`PhaseProfiler.report` orders rows by
  first entry, not by time, so two runs of the same pipeline produce the
  same table shape.

Enable collection with :func:`profile`::

    from repro import perf

    with perf.profile() as prof:
        partition_matrix(A, 64)
    print(prof.report())

The CLI surfaces this as ``repro partition --profile``, and
``benchmarks/bench_refine_kernels.py`` records the phase breakdown next
to its kernel-speedup gate in ``BENCH_refine.json``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "PhaseProfiler",
    "PhaseStat",
    "SpanRecorder",
    "phase",
    "profile",
    "active_profiler",
]


@dataclass
class PhaseStat:
    """Accumulated wall time and entry count of one phase path."""

    seconds: float = 0.0
    calls: int = 0


class _NullPhase:
    """Reusable no-op context manager returned while profiling is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL = _NullPhase()
_ACTIVE: "PhaseProfiler | None" = None


class PhaseProfiler:
    """Aggregates nested phase timings keyed by the phase stack."""

    def __init__(self) -> None:
        #: insertion-ordered mapping ``(outer, ..., inner) -> PhaseStat``
        self.stats: dict[tuple[str, ...], PhaseStat] = {}
        self._stack: list[str] = []

    @contextmanager
    def _frame(self, name: str):
        self._stack.append(name)
        path = tuple(self._stack)
        # register on *entry* so insertion order puts parents before their
        # children in the report (phases finish child-first)
        st = self.stats.get(path)
        if st is None:
            st = self.stats[path] = PhaseStat()
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self._stack.pop()
            st.seconds += dt
            st.calls += 1

    # -- reporting ---------------------------------------------------------

    def total_seconds(self) -> float:
        """Wall seconds of the outermost phases (depth-1 rows)."""
        return sum(st.seconds for path, st in self.stats.items() if len(path) == 1)

    def seconds(self, path: str) -> float:
        """Total seconds accumulated under slash-path *path* (0.0 if absent).

        *path* matches :meth:`as_dict` keys by suffix-free equality or, when
        it names an interior phase (``"bisect/coarsen"``), sums every stack
        whose joined form ends with it — which is what gate checks need:
        ``bisect/coarsen`` appears once per recursive-bisection node.
        """
        want = tuple(path.split("/"))
        total = 0.0
        for p, st in self.stats.items():
            if p == want or (len(p) >= len(want) and p[-len(want):] == want):
                total += st.seconds
        return total

    def as_dict(self) -> dict[str, dict[str, float | int]]:
        """JSON-friendly view: ``"a/b/c" -> {seconds, calls}``."""
        return {
            "/".join(path): {"seconds": st.seconds, "calls": st.calls}
            for path, st in self.stats.items()
        }

    def report(self) -> str:
        """Indented table of every phase path, in first-entry order."""
        if not self.stats:
            return "(no phases recorded)"
        total = self.total_seconds() or 1e-300
        rows = []
        for path, st in self.stats.items():
            label = "  " * (len(path) - 1) + path[-1]
            rows.append(
                (label, f"{st.seconds:12.4f}", f"{st.calls:8d}",
                 f"{100.0 * st.seconds / total:6.1f}%")
            )
        width = max(len(r[0]) for r in rows)
        head = f"{'phase':<{width}} {'seconds':>12} {'calls':>8} {'share':>7}"
        lines = [head, "-" * len(head)]
        lines += [f"{r[0]:<{width}} {r[1]} {r[2]} {r[3]}" for r in rows]
        return "\n".join(lines)


class SpanRecorder:
    """Wall-clock spans of one request's pipeline, exported per request.

    The serve layer (:mod:`repro.serve`) attaches one recorder to every
    request and times its three stations — ``queue`` (arrival to batch
    admission), ``batch`` (waiting for the micro-batch to fill or its
    deadline to fire) and ``compute`` (the shared ``spmm`` flush) — then
    ships the spans back in the response metadata, so a client can see
    where its latency went without server-side log digging. Unlike
    :class:`PhaseProfiler` (one global collector, nested phases), a
    recorder is a per-request value object: many requests record
    concurrently without sharing state.
    """

    __slots__ = ("spans",)

    def __init__(self) -> None:
        #: insertion-ordered mapping ``name -> accumulated seconds``
        self.spans: dict[str, float] = {}

    def add(self, name: str, seconds: float) -> None:
        """Accumulate *seconds* under *name* (repeat names sum)."""
        self.spans[name] = self.spans.get(name, 0.0) + float(seconds)

    def mark_since(self, name: str, t0: float) -> float:
        """Record the span from perf-counter time *t0* to now; return now."""
        now = time.perf_counter()
        self.add(name, now - t0)
        return now

    @contextmanager
    def span(self, name: str):
        """Context manager form of :meth:`mark_since`."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0)

    def as_millis(self, ndigits: int = 4) -> dict[str, float]:
        """JSON-friendly view in milliseconds (response-metadata unit)."""
        return {k: round(v * 1e3, ndigits) for k, v in self.spans.items()}


def active_profiler() -> PhaseProfiler | None:
    """The profiler currently collecting, or None when disabled."""
    return _ACTIVE


def phase(name: str):
    """Context manager timing *name* under the active profiler.

    When no profiler is active this returns a shared no-op instance — the
    disabled cost is one global read plus an empty ``with`` block, which is
    why instrumentation can stay permanently in the partitioner.
    """
    prof = _ACTIVE
    if prof is None:
        return _NULL
    return prof._frame(name)


@contextmanager
def profile():
    """Enable phase collection for the duration of the block.

    Yields the :class:`PhaseProfiler`; nesting :func:`profile` blocks
    restores the previous collector on exit (each block sees only its own
    phases).
    """
    global _ACTIVE
    prev = _ACTIVE
    prof = PhaseProfiler()
    _ACTIVE = prof
    try:
        yield prof
    finally:
        _ACTIVE = prev
