"""Synthetic graph generators.

The paper evaluates on matrices from the UF collection / SNAP plus generated
R-MAT (Graph500 parameters) and BTER matrices. The real datasets are not
redistributable here, so :mod:`repro.generators.corpus` builds scaled-down
*proxies* with matched structural signatures from the generators in this
subpackage (see DESIGN.md section 2 for the substitution argument).

All generators are deterministic given a ``seed`` and return symmetric
unweighted adjacency matrices in canonical CSR form with empty diagonal.
"""

from .rmat import rmat, rmat_edges, GRAPH500_PARAMS
from .chunglu import chung_lu, powerlaw_degree_sequence
from .prefattach import preferential_attachment
from .bter import bter
from .webgraph import webgraph
from .meshes import grid2d, grid3d
from .corpus import corpus_names, load_corpus_matrix, corpus_spec, CorpusSpec

__all__ = [
    "rmat",
    "rmat_edges",
    "GRAPH500_PARAMS",
    "chung_lu",
    "powerlaw_degree_sequence",
    "preferential_attachment",
    "bter",
    "webgraph",
    "grid2d",
    "grid3d",
    "corpus_names",
    "load_corpus_matrix",
    "corpus_spec",
    "CorpusSpec",
]
