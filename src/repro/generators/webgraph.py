"""Synthetic web-crawl graphs with host locality.

Proxy generator for the paper's ``wb-edu`` and ``uk-2005`` inputs. Crawled
web graphs have two properties that matter for data layout and that plain
scale-free generators do not reproduce:

1. **Id-space locality**: pages of one host occupy consecutive vertex ids
   (crawl order), and most links stay within a host. This is why, in the
   paper's Table 2, 1D-Block beats 1D-Random on wb-edu — randomisation
   destroys locality and inflates communication volume.
2. **Power-law host sizes and degrees**, including a handful of enormous
   hub pages (uk-2005 has a row with 1.8M nonzeros).

The generator lays hosts out as contiguous id ranges with power-law sizes,
wires pages within a host densely (Erdős-Rényi with a target intra-host
degree), and adds a Chung-Lu inter-host layer over host-level weights.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graphs.csr import from_edges, drop_diagonal

__all__ = ["webgraph"]


def webgraph(
    n: int,
    mean_degree: float = 20.0,
    host_gamma: float = 1.8,
    mean_host_size: float = 60.0,
    intra_fraction: float = 0.8,
    hub_fraction: float = 0.001,
    hub_degree: int | None = None,
    seed: int | None = 0,
) -> sp.csr_matrix:
    """Generate a host-structured web graph proxy.

    Parameters
    ----------
    n:
        Number of pages (vertices).
    mean_degree:
        Target mean degree of the symmetrised graph.
    host_gamma, mean_host_size:
        Power-law exponent and mean of host sizes.
    intra_fraction:
        Fraction of edge endpoints spent inside hosts (locality knob;
         0.8 reproduces the strongly partitionable character of wb-edu).
    hub_fraction, hub_degree:
        A few pages become crawl hubs with degree ``hub_degree``
        (default ``n // 20``), reproducing the extreme max-nnz/row of
        uk-2005-like crawls.
    seed:
        RNG seed.
    """
    if not 0.0 <= intra_fraction <= 1.0:
        raise ValueError(f"intra_fraction must be in [0,1], got {intra_fraction}")
    rng = np.random.default_rng(seed)

    # --- host size sequence (power law, contiguous id ranges) ---
    sizes: list[int] = []
    total = 0
    while total < n:
        u = rng.random()
        s = int(
            min(
                (1.0 - u) ** (-1.0 / (host_gamma - 1.0)) * mean_host_size * 0.4,
                10 * mean_host_size,  # cap: keeps hosts block-sized so the
                n / 4,  # id-space locality is usable by block layouts
            )
        )
        s = max(s, 2)
        s = min(s, n - total)
        sizes.append(s)
        total += s
    starts = np.concatenate([[0], np.cumsum(sizes)[:-1]]).astype(np.int64)
    sizes_arr = np.array(sizes, dtype=np.int64)

    m_total = int(n * mean_degree / 2.0)
    m_intra = int(m_total * intra_fraction)
    m_inter = m_total - m_intra

    # --- intra-host edges: pick a host weighted by its pair count, then a
    # random pair inside it ---
    pair_counts = sizes_arr * (sizes_arr - 1) // 2
    pw = pair_counts / max(pair_counts.sum(), 1)
    hosts = rng.choice(len(sizes_arr), size=m_intra, p=pw)
    hs, hn = starts[hosts], sizes_arr[hosts]
    intra_src = hs + rng.integers(0, hn)
    intra_dst = hs + rng.integers(0, hn)

    # --- inter-host edges: endpoints Chung-Lu over host weights, vertex
    # uniform within host ---
    hostw = sizes_arr.astype(np.float64)
    hostw /= hostw.sum()
    h1 = rng.choice(len(sizes_arr), size=m_inter, p=hostw)
    h2 = rng.choice(len(sizes_arr), size=m_inter, p=hostw)
    inter_src = starts[h1] + rng.integers(0, sizes_arr[h1])
    inter_dst = starts[h2] + rng.integers(0, sizes_arr[h2])

    # --- hubs: directory/index pages linking very widely ---
    nhubs = max(int(n * hub_fraction), 1)
    hub_deg = hub_degree if hub_degree is not None else max(n // 20, 10)
    hub_ids = rng.choice(n, size=nhubs, replace=False)
    hub_src = np.repeat(hub_ids, hub_deg)
    hub_dst = rng.integers(0, n, size=nhubs * hub_deg)

    src = np.concatenate([intra_src, inter_src, hub_src])
    dst = np.concatenate([intra_dst, inter_dst, hub_dst])
    A = from_edges(src, dst, (n, n), symmetrize=True)
    return drop_diagonal(A)
