"""Chung-Lu random graphs with prescribed expected degrees.

Used to build proxies of the paper's social-network matrices: a power-law
expected-degree sequence of the right exponent and max/mean skew produces a
graph whose *layout-relevant* behaviour (nonzero imbalance under block
layouts, communication structure under partitioning) matches the original.

The sampler is the standard fast "edge-list" approximation: draw
``m = sum(w)/2`` edges with both endpoints sampled proportionally to the
weight vector ``w`` and collapse duplicates. For sparse graphs this matches
the Chung-Lu model closely and is fully vectorised.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graphs.csr import from_edges, drop_diagonal

__all__ = ["chung_lu", "powerlaw_degree_sequence"]


def powerlaw_degree_sequence(
    n: int,
    gamma: float,
    mean_degree: float,
    max_degree: int | None = None,
    seed: int | None = 0,
) -> np.ndarray:
    """Expected-degree sequence following a power law ``P(d) ~ d^-gamma``.

    Degrees are drawn from a discrete Pareto tail then rescaled to hit the
    requested *mean_degree* exactly (in expectation); a ``max_degree`` cap
    reproduces the max-nnz/row column of the paper's Table 1.

    Returns a float64 array of length *n*, sorted descending so that hub
    vertices get low ids (matching the hub-at-low-id structure of R-MAT and
    of crawled web graphs, which is what stresses 1D-Block layouts).
    """
    if gamma <= 1.0:
        raise ValueError(f"power-law exponent must be > 1, got {gamma}")
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    rng = np.random.default_rng(seed)
    # inverse-CDF sampling of a Pareto with shape (gamma - 1), min 1
    u = rng.random(n)
    w = (1.0 - u) ** (-1.0 / (gamma - 1.0))
    if max_degree is not None:
        w = np.minimum(w, float(max_degree) / max(mean_degree / w.mean(), 1e-12))
    w *= mean_degree / w.mean()
    if max_degree is not None:
        w = np.minimum(w, float(max_degree))
    # cap at n-1: no vertex can exceed simple-graph degree
    w = np.minimum(w, float(n - 1))
    return np.sort(w)[::-1].copy()


def chung_lu(
    weights: np.ndarray,
    seed: int | None = 0,
    edge_multiplier: float = 1.0,
) -> sp.csr_matrix:
    """Symmetric Chung-Lu graph for expected-degree vector *weights*.

    Parameters
    ----------
    weights:
        Non-negative expected degrees, length n.
    seed:
        RNG seed.
    edge_multiplier:
        Scales the number of sampled edges; >1 compensates for duplicate
        collapse when the weight distribution is very skewed.

    Returns
    -------
    Canonical CSR adjacency matrix (symmetric pattern, empty diagonal).
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1 or (w < 0).any():
        raise ValueError("weights must be a 1-D non-negative array")
    total = w.sum()
    if total <= 0:
        n = len(w)
        return sp.csr_matrix((n, n), dtype=np.float64)
    rng = np.random.default_rng(seed)
    m = int(edge_multiplier * total / 2.0)
    p = w / total
    src = rng.choice(len(w), size=m, p=p)
    dst = rng.choice(len(w), size=m, p=p)
    n = len(w)
    A = from_edges(src, dst, (n, n), symmetrize=True)
    return drop_diagonal(A)
