"""The proxy corpus: scaled-down stand-ins for the paper's ten matrices.

The paper's inputs (Table 1) range from 37M to 1.6B nonzeros and are not
redistributable / not tractable on a single core. Each proxy here is
generated with matched *structural signature* — degree-distribution
exponent, max/mean degree skew, clustering and id-space locality style —
at roughly 1/250 scale, because those signatures (not raw size) determine
how the six data layouts rank against each other. Process counts in the
benches are scaled by the same factor (paper 64..16384 -> ours 4..1024),
keeping nonzeros-per-process in a comparable regime.

Every proxy is deterministic (fixed seed) so benchmark tables are stable
across runs and machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from collections.abc import Callable

import scipy.sparse as sp

from .bter import bter
from .prefattach import preferential_attachment
from .rmat import rmat
from .webgraph import webgraph

__all__ = ["CorpusSpec", "corpus_names", "corpus_spec", "load_corpus_matrix", "CORPUS"]


@dataclass(frozen=True)
class CorpusSpec:
    """Description of one proxy matrix.

    ``paper_rows``/``paper_nnz``/``paper_max_row`` record the original
    matrix's Table-1 statistics for side-by-side reporting in
    EXPERIMENTS.md. ``partitioner`` records which method the paper used for
    the GP/HP layouts on this matrix ("gp" = ParMETIS graph partitioning,
    "hp" = Zoltan hypergraph partitioning).
    """

    name: str
    description: str
    builder: Callable[[], sp.csr_matrix] = field(repr=False)
    partitioner: str = "gp"
    paper_rows: int = 0
    paper_nnz: int = 0
    paper_max_row: int = 0


def _hollywood() -> sp.csr_matrix:
    # movie-actor collaboration net: extreme clustering (co-casts form
    # cliques), hubs, gamma ~ 2; known in the paper for extreme vector
    # imbalance under nnz-balanced GP
    return bter(8000, gamma=2.0, mean_degree=56.0, max_degree=1400,
                max_clustering=0.97, clustering_decay=0.25, seed=101)


def _orkut() -> sp.csr_matrix:
    # social networks have dense community structure on top of the
    # power-law tail (a pure Chung-Lu draw would leave graph partitioners
    # nothing to exploit, unlike the real com-orkut)
    return bter(12000, gamma=2.3, mean_degree=44.0, max_degree=2400,
                max_clustering=0.8, clustering_decay=0.35, seed=202)


def _patents() -> sp.csr_matrix:
    # citation network: modest skew (paper max/mean ~ 100), no giant hubs
    return preferential_attachment(24000, m=5, seed=303)


def _livejournal() -> sp.csr_matrix:
    # blogging network: communities + power-law tail (see _orkut note)
    return bter(20000, gamma=2.5, mean_degree=18.0, max_degree=1800,
                max_clustering=0.75, clustering_decay=0.35, seed=404)


def _wbedu() -> sp.csr_matrix:
    # *.edu crawl: strong host locality -> highly partitionable; this is the
    # matrix where randomisation *hurts* in the paper
    return webgraph(24000, mean_degree=11.0, intra_fraction=0.85,
                    hub_fraction=0.0005, hub_degree=1200, seed=505)


def _uk2005() -> sp.csr_matrix:
    # *.uk crawl: locality plus extreme hub rows (paper: 1.8M-nonzero row)
    return webgraph(32000, mean_degree=26.0, intra_fraction=0.8,
                    hub_fraction=0.0002, hub_degree=8000, seed=606)


def _bter() -> sp.csr_matrix:
    return bter(16000, gamma=1.9, mean_degree=16.0, max_degree=4000, seed=707)


CORPUS: dict[str, CorpusSpec] = {
    "hollywood-2009": CorpusSpec(
        "hollywood-2009", "Hollywood movie actor network (proxy)",
        _hollywood, "gp", 1_100_000, 114_000_000, 12_000),
    "com-orkut": CorpusSpec(
        "com-orkut", "Orkut social network (proxy)",
        _orkut, "gp", 3_100_000, 237_000_000, 33_000),
    "cit-Patents": CorpusSpec(
        "cit-Patents", "US patent citation network (proxy)",
        _patents, "gp", 3_800_000, 37_000_000, 1_000),
    "com-liveJournal": CorpusSpec(
        "com-liveJournal", "LiveJournal social network (proxy)",
        _livejournal, "gp", 4_000_000, 73_000_000, 15_000),
    "wb-edu": CorpusSpec(
        "wb-edu", "Crawl of *.edu web pages (proxy)",
        _wbedu, "gp", 9_800_000, 102_000_000, 26_000),
    # the paper used HP here only because ParMETIS could not handle the
    # 39.5M-row original; the 32k-row proxy is graph-partitioner-tractable,
    # so we use GP (the Table-2 column is "GP/HP" either way)
    "uk-2005": CorpusSpec(
        "uk-2005", "Crawl of *.uk domain (proxy)",
        _uk2005, "gp", 39_500_000, 1_600_000_000, 1_800_000),
    "bter": CorpusSpec(
        "bter", "Block Two-Level Erdos-Renyi, gamma=1.9 (proxy)",
        _bter, "gp", 3_900_000, 63_000_000, 790_000),
    # edge factor 5 matches the paper's realized R-MAT density (their
    # rmat_22: 38M nnz / 4.2M rows -> mean degree ~9, i.e. ~4.5 directed
    # edges per vertex after dedup); denser proxies would hide the fringe
    # structure hypergraph partitioning exploits
    "rmat_22": CorpusSpec(
        "rmat_22", "Graph500 R-MAT scale-22 (proxy: scale 13)",
        lambda: rmat(scale=13, edge_factor=5, seed=808),
        "hp", 4_200_000, 38_000_000, 60_000),
    "rmat_24": CorpusSpec(
        "rmat_24", "Graph500 R-MAT scale-24 (proxy: scale 15)",
        lambda: rmat(scale=15, edge_factor=5, seed=809),
        "hp", 16_800_000, 151_000_000, 147_000),
    "rmat_26": CorpusSpec(
        "rmat_26", "Graph500 R-MAT scale-26 (proxy: scale 17)",
        lambda: rmat(scale=17, edge_factor=5, seed=810),
        "hp", 67_100_000, 604_000_000, 359_000),
}


def corpus_names() -> list[str]:
    """Names of the ten proxy matrices, in the paper's Table-1 order."""
    return list(CORPUS)


def corpus_spec(name: str) -> CorpusSpec:
    """Spec for one proxy; raises ``KeyError`` with the valid names."""
    try:
        return CORPUS[name]
    except KeyError:
        raise KeyError(f"unknown corpus matrix {name!r}; valid: {corpus_names()}") from None


@lru_cache(maxsize=None)
def load_corpus_matrix(name: str) -> sp.csr_matrix:
    """Build (and cache) the proxy matrix *name*."""
    return corpus_spec(name).builder()
