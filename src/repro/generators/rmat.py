"""R-MAT recursive matrix generator (Chakrabarti, Zhan, Faloutsos, 2004).

The paper's rmat_22/24/26 inputs use the Graph500 benchmark parameters
``a=0.57, b=c=0.19, d=0.05``. R-MAT drops each edge into one quadrant of the
adjacency matrix recursively, ``scale`` times, which yields a heavy-tailed
degree distribution with hubs concentrated at low vertex ids — exactly the
property that makes 1D-Block layouts badly imbalanced in the paper's
experiments.

The implementation is fully vectorised: one random draw per (edge, bit)
decides the quadrant at that recursion level for every edge at once.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graphs.csr import from_edges, drop_diagonal

__all__ = ["rmat", "rmat_edges", "GRAPH500_PARAMS"]

#: Graph500 / paper parameter setting (a, b, c, d).
GRAPH500_PARAMS: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05)


def rmat_edges(
    scale: int,
    edge_factor: int = 8,
    params: tuple[float, float, float, float] = GRAPH500_PARAMS,
    seed: int | None = 0,
    noise: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate the raw (directed, possibly duplicated) R-MAT edge list.

    Parameters
    ----------
    scale:
        ``n = 2**scale`` vertices.
    edge_factor:
        ``m = edge_factor * n`` edges before dedup/symmetrisation
        (Graph500 uses 16; the paper's matrices have edge factors ~9).
    params:
        Quadrant probabilities ``(a, b, c, d)``; must sum to 1.
    seed:
        Seed for :class:`numpy.random.Generator`; identical seeds give
        identical graphs.
    noise:
        Optional per-level multiplicative jitter on (a, b, c, d) (the
        "smoothing" variant of Graph500); 0 reproduces classic R-MAT.

    Returns
    -------
    (rows, cols):
        int64 arrays of length ``m``.
    """
    a, b, c, d = params
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError(f"R-MAT params must sum to 1, got {a + b + c + d}")
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    rng = np.random.default_rng(seed)
    m = edge_factor << scale
    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        if noise > 0.0:
            # jitter then renormalise so each level keeps a valid distribution
            jitter = 1.0 + noise * rng.uniform(-1.0, 1.0, size=4)
            pa, pb, pc_, pd = np.array([a, b, c, d]) * jitter
            s = pa + pb + pc_ + pd
            pa, pb, pc_ = pa / s, pb / s, pc_ / s
        else:
            pa, pb, pc_ = a, b, c
        u = rng.random(m)
        # quadrant thresholds: [0,a) -> (0,0), [a,a+b) -> (0,1),
        # [a+b,a+b+c) -> (1,0), rest -> (1,1)
        right = (u >= pa) & (u < pa + pb) | (u >= pa + pb + pc_)
        down = u >= pa + pb
        bit = np.int64(1) << (scale - 1 - level)
        rows += down * bit
        cols += right * bit
    # random vertex relabeling is deliberately NOT applied: the paper relies
    # on hub concentration at low ids to expose 1D-Block imbalance.
    return rows, cols


def rmat(
    scale: int,
    edge_factor: int = 8,
    params: tuple[float, float, float, float] = GRAPH500_PARAMS,
    seed: int | None = 0,
    noise: float = 0.0,
) -> sp.csr_matrix:
    """Symmetric R-MAT adjacency matrix ``A + A^T`` (pattern, no diagonal).

    Duplicate edges are collapsed, so the realised number of nonzeros is
    somewhat below ``2 * edge_factor * 2**scale``.
    """
    rows, cols = rmat_edges(scale, edge_factor, params, seed, noise)
    n = 1 << scale
    A = from_edges(rows, cols, (n, n), symmetrize=True)
    return drop_diagonal(A)
