"""Regular mesh graphs.

The paper repeatedly contrasts scale-free graphs with mesh-based
scientific-computing graphs ("randomization is a poor load balancing method
for finite elements"). These generators supply that contrast case for tests
and ablation benches: on meshes, graph partitioning should crush random and
block layouts on communication volume.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graphs.csr import from_edges

__all__ = ["grid2d", "grid3d"]


def grid2d(nx: int, ny: int) -> sp.csr_matrix:
    """5-point-stencil grid graph on an ``nx x ny`` lattice."""
    if nx < 1 or ny < 1:
        raise ValueError(f"grid dimensions must be positive, got {nx}x{ny}")
    idx = np.arange(nx * ny, dtype=np.int64).reshape(nx, ny)
    right_s, right_d = idx[:, :-1].ravel(), idx[:, 1:].ravel()
    down_s, down_d = idx[:-1, :].ravel(), idx[1:, :].ravel()
    src = np.concatenate([right_s, down_s])
    dst = np.concatenate([right_d, down_d])
    return from_edges(src, dst, (nx * ny, nx * ny), symmetrize=True)


def grid3d(nx: int, ny: int, nz: int) -> sp.csr_matrix:
    """7-point-stencil grid graph on an ``nx x ny x nz`` lattice."""
    if min(nx, ny, nz) < 1:
        raise ValueError(f"grid dimensions must be positive, got {nx}x{ny}x{nz}")
    idx = np.arange(nx * ny * nz, dtype=np.int64).reshape(nx, ny, nz)
    pairs = [
        (idx[:, :, :-1], idx[:, :, 1:]),
        (idx[:, :-1, :], idx[:, 1:, :]),
        (idx[:-1, :, :], idx[1:, :, :]),
    ]
    src = np.concatenate([a.ravel() for a, _ in pairs])
    dst = np.concatenate([b.ravel() for _, b in pairs])
    n = nx * ny * nz
    return from_edges(src, dst, (n, n), symmetrize=True)
