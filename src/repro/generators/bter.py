"""BTER — Block Two-Level Erdős-Rényi (Seshadhri, Kolda, Pinar 2012).

The paper's ``bter`` input (Table 1) is a BTER matrix with power-law degree
distribution gamma = 1.9 used in community-detection work. BTER reproduces
both a target degree distribution and a target clustering-coefficient
profile by combining:

phase 1
    *affinity blocks* — groups of similar-degree vertices wired internally
    as dense Erdős-Rényi blocks (this supplies community structure and
    clustering), and
phase 2
    a Chung-Lu pass over the *excess* degrees (this supplies the global
    power-law tail).

Both phases are vectorised; phase 1 samples a binomial number of edges per
block instead of testing each pair.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graphs.csr import from_edges, drop_diagonal
from .chunglu import chung_lu, powerlaw_degree_sequence

__all__ = ["bter"]


def _affinity_blocks(deg_sorted_asc: np.ndarray) -> list[tuple[int, int]]:
    """Group vertices (sorted by degree ascending) into affinity blocks.

    Standard BTER blocking: a block starting at a vertex of degree d gets
    d + 1 members, so that a fully-wired block realises that degree
    internally. Returns a list of (start, stop) index ranges.
    """
    blocks: list[tuple[int, int]] = []
    n = len(deg_sorted_asc)
    i = 0
    while i < n:
        d = max(int(round(deg_sorted_asc[i])), 1)
        j = min(i + d + 1, n)
        blocks.append((i, j))
        i = j
    return blocks


def bter(
    n: int,
    gamma: float = 1.9,
    mean_degree: float = 16.0,
    max_degree: int | None = None,
    max_clustering: float = 0.95,
    clustering_decay: float = 0.5,
    seed: int | None = 0,
) -> sp.csr_matrix:
    """Generate a BTER graph.

    Parameters
    ----------
    n, gamma, mean_degree, max_degree:
        Power-law degree target (gamma=1.9 matches the paper's bter input).
    max_clustering:
        Target local clustering for the lowest-degree blocks.
    clustering_decay:
        Exponent of the clustering fall-off ``c(d) ~ max_clustering /
        (1 + d)**clustering_decay``; higher values concentrate clustering in
        low-degree communities.
    seed:
        RNG seed; splits deterministically across the internal phases.

    Returns
    -------
    Canonical symmetric CSR adjacency (no diagonal).
    """
    rng = np.random.default_rng(seed)
    w = powerlaw_degree_sequence(n, gamma, mean_degree, max_degree, seed=rng.integers(2**31))
    # ascending order so blocks group similar low degrees together;
    # remember mapping back to the hub-first vertex numbering
    order = np.argsort(w, kind="stable")  # ascending
    deg_asc = w[order]

    blocks = _affinity_blocks(deg_asc)
    rows_parts: list[np.ndarray] = []
    cols_parts: list[np.ndarray] = []
    internal_degree = np.zeros(n, dtype=np.float64)

    for start, stop in blocks:
        nb = stop - start
        if nb < 2:
            continue
        dmin = max(deg_asc[start], 1.0)
        c_target = max_clustering / (1.0 + dmin) ** clustering_decay
        # ER block with connection prob rho: expected clustering = rho, so
        # rho = c_target^(1/3) is the standard BTER choice (triangles close
        # at rate rho^3 relative to wedges at rho^2).
        rho = min(float(c_target) ** (1.0 / 3.0), 1.0)
        npairs = nb * (nb - 1) // 2
        nedges = rng.binomial(npairs, rho)
        if nedges == 0:
            continue
        # sample distinct pair indices then decode to (i < j) within block
        pair_ids = rng.choice(npairs, size=min(nedges, npairs), replace=False)
        # decode linear upper-triangle index to (i, j)
        i_loc = (nb - 2 - np.floor(
            np.sqrt(-8.0 * pair_ids + 4.0 * nb * (nb - 1) - 7) / 2.0 - 0.5
        )).astype(np.int64)
        j_loc = (pair_ids + i_loc + 1 - (i_loc * (2 * nb - i_loc - 1)) // 2).astype(np.int64)
        gi = order[start + i_loc]
        gj = order[start + j_loc]
        rows_parts.append(gi)
        cols_parts.append(gj)
        internal_degree[order[start:stop]] += rho * (nb - 1)

    # phase 2: Chung-Lu on the excess degrees
    excess = np.maximum(w - internal_degree, 0.0)
    cl = chung_lu(excess, seed=int(rng.integers(2**31)))

    if rows_parts:
        rows = np.concatenate(rows_parts)
        cols = np.concatenate(cols_parts)
        phase1 = from_edges(rows, cols, (n, n), symmetrize=True)
        A = from_edges(
            np.concatenate([phase1.tocoo().row, cl.tocoo().row]),
            np.concatenate([phase1.tocoo().col, cl.tocoo().col]),
            (n, n),
        )
    else:
        A = cl
    return drop_diagonal(A)
