"""Barabási-Albert preferential attachment.

Yoo et al. [34] (the paper's main point of comparison) evaluated on
preferential-attachment graphs; we provide the generator both for proxy
construction and for the related-work comparison benches.

The implementation uses the classic repeated-endpoints trick: sampling a
uniform element of the running endpoint list is equivalent to sampling a
vertex proportionally to its current degree. Vertices are added one at a
time (the process is inherently sequential) but each step is O(m) numpy
work, which is fast enough for proxy-scale graphs (n <= ~1e5).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graphs.csr import from_edges, drop_diagonal

__all__ = ["preferential_attachment"]


def preferential_attachment(n: int, m: int, seed: int | None = 0) -> sp.csr_matrix:
    """Barabási-Albert graph: *n* vertices, *m* edges per new vertex.

    The first ``m + 1`` vertices form a clique seed so every new vertex has
    enough distinct targets. Returns a symmetric CSR adjacency matrix.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if n <= m:
        raise ValueError(f"need n > m, got n={n}, m={m}")
    rng = np.random.default_rng(seed)

    seed_n = m + 1
    seed_src, seed_dst = np.triu_indices(seed_n, k=1)
    total_edges = len(seed_src) + (n - seed_n) * m
    src = np.empty(total_edges, dtype=np.int64)
    dst = np.empty(total_edges, dtype=np.int64)
    src[: len(seed_src)] = seed_src
    dst[: len(seed_src)] = seed_dst
    pos = len(seed_src)

    # endpoint pool: every edge contributes both endpoints, so uniform picks
    # from the pool are degree-proportional picks of vertices
    pool = np.empty(2 * total_edges, dtype=np.int64)
    pool[: 2 * pos : 2] = seed_src
    pool[1 : 2 * pos : 2] = seed_dst
    pool_len = 2 * pos

    for v in range(seed_n, n):
        # sample until m *distinct* targets; the loop almost never repeats
        # because collisions are rare for m << pool_len
        targets = np.unique(pool[rng.integers(0, pool_len, size=m)])
        while len(targets) < m:
            extra = pool[rng.integers(0, pool_len, size=m - len(targets))]
            targets = np.unique(np.concatenate([targets, extra]))
        targets = targets[:m]
        src[pos : pos + m] = v
        dst[pos : pos + m] = targets
        pool[pool_len : pool_len + 2 * m : 2] = v
        pool[pool_len + 1 : pool_len + 2 * m : 2] = targets
        pool_len += 2 * m
        pos += m

    A = from_edges(src, dst, (n, n), symmetrize=True)
    return drop_diagonal(A)
