"""Figure 9 — eigensolver strong scaling for three matrices.

Same data as Table 4, plotted as scaling series. Expected shape (mirrors
Figure 5): 1D methods stop scaling above mid-range p, 2D methods keep
scaling to the largest p.
"""

from collections import defaultdict

from conftest import EIGEN_MATRICES, write_result

from repro.bench import format_table


def test_fig9_eigen_scaling(benchmark, table4_records):
    def series():
        out = defaultdict(dict)
        for r in table4_records:
            out[(r.matrix, r.method)][r.nprocs] = r.solve_time
        return dict(out)

    data = benchmark(series)
    procs = sorted({p for d in data.values() for p in d})
    rows = [
        (m, meth) + tuple(f"{d[p]:.4f}" for p in procs)
        for (m, meth), d in sorted(data.items())
    ]
    table = format_table(["matrix", "method"] + [f"p={p}" for p in procs], rows)
    path = write_result("fig9_eigen_scaling", table)
    print(f"\n[Figure 9] eigensolver strong scaling (written to {path})\n{table}")

    for matrix in EIGEN_MATRICES:
        ours = "2D-GP-MC" if (matrix, "2D-GP-MC") in data else "2D-HP"
        best2d = data[(matrix, ours)]
        oned = data[(matrix, "1D-Block")]
        # 2D keeps improving (or holds) from p=16 to p=256...
        assert best2d[256] < 1.1 * best2d[16]
        # ...and ends far ahead of 1D-Block
        assert best2d[256] < 0.6 * oned[256]
        # 1D scaling is gone at the top end
        assert oned[256] > 0.9 * oned[64]
