"""Table 1 — input matrices and their statistics.

Paper Table 1 lists the ten inputs with #rows, #nonzeros and max
nonzeros/row. This bench regenerates the table for the proxy corpus and
prints the paper's original numbers alongside, making the 1/250-scale
substitution explicit.
"""

from conftest import write_result

from repro.bench import format_table
from repro.generators import corpus_names, corpus_spec, load_corpus_matrix
from repro.graphs import graph_stats


def _build_table() -> str:
    rows = []
    for name in corpus_names():
        spec = corpus_spec(name)
        s = graph_stats(load_corpus_matrix(name), name)
        rows.append(
            (
                name,
                s.n_rows,
                s.n_nonzeros,
                s.max_nnz_per_row,
                f"{s.powerlaw_gamma:.2f}",
                f"{s.skew:.0f}",
                spec.paper_rows,
                spec.paper_nnz,
                spec.paper_max_row,
            )
        )
    return format_table(
        ["matrix", "rows", "nnz", "max/row", "gamma", "skew",
         "paper rows", "paper nnz", "paper max/row"],
        rows,
    )


def test_table1_corpus_stats(benchmark):
    table = benchmark(_build_table)
    path = write_result("table1_corpus", table)
    print(f"\n[Table 1] input matrices (written to {path})\n{table}")
    # every proxy must actually be heavy-tailed, or the study is void
    for name in corpus_names():
        assert graph_stats(load_corpus_matrix(name)).skew > 5
