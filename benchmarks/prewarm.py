"""Pre-warm the partition cache for the benchmark suite.

The paper treats partitioning as a reusable pre-processing step done on a
workstation ("partitions might be reused for several analyses"); this
script is that step. Run it once before ``pytest benchmarks/``:

    python benchmarks/prewarm.py

Partitions land in the on-disk cache (see
:func:`repro.bench.default_cache_dir`), after which the bench suite only
evaluates layouts — minutes instead of an hour.
"""

from __future__ import annotations

import sys
import time

from repro.bench import cached_rpart, PROXY_PROCS
from repro.bench.eigen import profiles_for
from repro.generators import corpus_names, corpus_spec, load_corpus_matrix

#: matrices whose Table-2 row extends to the 16K-process platform section
SCALE_16K = {"com-liveJournal", "uk-2005"}
#: eigensolver experiment matrices (paper Tables 4-5, Figure 9)
EIGEN_MATRICES = ("hollywood-2009", "com-orkut", "rmat_26")


def main() -> int:
    t0 = time.time()
    pmax = max(PROXY_PROCS)
    for name in corpus_names():
        spec = corpus_spec(name)
        A = load_corpus_matrix(name)
        # all partitions nest from the largest k (the harness repairs
        # balance at each derived k), so one run per matrix suffices
        ks = [pmax]
        if name in SCALE_16K:
            ks.append(1024)
        for k in ks:
            t = time.time()
            cached_rpart(A, spec.partitioner, k, seed=0)
            print(f"{name:16s} {spec.partitioner:5s} k={k:5d}  {time.time() - t:6.1f}s", flush=True)
    for name in EIGEN_MATRICES:
        if corpus_spec(name).partitioner == "gp":  # MC needs the graph path
            A = load_corpus_matrix(name)
            t = time.time()
            cached_rpart(A, "gp-mc", pmax, seed=0)
            print(f"{name:16s} gp-mc k={pmax:5d}  {time.time() - t:6.1f}s", flush=True)
        t = time.time()
        profiles_for(name, k=10, tol=1e-3, nstarts=3)
        print(f"{name:16s} eigensolve profiles  {time.time() - t:6.1f}s", flush=True)
    print(f"total {time.time() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
