"""Table 3 — communication metrics for com-liveJournal.

Per (method, p): nonzero imbalance, max messages per process per SpMV,
total communication volume (doubles), and the 100-SpMV time. These are
exact machine-independent quantities; the paper uses them to argue that
message count, not volume, drives SpMV time at scale:

* 1D max messages approach p-1, 2D approach 2*sqrt(p)-2;
* randomisation fixes imbalance but inflates volume;
* GP lowers volume below both block and random in 1D and 2D.
"""

from conftest import methods_for, write_result

from repro.bench import format_table, spmv_grid

MATRIX = "com-liveJournal"


def test_table3_livejournal_metrics(benchmark):
    methods = methods_for(MATRIX)

    def run():
        return spmv_grid([MATRIX], methods, procs=(4, 16, 64, 256))

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (r.nprocs, r.method, f"{r.stats.nnz_imbalance:.1f}", r.stats.max_messages,
         r.stats.total_comm_volume, f"{r.time100:.4f}")
        for r in sorted(records, key=lambda r: (r.nprocs, r.method))
    ]
    table = format_table(["p", "method", "imbal(nz)", "max msgs", "total CV", "t100"], rows)
    path = write_result("table3_livejournal", table)
    print(f"\n[Table 3] com-liveJournal metrics (written to {path})\n{table}")

    by = {(r.nprocs, r.method): r for r in records}
    for p, grid_bound in ((4, 2), (16, 6), (64, 14), (256, 30)):
        # paper's two message-count regimes
        assert by[(p, "1D-Block")].stats.max_messages <= p - 1
        assert by[(p, "2D-GP")].stats.max_messages <= grid_bound
        # randomisation: volume up, imbalance down (section 2.4)
        assert (by[(p, "1D-Random")].stats.total_comm_volume
                > by[(p, "1D-Block")].stats.total_comm_volume)
        # partitioning lowers volume below random in both 1D and 2D
        assert (by[(p, "1D-GP")].stats.total_comm_volume
                < by[(p, "1D-Random")].stats.total_comm_volume)
        assert (by[(p, "2D-GP")].stats.total_comm_volume
                < by[(p, "2D-Random")].stats.total_comm_volume)
    # at the largest p, message counts (2D) beat volume (1D-GP has least CV
    # among 1D but still loses to every 2D layout on time)
    t = {m: by[(256, m)].time100 for m in ("1D-GP", "2D-Block", "2D-Random", "2D-GP")}
    assert t["1D-GP"] > max(t["2D-Block"], t["2D-Random"], t["2D-GP"])
