"""Ablation — the (phi, psi) orientation choice of section 3.1.

Algorithm 2 admits two orientations (phi and psi may be interchanged); the
paper proposes evaluating several 2D distributions from one partition and
keeping the best, noting the evaluation cost is negligible next to
partitioning. This bench quantifies that option across the corpus: the
realised nonzero balance of fixed vs swapped vs pick-best, and the modeled
SpMV time of each.
"""

from conftest import write_result

from repro.bench import format_table, run_spmv_cell
from repro.generators import corpus_names, corpus_spec, load_corpus_matrix

P = 64


def test_ablation_phi_psi_orientation(benchmark):
    def run():
        out = []
        for name in corpus_names():
            A = load_corpus_matrix(name)
            method = f"2d-{corpus_spec(name).partitioner}"
            recs = {
                o: run_spmv_cell(A, name, method, P, validate=False,
                                 nested_from=256, orientation=o)
                for o in ("fixed", "swapped", "best")
            }
            out.append((name, recs))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, recs in results:
        rows.append(
            (name,)
            + tuple(f"{recs[o].stats.nnz_imbalance:.2f}" for o in ("fixed", "swapped", "best"))
            + tuple(f"{recs[o].time100:.4f}" for o in ("fixed", "swapped", "best"))
        )
    table = format_table(
        ["matrix", "imb fixed", "imb swapped", "imb best",
         "t100 fixed", "t100 swapped", "t100 best"],
        rows,
    )
    path = write_result("ablation_phipsi", table)
    print(f"\n[Ablation] phi/psi orientation at p={P} (written to {path})\n{table}")

    for _name, recs in results:
        imb = {o: recs[o].stats.nnz_imbalance for o in ("fixed", "swapped", "best")}
        # pick-best delivers exactly what it promises: the better balance
        assert imb["best"] <= min(imb["fixed"], imb["swapped"]) + 1e-9
        # and never a slower SpMV than the worse orientation
        t = {o: recs[o].time100 for o in ("fixed", "swapped", "best")}
        assert t["best"] <= max(t["fixed"], t["swapped"]) + 1e-12
