"""Ablation — partitioner quality and the paper's 'contrary to popular
belief' finding.

Section 5.2: "while graph and hypergraph partitioning often have been
thought to be ineffective for scale-free graphs, we found them almost
always to be beneficial." This bench isolates the partitioners themselves:
edge cut / connectivity volume vs a random baseline, on a mesh (the
classic easy case), on structured scale-free proxies (the paper's finding)
and on pure R-MAT (the genuinely hard case, where gains are modest).

It also reports partitioner wall-clock, documenting the pre-processing
cost the paper discusses in section 5.1.
"""

import time

import numpy as np
from conftest import write_result

from repro.bench import format_table
from repro.generators import grid2d, load_corpus_matrix
from repro.partitioning import PartGraph, partition_matrix

K = 16
CASES = (
    ("mesh-64x64", lambda: grid2d(64, 64), "gp"),
    ("wb-edu", lambda: load_corpus_matrix("wb-edu"), "gp"),
    ("com-orkut", lambda: load_corpus_matrix("com-orkut"), "gp"),
    ("bter", lambda: load_corpus_matrix("bter"), "gp"),
    ("rmat_22", lambda: load_corpus_matrix("rmat_22"), "hp"),
)


def test_ablation_partitioner_quality(benchmark):
    def run():
        out = []
        for name, build, kind in CASES:
            A = build()
            g = PartGraph.from_matrix(A, "nnz")
            t0 = time.time()
            res = partition_matrix(A, K, method=kind, seed=0)
            elapsed = time.time() - t0
            rnd = np.random.default_rng(0).integers(0, K, g.n)
            out.append((name, kind, g.edgecut(res.part), g.edgecut(rnd),
                        res.imbalance[0], elapsed))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (name, kind, f"{cut:.0f}", f"{rcut:.0f}", f"{cut / rcut:.2f}",
         f"{imb:.2f}", f"{t:.1f}s")
        for name, kind, cut, rcut, imb, t in results
    ]
    table = format_table(
        ["graph", "method", "cut", "random cut", "ratio", "imbal", "time"], rows
    )
    path = write_result("ablation_partitioners", table)
    print(f"\n[Ablation] partitioner quality at k={K} (written to {path})\n{table}")

    ratio = {name: cut / rcut for name, _, cut, rcut, _, _ in results}
    assert ratio["mesh-64x64"] < 0.15  # meshes: partitioning crushes random
    # the paper's finding: real scale-free graphs retain usable structure
    assert ratio["wb-edu"] < 0.7
    assert ratio["com-orkut"] < 0.9
    assert ratio["bter"] < 0.9
    # R-MAT is the known-hard case; gains exist but are modest
    assert ratio["rmat_22"] < 1.0
