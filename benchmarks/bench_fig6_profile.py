"""Figure 6 — performance profile over all instances.

Fraction of (matrix, p) instances on which each method's 100-SpMV time is
within a factor x of the best method's. The paper reads off: 2D-GP/HP best
on 97.5% of instances; 1D-GP/HP within 2x of best on only 40% of them.
"""

from conftest import write_result

from repro.bench import format_table, fraction_best, performance_profile, profile_value_at

XS = (1.0, 1.5, 2.0, 3.0, 5.0, 10.0)


def _norm_method(m: str) -> str:
    return m.replace("-GP", "-GP/HP").replace("-HP", "-GP/HP") if m.endswith(("-GP", "-HP")) else m


def test_fig6_performance_profile(benchmark, table2_records):
    def compute():
        return performance_profile(
            table2_records, method_of=lambda r: _norm_method(r.method)
        )

    prof = benchmark(compute)
    rows = [
        (m,) + tuple(f"{profile_value_at(prof, m, x):.3f}" for x in XS)
        for m in sorted(prof)
    ]
    table = format_table(["method"] + [f"x={x}" for x in XS], rows)
    path = write_result("fig6_profile", table)
    print(f"\n[Figure 6] performance profile (written to {path})\n{table}")

    # 2D-GP/HP dominates the profile pointwise and is nearly always within
    # 15% of the best method. The *strictly best* fraction is lower than
    # the paper's 97.5% because proxy-scale margins compress to near-ties
    # at small p (EXPERIMENTS.md section 0).
    assert fraction_best(prof, "2D-GP/HP") >= 0.35
    assert profile_value_at(prof, "2D-GP/HP", 1.15) > 0.85
    # every other method's curve sits below 2D-GP/HP's everywhere
    for m in prof:
        if m != "2D-GP/HP":
            for x in XS:
                assert profile_value_at(prof, m, x) <= profile_value_at(prof, "2D-GP/HP", x) + 1e-9
