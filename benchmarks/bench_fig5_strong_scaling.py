"""Figure 5 — strong scaling of 100 SpMV for three matrices.

The paper plots com-orkut, cit-Patents and rmat_26 from 64 to 4096
processes (ours: 4 to 256): all methods scale to mid-range p, then 1D
flattens or turns upward while 2D keeps scaling; 2D-GP/HP sits lowest.
"""

from collections import defaultdict

from conftest import write_result

from repro.bench import format_table

FIG5_MATRICES = ("com-orkut", "cit-Patents", "rmat_26")


def test_fig5_strong_scaling(benchmark, table2_records):
    def series():
        out = defaultdict(dict)  # (matrix, method) -> {p: t}
        for r in table2_records:
            if r.matrix in FIG5_MATRICES:
                out[(r.matrix, r.method)][r.nprocs] = r.time100
        return dict(out)

    data = benchmark(series)
    procs = sorted({p for d in data.values() for p in d})
    rows = [
        (m, meth) + tuple(f"{d[p]:.4f}" for p in procs)
        for (m, meth), d in sorted(data.items())
    ]
    table = format_table(["matrix", "method"] + [f"p={p}" for p in procs], rows)
    path = write_result("fig5_strong_scaling", table)
    print(f"\n[Figure 5] strong scaling series (written to {path})\n{table}")

    for matrix in FIG5_MATRICES:
        oned = data[(matrix, "1D-Block")]
        twod = [d for (m, meth), d in data.items() if m == matrix and meth.startswith("2D-")]
        # 1D loses scaling by the largest p...
        assert oned[256] > oned[64]
        # ...while every 2D layout still scales to p=64 and at worst sits on
        # the latency floor at p=256 (our proxies are ~250x smaller than the
        # paper's inputs, so the alpha floor arrives at 256 instead of past
        # 4096; the ordering between 1D and 2D is the reproduced shape)
        for d in twod:
            assert d[64] < d[16]
            assert d[256] < 1.6 * d[64]
        # and the 2D-GP/HP curve is the lowest (or near-lowest) at the
        # largest p — the slack is wider for rmat_26, where proxy-scale
        # R-MAT leaves HP no volume to save (EXPERIMENTS.md section 11)
        best_2dgp = min(
            d[256] for (m, meth), d in data.items()
            if m == matrix and meth in ("2D-GP", "2D-HP")
        )
        others = [d[256] for (m, meth), d in data.items()
                  if m == matrix and meth not in ("2D-GP", "2D-HP")]
        slack = 1.25 if matrix == "rmat_26" else 1.05
        assert best_2dgp <= min(others) * slack
