"""FM refinement kernel bench: vectorised vs reference, bit-identity gated.

The multilevel partitioner is the dominant end-to-end cost of every sweep
in this repo, and FM refinement is its inner loop. This bench drives the
two FM pass kernels (see :mod:`repro.partitioning.refine`) across the
whole proxy corpus and gates on the two claims the vectorisation makes:

1. **bit identity** — the vector kernel replays the reference kernel's
   exact move sequence. Checked twice: ``fm_refine`` on a random bisection
   of every corpus matrix, and a full k-way ``partition_matrix`` per
   corpus matrix under each kernel (coarsening, initial partitions and
   every projection level in the loop);
2. **speedup** — aggregate ``sum(reference) / sum(vector)`` time of the
   refinement stage must be at least 3x (full mode only).

Results land in ``BENCH_refine.json`` at the repo root, including the
:mod:`repro.perf` phase breakdown of one profiled vector-kernel partition,
so future PRs have a perf trajectory.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_refine_kernels.py [--smoke]

``--smoke`` shrinks to two small matrices and skips the 3x gate (CI sanity
run; the identity gates still apply).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_refine.json"

SPEEDUP_GATE = 3.0
NPARTS = 8


def _best_of(fn, repeats: int = 3) -> float:
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run(smoke: bool) -> tuple[list[str], dict]:
    from repro import perf
    from repro.generators import load_corpus_matrix, rmat
    from repro.generators.corpus import corpus_names
    from repro.partitioning import partition_matrix
    from repro.partitioning.initial import random_bisection
    from repro.partitioning.partgraph import PartGraph
    from repro.partitioning.refine import fm_refine, use_kernel

    if smoke:
        matrices = {
            "rmat(scale=10)": rmat(10, 8, seed=1),
            "rmat(scale=11)": rmat(11, 6, seed=2),
        }
    else:
        matrices = {name: load_corpus_matrix(name) for name in corpus_names()}

    failures: list[str] = []
    rows = []
    tot_ref = tot_vec = 0.0

    for name, A in matrices.items():
        g = PartGraph.from_matrix(A, vertex_weights="nnz")
        part0 = random_bisection(g, 0.5, np.random.default_rng(0))

        # refinement timing + identity on a random bisection (the worst
        # case for FM: huge boundary, long move sequences)
        out = {}
        times = {}
        for kern in ("reference", "vector"):
            p0 = part0.copy()
            times[kern] = _best_of(lambda: out.__setitem__(kern, fm_refine(g, p0, kernel=kern)))
        refine_identical = bool(np.array_equal(out["reference"], out["vector"]))
        if not refine_identical:
            failures.append(
                f"{name}: fm_refine kernels diverge on "
                f"{int(np.sum(out['reference'] != out['vector']))} of {g.n} vertices"
            )

        # full-pipeline identity: k-way partition under each kernel
        parts = {}
        for kern in ("reference", "vector"):
            with use_kernel(kern):
                parts[kern] = partition_matrix(A, NPARTS, method="gp", seed=0).part
        partition_identical = bool(np.array_equal(parts["reference"], parts["vector"]))
        if not partition_identical:
            failures.append(
                f"{name}: k-way partitions diverge on "
                f"{int(np.sum(parts['reference'] != parts['vector']))} of {g.n} vertices"
            )

        tot_ref += times["reference"]
        tot_vec += times["vector"]
        rows.append({
            "matrix": name,
            "n": int(A.shape[0]),
            "nnz": int(A.nnz),
            "fm_reference_seconds": times["reference"],
            "fm_vector_seconds": times["vector"],
            "fm_speedup": times["reference"] / times["vector"],
            "refine_bit_identical": refine_identical,
            "partition_bit_identical": partition_identical,
        })
        print(
            f"[bench_refine_kernels] {name:16s} "
            f"ref={times['reference']:.3f}s vec={times['vector']:.3f}s "
            f"speedup={times['reference'] / times['vector']:.2f}x "
            f"identical={refine_identical and partition_identical}"
        )

    aggregate = tot_ref / tot_vec
    all_identical = all(
        r["refine_bit_identical"] and r["partition_bit_identical"] for r in rows
    )

    # phase breakdown of one profiled vector-kernel partition, for the
    # perf trajectory (which stage future optimisations should chase)
    profile_matrix = rows[-1]["matrix"]
    with perf.profile() as prof:
        partition_matrix(matrices[profile_matrix], NPARTS, method="gp", seed=0)

    return failures, {
        "bench": "refine_kernels",
        "mode": "smoke" if smoke else "full",
        "nparts": NPARTS,
        "speedup_gate": SPEEDUP_GATE,
        "matrices": rows,
        "aggregate_fm_reference_seconds": tot_ref,
        "aggregate_fm_vector_seconds": tot_vec,
        "aggregate_fm_speedup": aggregate,
        "bit_identical": all_identical,
        "profile": {
            "matrix": profile_matrix,
            "total_seconds": prof.total_seconds(),
            "phases": prof.as_dict(),
        },
    }


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="two small matrices, no speedup gate (CI sanity run)")
    args = ap.parse_args()

    failures, result = run(args.smoke)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(f"[bench_refine_kernels] wrote {OUT_PATH}")
    print(
        "  aggregate fm_refine: {aggregate_fm_reference_seconds:.3f}s (reference) "
        "-> {aggregate_fm_vector_seconds:.3f}s (vector), "
        "{aggregate_fm_speedup:.2f}x, bit_identical={bit_identical}".format(**result)
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        raise SystemExit(1)
    if not args.smoke and result["aggregate_fm_speedup"] < SPEEDUP_GATE:
        raise SystemExit(
            f"aggregate fm_refine speedup {result['aggregate_fm_speedup']:.2f}x "
            f"below the {SPEEDUP_GATE:.0f}x gate"
        )


if __name__ == "__main__":
    main()
