"""Resilience campaign — modeled fault-tolerance overhead by layout.

The paper argues 2D layouts bound per-rank message counts by
``pr + pc - 2`` while 1D layouts of scale-free graphs approach ``p - 1``
(section 3.2). Fail-stop recovery inherits exactly that structure: a dead
rank's state is rebuilt by re-syncing with its communication peers, so 2D
layouts also bound the *recovery fan-out* — a resilience advantage the
paper never measured. This bench replays one seeded fail-stop campaign
(:mod:`repro.runtime.faults`) across the paper's six layouts at p=64 and
reports per-layout resilience overhead (ABFT detection + checkpoints +
recovery, all alpha-beta-gamma modeled) next to the recovery-peer counts.

All numbers are modeled, not measured — see EXPERIMENTS.md §12.
"""

from conftest import methods_for, write_result

from repro.bench import format_table
from repro.bench.harness import layout_for
from repro.generators import load_corpus_matrix
from repro.runtime import FaultPlan, fault_campaign
from repro.runtime.faults import CAMPAIGN_COLUMNS

MATRIX = "com-liveJournal"
PROCS = 64
ITERATIONS = 100
FAILSTOP_RATE = 0.03
SEED = 0


def test_resilience_campaign(benchmark):
    A = load_corpus_matrix(MATRIX)
    methods = methods_for(MATRIX)
    layouts = [layout_for(A, m, PROCS, seed=SEED) for m in methods]
    plan = FaultPlan.from_rates(
        PROCS, ITERATIONS, seed=SEED, failstop_rate=FAILSTOP_RATE
    )
    assert plan.failstops, "campaign needs at least one fail-stop to price"

    def run():
        return fault_campaign(A, layouts, plan)

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(CAMPAIGN_COLUMNS, [c.row() for c in cells])
    path = write_result("resilience_campaign", table)
    print(f"\n[Resilience] {MATRIX} p={PROCS}, fail-stop rate "
          f"{FAILSTOP_RATE}/iter (written to {path})\n{table}")

    by = {c.layout: c for c in cells}
    grid_bound = 14  # pr + pc - 2 at p = 64
    # 2D recovery fan-out is bounded by the process grid; 1D is not
    for name, cell in by.items():
        if name.startswith("2D"):
            assert cell.max_recovery_peers <= grid_bound
        else:
            assert cell.max_recovery_peers > grid_bound
    # every scheduled fault was detected, and recovery was actually priced
    for cell in cells:
        assert cell.detected == cell.faults
        assert cell.recover_seconds > 0.0
        assert cell.overhead > 0.0
    # identical plan, identical schedule: events don't depend on layout
    assert len({c.faults for c in cells}) == 1
