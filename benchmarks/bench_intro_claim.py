"""Introduction claim — SpMV dominance and what a better layout buys.

Paper, section 1: "for a representative social network graph (com-orkut)
with a commonly used row-wise block layout on 64 processes, SpMV took 95%
of the eigensolver time... by improving the data layout for this problem,
we can reduce SpMV time by 69% and overall solve time by 64%."

We reproduce the structure at proxy scale (64 paper procs -> 4..64 ours;
the SpMV share grows with p, so we report the whole range and assert the
claim at our comm-dominated end).
"""

from conftest import write_result

from repro.bench import format_table
from repro.bench.eigen import eigen_grid

MATRIX = "com-orkut"


def test_intro_claim(benchmark):
    def run():
        return eigen_grid([MATRIX], ["1d-block", "2d-gp-mc"], procs=(4, 16, 64),
                          nstarts=3)

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (r.nprocs, r.method, f"{r.spmv_time:.4f}", f"{r.solve_time:.4f}",
         f"{r.spmv_time / r.solve_time:.0%}")
        for r in sorted(records, key=lambda r: (r.nprocs, r.method))
    ]
    table = format_table(["p", "method", "SpMV t", "solve t", "SpMV share"], rows)
    path = write_result("intro_claim", table)
    print(f"\n[Intro claim] com-orkut (written to {path})\n{table}")

    by = {(r.nprocs, r.method): r for r in records}
    blk, mc = by[(64, "1D-Block")], by[(64, "2D-GP-MC")]
    # SpMV dominates the 1D-Block solve (paper: 95%)
    assert blk.spmv_time / blk.solve_time > 0.7
    # the layout change cuts SpMV time hard (paper: 69%)
    assert mc.spmv_time < 0.5 * blk.spmv_time
    # and overall solve time with it (paper: 64%)
    assert mc.solve_time < 0.6 * blk.solve_time
