"""Cold-path acceleration: compiled-engine artifact store, gated corpus-wide.

The whole point of :mod:`repro.runtime.store` is that a process should
pay partition → maps → plan → compile **once per machine**, not once per
process. This bench measures and gates that claim in three stages:

**Identity** (per corpus matrix, at the paper's 2D method):

* the vectorized :class:`~repro.runtime.distmatrix.DistSparseMatrix`
  assembly kernels produce bit-identical blocks, maps, and ``spmv``
  output to the retained reference loops (the PR-5/6 dual-kernel
  contract);
* an engine round-tripped through the store — saved, then reconstructed
  from the zero-copy mmap reader — produces bit-identical ``spmv`` *and*
  ``spmm`` output to the compiled original.

**Cold-start speedup** (the headline gate): with the partition cache
warm in both arms, the *compile* arm builds layout + DistSparseMatrix +
engine from the cached rpart, while the *store* arm reconstructs the
same engine from its artifact. Aggregated over the corpus, the store
arm must be at least ``--min-speedup`` (default 5) times faster.

**Serve first-request latency**: two fresh servers against the same
warm partition cache — one with the engine store disabled (its first
``partition`` request pays a full build, ``engine_source: "built"``),
one against a pre-warmed store (``engine_source: "disk"`` from an mmap
load). The disk-backed first request must be at least 2x faster, and
both sources must report as expected.

Gates (exit 1, ``"ok": false`` in ``BENCH_coldstart.json``):

* zero identity failures — kernels or store round-trip, any matrix;
* aggregate store-vs-compile speedup >= ``--min-speedup`` (default 5);
* serve first-request: sources correct, disk >= 2x faster than built.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_coldstart.py [--smoke]

``--smoke`` covers the three smallest corpus matrices; the full run
covers all ten.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_coldstart.json"

SMOKE_MATRICES = ("hollywood-2009", "com-orkut", "cit-Patents")
PROCS = 16


def _kernel_identity(A, layout, machine) -> list[str]:
    """Vector-vs-reference assembly kernels: blocks, maps, spmv bits."""
    from repro.runtime import DistSparseMatrix

    fails: list[str] = []
    dv = DistSparseMatrix(A, layout, machine, kernel="vector")
    dr = DistSparseMatrix(A, layout, machine, kernel="reference")
    for r in range(dv.nprocs):
        if not np.array_equal(dv.row_maps[r], dr.row_maps[r]):
            fails.append(f"rank {r}: row map differs between kernels")
        if not np.array_equal(dv.col_maps[r], dr.col_maps[r]):
            fails.append(f"rank {r}: col map differs between kernels")
        bv, br = dv.local_blocks[r], dr.local_blocks[r]
        if not (
            np.array_equal(bv.data, br.data)
            and np.array_equal(bv.indices, br.indices)
            and np.array_equal(bv.indptr, br.indptr)
        ):
            fails.append(f"rank {r}: local block differs between kernels")
    x = np.random.default_rng(11).standard_normal(A.shape[0])
    if not np.array_equal(dv.spmv(x), dr.spmv(x)):
        fails.append("spmv differs between assembly kernels")
    return fails


def _store_identity(engine, key, store) -> tuple[list[str], bool]:
    """Save + reload *engine*; return (failures, mmapped)."""
    store.save(key, engine)
    loaded = store.load(key)
    if loaded is None:
        return [f"store miss immediately after save for {key}"], False
    fails: list[str] = []
    rng = np.random.default_rng(23)
    x = rng.standard_normal(engine.n)
    X = rng.standard_normal((engine.n, 4))
    if not np.array_equal(engine.spmv(x), loaded.engine.spmv(x)):
        fails.append(f"loaded spmv diverged for {key}")
    if not np.array_equal(engine.spmm(X), loaded.engine.spmm(X)):
        fails.append(f"loaded spmm diverged for {key}")
    y, partials = loaded.engine.spmv_with_partials(x)
    check = loaded.engine.abft_check(x, partials, y)
    if check.detected:
        fails.append(f"loaded engine's ABFT check flagged a clean run for {key}")
    return fails, loaded.mmapped


def _time_best(fn, reps: int) -> float:
    best = np.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _serve_phase(
    matrix: str, store_dir: Path, timeout: float
) -> tuple[list[str], dict]:
    """First-request latency: engine store off vs pre-warmed store on."""
    from repro.serve import ServeClient, ServeConfig, start_in_thread

    fails: list[str] = []
    pid = os.getpid()

    def first_request(tag: str, **cfg_kw) -> tuple[dict, float]:
        sock = f"/tmp/repro-cold-{pid}-{tag}.sock"
        handle = start_in_thread(ServeConfig(socket_path=sock, **cfg_kw))
        try:
            with ServeClient(sock, timeout=timeout) as c:
                t0 = time.perf_counter()
                resp, _ = c.request(
                    {"op": "partition", "matrix": matrix, "procs": PROCS}
                )
                dt = time.perf_counter() - t0
                c.request({"op": "shutdown"})
        finally:
            handle.stop()
        return resp, dt

    # pre-warm the store (and the partition cache) with one throwaway server
    resp, _ = first_request("warm", engine_store_dir=str(store_dir))
    if not resp.get("ok"):
        return [f"serve warm-up failed: {resp.get('error')}"], {}

    resp_off, t_off = first_request("off", use_engine_store=False)
    resp_on, t_on = first_request("on", engine_store_dir=str(store_dir))

    if resp_off.get("engine_source") != "built":
        fails.append(
            f"store-off server reported engine_source="
            f"{resp_off.get('engine_source')!r}, expected 'built'"
        )
    if resp_on.get("engine_source") != "disk":
        fails.append(
            f"store-on server reported engine_source="
            f"{resp_on.get('engine_source')!r}, expected 'disk'"
        )
    speedup = t_off / max(t_on, 1e-9)
    if speedup < 2.0:
        fails.append(
            f"serve first request: disk-backed {t_on * 1e3:.1f} ms is only "
            f"{speedup:.2f}x faster than built {t_off * 1e3:.1f} ms (floor 2x)"
        )
    return fails, {
        "matrix": matrix,
        "procs": PROCS,
        "first_request_built_seconds": round(t_off, 6),
        "first_request_disk_seconds": round(t_on, 6),
        "first_request_speedup": round(speedup, 3),
        "engine_source_off": resp_off.get("engine_source"),
        "engine_source_on": resp_on.get("engine_source"),
        "mmapped": resp_on.get("mmapped"),
    }


def run(smoke: bool, min_speedup: float) -> tuple[list[str], dict]:
    from repro.bench.harness import engine_store_key, gp_or_hp, layout_for
    from repro.generators.corpus import CORPUS, load_corpus_matrix
    from repro.runtime import CAB, DistSparseMatrix
    from repro.runtime.store import EngineStore

    matrices = list(SMOKE_MATRICES) if smoke else list(CORPUS)
    reps = 2 if smoke else 3
    failures: list[str] = []
    per_matrix: dict[str, dict] = {}
    total_compile = 0.0
    total_load = 0.0

    tmp = Path(tempfile.mkdtemp(prefix="repro-coldstart-", dir="/tmp"))
    store = EngineStore(tmp / "engines")
    try:
        for name in matrices:
            A = load_corpus_matrix(name)
            method = gp_or_hp(name, "2d")
            # warm the partition cache so both arms start from a cached rpart
            layout = layout_for(A, method, PROCS)
            kernel_fails = _kernel_identity(A, layout, CAB)

            dist = DistSparseMatrix(A, layout, CAB)
            engine = dist.engine
            key = engine_store_key(A, method, PROCS)
            store_fails, mmapped = _store_identity(engine, key, store)
            failures += [f"{name}: {f}" for f in kernel_fails + store_fails]

            # compile arm: cached rpart -> layout -> dist -> engine
            def compile_arm():
                lay = layout_for(A, method, PROCS)
                d = DistSparseMatrix(A, lay, CAB)
                _ = d.engine

            t_compile = _time_best(compile_arm, reps)
            # store arm: artifact -> engine (same partition-cache-warm start)
            t_load = _time_best(lambda: store.load(key), max(reps, 5))
            total_compile += t_compile
            total_load += t_load
            per_matrix[name] = {
                "n": int(A.shape[0]),
                "nnz": int(A.nnz),
                "method": method,
                "compile_seconds": round(t_compile, 6),
                "store_load_seconds": round(t_load, 6),
                "speedup": round(t_compile / max(t_load, 1e-9), 2),
                "mmapped": mmapped,
                "artifact_bytes": store.path(key).stat().st_size,
                "identical": not (kernel_fails or store_fails),
            }

        aggregate = total_compile / max(total_load, 1e-9)
        if aggregate < min_speedup:
            failures.append(
                f"aggregate store speedup {aggregate:.1f}x is below the "
                f"{min_speedup:.0f}x floor "
                f"(compile {total_compile:.3f}s vs load {total_load:.3f}s)"
            )

        serve_fails, serve = _serve_phase(
            matrices[0], tmp / "serve-engines", timeout=600.0
        )
        failures += serve_fails
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    payload = {
        "bench": "coldstart",
        "mode": "smoke" if smoke else "full",
        "procs": PROCS,
        "min_speedup": min_speedup,
        "matrices": per_matrix,
        "aggregate_compile_seconds": round(total_compile, 6),
        "aggregate_load_seconds": round(total_load, 6),
        "aggregate_speedup": round(total_compile / max(total_load, 1e-9), 2),
        "identity_checked": len(matrices),
        "serve": serve,
        "ok": not failures,
    }
    return failures, payload


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="three smallest matrices (CI sanity run)")
    ap.add_argument("--min-speedup", type=float, default=5.0,
                    help="aggregate store-vs-compile floor (default: 5.0)")
    args = ap.parse_args(argv)

    failures, payload = run(args.smoke, args.min_speedup)
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    for name, rec in payload["matrices"].items():
        print(f"{name} ({rec['method']}, n={rec['n']}):")
        print(f"  compile    {rec['compile_seconds'] * 1e3:9.1f} ms")
        print(f"  store load {rec['store_load_seconds'] * 1e3:9.1f} ms "
              f"({rec['speedup']:.0f}x, mmapped={rec['mmapped']})")
    print(f"aggregate: {payload['aggregate_speedup']:.1f}x over "
          f"{len(payload['matrices'])} matrices "
          f"(floor {payload['min_speedup']:.0f}x)")
    serve = payload.get("serve") or {}
    if serve:
        print(f"serve first request: built "
              f"{serve['first_request_built_seconds'] * 1e3:.1f} ms -> disk "
              f"{serve['first_request_disk_seconds'] * 1e3:.1f} ms "
              f"({serve['first_request_speedup']:.1f}x)")
    print(f"wrote {OUT_PATH.relative_to(REPO_ROOT)}")
    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
