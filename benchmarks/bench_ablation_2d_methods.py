"""Ablation — the 2D methods catalogue: Cartesian GP vs Mondriaan vs
fine-grain (paper sections 2.3 and 6).

The paper positions its method against the other 2D families it cites:
Mondriaan [33] (free recursive bisection) and fine-grain [12] (per-nonzero
hypergraph, volume-optimal). Comparing against them is the paper's stated
future work ("for problems that can be partitioned in serial") — these
proxies can be, so we run it.

Expected trade, asserted below:
* fine-grain reaches the lowest communication volume;
* only the Cartesian method obeys the pr + pc - 2 message bound;
* at latency-dominated scale the message bound wins the modeled time.
"""

from conftest import write_result

from repro.bench import format_table, run_spmv_cell
from repro.generators import corpus_spec, load_corpus_matrix
from repro.layouts import process_grid_shape
from repro.layouts.finegrain import finegrain_layout
from repro.layouts.mondriaan import mondriaan_layout
from repro.runtime import CAB, DistSparseMatrix, comm_stats

P = 16
#: fine-grain partitions nnz vertices — keep it to the smallest matrix
FINEGRAIN_MATRICES = ("rmat_22",)
MATRICES = ("bter", "rmat_22")


def test_ablation_2d_methods_catalogue(benchmark):
    def run():
        out = {}
        for name in MATRICES:
            A = load_corpus_matrix(name)
            kind = corpus_spec(name).partitioner
            cart = run_spmv_cell(A, name, f"2d-{kind}", P, validate=False, nested_from=256)
            out[(name, cart.method)] = (cart.stats, cart.time100)
            mon = DistSparseMatrix(A, mondriaan_layout(A, P, seed=0), CAB)
            out[(name, "Mondriaan")] = (comm_stats(mon), mon.modeled_spmv_seconds(100))
            if name in FINEGRAIN_MATRICES:
                fg = DistSparseMatrix(A, finegrain_layout(A, P, seed=0), CAB)
                out[(name, "Fine-grain")] = (comm_stats(fg), fg.modeled_spmv_seconds(100))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (name, method, stats.max_messages, stats.total_comm_volume,
         f"{stats.nnz_imbalance:.2f}", f"{t100:.4f}")
        for (name, method), (stats, t100) in sorted(results.items())
    ]
    table = format_table(["matrix", "method", "max msgs", "total CV", "imbal", "t100"], rows)
    path = write_result("ablation_2d_methods", table)
    print(f"\n[Ablation] 2D methods catalogue at p={P} (written to {path})\n{table}")

    pr, pc = process_grid_shape(P)
    bound = pr + pc - 2
    for name in MATRICES:
        cart_key = next(k for k in results if k[0] == name and k[1].startswith("2D-"))
        cart_stats, cart_t = results[cart_key]
        mon_stats, mon_t = results[(name, "Mondriaan")]
        # only the Cartesian method carries the O(sqrt p) guarantee
        assert cart_stats.max_messages <= bound
        assert mon_stats.max_messages > bound
        # and that wins the modeled time at this scale
        assert cart_t < mon_t
    for name in FINEGRAIN_MATRICES:
        fg_stats, _ = results[(name, "Fine-grain")]
        cart_key = next(k for k in results if k[0] == name and k[1].startswith("2D-"))
        mon_stats, _ = results[(name, "Mondriaan")]
        # fine-grain is the volume floor of the catalogue
        assert fg_stats.total_comm_volume <= results[cart_key][0].total_comm_volume
        assert fg_stats.total_comm_volume <= mon_stats.total_comm_volume
        assert fg_stats.max_messages > bound
