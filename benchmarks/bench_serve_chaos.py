"""Chaos-soak the matvec server: seeded wire faults, bit-identical answers.

Boots a fault-injectable :class:`repro.serve.server.MatvecServer`
in-process, then drives closed-loop load from
:func:`repro.serve.loadgen.run_chaos_soak` — every session a
:class:`~repro.serve.resilience.RetryingClient` (idempotency keys,
decorrelated-jitter backoff, circuit breaker) — through a seeded
:class:`~repro.serve.chaos.ChaosProxy`. Phases:

* **baseline** — the same retrying client stack straight at the server,
  no proxy: the fault-free p99 the inflation gate divides against;
* one **focused phase per wire fault class** (torn / corrupt / reset /
  delay / drop at elevated probability) so every class demonstrably
  executes and recovers;
* one **combined phase** with every wire class active plus seeded
  slow-engine injections (priced via
  :func:`repro.runtime.faults.straggler_overhead_seconds`);
* one **worker-kill exercise**: a cold engine key whose pool partition
  is killed mid-build (real ``os._exit`` in the worker), priced via
  :func:`repro.runtime.faults.recovery_stats`.

Gates (exit 1, ``"ok": false`` in ``BENCH_chaos.json``):

* **zero bitwise divergences and zero lost acknowledged requests** in
  every phase — faults may cost retries and latency, never wrong bits;
* zero logical requests exhausting their retry budget (every request is
  eventually answered within its deadline);
* every scheduled injection class executed at least once (the five wire
  classes from the proxy ledgers, worker kill, slow engine);
* worker-kill recovery and slow-engine overhead priced through the
  runtime's alpha-beta-gamma model (positive modeled seconds);
* combined-phase p99 within ``--max-p99-inflation-ms`` of baseline p99.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_serve_chaos.py [--smoke]

``--smoke`` shrinks the request counts for CI; the weekly full run soaks
longer at higher concurrency.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_chaos.json"

#: Focused per-class probability for the single-class phases.
FOCUS_P = 0.2
#: Combined-phase schedule (every wire class active).
COMBINED = dict(p_torn=0.03, p_corrupt=0.05, p_reset=0.03, p_delay=0.08,
                p_drop=0.03, delay_ms=3.0)


def _soak(socket_path, warm_path, matrix, procs, seed, chaos_seed,
          concurrency, requests, **kw):
    from repro.serve.loadgen import run_chaos_soak

    return run_chaos_soak(
        socket_path,
        matrix,
        procs=procs,
        seed=seed,
        warm_socket_path=warm_path,
        chaos_seed=chaos_seed,
        concurrency=concurrency,
        requests_per_client=requests,
        attempt_deadline_s=2.0,
        total_deadline_s=120.0,
        **kw,
    )


def _evict_rpart(matrix: str, procs: int, seed: int) -> None:
    """Drop the cached partition AND engine artifact: force a cold build.

    Both must go — an engine-store hit would skip the pool partition
    entirely, so a kill injection stamped on the warm-up request would
    never fire on a warm rerun.
    """
    from repro.bench.harness import _matrix_hash, default_cache_dir
    from repro.generators.corpus import CORPUS, load_corpus_matrix
    from repro.runtime.store import EngineKey, EngineStore

    kind = CORPUS[matrix].partitioner
    mhash = _matrix_hash(load_corpus_matrix(matrix))
    (default_cache_dir() / f"{mhash}_{kind}_k{procs}_s{seed}.npy").unlink(
        missing_ok=True
    )
    EngineStore().evict(EngineKey(mhash, f"2d-{kind}", procs, seed))


def run(smoke: bool, concurrency: int, chaos_seed: int,
        max_p99_inflation_ms: float) -> tuple[list[str], dict]:
    from repro.serve import (
        ChaosSchedule,
        ServeClient,
        ServeConfig,
        start_chaos_proxy,
        start_in_thread,
    )

    matrix, procs = "hollywood-2009", 16
    seed = 9999  # private partition seed: the soak owns its cache entries
    requests = 10 if smoke else 40
    failures: list[str] = []
    phases: dict[str, dict] = {}

    pid = os.getpid()
    sock = f"/tmp/repro-chaos-{pid}.sock"
    handle = start_in_thread(
        ServeConfig(socket_path=sock, allow_fault_injection=True)
    )
    wire_totals: dict[str, int] = {}
    try:
        # -- baseline: retrying clients, no proxy, no injections ----------
        baseline = _soak(sock, sock, matrix, procs, seed, chaos_seed,
                         concurrency, requests)
        phases["baseline"] = {"result": baseline.as_dict()}

        # -- focused wire-fault phases ------------------------------------
        wire_phases = [
            ("torn", ChaosSchedule(seed=chaos_seed + 1, p_torn=FOCUS_P)),
            ("corrupt", ChaosSchedule(seed=chaos_seed + 2, p_corrupt=FOCUS_P)),
            ("reset", ChaosSchedule(seed=chaos_seed + 3, p_reset=FOCUS_P)),
            ("delay", ChaosSchedule(seed=chaos_seed + 4, p_delay=FOCUS_P,
                                    delay_ms=3.0)),
            ("drop", ChaosSchedule(seed=chaos_seed + 5, p_drop=FOCUS_P)),
            ("combined", ChaosSchedule(seed=chaos_seed, **COMBINED)),
        ]
        for name, schedule in wire_phases:
            listen = f"{sock}.{name}"
            proxy = start_chaos_proxy(sock, listen, schedule)
            try:
                res = _soak(
                    listen, sock, matrix, procs, seed, chaos_seed,
                    concurrency, requests,
                    p_slow=0.1 if name == "combined" else 0.0,
                )
                counts = proxy.proxy.executed_counts()
            finally:
                proxy.stop()
            res.injected_wire = counts
            phases[name] = {
                "schedule": schedule.probabilities(),
                "result": res.as_dict(),
            }
            for k, v in counts.items():
                wire_totals[k] = wire_totals.get(k, 0) + v
            if name != "combined" and counts.get(name, 0) < 1:
                failures.append(
                    f"{name}: focused schedule executed no {name!r} injection"
                )

        # -- worker-kill exercise: cold key, death mid-partition ----------
        kill_seed = seed - 1
        _evict_rpart(matrix, procs, kill_seed)
        kill = _soak(sock, sock, matrix, procs, kill_seed, chaos_seed,
                     2, max(requests // 2, 5), inject_kill=True)
        phases["worker-kill"] = {"result": kill.as_dict()}

        # -- invariants across every phase --------------------------------
        for name, rec in phases.items():
            r = rec["result"]
            if r["divergences"]:
                failures.append(
                    f"{name}: {r['divergences']} bitwise divergence(s) — "
                    f"a fault reached a client as wrong data"
                )
            if r["lost_acked"]:
                failures.append(
                    f"{name}: {r['lost_acked']} acknowledged request(s) lost"
                )
            if r["failed"]:
                failures.append(
                    f"{name}: {r['failed']} request(s) exhausted their "
                    f"retry budget"
                )

        for kind in ("torn", "corrupt", "reset", "delay", "drop"):
            if wire_totals.get(kind, 0) < 1:
                failures.append(f"injection class {kind!r} never executed")
        if kill.injected_semantic.get("kill_worker", 0) < 1:
            failures.append("injection class 'kill_worker' never executed")
        combined_sem = phases["combined"]["result"]["injected_semantic"]
        if combined_sem.get("slow_engine", 0) < 1:
            failures.append("injection class 'slow_engine' never executed")

        # -- recovery pricing ----------------------------------------------
        with ServeClient(sock, timeout=30.0) as c:
            stats, _ = c.request({"op": "stats"})
        events = stats.get("fault_events", [])
        deaths = [e for e in events if e["kind"] == "worker-death"]
        slows = [e for e in events if e["kind"] == "slow-engine"]
        if not deaths or deaths[0]["recovery"]["modeled_seconds"] <= 0:
            failures.append(
                "worker-kill recovery was not priced via recovery_stats"
            )
        if not slows or slows[0]["modeled_overhead_seconds"] <= 0:
            failures.append(
                "slow-engine overhead was not priced via "
                "straggler_overhead_seconds"
            )
        pricing = {
            "worker_deaths": len(deaths),
            "recovery_modeled_seconds": (
                deaths[0]["recovery"]["modeled_seconds"] if deaths else 0.0
            ),
            "slow_engine_events": len(slows),
            "slow_modeled_overhead_seconds": (
                slows[0]["modeled_overhead_seconds"] if slows else 0.0
            ),
        }

        # -- latency inflation ---------------------------------------------
        inflation = phases["combined"]["result"]["p99_ms"] - baseline.p99_ms
        if inflation > max_p99_inflation_ms:
            failures.append(
                f"combined-phase p99 inflated {inflation:.0f} ms over the "
                f"fault-free baseline (bound {max_p99_inflation_ms:.0f} ms)"
            )
    finally:
        try:
            with ServeClient(sock, timeout=10.0) as c:
                c.request({"op": "shutdown"})
        except OSError:
            pass
        handle.stop()

    payload = {
        "bench": "serve_chaos",
        "smoke": smoke,
        "matrix": matrix,
        "procs": procs,
        "seed": seed,
        "chaos_seed": chaos_seed,
        "concurrency": concurrency,
        "host_cpus": os.cpu_count() or 1,
        "max_p99_inflation_ms": max_p99_inflation_ms,
        "phases": phases,
        "wire_injections": wire_totals,
        "pricing": pricing,
        "p99_inflation_ms": round(inflation, 3),
        "divergences": sum(p["result"]["divergences"] for p in phases.values()),
        "lost_acked": sum(p["result"]["lost_acked"] for p in phases.values()),
        "ok": not failures,
    }
    return failures, payload


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="fewer requests per phase (CI sanity run)")
    ap.add_argument("--concurrency", type=int, default=4,
                    help="concurrent retrying sessions per phase (default: 4)")
    ap.add_argument("--chaos-seed", type=int, default=7,
                    help="seed for schedules and retry jitter (default: 7)")
    ap.add_argument("--max-p99-inflation-ms", type=float, default=4500.0,
                    help="combined-phase p99 minus baseline p99 ceiling "
                         "(default: 4500 — ~2 attempt deadlines + backoff)")
    args = ap.parse_args(argv)

    failures, payload = run(
        args.smoke, args.concurrency, args.chaos_seed, args.max_p99_inflation_ms
    )
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    for name, rec in payload["phases"].items():
        r = rec["result"]
        print(f"{name:<12} answered {r['answered']}/{r['requests']}, "
              f"retries {r['retries']}, deduped {r['deduped']}, "
              f"p99 {r['p99_ms']:.1f} ms, divergences {r['divergences']}, "
              f"lost_acked {r['lost_acked']}")
    print(f"wire injections: {payload['wire_injections']}")
    print(f"pricing: {payload['pricing']}")
    print(f"p99 inflation: {payload['p99_inflation_ms']:.1f} ms")
    print(f"wrote {OUT_PATH.relative_to(REPO_ROOT)}")
    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
