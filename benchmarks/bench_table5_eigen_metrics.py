"""Table 5 — hollywood-2009 eigensolve detail: the vector-imbalance story.

Per (p, 2D method): nonzero imbalance, vector imbalance, max messages,
total CV, SpMV time within the solve, and total solve time. The paper's
narrative, which this bench asserts quantitatively:

* 2D-Block: nonzeros imbalanced -> SpMV dominates the solve;
* 2D-GP: nonzeros balanced but *vector* entries badly imbalanced (45.6x at
  4096 procs) -> SpMV becomes a small fraction, dense ops dominate;
* 2D-Random and 2D-GP-MC balance both; 2D-GP-MC adds lower volume and wins.
"""

from conftest import write_result

from repro.bench import format_table
from repro.bench.eigen import eigen_grid

MATRIX = "hollywood-2009"
METHODS = ("2d-block", "2d-random", "2d-gp", "2d-gp-mc")


def test_table5_hollywood_detail(benchmark):
    def run():
        return eigen_grid([MATRIX], list(METHODS), procs=(4, 16, 64, 256), nstarts=3)

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (r.nprocs, r.method, f"{r.stats.nnz_imbalance:.1f}",
         f"{r.stats.vector_imbalance:.1f}", r.stats.max_messages,
         r.stats.total_comm_volume, f"{r.spmv_time:.4f}", f"{r.solve_time:.4f}")
        for r in sorted(records, key=lambda r: (r.nprocs, r.method))
    ]
    table = format_table(
        ["p", "method", "nz imbal", "vec imbal", "max msgs", "CV", "SpMV t", "solve t"], rows
    )
    path = write_result("table5_hollywood", table)
    print(f"\n[Table 5] hollywood-2009 detail (written to {path})\n{table}")

    by = {(r.nprocs, r.method): r for r in records}
    for p in (64, 256):
        blk, rnd = by[(p, "2D-Block")], by[(p, "2D-Random")]
        gp, mc = by[(p, "2D-GP")], by[(p, "2D-GP-MC")]
        # block: vectors balanced, nonzeros not
        assert blk.stats.vector_imbalance < 1.05
        assert blk.stats.nnz_imbalance > 1.5
        # plain GP: nonzeros balanced-ish, vectors badly imbalanced
        assert gp.stats.vector_imbalance > 2.0
        # MC balances both at once (paper MC: nnz <= 2.1, vector <= 1.1)
        assert mc.stats.nnz_imbalance < 2.5
        assert mc.stats.vector_imbalance < 1.5
        # under GP, SpMV is not the dominant share of the solve any more
        # (paper: "SpMV time is a small fraction of solve time, down to
        # only 25%"; our vector imbalance is milder so the share is higher)
        assert gp.spmv_time / gp.solve_time < 0.7
        # MC beats plain GP on total solve time, and at least ties random
        # while moving roughly half the communication volume
        assert mc.solve_time < gp.solve_time
        assert mc.solve_time <= 1.05 * rnd.solve_time
        assert mc.stats.total_comm_volume < 0.7 * rnd.stats.total_comm_volume
