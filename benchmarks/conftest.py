"""Shared fixtures for the benchmark suite.

Each ``bench_*`` module regenerates one table or figure of the paper (see
DESIGN.md's experiment index). Expensive inputs — partitions, eigensolve
profiles — come from the on-disk cache; run ``python benchmarks/prewarm.py``
once to populate it, or let the first bench run pay the cost.

Every bench prints its paper-shaped table (run with ``-s`` to see them) and
writes it to ``benchmarks/results/`` so EXPERIMENTS.md can reference the
numbers.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import spmv_grid
from repro.bench.eigen import eigen_grid
from repro.generators import corpus_names, corpus_spec
from repro.layouts import paper_methods

RESULTS_DIR = Path(__file__).parent / "results"

#: the six distributions of Table 2, with the per-matrix GP/HP choice
#: resolved exactly as the paper resolved it
METHODS_1D = ("1d-block", "1d-random")
METHODS_2D = ("2d-block", "2d-random")

#: eigensolver methods of Table 4 (GP matrices get the MC variants too)
EIGEN_MATRICES = ("hollywood-2009", "com-orkut", "rmat_26")


def methods_for(matrix_name: str) -> list[str]:
    """The paper's six Table-2 methods for this matrix (GP vs HP resolved)."""
    return paper_methods(corpus_spec(matrix_name).partitioner)


def eigen_methods_for(matrix_name: str) -> list[str]:
    """Table 4's method set: 8 for GP matrices (incl. MC), 6 for HP."""
    return paper_methods(corpus_spec(matrix_name).partitioner, include_mc=True)


def write_result(name: str, text: str) -> Path:
    """Persist a rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def table2_records():
    """The full Table-2 sweep; shared by the table-2, fig-5/6/7 benches."""
    records = []
    for name in corpus_names():
        records.extend(spmv_grid([name], methods_for(name)))
    return records


@pytest.fixture(scope="session")
def table4_records():
    """The full Table-4 eigensolver sweep; shared with fig-9."""
    records = []
    for name in EIGEN_MATRICES:
        records.extend(eigen_grid([name], eigen_methods_for(name), nstarts=3))
    return records
