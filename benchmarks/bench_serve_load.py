"""Load-test the matvec server: batching throughput, latency, bit-identity.

Boots a :class:`repro.serve.server.MatvecServer` in-process (own event
loop thread, real unix socket — the same wire every external client
uses), warms one engine per matrix through the ``partition`` op, then
runs three closed-loop load phases per matrix with the generator from
:mod:`repro.serve.loadgen`:

* **serial** — one session, back-to-back requests: the per-request floor
  a one-shot client pays, and the baseline the batching gate divides by;
* **batched** — ``--concurrency`` sessions against the same server, so
  concurrent requests coalesce into ``spmm`` flushes;
* **batch-off** — same concurrency against a second server with
  ``max_batch=1``: isolates how much of the concurrent gain is batching
  versus mere request pipelining, reported as ``batching_gain``.

Every timed request is checked ``np.array_equal`` against a reference
engine built locally from the same partition cache — the server's
batched answers must match the serial answers bit for bit.

One fault exercise follows: a ``partition`` request for a cold key with
``fault: {kill_worker: true}``. The injected death is real
(``os._exit`` in the pool worker); the gate demands the request still
complete from the rebuilt pool and carry a recovery event priced via
:func:`repro.runtime.faults.recovery_stats`.

Gates (exit 1, ``"ok": false`` in ``BENCH_serve.json``):

* batched throughput >= ``--min-speedup`` x serial (default 2.0) on the
  warm matrix at the default concurrency of 16;
* batched p99 latency <= ``--max-p99-ms`` (host-calibrated ceiling);
* zero bitwise divergences, zero request errors, in every phase;
* the worker-death request completes with ``worker_deaths >= 1`` and
  ``recovery.modeled_seconds > 0``.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_serve_load.py [--smoke]

``--smoke`` serves the smallest corpus matrix with fewer requests for CI
sanity runs; the full run covers two matrices at higher request counts.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_serve.json"


def _phase(socket_path, matrix, procs, concurrency, requests, check=True):
    from repro.serve import run_loadgen

    return run_loadgen(
        socket_path,
        matrix,
        procs=procs,
        concurrency=concurrency,
        requests_per_client=requests,
        check=check,
    )


def run(
    smoke: bool, concurrency: int, min_speedup: float, max_p99_ms: float
) -> tuple[list[str], dict]:
    from repro.serve import ServeClient, ServeConfig, start_in_thread

    if smoke:
        matrices = [("hollywood-2009", 16)]
        serial_requests, per_client = 100, 10
    else:
        matrices = [("hollywood-2009", 16), ("com-orkut", 16)]
        serial_requests, per_client = 400, 40

    pid = os.getpid()
    sock = f"/tmp/repro-bench-{pid}.sock"
    sock_off = f"/tmp/repro-bench-{pid}-off.sock"
    failures: list[str] = []
    per_matrix: dict[str, dict] = {}

    handle = start_in_thread(
        ServeConfig(socket_path=sock, allow_fault_injection=True)
    )
    handle_off = start_in_thread(
        ServeConfig(socket_path=sock_off, max_batch=1)
    )
    try:
        for name, procs in matrices:
            # warm: one partition request per server (shared on-disk cache,
            # so the second server pays only an engine compile)
            with ServeClient(sock, timeout=600.0) as c:
                resp, _ = c.request({"op": "partition", "matrix": name, "procs": procs})
                if not resp.get("ok"):
                    failures.append(f"{name}: warm partition failed: {resp.get('error')}")
                    continue
                cold_partition_s = resp.get("partition_seconds", 0.0)
            with ServeClient(sock_off, timeout=600.0) as c:
                c.request({"op": "partition", "matrix": name, "procs": procs})

            serial = _phase(sock, name, procs, 1, serial_requests)
            batched = _phase(sock, name, procs, concurrency, per_client)
            batchoff = _phase(sock_off, name, procs, concurrency, per_client, check=False)

            speedup = batched.throughput_rps / max(serial.throughput_rps, 1e-9)
            batching_gain = batched.throughput_rps / max(batchoff.throughput_rps, 1e-9)
            per_matrix[name] = {
                "procs": procs,
                "cold_partition_seconds": cold_partition_s,
                "serial": serial.as_dict(),
                "batched": batched.as_dict(),
                "batch_off": batchoff.as_dict(),
                "speedup_vs_serial": round(speedup, 3),
                "batching_gain_vs_pipelining": round(batching_gain, 3),
            }
            for phase_name, res in (
                ("serial", serial), ("batched", batched), ("batch-off", batchoff)
            ):
                if res.errors:
                    failures.append(f"{name}/{phase_name}: {res.errors} request error(s)")
                if res.divergences:
                    failures.append(
                        f"{name}/{phase_name}: {res.divergences} bitwise "
                        f"divergence(s) — batched answers differ from serial"
                    )
            if speedup < min_speedup:
                failures.append(
                    f"{name}: batched throughput {batched.throughput_rps:.0f} rps is "
                    f"{speedup:.2f}x serial ({serial.throughput_rps:.0f} rps), below "
                    f"the {min_speedup:.1f}x floor at concurrency {concurrency}"
                )
            if batched.p99_ms > max_p99_ms:
                failures.append(
                    f"{name}: batched p99 {batched.p99_ms:.1f} ms exceeds the "
                    f"{max_p99_ms:.0f} ms ceiling"
                )

        # fault exercise: cold key (unseen seed -> partition-cache miss), one
        # injected worker death; the request must complete off the rebuilt
        # pool with the recovery priced in runtime.faults units
        fault_matrix, fault_procs = matrices[0]
        # the injected death only happens if a partition actually runs, so
        # evict any cached rpart for the fault key (prior runs share the
        # cache directory) to guarantee a cold pool partition
        from repro.bench.harness import _matrix_hash, default_cache_dir
        from repro.generators.corpus import CORPUS, load_corpus_matrix

        fault_kind = CORPUS[fault_matrix].partitioner
        fault_hash = _matrix_hash(load_corpus_matrix(fault_matrix))
        (default_cache_dir() / f"{fault_hash}_{fault_kind}_k{fault_procs}_s9999.npy"
         ).unlink(missing_ok=True)
        # ... and the engine artifact for the same key: a store hit would
        # skip the partition entirely and the injection would never fire
        from repro.runtime.store import EngineKey, EngineStore

        fault_method = f"2d-{fault_kind}"
        EngineStore().evict(EngineKey(fault_hash, fault_method, fault_procs, 9999))
        t0 = time.perf_counter()
        with ServeClient(sock, timeout=600.0) as c:
            resp, _ = c.request({
                "op": "partition", "matrix": fault_matrix, "procs": fault_procs,
                "seed": 9999, "fault": {"kill_worker": True},
            })
        fault = {
            "matrix": fault_matrix,
            "procs": fault_procs,
            "ok": bool(resp.get("ok")),
            "wall_seconds": round(time.perf_counter() - t0, 3),
            "worker_deaths": resp.get("worker_deaths", 0),
            "degraded": resp.get("degraded"),
            "partition_source": resp.get("partition_source"),
            "recovery": resp.get("recovery"),
        }
        if not fault["ok"]:
            failures.append(f"fault exercise: request failed: {resp.get('error')}")
        elif fault["worker_deaths"] < 1:
            failures.append("fault exercise: no worker death was observed")
        elif not fault["recovery"] or fault["recovery"].get("modeled_seconds", 0) <= 0:
            failures.append("fault exercise: recovery was not priced via runtime.faults")
    finally:
        try:
            with ServeClient(sock, timeout=10.0) as c:
                c.request({"op": "shutdown"})
        except OSError:
            pass
        try:
            with ServeClient(sock_off, timeout=10.0) as c:
                c.request({"op": "shutdown"})
        except OSError:
            pass
        handle.stop()
        handle_off.stop()

    payload = {
        "bench": "serve_load",
        "smoke": smoke,
        "concurrency": concurrency,
        "host_cpus": os.cpu_count() or 1,
        "min_speedup": min_speedup,
        "max_p99_ms": max_p99_ms,
        "matrices": per_matrix,
        "fault": fault,
        "ok": not failures,
    }
    return failures, payload


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="smallest matrix, fewer requests (CI sanity run)")
    ap.add_argument("--concurrency", type=int, default=16,
                    help="concurrent sessions in the batched phases (default: 16)")
    ap.add_argument("--min-speedup", type=float, default=2.0,
                    help="batched-over-serial throughput floor (default: 2.0)")
    ap.add_argument("--max-p99-ms", type=float, default=None,
                    help="batched p99 latency ceiling in ms "
                         "(default: 150 smoke / 50 full)")
    args = ap.parse_args(argv)
    max_p99 = args.max_p99_ms if args.max_p99_ms is not None else (
        150.0 if args.smoke else 50.0
    )

    failures, payload = run(args.smoke, args.concurrency, args.min_speedup, max_p99)
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    for name, rec in payload["matrices"].items():
        print(f"{name} (p={rec['procs']}):")
        print(f"  serial       {rec['serial']['throughput_rps']:.0f} rps, "
              f"p99 {rec['serial']['p99_ms']:.2f} ms")
        print(f"  batched      {rec['batched']['throughput_rps']:.0f} rps, "
              f"p99 {rec['batched']['p99_ms']:.2f} ms, "
              f"mean batch {rec['batched']['mean_batch_size']:.1f}")
        print(f"  batch-off    {rec['batch_off']['throughput_rps']:.0f} rps")
        print(f"  speedup      {rec['speedup_vs_serial']:.2f}x serial "
              f"(batching gain {rec['batching_gain_vs_pipelining']:.2f}x)")
        print(f"  divergences  {rec['batched']['divergences']} + "
              f"{rec['serial']['divergences']}")
    fault = payload["fault"]
    rec = fault.get("recovery") or {}
    print(f"fault: deaths={fault['worker_deaths']} source={fault['partition_source']} "
          f"recovery={rec.get('modeled_seconds', 0):.3e} s "
          f"({rec.get('peers', 0)} peers)")
    print(f"wrote {OUT_PATH.relative_to(REPO_ROOT)}")
    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
