"""Ablation — Krylov-Schur block size (paper section 4).

"Preliminary experiments indicate BKS is effective for scale-free graphs
... We use block size one, as we did not observe any advantage of larger
blocks on scale-free graphs." This bench reruns that preliminary
experiment: the normalized-Laplacian eigensolve at block sizes 1, 2 and 4
on two scale-free proxies, reporting matvecs and modeled solve time.
"""

from conftest import write_result

from repro.bench import format_table
from repro.bench.harness import layout_for
from repro.generators import load_corpus_matrix
from repro.graphs import normalized_laplacian
from repro.runtime import CAB, DistSparseMatrix
from repro.solvers import DistOperator, eigsh_dist

MATRICES = ("hollywood-2009", "rmat_22")
BLOCKS = (1, 2, 4)
P = 16


def test_ablation_block_size(benchmark):
    def run():
        out = {}
        for name in MATRICES:
            A = load_corpus_matrix(name)
            Lhat = normalized_laplacian(A)
            lay = layout_for(A, "2d-random", P)
            for b in BLOCKS:
                op = DistOperator(DistSparseMatrix(Lhat, lay, CAB))
                res = eigsh_dist(op, k=10, tol=1e-3, which="LA", seed=7, block_size=b)
                out[(name, b)] = (res, op.ledger.total())
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (name, b, res.matvecs, res.restarts, "yes" if res.converged else "no",
         f"{t:.4f}")
        for (name, b), (res, t) in sorted(results.items())
    ]
    table = format_table(["matrix", "block", "matvecs", "restarts", "converged", "solve t"], rows)
    path = write_result("ablation_blocksize", table)
    print(f"\n[Ablation] BKS block size at p={P} (written to {path})\n{table}")

    for name in MATRICES:
        assert all(results[(name, b)][0].converged for b in BLOCKS)
        times = [results[(name, b)][1] for b in BLOCKS]
        # the paper's choice: block size one is never beaten here
        assert times[0] == min(times)
