"""Coarsening kernel bench: vectorised vs reference, bit-identity gated.

Coarsening is the other half of the multilevel partitioner's cost (FM
refinement being the first, see ``bench_refine_kernels.py``). This bench
drives the two coarsening kernels (:mod:`repro.partitioning.coarsen`)
across the whole proxy corpus and gates on the claims the vectorisation
makes:

1. **bit identity** — checked at every granularity: the matching vector
   of ``handshake_matching``, the coarse CSR arrays of ``contract``, the
   full ``coarsen_to`` level stack (graphs and cmaps), a k-way
   ``partition_matrix`` per corpus matrix under each kernel, and the
   hypergraph path (``hcoarsen_to`` stack + hp partition) on the
   hypergraph-partitioned corpus entries;
2. **speedup** — aggregate ``sum(reference) / sum(vector)`` time of
   ``coarsen_to`` must be at least 3x, with per-stage floors of 2x for
   matching and 1.25x for contraction (full mode only; the contraction
   floor is lower because the reference it replaces is scipy's compiled
   ``P^T W P`` triple product, not pure-Python loops);
3. **balance** — in the embedded :mod:`repro.perf` profile of one
   vector-kernel partition of the largest corpus matrix, neither
   ``bisect/coarsen`` nor ``bisect/refine`` may exceed 50% of total
   wall-clock: after this bench, no single stage dominates the
   partitioner (full mode only).

Results land in ``BENCH_coarsen.json`` at the repo root.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_coarsen_kernels.py [--smoke]

``--smoke`` shrinks to two small matrices and skips the speedup/balance
gates (CI sanity run; every identity gate still applies).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_coarsen.json"

AGGREGATE_GATE = 3.0
MATCH_GATE = 2.0
# The reference contraction is scipy's compiled P^T W P; the sort-based
# kernel beats it 1.3-2.1x per matrix, so its floor sits below the 2x
# that applies to the (formerly pure-numpy-loop) matching stage.
CONTRACT_GATE = 1.25
SHARE_GATE = 0.5
NPARTS = 8
#: hp identity is checked on the corpus entries the paper partitioned
#: with the hypergraph tool (capped for runtime; gp covers every matrix)
HP_MATRICES = ("hollywood-2009", "rmat_22")
PROFILE_MATRIX = "rmat_26"


def _best_of(fn, repeats: int = 3) -> float:
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _graphs_equal(a, b) -> bool:
    return (
        np.array_equal(a.xadj, b.xadj)
        and np.array_equal(a.adjncy, b.adjncy)
        and np.array_equal(a.adjwgt, b.adjwgt)
        and np.array_equal(a.vwgt, b.vwgt)
    )


def _stacks_equal(sa, sb) -> bool:
    if len(sa) != len(sb):
        return False
    for (ga, ca), (gb, cb) in zip(sa, sb):
        if not _graphs_equal(ga, gb):
            return False
        if (ca is None) != (cb is None):
            return False
        if ca is not None and not np.array_equal(ca, cb):
            return False
    return True


def run(smoke: bool) -> tuple[list[str], dict]:
    from repro import perf
    from repro.generators import load_corpus_matrix, rmat
    from repro.generators.corpus import corpus_names
    from repro.partitioning import partition_matrix
    from repro.partitioning.coarsen import coarsen_to, contract, handshake_matching
    from repro.partitioning.hcoarsen import hcoarsen_to
    from repro.partitioning.hypergraph import Hypergraph
    from repro.partitioning.partgraph import PartGraph

    if smoke:
        matrices = {
            "rmat(scale=10)": rmat(10, 8, seed=1),
            "rmat(scale=11)": rmat(11, 6, seed=2),
        }
        hp_names = ("rmat(scale=10)",)
        profile_name = "rmat(scale=11)"
    else:
        matrices = {name: load_corpus_matrix(name) for name in corpus_names()}
        hp_names = HP_MATRICES
        profile_name = PROFILE_MATRIX

    failures: list[str] = []
    rows = []
    tot = {"match": [0.0, 0.0], "contract": [0.0, 0.0], "coarsen": [0.0, 0.0]}

    for name, A in matrices.items():
        g = PartGraph.from_matrix(A, vertex_weights="nnz")
        max_w = g.total_weight() * 0.25
        times: dict[str, dict[str, float]] = {"match": {}, "contract": {}, "coarsen": {}}

        # stage identity + timing on the finest level (the widest one)
        matches = {}
        for kern in ("reference", "vector"):
            times["match"][kern] = _best_of(
                lambda k=kern: matches.__setitem__(
                    k,
                    handshake_matching(
                        g, np.random.default_rng(0), max_vertex_weight=max_w, kernel=k
                    ),
                )
            )
        match_identical = bool(np.array_equal(matches["reference"], matches["vector"]))
        if not match_identical:
            failures.append(
                f"{name}: handshake_matching kernels diverge on "
                f"{int(np.sum(matches['reference'] != matches['vector']))} of {g.n} vertices"
            )

        coarse = {}
        for kern in ("reference", "vector"):
            times["contract"][kern] = _best_of(
                lambda k=kern: coarse.__setitem__(k, contract(g, matches["vector"], kernel=k))
            )
        contract_identical = bool(
            _graphs_equal(coarse["reference"][0], coarse["vector"][0])
            and np.array_equal(coarse["reference"][1], coarse["vector"][1])
        )
        if not contract_identical:
            failures.append(f"{name}: contract kernels produce different coarse graphs")

        # whole-stack identity + timing (what the partitioner actually runs)
        stacks = {}
        for kern in ("reference", "vector"):
            times["coarsen"][kern] = _best_of(
                lambda k=kern: stacks.__setitem__(
                    k, coarsen_to(g, 64, np.random.default_rng(0), kernel=k)
                )
            )
        stack_identical = _stacks_equal(stacks["reference"], stacks["vector"])
        if not stack_identical:
            failures.append(f"{name}: coarsen_to level stacks diverge")

        # full-pipeline identity: k-way partition under each kernel
        parts = {
            kern: partition_matrix(A, NPARTS, method="gp", seed=0, coarsen_kernel=kern).part
            for kern in ("reference", "vector")
        }
        partition_identical = bool(np.array_equal(parts["reference"], parts["vector"]))
        if not partition_identical:
            failures.append(
                f"{name}: k-way partitions diverge on "
                f"{int(np.sum(parts['reference'] != parts['vector']))} of {g.n} vertices"
            )

        hp_identical = None
        if name in hp_names:
            hg = Hypergraph.from_matrix_column_net(A, vertex_weights="nnz")
            hstacks = {
                kern: hcoarsen_to(hg, 64, np.random.default_rng(0), kernel=kern)
                for kern in ("reference", "vector")
            }
            hstack_ok = len(hstacks["reference"]) == len(hstacks["vector"]) and all(
                np.array_equal(ca, cb)
                for (_, ca), (_, cb) in zip(hstacks["reference"][1:], hstacks["vector"][1:])
            )
            hparts = {
                kern: partition_matrix(A, NPARTS, method="hp", seed=0, coarsen_kernel=kern).part
                for kern in ("reference", "vector")
            }
            hp_identical = bool(
                hstack_ok and np.array_equal(hparts["reference"], hparts["vector"])
            )
            if not hp_identical:
                failures.append(f"{name}: hypergraph coarsening kernels diverge")

        for stage in tot:
            tot[stage][0] += times[stage]["reference"]
            tot[stage][1] += times[stage]["vector"]
        identical = (
            match_identical and contract_identical and stack_identical
            and partition_identical and hp_identical is not False
        )
        rows.append({
            "matrix": name,
            "n": int(A.shape[0]),
            "nnz": int(A.nnz),
            **{
                f"{stage}_{kern}_seconds": times[stage][kern]
                for stage in ("match", "contract", "coarsen")
                for kern in ("reference", "vector")
            },
            "coarsen_speedup": times["coarsen"]["reference"] / times["coarsen"]["vector"],
            "match_bit_identical": match_identical,
            "contract_bit_identical": contract_identical,
            "coarsen_stack_bit_identical": stack_identical,
            "partition_bit_identical": partition_identical,
            "hp_bit_identical": hp_identical,
        })
        print(
            f"[bench_coarsen_kernels] {name:16s} "
            f"coarsen ref={times['coarsen']['reference']:.3f}s "
            f"vec={times['coarsen']['vector']:.3f}s "
            f"speedup={rows[-1]['coarsen_speedup']:.2f}x identical={identical}"
        )

    aggregates = {
        f"aggregate_{stage}_speedup": ref / vec
        for stage, (ref, vec) in tot.items()
    }
    all_identical = all(
        r["match_bit_identical"] and r["contract_bit_identical"]
        and r["coarsen_stack_bit_identical"] and r["partition_bit_identical"]
        and r["hp_bit_identical"] is not False
        for r in rows
    )

    # stage-balance gate: profile one vector-kernel partition of the
    # largest matrix; after this bench neither coarsening nor refinement
    # may dominate end-to-end partition time
    best = None
    for _ in range(3):
        with perf.profile() as prof:
            partition_matrix(matrices[profile_name], NPARTS, method="gp", seed=0)
        if best is None or prof.total_seconds() < best.total_seconds():
            best = prof
    total_s = best.total_seconds()
    coarsen_s = best.seconds("bisect/coarsen")
    refine_s = best.seconds("bisect/refine")

    return failures, {
        "bench": "coarsen_kernels",
        "mode": "smoke" if smoke else "full",
        "nparts": NPARTS,
        "aggregate_speedup_gate": AGGREGATE_GATE,
        "match_speedup_gate": MATCH_GATE,
        "contract_speedup_gate": CONTRACT_GATE,
        "share_gate": SHARE_GATE,
        "matrices": rows,
        **{
            f"aggregate_{stage}_{kern}_seconds": tot[stage][i]
            for stage in ("match", "contract", "coarsen")
            for i, kern in enumerate(("reference", "vector"))
        },
        **aggregates,
        "bit_identical": all_identical,
        "profile": {
            "matrix": profile_name,
            "total_seconds": total_s,
            "coarsen_seconds": coarsen_s,
            "refine_seconds": refine_s,
            "coarsen_share": coarsen_s / total_s,
            "refine_share": refine_s / total_s,
            "phases": best.as_dict(),
        },
    }


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="two small matrices, identity gates only (CI sanity run)")
    args = ap.parse_args()

    failures, result = run(args.smoke)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(f"[bench_coarsen_kernels] wrote {OUT_PATH}")
    print(
        "  aggregate coarsen_to: {aggregate_coarsen_reference_seconds:.3f}s (reference) "
        "-> {aggregate_coarsen_vector_seconds:.3f}s (vector), "
        "{aggregate_coarsen_speedup:.2f}x, bit_identical={bit_identical}".format(**result)
    )
    prof = result["profile"]
    print(
        "  profile[{matrix}]: total {total_seconds:.2f}s, "
        "coarsen {coarsen_share:.1%}, refine {refine_share:.1%}".format(**prof)
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        raise SystemExit(1)
    if not args.smoke:
        gates = [
            ("aggregate coarsen_to", result["aggregate_coarsen_speedup"], AGGREGATE_GATE),
            ("matching stage", result["aggregate_match_speedup"], MATCH_GATE),
            ("contraction stage", result["aggregate_contract_speedup"], CONTRACT_GATE),
        ]
        for label, got, floor in gates:
            if got < floor:
                raise SystemExit(
                    f"{label} speedup {got:.2f}x below the {floor:g}x gate"
                )
        for stage in ("coarsen", "refine"):
            if prof[f"{stage}_share"] >= SHARE_GATE:
                raise SystemExit(
                    f"bisect/{stage} is {prof[f'{stage}_share']:.1%} of partition "
                    f"wall-clock on {prof['matrix']} (gate: < {SHARE_GATE:.0%})"
                )


if __name__ == "__main__":
    main()
