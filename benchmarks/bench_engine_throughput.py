"""Wall-clock throughput of the precompiled SpMV engine vs the seed path.

The paper's experiments are all *repeated* SpMV; what the engine buys is
host-side throughput of the simulation itself. This bench times 100
repeated ``spmv`` through the per-message reference executor (the seed
implementation) and through the compiled engine, plus one block
``spmm(k=8)``, on an R-MAT corpus matrix at p=64, and records the
numbers in ``BENCH_engine.json`` at the repo root so future PRs have a
perf trajectory. It also checks the two guarantees the speedup must not
cost — bit-identical results and identical modeled :class:`CostLedger`
totals — and exits nonzero with a diagnostic if either fails, so the CI
smoke step genuinely gates on them.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [--smoke]

``--smoke`` shrinks the matrix and iteration counts for CI sanity runs.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_engine.json"


def time_loop(fn, iters: int) -> float:
    """Best-of-3 mean seconds per call over *iters* calls."""
    best = np.inf
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, (time.perf_counter() - t0) / iters)
    return best


def run(smoke: bool) -> tuple[list[str], dict]:
    from repro.generators import load_corpus_matrix, rmat
    from repro.layouts import make_layout
    from repro.runtime import CostLedger, DistSparseMatrix

    if smoke:
        A, matrix, p, n_ref, n_eng = rmat(9, 6, seed=1), "rmat(scale=9)", 16, 3, 20
    else:
        A, matrix, p, n_ref, n_eng = load_corpus_matrix("rmat_22"), "rmat_22", 64, 10, 100
    k = 8

    lay = make_layout("2d-random", A, p, seed=0)
    t0 = time.perf_counter()
    dist = DistSparseMatrix(A, lay)
    t_build = time.perf_counter() - t0
    t0 = time.perf_counter()
    _ = dist.engine  # first access compiles and caches the plan
    t_compile = time.perf_counter() - t0

    rng = np.random.default_rng(0)
    x = rng.standard_normal(A.shape[0])
    X = rng.standard_normal((A.shape[0], k))

    # guarantees first: bit-identical numerics, identical modeled cost.
    # Collected as explicit failures (not asserts) so the CI smoke step
    # exits nonzero with a diagnostic even under ``python -O``.
    failures = []
    l_ref, l_eng = CostLedger(), CostLedger()
    y_ref = dist.spmv(x, l_ref, reference=True)
    y_eng = dist.spmv(x, l_eng)
    if not np.array_equal(y_ref, y_eng):
        failures.append(
            "engine is not bit-identical to the reference path: "
            f"max |y_eng - y_ref| = {np.abs(y_eng - y_ref).max():.3e} over "
            f"{np.count_nonzero(y_eng != y_ref)} of {len(y_ref)} entries"
        )
    if l_ref.breakdown() != l_eng.breakdown():
        failures.append(
            f"modeled cost changed: reference {l_ref.breakdown()} "
            f"!= engine {l_eng.breakdown()}"
        )
    Y = dist.spmm(X)
    if not np.array_equal(Y[:, 0], dist.spmv(X[:, 0])):
        col = dist.spmv(X[:, 0])
        failures.append(
            "spmm column 0 differs from spmv: "
            f"max |delta| = {np.abs(Y[:, 0] - col).max():.3e}"
        )

    t_ref = time_loop(lambda: dist.spmv(x, reference=True), n_ref)
    t_eng = time_loop(lambda: dist.spmv(x), n_eng)
    t_blk = time_loop(lambda: dist.spmm(X), max(n_eng // 5, 2))

    return failures, {
        "bench": "engine_throughput",
        "mode": "smoke" if smoke else "full",
        "matrix": matrix,
        "n": int(A.shape[0]),
        "nnz": int(A.nnz),
        "nprocs": p,
        "layout": "2d-random",
        "build_seconds": t_build,
        "engine_compile_seconds": t_compile,
        "spmv_reference_seconds": t_ref,
        "spmv_engine_seconds": t_eng,
        "spmv_100_reference_seconds": 100 * t_ref,
        "spmv_100_engine_seconds": 100 * t_eng,
        "speedup": t_ref / t_eng,
        "spmm_k": k,
        "spmm_seconds": t_blk,
        "spmm_per_vector_seconds": t_blk / k,
        "spmm_speedup_vs_reference": t_ref / (t_blk / k),
        "bit_identical": np.array_equal(y_ref, y_eng),
        "modeled_cost_identical": l_ref.breakdown() == l_eng.breakdown(),
    }


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small matrix / few iterations (CI sanity run)")
    args = ap.parse_args()

    failures, result = run(args.smoke)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(f"[bench_engine_throughput] wrote {OUT_PATH}")
    print(
        "  {matrix} p={nprocs}: 100 spmv {spmv_100_reference_seconds:.3f}s (seed) "
        "-> {spmv_100_engine_seconds:.3f}s (engine), {speedup:.1f}x; "
        "spmm(k={spmm_k}) {spmm_per_vector_seconds:.6f}s/vec "
        "({spmm_speedup_vs_reference:.1f}x vs seed)".format(**result)
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        raise SystemExit(1)
    if not args.smoke and result["speedup"] < 5.0:
        raise SystemExit(f"speedup {result['speedup']:.2f}x below the 5x target")


if __name__ == "__main__":
    main()
