"""Figure 8 — weak scaling with the R-MAT family.

The paper pairs rmat_22/24/26 with 256/1024/4096 processes (~4x nonzeros
per step, constant nonzeros per process); ours pairs the scale-12/14/16
proxies with 16/64/256. Methods: 1D-Block, 1D-HP, 2D-Block, 2D-HP.

Expected shape: the HP methods stay nearly flat (2D-HP flattest), while
the block methods blow up because the nonzero imbalance of an R-MAT
matrix grows with scale (paper: 2D-Block imbalance 24.5 -> 130.5).
"""

from conftest import write_result

from repro.bench import format_table, run_spmv_cell
from repro.generators import load_corpus_matrix

PAIRS = (("rmat_22", 16), ("rmat_24", 64), ("rmat_26", 256))
METHODS = ("1d-block", "1d-hp", "2d-block", "2d-hp")


def test_fig8_weak_scaling(benchmark):
    def run():
        out = {}
        for name, p in PAIRS:
            A = load_corpus_matrix(name)
            for m in METHODS:
                out[(name, p, m)] = run_spmv_cell(
                    A, name, m, p, validate=False, nested_from=256
                )
        return out

    recs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (name, p, r.method, f"{r.time100:.4f}", f"{r.stats.nnz_imbalance:.1f}",
         r.stats.total_comm_volume)
        for (name, p, m), r in sorted(recs.items())
    ]
    table = format_table(["matrix", "p", "method", "t100", "imbal", "CV"], rows)
    path = write_result("fig8_weak_scaling", table)
    print(f"\n[Figure 8] weak scaling (written to {path})\n{table}")

    def times(method):
        return [recs[(n, p, method)].time100 for n, p in PAIRS]

    # HP beats its block counterpart at every point of the weak-scaling
    # series, and 2D-HP is the best method at every point (the paper's
    # "2D-HP maintained the best weak scalability")
    for hp, blk in (("2d-hp", "2d-block"), ("1d-hp", "1d-block")):
        for t_hp, t_blk in zip(times(hp), times(blk)):
            assert t_hp < t_blk
    for i in range(len(PAIRS)):
        assert times("2d-hp")[i] == min(times(m)[i] for m in METHODS)
    # mechanism: block imbalance grows with scale, HP imbalance stays low
    imb_blk = [recs[(n, p, "2d-block")].stats.nnz_imbalance for n, p in PAIRS]
    imb_hp = [recs[(n, p, "2d-hp")].stats.nnz_imbalance for n, p in PAIRS]
    assert imb_blk[-1] > 2 * imb_blk[0]
    assert max(imb_hp) < 4.0  # paper: between 1.2 and 2.5
