"""Table 2 — time for 100 SpMV, all matrices x 6 layouts x process counts.

The paper's headline table: 2D-GP/HP produced the fastest SpMV in 41 of 42
cells, with reductions up to 81.6% over the next-best method. This bench
regenerates the full grid on the proxy corpus (process counts scaled
64..4096 -> 4..256) plus the separate 16K-process section (-> p=1024) for
com-liveJournal and uk-2005.

Expected shape (EXPERIMENTS.md records the actual numbers):
* 2D-GP/HP best or within a few percent of best in every cell, strictly
  best in the large majority;
* reductions grow with p;
* the one structural exception mirrors the paper's own: cells where the
  graph has near-zero exploitable structure (pure R-MAT at harsh
  rows-per-process ratios) are near-ties.
"""

import numpy as np
from conftest import methods_for, write_result

from repro.bench import format_table, run_spmv_cell, table2_rows
from repro.generators import load_corpus_matrix


def test_table2_full_grid(benchmark, table2_records):
    def assemble():
        return table2_rows(table2_records)

    rows = benchmark(assemble)
    table = format_table(
        ["matrix", "p", "1D-Block", "1D-Random", "1D-GP/HP",
         "2D-Block", "2D-Random", "2D-GP/HP", "reduction"],
        rows,
    )
    path = write_result("table2_spmv", table)
    print(f"\n[Table 2] 100-SpMV modeled time (written to {path})\n{table}")

    # paper: 2D-GP/HP best in 41/42 cells with reductions up to 81%. At
    # proxy scale two dilutions apply (EXPERIMENTS.md discusses both): our
    # partitioner's cut ratio vs random is ~0.5-0.6 where ParMETIS/Zoltan
    # reach ~0.3, and scaling volumes down 250x while message counts stay
    # put shrinks the term partitioning improves. The robust reproduced
    # claims, asserted from the raw records:
    from collections import defaultdict

    from repro.generators import corpus_spec

    cells = defaultdict(dict)
    for r in table2_records:
        cells[(r.matrix, r.nprocs)][r.method] = r.time100

    reductions = {(r[0], r[1]): float(r[-1].rstrip("%")) for r in rows}
    # (1) never catastrophically worse than the best alternative. The floor
    # is looser for the HP/R-MAT family: at proxy granularity our HP finds
    # no volume reduction on R-MAT (the paper's Zoltan at 512x the size
    # finds ~10x), so 2D-HP trails 2D-Random by up to ~20% at the paper's
    # (scaled) process counts and up to ~30% at p=4, which is below any
    # configuration the paper ran
    for (matrix, p), red in reductions.items():
        if corpus_spec(matrix).partitioner == "hp":
            floor = -30.0 if p < 16 else -20.0
        elif matrix == "uk-2005":
            # the paper's own single negative cell is uk-2005 (-5.9% at 64
            # procs): on a crawl whose id order is already near-optimal, a
            # block layout is hard to beat; at our compressed margins the
            # same effect reaches ~-18%
            floor = -20.0
        else:
            floor = -15.0
        assert red > floor, (matrix, p, red)
    for (_matrix, p), times in cells.items():
        ours = next(t for m, t in times.items() if m in ("2D-GP", "2D-HP"))
        if p >= 64:
            # (2) at scale, the paper's method beats every 1D layout, always
            assert ours < min(t for m, t in times.items() if m.startswith("1D"))
    # (3) on the structured (GP) matrices — the paper's central evidence —
    # 2D-GP wins the large majority of large-p cells outright
    gp_large = [
        (m, p) for (m, p) in cells
        if p >= 64 and corpus_spec(m).partitioner == "gp"
    ]
    wins = sum(
        1 for key in gp_large
        if cells[key]["2D-GP"] == min(cells[key].values())
    )
    assert wins / len(gp_large) >= 0.6

    # validation errors from the executed four-phase multiplies
    errs = [r.validation_error for r in table2_records if not np.isnan(r.validation_error)]
    assert errs and max(errs) < 1e-9


def test_table2_16k_section(benchmark):
    """The paper's separate 16,384-process (Hopper) rows -> p=1024.

    uk-2005 keeps only the methods the paper could run there (its '-'
    entries were layouts whose build exceeded the time budget).
    """
    def run():
        rows = []
        for name, methods in (
            ("com-liveJournal", methods_for("com-liveJournal")),
            ("uk-2005", ["1d-block", "2d-block", "2d-random", "2d-hp"]),
        ):
            A = load_corpus_matrix(name)
            for m in methods:
                rec = run_spmv_cell(A, name, m, 1024, nested_from=None, validate=False)
                rows.append((name, 1024, rec.method, f"{rec.time100:.4f}",
                             rec.stats.max_messages, rec.stats.total_comm_volume,
                             f"{rec.stats.nnz_imbalance:.1f}"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(["matrix", "p", "method", "t100", "max msgs", "CV", "imb"], rows)
    path = write_result("table2_16k", table)
    print(f"\n[Table 2, 16K section] (written to {path})\n{table}")
    by = {(r[0], r[2]): float(r[3]) for r in rows}
    # at extreme p the 2D advantage is maximal (paper: 87.93 vs 0.76)
    assert by[("com-liveJournal", "2D-GP")] < 0.25 * by[("com-liveJournal", "1D-Block")]
    assert by[("uk-2005", "2D-HP")] < 0.25 * by[("uk-2005", "1D-Block")]
