"""Serial vs process-pool partitioning of the corpus, with bit-identity.

The partitioner is the dominant host-side cost of every sweep in this
repo (one serial pass over the ten-matrix corpus at p=64 is ~7 minutes,
two thirds of it a single matrix, rmat_26). This bench times that pass
serially — the reference ``partition_matrix`` loop, exactly what a cold
``regress generate`` pays — and then through
:func:`repro.parallel.parallel_partition_sweep` at ``--jobs`` workers,
and records both in ``BENCH_partition.json`` at the repo root.

Two guarantees gate the exit code:

* **bit-identity** — the parallel part vector of every corpus matrix
  must equal its serial reference exactly (``"bit_identical": true``);
* **schedule speedup** — replaying the recorded task DAG (per-task CPU
  seconds measured inside the workers) on ``jobs`` virtual workers must
  beat one virtual worker by ``--min-speedup``.

Wall-clock is always reported, but the ``speedup`` field switches basis
by host: on a machine with at least ``jobs`` cores it is measured wall
over wall; on a starved host (CI containers pinned to one core, where
more processes cannot make anything faster) it is the schedule replay,
declared via ``speedup_basis``/``host_cpus`` so the JSON never
overclaims. The replay uses CPU seconds, which time-slicing does not
inflate, so both bases describe the same schedule.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_partition_parallel.py [--smoke]

``--smoke`` shrinks to the two smallest corpus matrices at p=16 for CI
sanity runs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_partition.json"


def run(smoke: bool, jobs: int, min_speedup: float) -> tuple[list[str], dict]:
    from repro.generators.corpus import CORPUS, load_corpus_matrix
    from repro.parallel import parallel_partition_sweep, schedule_makespan
    from repro.partitioning import partition_matrix

    if smoke:
        names, nparts = ["bter", "rmat_22"], 16
    else:
        names, nparts = list(CORPUS), 64
    specs = [
        (name, load_corpus_matrix(name), CORPUS[name].partitioner, nparts)
        for name in names
    ]

    # serial reference pass: the exact loop every consumer of
    # partition_matrix pays today, timed per matrix
    serial_parts: dict[str, np.ndarray] = {}
    serial_matrix_seconds: dict[str, float] = {}
    t_serial0 = time.perf_counter()
    for name, A, kind, k in specs:
        t0 = time.perf_counter()
        serial_parts[name] = partition_matrix(A, k, method=kind).part
        serial_matrix_seconds[name] = time.perf_counter() - t0
    serial_wall = time.perf_counter() - t_serial0

    # parallel pass over one shared pool, recording the task DAG
    trace: list[dict] = []
    t0 = time.perf_counter()
    parallel_parts = parallel_partition_sweep(specs, jobs=jobs, trace=trace)
    parallel_wall = time.perf_counter() - t0

    failures: list[str] = []
    per_matrix = {}
    all_identical = True
    for name, _, kind, k in specs:
        identical = bool(np.array_equal(serial_parts[name], parallel_parts[name]))
        all_identical &= identical
        per_matrix[name] = {
            "partitioner": kind,
            "nparts": k,
            "serial_seconds": round(serial_matrix_seconds[name], 3),
            "bit_identical": identical,
        }
        if not identical:
            diff = int((serial_parts[name] != parallel_parts[name]).sum())
            failures.append(
                f"{name}: parallel rpart differs from serial in {diff} of "
                f"{len(serial_parts[name])} entries — scheduling leaked into results"
            )

    # replay the recorded DAG: same tasks, same dependencies, k virtual
    # workers — host-independent because durations are worker CPU seconds
    makespan_1 = schedule_makespan(trace, 1)
    makespan_j = schedule_makespan(trace, jobs)
    schedule_speedup = makespan_1 / makespan_j if makespan_j > 0 else float("nan")

    host_cpus = os.cpu_count() or 1
    if host_cpus >= jobs:
        speedup, basis = serial_wall / max(parallel_wall, 1e-9), "wall_clock"
    else:
        speedup, basis = schedule_speedup, "schedule_replay"
    if not np.isfinite(speedup) or speedup < min_speedup:
        failures.append(
            f"speedup {speedup:.2f}x ({basis}) below the {min_speedup:.1f}x floor "
            f"at jobs={jobs} (serial {serial_wall:.1f}s, parallel wall "
            f"{parallel_wall:.1f}s, makespan {makespan_1:.1f}s -> {makespan_j:.1f}s)"
        )

    payload = {
        "bench": "partition_parallel",
        "smoke": smoke,
        "jobs": jobs,
        "nparts": nparts,
        "host_cpus": host_cpus,
        "matrices": per_matrix,
        "bit_identical": all_identical,
        "serial_wall_seconds": round(serial_wall, 3),
        "parallel_wall_seconds": round(parallel_wall, 3),
        "trace_tasks": len(trace),
        "trace_cpu_seconds": round(sum(t["cpu"] for t in trace), 3),
        "schedule_makespan_1": round(makespan_1, 3),
        f"schedule_makespan_{jobs}": round(makespan_j, 3),
        "schedule_speedup": round(schedule_speedup, 3),
        "speedup": round(float(speedup), 3),
        "speedup_basis": basis,
        "min_speedup": min_speedup,
        "ok": not failures,
    }
    return failures, payload


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="two smallest matrices at p=16 (CI sanity run)")
    ap.add_argument("--jobs", type=int, default=4,
                    help="pool workers for the parallel pass (default: 4)")
    ap.add_argument("--min-speedup", type=float, default=2.0,
                    help="schedule-speedup floor that gates the exit code")
    args = ap.parse_args(argv)

    failures, payload = run(args.smoke, args.jobs, args.min_speedup)
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(f"partition sweep: {len(payload['matrices'])} matrices at p={payload['nparts']}")
    print(f"  serial wall      {payload['serial_wall_seconds']:.1f}s")
    print(f"  parallel wall    {payload['parallel_wall_seconds']:.1f}s "
          f"(jobs={args.jobs}, host has {payload['host_cpus']} cpu(s))")
    print(f"  schedule replay  {payload['schedule_makespan_1']:.1f}s -> "
          f"{payload[f'schedule_makespan_{args.jobs}']:.1f}s over {payload['trace_tasks']} tasks")
    print(f"  speedup          {payload['speedup']:.2f}x ({payload['speedup_basis']})")
    print(f"  bit identical    {payload['bit_identical']}")
    print(f"wrote {OUT_PATH.relative_to(REPO_ROOT)}")
    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
