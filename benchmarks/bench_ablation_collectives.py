"""Ablation — communication algorithms for expand/fold (paper ref [18]).

The paper's Epetra communication "is essentially point-to-point, which may
not be optimal (see [18])". This bench quantifies the alternatives on one
structured and one scale-free proxy: per layout, modeled 100-SpMV time
under direct, binomial-tree and hypercube communication.

Expected shape: structured collectives collapse 1D's p-1 latencies to
log p (a large win), barely move the 2D layouts (little latency to save),
and the best overall configuration remains a 2D layout — i.e. the paper's
conclusion is robust to the communication implementation.
"""

from conftest import write_result

from repro.bench import format_table
from repro.bench.harness import layout_for
from repro.generators import load_corpus_matrix
from repro.runtime import CAB, COLLECTIVE_ALGORITHMS, DistSparseMatrix

MATRICES = ("wb-edu", "rmat_24")
METHODS = ("1d-block", "1d-random", "2d-block", "2d-gp")
P = 64


def test_ablation_collectives(benchmark):
    def run():
        out = {}
        for name in MATRICES:
            A = load_corpus_matrix(name)
            kind = "gp"
            for m in METHODS:
                method = m if not m.endswith("-gp") else f"2d-{kind}"
                lay = layout_for(A, method, P, nested_from=256)
                dist = DistSparseMatrix(A, lay, CAB)
                for alg in COLLECTIVE_ALGORITHMS:
                    out[(name, lay.name, alg)] = dist.modeled_spmv_seconds(100, algorithm=alg)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    keys = sorted({(n, m) for (n, m, _) in results})
    rows = [
        (n, m) + tuple(f"{results[(n, m, alg)]:.4f}" for alg in sorted(COLLECTIVE_ALGORITHMS))
        for (n, m) in keys
    ]
    table = format_table(["matrix", "layout"] + sorted(COLLECTIVE_ALGORITHMS), rows)
    path = write_result("ablation_collectives", table)
    print(f"\n[Ablation] communication algorithms at p={P} (written to {path})\n{table}")

    for name in MATRICES:
        def t(method, alg):
            return results[(name, method, alg)]

        # tree helps the many-peer layout (1D-Random talks to ~everyone)
        # far more than it helps 2D; 1D-Block on a locality-rich graph has
        # few peers with fat payloads and tree routing can even hurt it —
        # both regimes are visible in the table
        gain_1d = t("1D-Random", "direct") / t("1D-Random", "tree")
        gain_2d = t("2D-GP", "direct") / t("2D-GP", "tree")
        assert gain_1d > gain_2d
        # the overall best configuration is still a 2D layout
        best = min(results[k] for k in results if k[0] == name)
        best_2d = min(results[k] for k in results if k[0] == name and k[1].startswith("2D"))
        assert best_2d == best
