"""Figure 7 — performance profile restricted to large process counts.

Same construction as Figure 6 but only instances with >= 1024 processes
(ours: >= 64). The paper's point: at scale the 1D methods separate cleanly
from the 2D methods — their profile curves shift far right.
"""

from conftest import write_result

from repro.bench import format_table, performance_profile, profile_value_at

LARGE_P = 64  # paper: 1024
XS = (1.0, 1.5, 2.0, 3.0, 5.0, 10.0)


def _norm_method(m: str) -> str:
    return m.replace("-GP", "-GP/HP").replace("-HP", "-GP/HP") if m.endswith(("-GP", "-HP")) else m


def test_fig7_profile_large_p(benchmark, table2_records):
    def compute():
        large = [r for r in table2_records if r.nprocs >= LARGE_P]
        return performance_profile(large, method_of=lambda r: _norm_method(r.method))

    prof = benchmark(compute)
    rows = [
        (m,) + tuple(f"{profile_value_at(prof, m, x):.3f}" for x in XS)
        for m in sorted(prof)
    ]
    table = format_table(["method"] + [f"x={x}" for x in XS], rows)
    path = write_result("fig7_profile_largep", table)
    print(f"\n[Figure 7] profile, p >= {LARGE_P} (written to {path})\n{table}")

    # at large p the 1D/2D separation is clean: every 2D curve is above
    # every 1D curve at x = 2 (the paper's figure shows the same split)
    for m2 in ("2D-Block", "2D-Random", "2D-GP/HP"):
        for m1 in ("1D-Block", "1D-Random", "1D-GP/HP"):
            assert profile_value_at(prof, m2, 2.0) >= profile_value_at(prof, m1, 2.0)
    # 1D methods rarely come close to best at scale
    assert profile_value_at(prof, "1D-Block", 1.5) < 0.3
