"""Table 4 — eigensolver time under 1D and 2D distributions.

Block Krylov-Schur (block size 1), ten largest eigenpairs of the
normalized Laplacian to tol 1e-3, averaged over random starts — for
hollywood-2009 and com-orkut with the multiconstraint variants
(1D/2D-GP-MC), and rmat_26 with HP (the paper could not run MC with
hypergraph partitioning; neither can we, by construction).

Expected shape: 2D-GP-MC (or 2D-HP for rmat_26) lowest at scale; plain
2D-GP beaten by its MC variant wherever vector imbalance bites.
"""

from collections import defaultdict

from conftest import write_result

from repro.bench import format_seconds, format_table, reduction_vs_best


def test_table4_eigensolve(benchmark, table4_records):
    def assemble():
        grouped = defaultdict(dict)
        for r in table4_records:
            grouped[(r.matrix, r.nprocs)][r.method] = r.solve_time
        return grouped

    grouped = benchmark(assemble)
    methods = ["1D-Block", "1D-Random", "1D-GP", "1D-HP", "1D-GP-MC",
               "2D-Block", "2D-Random", "2D-GP", "2D-HP", "2D-GP-MC"]
    rows = []
    for (matrix, p), times in sorted(grouped.items()):
        ours = "2D-GP-MC" if "2D-GP-MC" in times else "2D-HP"
        # paper's last column excludes plain 2D-GP from the comparison
        cmp_times = {m: t for m, t in times.items() if m != "2D-GP"}
        red = reduction_vs_best(cmp_times, ours)
        rows.append(
            (matrix, p)
            + tuple(format_seconds(times[m]) if m in times else "-" for m in methods)
            + (f"{red:.1f}%",)
        )
    table = format_table(["matrix", "p"] + methods + ["reduction"], rows)
    path = write_result("table4_eigen", table)
    print(f"\n[Table 4] eigensolve time (written to {path})\n{table}")

    for (matrix, p), times in grouped.items():
        if p < 64:
            continue  # small p: communication not yet dominant
        if "2D-GP-MC" in times:
            # GP matrices: the paper's reductions at scale are 2.2%..45%;
            # require a win or near-tie in every large-p cell
            others = {m: t for m, t in times.items() if m not in ("2D-GP-MC", "2D-GP")}
            assert times["2D-GP-MC"] <= 1.05 * min(others.values()), (matrix, p, times)
        else:
            # rmat_26 (HP): at 250x scale-down a single hub row outweighs a
            # whole part, so the nnz-balanced HP partition concentrates
            # vector entries and 2D-Random overtakes 2D-HP — a divergence
            # the paper's absolute scale avoids (see EXPERIMENTS.md). The
            # robust part of the claim is the 1D/2D split:
            assert times["2D-HP"] < min(t for m, t in times.items() if m.startswith("1D"))
        # and 1D methods are far behind at the largest p
        if p == 256:
            ours = "2D-GP-MC" if "2D-GP-MC" in times else "2D-HP"
            assert times[ours] < 0.6 * times["1D-Block"]
    # every recorded solve converged at the paper's tolerance
    assert all(r.converged for r in table4_records)
