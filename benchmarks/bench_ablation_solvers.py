"""Ablation — BKS vs LOBPCG (paper section 4's preliminary experiment).

"Anasazi contains a collection of different eigensolvers, including Block
Krylov-Schur (BKS) and LOBPCG. Preliminary experiments indicate BKS is
effective for scale-free graphs, so we use it in our experiments."

This bench reruns that preliminary comparison at the paper's task (ten
largest eigenpairs of the normalized Laplacian, tol 1e-3): matvecs and
modeled solve time for both solvers on two scale-free proxies.
"""

from conftest import write_result

from repro.bench import format_table
from repro.bench.harness import layout_for
from repro.generators import load_corpus_matrix
from repro.graphs import normalized_laplacian
from repro.runtime import CAB, DistSparseMatrix
from repro.solvers import DistOperator, eigsh_dist, lobpcg_dist

MATRICES = ("hollywood-2009", "rmat_22")
P = 16


def test_ablation_bks_vs_lobpcg(benchmark):
    def run():
        out = {}
        for name in MATRICES:
            A = load_corpus_matrix(name)
            Lhat = normalized_laplacian(A)
            lay = layout_for(A, "2d-random", P)
            op = DistOperator(DistSparseMatrix(Lhat, lay, CAB))
            res = eigsh_dist(op, k=10, tol=1e-3, which="LA", seed=7)
            out[(name, "BKS")] = (res.converged, res.matvecs, op.ledger.total())
            op = DistOperator(DistSparseMatrix(Lhat, lay, CAB))
            res = lobpcg_dist(op, k=10, tol=1e-3, max_iter=2000, seed=7)
            out[(name, "LOBPCG")] = (res.converged, res.matvecs, op.ledger.total())
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (name, solver, "yes" if conv else "no", mv, f"{t:.4f}")
        for (name, solver), (conv, mv, t) in sorted(results.items())
    ]
    table = format_table(["matrix", "solver", "converged", "matvecs", "solve t"], rows)
    path = write_result("ablation_solvers", table)
    print(f"\n[Ablation] BKS vs LOBPCG at p={P} (written to {path})\n{table}")

    for name in MATRICES:
        conv_b, _, t_b = results[(name, "BKS")]
        conv_l, _, t_l = results[(name, "LOBPCG")]
        assert conv_b and conv_l
        assert t_b < t_l  # the paper's preliminary finding
