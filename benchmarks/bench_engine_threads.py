"""Thread-parallel apply: corpus-wide bit-identity and nnz-balance gates.

:mod:`repro.runtime.threads` slices each compiled operator into
nnz-balanced contiguous row blocks and fans a multiply across the shared
GIL-releasing pool. This bench measures and gates the two claims that
make that safe to ship:

**Bit-identity** (per corpus matrix, at the paper's 2D method, at every
thread budget in 1/2/4/8): ``spmv``, ``spmm``, ``spmv_with_partials``
and the ABFT checksum arrays produced by the ``threaded`` kernel equal
the retained ``serial`` fused-multiply oracle **exactly** —
``np.array_equal``, never a tolerance.

**Balance** (the headline gate): per-block multiply times are measured
*serially* and replayed — threaded time at budget T is the bottleneck
(slowest) block per operator phase, exactly the replay basis the PR-4
schedule gates use (``schedule_makespan``), so the gate is
host-independent and does not flake on small CI runners. Aggregated over
the corpus, the replayed ``spmm`` speedup at 8 threads must be at least
``--min-speedup`` (default 2.5). Wall-clock speedups are *recorded* for
every budget alongside ``host_cpus`` but never hard-gated: a 1- or
2-core runner cannot show an 8-thread wall win, while the replay number
is a pure property of the nnz split.

**Serve uplift**: a server with ``engine_threads=8`` runs the batched
load phase from ``bench_serve_load`` on the warm matrix; throughput is
recorded against the committed ``BENCH_serve.json`` batched baseline
(recorded, not gated — the baseline was measured on a different host),
while divergences and errors gate at zero: threading must be invisible
on the wire.

Gates (exit 1, ``"ok": false`` in ``BENCH_threads.json``):

* ``bit_identical`` true for every matrix at every thread budget;
* aggregate replayed spmm speedup at 8 threads >= ``--min-speedup``;
* serve phase: zero divergences, zero errors, health reports the
  configured thread budget.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_engine_threads.py [--smoke]

``--smoke`` covers the three smallest corpus matrices; the full run
covers all ten.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_threads.json"
BASELINE_PATH = REPO_ROOT / "BENCH_serve.json"

SMOKE_MATRICES = ("hollywood-2009", "com-orkut", "cit-Patents")
PROCS = 16
THREAD_BUDGETS = (1, 2, 4, 8)
GATED_BUDGET = 8


def _time_best(fn, reps: int) -> float:
    best = np.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _identity_at(engine, budget: int, baseline: dict) -> list[str]:
    """Threaded-vs-serial exact equality for every apply path."""
    fails: list[str] = []
    engine.set_threads(budget)
    y = engine.spmv(baseline["x"])
    if not np.array_equal(y, baseline["spmv"]):
        fails.append(f"spmv diverged at {budget} threads")
    if not np.array_equal(engine.spmm(baseline["X"]), baseline["spmm"]):
        fails.append(f"spmm diverged at {budget} threads")
    yp, partials = engine.spmv_with_partials(baseline["x"])
    if not (
        np.array_equal(yp, baseline["spmv"])
        and np.array_equal(partials, baseline["partials"])
    ):
        fails.append(f"spmv_with_partials diverged at {budget} threads")
    check = engine.abft_check(baseline["x"], partials, yp)
    if not (
        np.array_equal(check.rank_discrepancy, baseline["abft_disc"])
        and np.array_equal(check.rank_threshold, baseline["abft_thr"])
    ):
        fails.append(f"ABFT checksum arrays diverged at {budget} threads")
    if check.detected:
        fails.append(f"ABFT flagged a clean run at {budget} threads")
    # the detector must still fire through the threaded path (additive so
    # a zero-valued slot cannot silently absorb the corruption)
    bad = partials.copy()
    bad[len(bad) // 2] += 1e-3 * (float(np.abs(partials).max()) + 1.0)
    if not engine.abft_check(baseline["x"], bad).detected:
        fails.append(f"ABFT missed injected corruption at {budget} threads")
    return fails


def _serial_baseline(engine, rng) -> dict:
    """Oracle outputs from the fused serial kernel, plus the inputs."""
    from repro.runtime.threads import use_kernel

    x = rng.standard_normal(engine.n)
    X = rng.standard_normal((engine.n, 8))
    with use_kernel("serial"):
        y, partials = engine.spmv_with_partials(x)
        check = engine.abft_check(x, partials, y)
        return {
            "x": x,
            "X": X,
            "spmv": engine.spmv(x),
            "spmm": engine.spmm(X),
            "partials": partials,
            "abft_disc": check.rank_discrepancy,
            "abft_thr": check.rank_threshold,
        }


def _replay(engine, k: int, reps: int, rng) -> dict[int, dict]:
    """Serially-measured per-block times, replayed per thread budget.

    The fused two-multiply spmm is the denominator; the replayed
    threaded time at budget T is ``max_b t(local block b) + max_b
    t(fold block b)`` over the plan's blocks — the bottleneck block per
    phase is the critical path when each block runs on its own thread.
    """
    local, fold = engine._local, engine._fold
    X = rng.standard_normal((engine.n, k))
    P = local @ X
    t_serial = _time_best(lambda: local @ X, reps) + _time_best(
        lambda: fold @ P, reps
    )
    out: dict[int, dict] = {}
    for t in THREAD_BUDGETS:
        engine.set_threads(t)
        plan = engine._plan()
        bottleneck = 0.0
        for op_blocks, rhs in ((plan.local_blocks, X), (plan.fold_blocks, P)):
            times = [
                _time_best(lambda M=M: M @ rhs, reps)
                for _, _, M in op_blocks
            ]
            bottleneck += max(times) if times else 0.0
        wall = _time_best(lambda: engine.spmm(X), reps)
        out[t] = {
            "replay_seconds": bottleneck,
            "serial_seconds": t_serial,
            "replay_speedup": round(t_serial / max(bottleneck, 1e-12), 3),
            "wall_seconds": round(wall, 6),
            "wall_speedup": round(t_serial / max(wall, 1e-12), 3),
            "plan": engine.plan_stats(),
        }
    return out


def _serve_phase(matrix: str, timeout: float) -> tuple[list[str], dict]:
    """Batched load against a threaded server; wire-invisible threading."""
    from repro.serve import ServeClient, ServeConfig, run_loadgen, start_in_thread

    fails: list[str] = []
    sock = f"/tmp/repro-threads-{os.getpid()}.sock"
    handle = start_in_thread(
        ServeConfig(socket_path=sock, engine_threads=GATED_BUDGET)
    )
    try:
        with ServeClient(sock, timeout=timeout) as c:
            resp, _ = c.request(
                {"op": "partition", "matrix": matrix, "procs": PROCS}
            )
            if not resp.get("ok"):
                return [f"serve warm-up failed: {resp.get('error')}"], {}
            health, _ = c.request({"op": "health"})
        batched = run_loadgen(
            sock, matrix, procs=PROCS, concurrency=16,
            requests_per_client=10, check=True,
        )
        with ServeClient(sock, timeout=timeout) as c:
            c.request({"op": "shutdown"})
    finally:
        handle.stop()

    if health.get("engine_threads") != GATED_BUDGET:
        fails.append(
            f"health reported engine_threads="
            f"{health.get('engine_threads')!r}, expected {GATED_BUDGET}"
        )
    if batched.errors:
        fails.append(f"threaded serve: {batched.errors} request error(s)")
    if batched.divergences:
        fails.append(
            f"threaded serve: {batched.divergences} bitwise divergence(s) "
            f"— threading must be invisible on the wire"
        )
    baseline_rps = None
    if BASELINE_PATH.exists():
        base = json.loads(BASELINE_PATH.read_text())
        rec = base.get("matrices", {}).get(matrix, {}).get("batched", {})
        baseline_rps = rec.get("throughput_rps")
    rps = batched.throughput_rps
    return fails, {
        "matrix": matrix,
        "procs": PROCS,
        "engine_threads": GATED_BUDGET,
        "throughput_rps": round(rps, 3),
        "p99_ms": round(batched.p99_ms, 4),
        "divergences": batched.divergences,
        "errors": batched.errors,
        "baseline_batched_rps": baseline_rps,
        "uplift_vs_baseline": (
            round(rps / baseline_rps, 3) if baseline_rps else None
        ),
    }


def run(smoke: bool, min_speedup: float) -> tuple[list[str], dict]:
    from repro.bench.harness import gp_or_hp, layout_for
    from repro.generators.corpus import CORPUS, load_corpus_matrix
    from repro.runtime import CAB, DistSparseMatrix

    matrices = list(SMOKE_MATRICES) if smoke else list(CORPUS)
    k = 8 if smoke else 16
    reps = 2 if smoke else 3
    failures: list[str] = []
    per_matrix: dict[str, dict] = {}
    total_serial = 0.0
    total_replay = 0.0

    rng = np.random.default_rng(17)
    for name in matrices:
        A = load_corpus_matrix(name)
        method = gp_or_hp(name, "2d")
        layout = layout_for(A, method, PROCS)
        engine = DistSparseMatrix(A, layout, CAB).engine

        baseline = _serial_baseline(engine, rng)
        identity_fails: list[str] = []
        for t in THREAD_BUDGETS:
            identity_fails += _identity_at(engine, t, baseline)
        failures += [f"{name}: {f}" for f in identity_fails]

        replay = _replay(engine, k, reps, rng)
        gated = replay[GATED_BUDGET]
        total_serial += gated["serial_seconds"]
        total_replay += gated["replay_seconds"]
        per_matrix[name] = {
            "n": int(A.shape[0]),
            "nnz": int(A.nnz),
            "method": method,
            "bit_identical": not identity_fails,
            "thread_budgets": {
                str(t): {
                    key: rec[key]
                    for key in (
                        "replay_speedup", "wall_speedup",
                        "wall_seconds", "plan",
                    )
                }
                for t, rec in replay.items()
            },
            "serial_spmm_seconds": round(gated["serial_seconds"], 6),
            "replay_spmm_seconds_t8": round(gated["replay_seconds"], 6),
            "replay_speedup_t8": gated["replay_speedup"],
        }

    aggregate = total_serial / max(total_replay, 1e-12)
    if aggregate < min_speedup:
        failures.append(
            f"aggregate replayed spmm speedup {aggregate:.2f}x at "
            f"{GATED_BUDGET} threads is below the {min_speedup:.1f}x floor "
            f"(serial {total_serial:.4f}s vs bottleneck {total_replay:.4f}s)"
        )

    serve_fails, serve = _serve_phase(matrices[0], timeout=600.0)
    failures += serve_fails

    payload = {
        "bench": "engine_threads",
        "mode": "smoke" if smoke else "full",
        "procs": PROCS,
        "host_cpus": os.cpu_count() or 1,
        "thread_budgets": list(THREAD_BUDGETS),
        "gated_budget": GATED_BUDGET,
        "min_speedup": min_speedup,
        "spmm_width": k,
        "matrices": per_matrix,
        "bit_identical": all(
            rec["bit_identical"] for rec in per_matrix.values()
        ),
        "aggregate_serial_seconds": round(total_serial, 6),
        "aggregate_replay_seconds": round(total_replay, 6),
        "aggregate_replay_speedup": round(aggregate, 3),
        "serve": serve,
        "ok": not failures,
    }
    return failures, payload


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="three smallest matrices (CI sanity run)")
    ap.add_argument("--min-speedup", type=float, default=2.5,
                    help="aggregate replayed spmm floor at 8 threads "
                         "(default: 2.5)")
    args = ap.parse_args(argv)

    failures, payload = run(args.smoke, args.min_speedup)
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    for name, rec in payload["matrices"].items():
        budgets = rec["thread_budgets"]
        line = ", ".join(
            f"t={t}: {budgets[str(t)]['replay_speedup']:.2f}x"
            for t in THREAD_BUDGETS
        )
        print(f"{name} ({rec['method']}, n={rec['n']}, "
              f"identical={rec['bit_identical']}):")
        print(f"  replay {line}")
    print(f"aggregate replayed spmm speedup at {payload['gated_budget']} "
          f"threads: {payload['aggregate_replay_speedup']:.2f}x over "
          f"{len(payload['matrices'])} matrices "
          f"(floor {payload['min_speedup']:.1f}x, "
          f"host_cpus={payload['host_cpus']})")
    serve = payload.get("serve") or {}
    if serve:
        uplift = serve.get("uplift_vs_baseline")
        print(f"serve (engine_threads={serve['engine_threads']}): "
              f"{serve['throughput_rps']:.0f} rps, "
              f"divergences={serve['divergences']}"
              + (f", {uplift:.2f}x committed batched baseline"
                 if uplift else ""))
    print(f"wrote {OUT_PATH.relative_to(REPO_ROOT)}")
    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
