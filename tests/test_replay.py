"""Tests for record-and-replay solver costing.

The parity assertions here are what lets the benches replace 32 redundant
distributed eigensolves per matrix with one recorded run: the recorded
tally, priced for a layout, must equal what a live distributed run would
have charged.
"""

import numpy as np

from repro.graphs import normalized_laplacian
from repro.layouts import make_layout
from repro.runtime import CAB, CostLedger, DistSparseMatrix, DistVectorSpace, Map
from repro.solvers import (
    DistOperator,
    RecordingSpace,
    eigsh_dist,
    modeled_solve_seconds,
    solve_profile,
)


class TestRecordingSpaceParity:
    """Same op sequence -> identical modeled cost, recorded vs live."""

    def _run_sequence(self, space, rng):
        n = 200
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)
        B = rng.standard_normal((n, 7))
        S = rng.standard_normal((7, 4))
        space.dot(x, y)
        space.norm(x)
        space.axpy(0.5, x, y)
        space.scale(2.0, x)
        space.multi_dot(B, x)
        space.multi_axpy(B, np.zeros(7), x)
        space.gemm(B, S)

    def test_priced_recording_equals_live_charge(self, rng):
        n, p = 200, 4
        owner = rng.integers(0, p, n)
        vmap = Map(owner, p)
        live_ledger = CostLedger()
        live = DistVectorSpace(vmap, CAB, live_ledger)
        self._run_sequence(live, np.random.default_rng(1))

        rec = RecordingSpace(n)
        self._run_sequence(rec, np.random.default_rng(1))
        max_local = int(vmap.counts().max())
        priced = CAB.gamma_mem * rec.stream_factor * max_local
        priced += CAB.gamma_flop * rec.gemm_flop_factor * max_local
        priced += rec.scalar_reductions * CAB.allreduce_time(p)
        priced += rec.vector_reductions * CAB.allreduce_time(p)
        extra = rec.vector_reduction_words - rec.vector_reductions
        priced += int(np.ceil(np.log2(p))) * CAB.beta * extra
        assert np.isclose(priced, live_ledger.total(), rtol=1e-12)

    def test_recording_numerics_match_live(self, rng):
        n = 100
        x = rng.standard_normal(n)
        B = rng.standard_normal((n, 3))
        rec = RecordingSpace(n)
        live = DistVectorSpace(Map(np.zeros(n, dtype=np.int64), 1), CAB)
        assert np.isclose(rec.dot(x, x), live.dot(x, x))
        assert np.allclose(rec.multi_dot(B, x), live.multi_dot(B, x))


class TestSolveProfile:
    def test_profile_fields(self, small_powerlaw):
        Lhat = normalized_laplacian(small_powerlaw)
        prof = solve_profile(Lhat, k=4, tol=1e-4, seed=0)
        assert prof.converged
        assert prof.matvecs > 0
        assert prof.stream_factor > 0
        assert prof.scalar_reductions > 0
        assert len(prof.eigenvalues) == 4

    def test_deterministic(self, small_powerlaw):
        Lhat = normalized_laplacian(small_powerlaw)
        p1 = solve_profile(Lhat, k=3, tol=1e-4, seed=7)
        p2 = solve_profile(Lhat, k=3, tol=1e-4, seed=7)
        assert p1.matvecs == p2.matvecs
        assert p1.stream_factor == p2.stream_factor


class TestEndToEndParity:
    def test_replay_close_to_live_distributed_solve(self, small_powerlaw):
        """Full pipeline: modeled time from replay tracks a real distributed
        run on the same matrix/layout (trajectories may differ microscopically
        through float summation order, hence the loose tolerance)."""
        Lhat = normalized_laplacian(small_powerlaw)
        lay = make_layout("2d-random", small_powerlaw, 4, seed=0)
        dist = DistSparseMatrix(Lhat, lay, CAB)

        op = DistOperator(DistSparseMatrix(Lhat, lay, CAB))
        live = eigsh_dist(op, k=4, tol=1e-4, seed=11)
        live_total = op.ledger.total()

        prof = solve_profile(Lhat, k=4, tol=1e-4, seed=11)
        total, spmv = modeled_solve_seconds(prof, dist, CAB)
        assert live.converged and prof.converged
        assert abs(prof.matvecs - live.matvecs) <= 0.1 * live.matvecs
        assert abs(total - live_total) <= 0.1 * live_total
        assert 0 < spmv < total

    def test_spmv_fraction_consistent(self, small_powerlaw):
        Lhat = normalized_laplacian(small_powerlaw)
        lay = make_layout("1d-block", small_powerlaw, 4)
        dist = DistSparseMatrix(Lhat, lay, CAB)
        prof = solve_profile(Lhat, k=4, tol=1e-4, seed=2)
        total, spmv = modeled_solve_seconds(prof, dist, CAB)
        assert np.isclose(spmv, prof.matvecs * dist.modeled_spmv_seconds(1))
