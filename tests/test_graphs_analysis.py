"""Tests for repro.graphs.analysis — scale-free diagnostics."""

import numpy as np

from repro.graphs import (
    GraphStats,
    degree_histogram,
    graph_stats,
    powerlaw_exponent_mle,
)
from repro.generators import grid2d


class TestGraphStats:
    def test_table1_columns(self, small_rmat):
        s = graph_stats(small_rmat, name="rmat10")
        assert s.name == "rmat10"
        assert s.n_rows == small_rmat.shape[0]
        assert s.n_nonzeros == small_rmat.nnz
        nnz_rows = np.diff(small_rmat.indptr)
        assert s.max_nnz_per_row == nnz_rows.max()
        assert np.isclose(s.mean_nnz_per_row, nnz_rows.mean())
        assert s.row() == ("rmat10", s.n_rows, s.n_nonzeros, s.max_nnz_per_row)

    def test_skew_discriminates_mesh_from_scalefree(self, small_rmat, small_grid):
        assert graph_stats(small_rmat).skew > 10
        assert graph_stats(small_grid).skew < 2

    def test_frozen(self):
        s = graph_stats(grid2d(3, 3))
        assert isinstance(s, GraphStats)
        try:
            s.n_rows = 5
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestPowerlawMLE:
    def test_recovers_exponent_of_pareto_sample(self, rng):
        # discrete power law built the way the CSN estimator assumes:
        # continuous Pareto with xmin = dmin - 0.5, rounded to integers
        gamma = 2.5
        u = rng.random(200_000)
        d = np.round(1.5 * (1.0 - u) ** (-1.0 / (gamma - 1.0))).astype(int)
        est = powerlaw_exponent_mle(d, dmin=2)
        assert abs(est - gamma) < 0.1

    def test_too_few_samples_gives_nan(self):
        assert np.isnan(powerlaw_exponent_mle(np.array([1, 1, 1])))

    def test_scalefree_graph_has_low_gamma(self, small_rmat, small_grid):
        g_rmat = powerlaw_exponent_mle(np.diff(small_rmat.indptr))
        assert 1.0 < g_rmat < 3.0
        # grids have all-equal degrees: MLE degenerates high, not low
        g_grid = powerlaw_exponent_mle(np.diff(grid2d(50, 50).indptr))
        assert g_grid > g_rmat


class TestDegreeHistogram:
    def test_counts_sum_to_n(self, small_rmat):
        degs, counts = degree_histogram(small_rmat)
        # isolated vertices have degree 0; bincount covers them too
        assert counts.sum() == small_rmat.shape[0]
        assert (np.diff(degs) > 0).all()  # strictly increasing bins

    def test_grid_histogram_small_support(self):
        degs, counts = degree_histogram(grid2d(10, 10))
        assert set(degs.tolist()) == {2, 3, 4}
        assert counts.sum() == 100
