"""Tests for repro.runtime.maps and repro.runtime.plan."""

import numpy as np
import pytest

from repro.runtime import CAB, CommPlan, Map


class TestMap:
    def test_grouping(self):
        m = Map(np.array([1, 0, 1, 2, 0]), 3)
        assert m.indices_of(0).tolist() == [1, 4]
        assert m.indices_of(1).tolist() == [0, 2]
        assert m.indices_of(2).tolist() == [3]
        assert m.counts().tolist() == [2, 2, 1]

    def test_local_ids(self):
        m = Map(np.array([1, 0, 1, 2, 0]), 3)
        assert m.local_ids(np.array([0, 2]), 1).tolist() == [0, 1]
        assert m.local_ids(np.array([4]), 0).tolist() == [1]

    def test_local_ids_wrong_owner_raises(self):
        m = Map(np.array([1, 0]), 2)
        with pytest.raises(ValueError, match="not owned"):
            m.local_ids(np.array([0]), 0)

    def test_imbalance(self):
        m = Map(np.array([0, 0, 0, 1]), 2)
        assert np.isclose(m.imbalance(), 1.5)
        assert np.isclose(Map(np.array([0, 1]), 2).imbalance(), 1.0)

    def test_out_of_range_owner(self):
        with pytest.raises(ValueError, match="range"):
            Map(np.array([0, 3]), 2)

    def test_equality(self):
        a = Map(np.array([0, 1]), 2)
        assert a == Map(np.array([0, 1]), 2)
        assert a != Map(np.array([1, 0]), 2)


class TestCommPlan:
    def _simple(self):
        # 3 ranks; owner: idx0->r0, idx1->r1, idx2->r2, idx3->r1
        owner = Map(np.array([0, 1, 2, 1]), 3)
        needed = [np.array([1, 2]),       # r0 needs 1 (from r1), 2 (from r2)
                  np.array([0, 1, 3]),    # r1 needs 0 (from r0); 1,3 local
                  np.array([], dtype=np.int64)]
        return CommPlan.build(needed, owner), owner

    def test_message_structure(self):
        plan, _ = self._simple()
        triples = {(int(s), int(d), tuple(plan.message_indices(m).tolist()))
                   for m, (s, d) in enumerate(zip(plan.src, plan.dst))}
        assert triples == {(1, 0, (1,)), (2, 0, (2,)), (0, 1, (0,))}
        assert plan.nmessages == 3
        assert plan.total_volume == 3

    def test_no_self_messages(self):
        plan, _ = self._simple()
        assert (plan.src != plan.dst).all()

    def test_counts_and_volumes(self):
        plan, _ = self._simple()
        assert plan.sent_counts().tolist() == [1, 1, 1]
        assert plan.recv_counts().tolist() == [2, 1, 0]
        assert plan.sent_volume().tolist() == [1, 1, 1]
        assert plan.recv_volume().tolist() == [2, 1, 0]

    def test_messages_from_to(self):
        plan, _ = self._simple()
        assert len(plan.messages_from(1)) == 1
        assert len(plan.messages_to(0)) == 2
        assert len(plan.messages_to(2)) == 0

    def test_duplicate_needs_deduplicated(self):
        owner = Map(np.array([0, 1]), 2)
        plan = CommPlan.build([np.array([1, 1, 1]), np.array([], dtype=np.int64)], owner)
        assert plan.total_volume == 1

    def test_phase_time_postal_model(self):
        plan, _ = self._simple()
        t = plan.phase_time(CAB)
        # rank 0 receives two 1-double messages: its cost dominates
        expected_r0 = 2 * (CAB.alpha + CAB.beta * 1) + (CAB.alpha + CAB.beta * 1)
        assert np.isclose(t, expected_r0)  # r0: 2 recv + 1 send

    def test_wrong_needed_length(self):
        owner = Map(np.array([0]), 1)
        with pytest.raises(ValueError, match="entries"):
            CommPlan.build([], owner)

    def test_brute_force_random_instance(self, rng):
        """Plan must deliver exactly the remote indices each rank needs."""
        n, p = 60, 5
        owner = Map(rng.integers(0, p, n), p)
        needed = [np.unique(rng.integers(0, n, 20)) for _ in range(p)]
        plan = CommPlan.build(needed, owner)
        got = [set() for _ in range(p)]
        for m in range(plan.nmessages):
            d = int(plan.dst[m])
            idx = plan.message_indices(m)
            assert (owner.owner[idx] == plan.src[m]).all()  # sender owns payload
            got[d].update(idx.tolist())
        for r in range(p):
            expected = {i for i in needed[r].tolist() if owner.owner[i] != r}
            assert got[r] == expected
