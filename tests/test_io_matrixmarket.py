"""Tests for the MatrixMarket reader/writer."""

import gzip

import numpy as np
import pytest

from repro.graphs import from_edges, pattern_equal
from repro.io import read_matrix_market, write_matrix_market


class TestRoundtrip:
    def test_real_general(self, tmp_path, small_rmat):
        path = tmp_path / "a.mtx"
        write_matrix_market(path, small_rmat)
        B = read_matrix_market(path)
        assert pattern_equal(small_rmat, B)
        assert np.allclose((small_rmat - B).data, 0.0) if (small_rmat - B).nnz else True

    def test_pattern_mode(self, tmp_path, small_grid):
        path = tmp_path / "p.mtx"
        write_matrix_market(path, small_grid, pattern=True)
        B = read_matrix_market(path)
        assert pattern_equal(small_grid, B)
        assert (B.data == 1.0).all()
        assert "pattern" in path.read_text().splitlines()[0]

    def test_values_preserved(self, tmp_path):
        A = from_edges([0, 1], [1, 0], (2, 2), values=[2.5, -1.25])
        path = tmp_path / "v.mtx"
        write_matrix_market(path, A)
        B = read_matrix_market(path)
        assert B[0, 1] == 2.5 and B[1, 0] == -1.25


class TestSymmetricExpansion:
    def test_symmetric_file_expands(self, tmp_path):
        path = tmp_path / "s.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "% a comment line\n"
            "3 3 3\n"
            "1 1 5.0\n"
            "2 1 1.0\n"
            "3 2 2.0\n"
        )
        A = read_matrix_market(path)
        assert A.nnz == 5  # diagonal once, off-diagonals twice
        assert A[0, 1] == 1.0 and A[1, 0] == 1.0
        assert A[0, 0] == 5.0


class TestGzip:
    def test_gz_file(self, tmp_path, small_grid):
        plain = tmp_path / "g.mtx"
        write_matrix_market(plain, small_grid)
        gz = tmp_path / "g.mtx.gz"
        gz.write_bytes(gzip.compress(plain.read_bytes()))
        assert pattern_equal(read_matrix_market(gz), small_grid)


class TestErrors:
    def test_not_matrixmarket(self, tmp_path):
        p = tmp_path / "x.mtx"
        p.write_text("hello\n1 1 1\n")
        with pytest.raises(ValueError, match="not a MatrixMarket"):
            read_matrix_market(p)

    def test_array_format_rejected(self, tmp_path):
        p = tmp_path / "x.mtx"
        p.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
        with pytest.raises(ValueError, match="coordinate"):
            read_matrix_market(p)

    def test_complex_rejected(self, tmp_path):
        p = tmp_path / "x.mtx"
        p.write_text("%%MatrixMarket matrix coordinate complex general\n1 1 0\n")
        with pytest.raises(ValueError, match="field"):
            read_matrix_market(p)

    def test_hermitian_rejected(self, tmp_path):
        p = tmp_path / "x.mtx"
        p.write_text("%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n")
        with pytest.raises(ValueError, match="symmetry"):
            read_matrix_market(p)

    def test_wrong_entry_count(self, tmp_path):
        p = tmp_path / "x.mtx"
        p.write_text("%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n")
        with pytest.raises(ValueError, match="entries"):
            read_matrix_market(p)

    def test_integer_field_supported(self, tmp_path):
        p = tmp_path / "x.mtx"
        p.write_text("%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 2 7\n")
        A = read_matrix_market(p)
        assert A[0, 1] == 7.0
