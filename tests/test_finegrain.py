"""Tests for the fine-grain 2D method."""

import numpy as np
import pytest

from repro.generators import grid2d, rmat
from repro.layouts import make_layout
from repro.layouts.finegrain import finegrain_hypergraph, finegrain_layout
from repro.runtime import DistSparseMatrix, comm_stats


@pytest.fixture(scope="module")
def small_graph():
    return rmat(scale=8, edge_factor=4, seed=5)


class TestFinegrainModel:
    def test_hypergraph_shape(self, small_graph):
        hg = finegrain_hypergraph(small_graph)
        assert hg.n == small_graph.nnz
        # each nonzero pins exactly its row net and its column net
        HT = hg.transpose_incidence()
        assert (np.diff(HT.indptr) <= 2).all()

    def test_connectivity_is_comm_volume(self, small_graph):
        """For any assignment, the fine-grain cut equals expand+fold volume
        when each vector entry is co-located with one of its nonzeros."""
        lay = finegrain_layout(small_graph, 4, seed=0)
        dist = DistSparseMatrix(small_graph, lay)
        s = comm_stats(dist)
        coo = small_graph.tocoo()
        ranks = lay.nonzero_owner(coo.row, coo.col)
        n = small_graph.shape[0]
        expand = fold = 0
        for k in range(n):
            col_ranks = set(ranks[coo.col == k].tolist()) | {lay.vector_part[k]}
            row_ranks = set(ranks[coo.row == k].tolist()) | {lay.vector_part[k]}
            expand += len(col_ranks) - 1
            fold += len(row_ranks) - 1
        assert s.expand_volume == expand
        assert s.fold_volume == fold


class TestFinegrainLayout:
    def test_spmv_exact(self, small_graph, rng):
        lay = finegrain_layout(small_graph, 4, seed=0)
        dist = DistSparseMatrix(small_graph, lay)
        x = rng.standard_normal(small_graph.shape[0])
        assert np.abs(dist.spmv(x) - small_graph @ x).max() < 1e-10

    def test_volume_at_or_below_cartesian(self, small_graph):
        """Fine-grain is the volume benchmark: it should not lose to the
        Cartesian layouts on total communication volume."""
        fg = comm_stats(DistSparseMatrix(small_graph, finegrain_layout(small_graph, 4, seed=0)))
        twod = comm_stats(
            DistSparseMatrix(small_graph, make_layout("2d-random", small_graph, 4, seed=1))
        )
        assert fg.total_comm_volume <= twod.total_comm_volume

    def test_nonzero_balance(self, small_graph):
        lay = finegrain_layout(small_graph, 4, seed=0)
        dist = DistSparseMatrix(small_graph, lay)
        # unit vertex weights: balance is straightforward for the partitioner
        assert comm_stats(dist).nnz_imbalance < 1.25

    def test_validation(self, small_graph):
        with pytest.raises(ValueError, match="nprocs"):
            finegrain_layout(small_graph, 0)

    def test_mesh_low_volume(self):
        # fine-grain should clearly beat a random Cartesian layout on a
        # mesh; it does not reach the theoretical floor here because our
        # general-purpose multilevel HP is not specialised for the
        # fine-grain model's 2-pin-per-vertex structure (the cited
        # fine-grain work uses a dedicated partitioner configuration)
        A = grid2d(16, 16)
        fg = comm_stats(DistSparseMatrix(A, finegrain_layout(A, 4, seed=0)))
        rnd = comm_stats(DistSparseMatrix(A, make_layout("2d-random", A, 4, seed=0)))
        assert fg.total_comm_volume < 0.75 * rnd.total_comm_volume
