"""Tests for the explicit-layout machinery and the Mondriaan partitioner."""

import numpy as np
import pytest

from repro.generators import grid2d
from repro.layouts import make_layout
from repro.layouts.explicit import ExplicitLayout
from repro.layouts.mondriaan import mondriaan_layout
from repro.runtime import DistSparseMatrix, comm_stats


class TestExplicitLayout:
    def test_roundtrip_ownership(self, tiny_matrix):
        nnz = tiny_matrix.nnz
        ranks = np.arange(nnz, dtype=np.int64) % 3
        vec = np.zeros(6, dtype=np.int64)
        lay = ExplicitLayout("X", tiny_matrix, ranks, vec, 3)
        coo = tiny_matrix.tocoo()
        got = lay.nonzero_owner(coo.row, coo.col)
        assert np.array_equal(got, ranks)

    def test_missing_nonzero_rejected(self, tiny_matrix):
        lay = ExplicitLayout(
            "X", tiny_matrix, np.zeros(tiny_matrix.nnz, dtype=np.int64),
            np.zeros(6, dtype=np.int64), 1,
        )
        with pytest.raises(ValueError, match="pattern"):
            lay.nonzero_owner(np.array([0]), np.array([0]))  # (0,0) is empty

    def test_validation(self, tiny_matrix):
        with pytest.raises(ValueError, match="length"):
            ExplicitLayout("X", tiny_matrix, np.zeros(3, dtype=np.int64),
                           np.zeros(6, dtype=np.int64), 2)
        with pytest.raises(ValueError, match="range"):
            ExplicitLayout("X", tiny_matrix, np.full(tiny_matrix.nnz, 9),
                           np.zeros(6, dtype=np.int64), 2)

    def test_spmv_with_arbitrary_assignment(self, small_rmat, rng):
        ranks = rng.integers(0, 5, small_rmat.nnz)
        vec = rng.integers(0, 5, small_rmat.shape[0])
        lay = ExplicitLayout("scatter", small_rmat, ranks, vec, 5)
        dist = DistSparseMatrix(small_rmat, lay)
        x = rng.standard_normal(small_rmat.shape[0])
        assert np.abs(dist.spmv(x) - small_rmat @ x).max() < 1e-10


class TestMondriaan:
    @pytest.fixture(scope="class")
    def grid_mondriaan(self):
        A = grid2d(24, 24)
        return A, mondriaan_layout(A, 8, seed=0)

    def test_spmv_exact(self, grid_mondriaan, rng):
        A, lay = grid_mondriaan
        dist = DistSparseMatrix(A, lay)
        x = rng.standard_normal(A.shape[0])
        assert np.abs(dist.spmv(x) - A @ x).max() < 1e-10

    def test_nonzero_balance(self, grid_mondriaan):
        A, lay = grid_mondriaan
        dist = DistSparseMatrix(A, lay)
        assert comm_stats(dist).nnz_imbalance < 1.6

    def test_vector_balance_and_locality(self, grid_mondriaan):
        A, lay = grid_mondriaan
        counts = np.bincount(lay.vector_part, minlength=8)
        assert counts.max() / counts.mean() < 1.6
        # every vector entry sits on a rank that touches its row or column
        coo = A.tocoo()
        owners = lay.nonzero_owner(coo.row, coo.col)
        touching = [set() for _ in range(A.shape[0])]
        for i, j, r in zip(coo.row, coo.col, owners):
            touching[i].add(r)
            touching[j].add(r)
        for k in range(A.shape[0]):
            assert lay.vector_part[k] in touching[k]

    def test_low_volume_on_structured_matrix(self, grid_mondriaan):
        """Mondriaan's selling point: communication volume rivals GP."""
        A, lay = grid_mondriaan
        mon = comm_stats(DistSparseMatrix(A, lay))
        rnd = comm_stats(DistSparseMatrix(A, make_layout("2d-random", A, 8, seed=1)))
        assert mon.total_comm_volume < 0.5 * rnd.total_comm_volume

    def test_validation(self, small_rmat):
        with pytest.raises(ValueError, match="nprocs"):
            mondriaan_layout(small_rmat, 0)

    def test_single_rank(self, small_rmat):
        lay = mondriaan_layout(small_rmat, 1)
        dist = DistSparseMatrix(small_rmat, lay)
        assert comm_stats(dist).total_comm_volume == 0
