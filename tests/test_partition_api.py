"""Tests for the partitioning front door (partition_matrix)."""

import numpy as np
import pytest

from repro.partitioning import PartGraph, partition_matrix
from repro.partitioning.api import PARTITION_METHODS


class TestPartitionMatrix:
    @pytest.mark.parametrize("method", PARTITION_METHODS)
    def test_all_methods_produce_valid_partitions(self, small_powerlaw, method):
        res = partition_matrix(small_powerlaw, 4, method=method, seed=0)
        assert res.part.min() >= 0 and res.part.max() == 3
        assert res.method == method
        assert res.edgecut >= 0
        assert all(x >= 1.0 for x in res.imbalance)

    def test_gp_mc_has_two_constraints(self, small_rmat):
        res = partition_matrix(small_rmat, 4, method="gp-mc", seed=0)
        assert len(res.imbalance) == 2
        assert res.imbalance[0] < 1.35  # rows balanced

    def test_gp_balances_nonzeros_not_rows(self, small_rmat):
        res = partition_matrix(small_rmat, 8, method="gp", seed=0)
        g = PartGraph.from_matrix(small_rmat, "nnz")
        assert np.isclose(g.imbalance(res.part, 8)[0], res.imbalance[0])

    def test_hp_mc_mirrors_paper_limitation(self, small_rmat):
        with pytest.raises(ValueError, match="not available with"):
            partition_matrix(small_rmat, 4, method="hp-mc")

    def test_unknown_method(self, small_rmat):
        with pytest.raises(ValueError, match="unknown method"):
            partition_matrix(small_rmat, 4, method="magic")

    def test_invalid_nparts(self, small_rmat):
        with pytest.raises(ValueError, match="nparts"):
            partition_matrix(small_rmat, 0)

    def test_deterministic(self, small_powerlaw):
        r1 = partition_matrix(small_powerlaw, 8, method="gp", seed=3)
        r2 = partition_matrix(small_powerlaw, 8, method="gp", seed=3)
        assert np.array_equal(r1.part, r2.part)

    def test_gp_beats_random_cut_on_structured_graph(self, small_grid):
        res = partition_matrix(small_grid, 8, method="gp", seed=0)
        g = PartGraph.from_matrix(small_grid, "nnz")
        rnd = np.random.default_rng(0).integers(0, 8, g.n)
        assert res.edgecut < 0.3 * g.edgecut(rnd)
