"""Tests for the bench harness, profiles and reporting."""

import numpy as np

from repro.bench import (
    PAPER_TO_PROXY_PROCS,
    cached_rpart,
    fraction_best,
    format_seconds,
    format_table,
    gp_or_hp,
    layout_for,
    performance_profile,
    profile_value_at,
    reduction_vs_best,
    run_spmv_cell,
    spmv_grid,
    table2_rows,
)
from repro.bench.harness import SpmvRecord
from repro.runtime import CommStats


class TestPartitionCache:
    def test_cache_roundtrip(self, small_powerlaw, tmp_path):
        p1 = cached_rpart(small_powerlaw, "gp", 4, seed=0, cache_dir=tmp_path)
        files = list(tmp_path.glob("*.npy"))
        assert len(files) == 1
        p2 = cached_rpart(small_powerlaw, "gp", 4, seed=0, cache_dir=tmp_path)
        assert np.array_equal(p1, p2)
        assert len(list(tmp_path.glob("*.npy"))) == 1  # no duplicate entries

    def test_nested_derivation(self, small_powerlaw, tmp_path):
        fine = cached_rpart(small_powerlaw, "gp", 16, seed=0, cache_dir=tmp_path)
        coarse = cached_rpart(
            small_powerlaw, "gp", 4, seed=0, cache_dir=tmp_path, nested_from=16
        )
        assert np.array_equal(coarse, fine * 4 // 16)

    def test_different_seeds_different_entries(self, small_powerlaw, tmp_path):
        cached_rpart(small_powerlaw, "gp", 4, seed=0, cache_dir=tmp_path)
        cached_rpart(small_powerlaw, "gp", 4, seed=1, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.npy"))) == 2


class TestHarness:
    def test_gp_or_hp_follows_paper(self):
        assert gp_or_hp("com-orkut", "2d") == "2d-gp"
        assert gp_or_hp("rmat_24", "2d") == "2d-hp"
        # uk-2005 diverges deliberately (see corpus.py): paper chose HP for
        # scale reasons that do not bind at proxy size
        assert gp_or_hp("uk-2005", "1d") == "1d-gp"

    def test_paper_proc_mapping(self):
        assert PAPER_TO_PROXY_PROCS[64] == 4
        assert PAPER_TO_PROXY_PROCS[16384] == 1024

    def test_run_cell_validates(self, small_powerlaw, tmp_path):
        rec = run_spmv_cell(
            small_powerlaw, "toy", "2d-random", 4, cache_dir=tmp_path
        )
        assert rec.method == "2D-Random"
        assert rec.validation_error < 1e-10
        assert rec.time100 > 0

    def test_run_cell_skips_validation_at_scale(self, small_powerlaw, tmp_path):
        rec = run_spmv_cell(
            small_powerlaw, "toy", "2d-random", 256, cache_dir=tmp_path
        )
        assert np.isnan(rec.validation_error)

    def test_grid_shape(self, small_powerlaw, tmp_path):
        recs = spmv_grid(
            {"toy": small_powerlaw}, ["1d-block", "2d-block"], procs=(4, 16),
            cache_dir=tmp_path,
        )
        assert len(recs) == 4
        assert {r.nprocs for r in recs} == {4, 16}

    def test_layout_for_uses_cache(self, small_powerlaw, tmp_path):
        layout_for(small_powerlaw, "1d-gp", 4, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.npy"))) == 1


def _mkrec(matrix, method, p, t):
    stats = CommStats(p, 1.0, 1.0, 0, 0, 0, 0, 0, 0)
    return SpmvRecord(matrix, method, p, t, stats, float("nan"))


class TestProfiles:
    def test_always_best_method_is_vertical_line(self):
        recs = [_mkrec("a", "X", 4, 1.0), _mkrec("a", "Y", 4, 2.0),
                _mkrec("b", "X", 4, 3.0), _mkrec("b", "Y", 4, 9.0)]
        prof = performance_profile(recs)
        assert fraction_best(prof, "X") == 1.0
        assert fraction_best(prof, "Y") == 0.0
        assert profile_value_at(prof, "Y", 2.0) == 0.5  # b is 3x worse
        assert profile_value_at(prof, "Y", 3.1) == 1.0

    def test_paper_figure6_reading(self):
        """Reproduce the paper's worked example: (x=2, y=0.4) means 40% of
        instances within 2x of best."""
        recs = []
        for i in range(10):
            recs.append(_mkrec(f"m{i}", "best", 4, 1.0))
            recs.append(_mkrec(f"m{i}", "slow", 4, 1.5 if i < 4 else 4.0))
        prof = performance_profile(recs)
        assert np.isclose(profile_value_at(prof, "slow", 2.0), 0.4)


class TestReporting:
    def test_format_seconds(self):
        assert format_seconds(123.4) == "123.4"
        assert format_seconds(1.5) == "1.50"
        assert format_seconds(0.1234) == "0.1234"

    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [(1, 22), (333, 4)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(ln) for ln in lines)) == 1  # all same width

    def test_reduction_vs_best(self):
        times = {"2D-GP/HP": 0.5, "1D-Block": 2.0, "2D-Random": 1.0}
        assert np.isclose(reduction_vs_best(times, "2D-GP/HP"), 50.0)
        # negative when ours is slower than the best other (uk-2005 case)
        times = {"2D-GP/HP": 1.2, "2D-Random": 1.0}
        assert reduction_vs_best(times, "2D-GP/HP") < 0

    def test_table2_rows_merge_gp_hp_column(self):
        recs = [
            _mkrec("m", "1D-Block", 4, 4.0), _mkrec("m", "1D-Random", 4, 3.0),
            _mkrec("m", "1D-HP", 4, 2.0), _mkrec("m", "2D-Block", 4, 2.5),
            _mkrec("m", "2D-Random", 4, 1.5), _mkrec("m", "2D-HP", 4, 1.0),
        ]
        rows = table2_rows(recs)
        assert len(rows) == 1
        row = rows[0]
        assert row[0] == "m" and row[1] == 4
        assert row[-1] == "33.3%"  # 1.0 vs next best 1.5
