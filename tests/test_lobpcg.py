"""Tests for the distributed LOBPCG solver."""

import numpy as np
import pytest
import scipy.sparse.linalg as sla

from repro.graphs import normalized_laplacian
from repro.layouts import make_layout
from repro.runtime import CAB, DistSparseMatrix
from repro.solvers import DistOperator, eigsh_dist, lobpcg_dist


def _op(A, M=None, p=4):
    M = M if M is not None else A
    return DistOperator(DistSparseMatrix(M, make_layout("2d-random", A, p, seed=0), CAB))


class TestLobpcg:
    def test_matches_scipy(self, small_powerlaw):
        Lhat = normalized_laplacian(small_powerlaw)
        res = lobpcg_dist(_op(small_powerlaw, Lhat), k=5, tol=1e-7, seed=1)
        assert res.converged
        ref = np.sort(sla.eigsh(Lhat, k=5, which="LA", return_eigenvectors=False))[::-1]
        assert np.abs(res.eigenvalues - ref).max() < 1e-5

    def test_eigenvector_residuals(self, small_powerlaw):
        # 1e-5 is within this implementation's attainable accuracy (see
        # the lobpcg_dist docstring); the returned residual estimates must
        # also be honest about the true residuals
        Lhat = normalized_laplacian(small_powerlaw)
        res = lobpcg_dist(_op(small_powerlaw, Lhat), k=4, tol=1e-5, seed=2)
        assert res.converged
        for i in range(4):
            v = res.eigenvectors[:, i]
            r = Lhat @ v - res.eigenvalues[i] * v
            assert np.linalg.norm(r) < 10 * 1e-5 * np.linalg.norm(v)

    def test_orthonormal_eigenvectors(self, small_powerlaw):
        Lhat = normalized_laplacian(small_powerlaw)
        res = lobpcg_dist(_op(small_powerlaw, Lhat), k=4, tol=1e-5, seed=3)
        G = res.eigenvectors.T @ res.eigenvectors
        assert np.abs(G - np.eye(4)).max() < 1e-8

    def test_nonconvergence_flagged(self, small_powerlaw):
        Lhat = normalized_laplacian(small_powerlaw)
        res = lobpcg_dist(_op(small_powerlaw, Lhat), k=4, tol=1e-14, max_iter=3, seed=0)
        assert not res.converged

    def test_validation(self, small_powerlaw):
        op = _op(small_powerlaw)
        with pytest.raises(ValueError, match="k must"):
            lobpcg_dist(op, k=0)

    def test_ledger_charged(self, small_powerlaw):
        Lhat = normalized_laplacian(small_powerlaw)
        op = _op(small_powerlaw, Lhat)
        lobpcg_dist(op, k=3, tol=1e-4, seed=1)
        assert op.ledger.spmv_total() > 0
        assert op.ledger.get("vector-ops") > 0

    def test_paper_finding_bks_preferred(self, small_powerlaw):
        """'Preliminary experiments indicate BKS is effective for
        scale-free graphs' — BKS costs less than unpreconditioned LOBPCG
        on a scale-free normalized Laplacian."""
        Lhat = normalized_laplacian(small_powerlaw)
        op_l = _op(small_powerlaw, Lhat)
        res_l = lobpcg_dist(op_l, k=5, tol=1e-4, seed=4)
        op_b = _op(small_powerlaw, Lhat)
        res_b = eigsh_dist(op_b, k=5, tol=1e-4, seed=4)
        assert res_l.converged and res_b.converged
        assert op_b.ledger.total() < op_l.ledger.total()
