"""Tests for the precompiled SpMV execution engine.

The engine's contract is stronger than numerical closeness: its compiled
two-operator execution must be **bit-identical** to the per-message
reference path (same values moved, same per-slot summation order), and
``spmm`` must be bit-identical column-by-column to repeated ``spmv``.
Modeled costs must be untouched — the engine reorganises execution, not
the communication schedule the cost model prices.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.generators import rmat
from repro.layouts import make_layout
from repro.runtime import CostLedger, DistSparseMatrix, Map, SpmvEngine

LAYOUTS = ["1d-block", "1d-random", "2d-block", "2d-random", "1d-gp", "2d-gp"]
#: process counts including non-powers-of-two and a non-square grid count
PROCS = [1, 2, 6, 7, 12]


class TestEngineEqualsReference:
    @pytest.mark.parametrize("method", LAYOUTS)
    @pytest.mark.parametrize("p", PROCS)
    def test_bit_identical_spmv(self, small_powerlaw, method, p):
        A = small_powerlaw
        dist = DistSparseMatrix(A, make_layout(method, A, p, seed=2))
        x = np.random.default_rng(p).standard_normal(A.shape[0])
        assert np.array_equal(dist.spmv(x, reference=True), dist.spmv(x))

    def test_bit_identical_on_mesh(self, small_grid):
        dist = DistSparseMatrix(small_grid, make_layout("2d-gp", small_grid, 9, seed=0))
        x = np.random.default_rng(1).standard_normal(small_grid.shape[0])
        assert np.array_equal(dist.spmv(x, reference=True), dist.spmv(x))

    def test_matches_scipy(self, small_rmat):
        dist = DistSparseMatrix(small_rmat, make_layout("2d-random", small_rmat, 8, seed=1))
        x = np.random.default_rng(2).standard_normal(small_rmat.shape[0])
        assert np.abs(dist.spmv(x) - small_rmat @ x).max() < 1e-10

    @given(
        scale=st.integers(4, 7),
        p=st.sampled_from([2, 3, 5, 6, 9]),
        method=st.sampled_from(["1d-random", "2d-random", "2d-block"]),
        seed=st.integers(0, 30),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_bit_identical(self, scale, p, method, seed):
        A = rmat(scale, 4, seed=seed)
        dist = DistSparseMatrix(A, make_layout(method, A, p, seed=seed))
        x = np.random.default_rng(seed).standard_normal(A.shape[0])
        assert np.array_equal(dist.spmv(x, reference=True), dist.spmv(x))

    def test_engine_is_cached(self, tiny_matrix):
        dist = DistSparseMatrix(tiny_matrix, make_layout("1d-block", tiny_matrix, 2))
        assert dist.engine is dist.engine
        assert isinstance(dist.engine, SpmvEngine)


class TestSpmm:
    @pytest.mark.parametrize("method", LAYOUTS)
    @pytest.mark.parametrize("p", [1, 6, 7])
    def test_equals_stacked_spmv(self, small_powerlaw, method, p):
        A = small_powerlaw
        dist = DistSparseMatrix(A, make_layout(method, A, p, seed=3))
        X = np.random.default_rng(p).standard_normal((A.shape[0], 4))
        Y = dist.spmm(X)
        stacked = np.column_stack([dist.spmv(X[:, j]) for j in range(4)])
        assert np.abs(Y - stacked).max() < 1e-12
        assert np.array_equal(Y, stacked)  # in fact exact

    def test_matches_scipy(self, small_rmat):
        dist = DistSparseMatrix(small_rmat, make_layout("2d-gp", small_rmat, 8, seed=0))
        X = np.random.default_rng(5).standard_normal((small_rmat.shape[0], 8))
        assert np.abs(dist.spmm(X) - small_rmat @ X).max() < 1e-10

    def test_single_column(self, small_rmat):
        dist = DistSparseMatrix(small_rmat, make_layout("1d-random", small_rmat, 5, seed=1))
        x = np.random.default_rng(6).standard_normal(small_rmat.shape[0])
        assert np.array_equal(dist.spmm(x[:, None])[:, 0], dist.spmv(x))

    def test_bad_shapes_raise(self, tiny_matrix):
        dist = DistSparseMatrix(tiny_matrix, make_layout("1d-block", tiny_matrix, 2))
        with pytest.raises(ValueError, match="block shape"):
            dist.spmm(np.zeros(6))
        with pytest.raises(ValueError, match="block shape"):
            dist.spmm(np.zeros((5, 2)))
        with pytest.raises(ValueError, match="vector shape"):
            dist.spmv(np.zeros((6, 2)))


class TestCostCharging:
    def test_engine_and_reference_charge_identically(self, small_rmat):
        dist = DistSparseMatrix(small_rmat, make_layout("2d-random", small_rmat, 9, seed=1))
        x = np.ones(small_rmat.shape[0])
        l_ref, l_eng = CostLedger(), CostLedger()
        dist.spmv(x, l_ref, reference=True)
        dist.spmv(x, l_eng)
        assert l_ref.breakdown() == l_eng.breakdown()

    def test_spmm_charges_k_spmvs(self, small_rmat):
        dist = DistSparseMatrix(small_rmat, make_layout("2d-block", small_rmat, 4))
        l_blk, l_one = CostLedger(), CostLedger()
        dist.spmm(np.ones((small_rmat.shape[0], 7)), l_blk)
        dist.spmv(np.ones(small_rmat.shape[0]), l_one)
        for phase, t in l_one.breakdown().items():
            assert np.isclose(l_blk.get(phase), 7 * t)


class TestMapValidateFlag:
    def test_default_validates(self):
        m = Map(np.array([1, 0, 1, 1, 0]), 2)
        with pytest.raises(ValueError, match="not owned"):
            m.local_ids(np.array([0]), 0)

    def test_validate_false_skips_check(self):
        m = Map(np.array([1, 0, 1, 1, 0]), 2)
        # garbage in, positions out — but no raise: callers passing
        # validate=False have verified their plan at build time
        m.local_ids(np.array([0]), 0, validate=False)
        # and correct queries still give correct answers
        assert m.local_ids(np.array([0, 3]), 1, validate=False).tolist() == [0, 2]


class TestPlanVerification:
    def test_corrupted_plan_rejected(self, tiny_matrix):
        dist = DistSparseMatrix(tiny_matrix, make_layout("1d-random", tiny_matrix, 3, seed=2))
        assert dist.import_plan.nmessages > 0
        # claim a message comes from a rank that does not own its indices
        dist.import_plan.src = (dist.import_plan.src + 1) % 3
        with pytest.raises(ValueError, match="does not own"):
            dist._verify_plans()


class TestPlanStatCaching:
    def test_cached_and_consistent(self, small_rmat):
        dist = DistSparseMatrix(small_rmat, make_layout("2d-random", small_rmat, 6, seed=0))
        plan = dist.import_plan
        assert plan.sent_counts() is plan.sent_counts()
        assert plan.recv_volume() is plan.recv_volume()
        assert plan.sent_counts().sum() == plan.nmessages
        assert plan.recv_counts().sum() == plan.nmessages
        assert plan.sent_volume().sum() == plan.total_volume
        assert plan.recv_volume().sum() == plan.total_volume
