"""Tests for the thread-parallel engine apply (:mod:`repro.runtime.threads`).

Three contracts:

* the row-split primitive is **bottleneck-optimal, covering, disjoint,
  and deterministic** over every degenerate shape (empty rows, one giant
  hub row, fewer nnz than threads, one thread) — hypothesis hammers it;
* the threaded kernel is **bit-identical** to the serial fused multiply
  (``np.array_equal``, not a tolerance) for spmv/spmm/partials/ABFT at
  any thread count, including through a ``to_arrays`` round-trip;
* the accounting is honest: plans and all three ABFT operators are in
  ``nbytes``/``abft_bytes``, and process-pool workers pin their thread
  budget to 1 so process- and thread-parallelism never nest.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.layouts import make_layout
from repro.runtime import DistSparseMatrix, SpmvEngine
from repro.runtime import threads as thr
from repro.runtime.threads import (
    ApplyPlan,
    balanced_row_splits,
    bind_blocks,
    block_nnz,
    use_kernel,
)


def _indptr(degrees) -> np.ndarray:
    return np.concatenate([[0], np.cumsum(degrees)]).astype(np.int64)


def _optimal_bottleneck(indptr: np.ndarray, nblocks: int) -> int:
    """Brute-force minimal bottleneck over contiguous partitions (DP)."""
    nrows = len(indptr) - 1
    best = {0: 0}  # rows consumed -> bottleneck so far
    for _ in range(nblocks):
        nxt = {}
        for row, bot in best.items():
            for end in range(row + 1, nrows + 1):
                w = int(indptr[end] - indptr[row])
                cand = max(bot, w)
                if nxt.get(end, np.inf) > cand:
                    nxt[end] = cand
        for row, bot in best.items():  # fewer blocks is allowed
            if nxt.get(row, np.inf) > bot:
                nxt[row] = bot
        best = nxt
    return int(best[nrows])


# ---------------------------------------------------------------------------
# the row-split primitive
# ---------------------------------------------------------------------------


class TestBalancedRowSplits:
    def test_trivial_single_block(self):
        s = balanced_row_splits(_indptr([3, 1, 4]), 1)
        assert np.array_equal(s, [0, 3])

    def test_empty_matrix(self):
        assert np.array_equal(balanced_row_splits(np.array([0]), 4), [0, 0])

    def test_all_empty_rows(self):
        s = balanced_row_splits(_indptr([0, 0, 0, 0]), 3)
        assert s[0] == 0 and s[-1] == 4
        assert np.all(np.diff(s) >= 0)

    def test_hub_row_becomes_the_bottleneck(self):
        # one row carries almost everything: optimal bottleneck = hub nnz
        indptr = _indptr([1, 1, 500, 1, 1])
        s = balanced_row_splits(indptr, 4)
        assert int(block_nnz(indptr, s).max()) == 500

    def test_fewer_nnz_than_blocks(self):
        indptr = _indptr([1, 0, 1])
        s = balanced_row_splits(indptr, 8)
        assert s[0] == 0 and s[-1] == 3
        assert int(block_nnz(indptr, s).max()) == 1

    def test_uniform_rows_split_evenly(self):
        indptr = _indptr([10] * 16)
        s = balanced_row_splits(indptr, 4)
        assert np.array_equal(block_nnz(indptr, s), [40, 40, 40, 40])

    @given(
        degrees=st.lists(st.integers(0, 12), min_size=0, max_size=24),
        hub=st.one_of(st.none(), st.integers(30, 300)),
        nblocks=st.sampled_from([1, 2, 3, 4, 7, 8, 16]),
        hub_pos=st.integers(0, 100),
    )
    @settings(max_examples=120, deadline=None)
    def test_cover_disjoint_balance_invariants(self, degrees, hub, nblocks, hub_pos):
        if hub is not None and degrees:
            degrees = list(degrees)
            degrees[hub_pos % len(degrees)] = hub
        indptr = _indptr(degrees)
        nrows = len(degrees)
        s = balanced_row_splits(indptr, nblocks)
        # cover + disjoint: contiguous, monotone, ends pinned
        assert int(s[0]) == 0 and int(s[-1]) == max(nrows, 0)
        assert np.all(np.diff(s) >= 0)
        assert len(s) - 1 <= max(nblocks, 1)
        if nrows == 0:
            return
        # balance: exactly the brute-force optimal bottleneck
        got = int(block_nnz(indptr, s).max())
        assert got == _optimal_bottleneck(indptr, nblocks)

    @given(
        degrees=st.lists(st.integers(0, 9), min_size=1, max_size=20),
        nblocks=st.sampled_from([2, 3, 5, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_deterministic(self, degrees, nblocks):
        indptr = _indptr(degrees)
        a = balanced_row_splits(indptr, nblocks)
        b = balanced_row_splits(indptr.copy(), nblocks)
        assert np.array_equal(a, b)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            balanced_row_splits(_indptr([1, 2]), 0)
        with pytest.raises(ValueError):
            balanced_row_splits(np.zeros((2, 2)), 2)


# ---------------------------------------------------------------------------
# budget resolution
# ---------------------------------------------------------------------------


class TestThreadResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_THREADS", raising=False)
        thr.set_default_threads(None)
        assert thr.resolve_threads(None) == 1

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "6")
        thr.set_default_threads(None)
        assert thr.resolve_threads(None) == 6

    def test_env_zero_means_all_cores(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "0")
        thr.set_default_threads(None)
        assert thr.resolve_threads(None) == max(os.cpu_count() or 1, 1)

    def test_garbage_env_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "lots")
        thr.set_default_threads(None)
        assert thr.resolve_threads(None) == 1

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "2")
        thr.set_default_threads(5)
        try:
            assert thr.resolve_threads(None) == 5
        finally:
            thr.set_default_threads(None)

    def test_explicit_beats_everything(self):
        assert thr.resolve_threads(3) == 3
        assert thr.resolve_threads(0) == max(os.cpu_count() or 1, 1)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            with use_kernel("vectorized"):
                pass


# ---------------------------------------------------------------------------
# threaded kernel bit-identity
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def engine(request):
    A = request.getfixturevalue("small_powerlaw")
    dist = DistSparseMatrix(A, make_layout("2d-gp", A, 12, seed=2))
    return dist.engine


class TestThreadedBitIdentity:
    @pytest.mark.parametrize("t", [1, 2, 4, 8])
    def test_spmv_spmm_partials_abft(self, engine, t):
        rng = np.random.default_rng(t)
        x = rng.standard_normal(engine.n)
        X = rng.standard_normal((engine.n, 5))
        with use_kernel("serial"):
            y0 = engine.spmv(x)
            Y0 = engine.spmm(X)
            yp0, p0 = engine.spmv_with_partials(x)
            c0 = engine.abft_check(x, p0, yp0)
        engine.set_threads(t)
        assert engine.threads == t
        assert np.array_equal(engine.spmv(x), y0)
        assert np.array_equal(engine.spmm(X), Y0)
        yp, p = engine.spmv_with_partials(x)
        assert np.array_equal(yp, yp0)
        assert np.array_equal(p, p0)
        assert np.array_equal(engine.fold(p), yp0)
        c = engine.abft_check(x, p, yp)
        assert not c.detected
        assert np.array_equal(c.rank_discrepancy, c0.rank_discrepancy)
        assert np.array_equal(c.rank_threshold, c0.rank_threshold)

    def test_threaded_abft_still_detects_corruption(self, engine):
        rng = np.random.default_rng(9)
        x = rng.standard_normal(engine.n)
        engine.set_threads(4)
        _, p = engine.spmv_with_partials(x)
        p = p.copy()
        p[len(p) // 2] += 10.0 * (1.0 + abs(p[len(p) // 2]))
        assert engine.abft_check(x, p).detected

    def test_serial_kernel_pins_fused_path(self, engine):
        engine.set_threads(8)
        rng = np.random.default_rng(3)
        x = rng.standard_normal(engine.n)
        before = thr.pool_stats()["dispatches"]
        with use_kernel("serial"):
            engine.spmv(x)
        assert thr.pool_stats()["dispatches"] == before

    def test_block_views_share_parent_buffers(self, engine):
        plan = engine._plans[engine.threads]
        for _, _, block in plan.local_blocks:
            if block.nnz:
                assert block.data.base is not None  # view, not a copy


# ---------------------------------------------------------------------------
# plan persistence and determinism across save/load
# ---------------------------------------------------------------------------


class TestPlanPersistence:
    def test_roundtrip_preserves_splits_exactly(self, engine):
        engine.set_threads(4)
        arrays = engine.to_arrays()
        assert arrays["dims"].shape == (7,)
        assert int(arrays["dims"][6]) == 4
        clone = SpmvEngine.from_arrays(arrays)
        src = engine._plans[4]
        dst = clone._plans[4]
        assert np.array_equal(src.local_splits, dst.local_splits)
        assert np.array_equal(src.fold_splits, dst.fold_splits)

    def test_loaded_engine_bit_identical_at_any_budget(self, engine):
        engine.set_threads(8)
        clone = SpmvEngine.from_arrays(engine.to_arrays())
        rng = np.random.default_rng(11)
        x = rng.standard_normal(engine.n)
        with use_kernel("serial"):
            y0 = engine.spmv(x)
        for t in (1, 2, 8):
            clone.set_threads(t)
            assert np.array_equal(clone.spmv(x), y0)

    def test_legacy_six_dim_arrays_still_load(self, engine):
        arrays = dict(engine.to_arrays())
        arrays["dims"] = arrays["dims"][:6]
        del arrays["plan_local_splits"], arrays["plan_fold_splits"]
        clone = SpmvEngine.from_arrays(arrays)
        rng = np.random.default_rng(12)
        x = rng.standard_normal(engine.n)
        assert np.array_equal(clone.spmv(x), engine.spmv(x))

    def test_torn_splits_rejected(self, engine):
        arrays = dict(engine.to_arrays())
        arrays["plan_local_splits"] = np.array([0, 1], dtype=np.int64)  # wrong end
        with pytest.raises(ValueError):
            SpmvEngine.from_arrays(arrays)

    def test_replan_matches_persisted_plan(self, engine):
        # planning is deterministic: a load at a different budget that
        # re-plans lands on the same splits the builder would persist
        t = 4
        engine.set_threads(t)
        fresh = ApplyPlan.build(engine._local, engine._fold, t)
        assert np.array_equal(fresh.local_splits, engine._plans[t].local_splits)
        assert np.array_equal(fresh.fold_splits, engine._plans[t].fold_splits)


# ---------------------------------------------------------------------------
# byte accounting
# ---------------------------------------------------------------------------


class TestByteAccounting:
    def test_nbytes_includes_plans(self, small_rmat):
        dist = DistSparseMatrix(small_rmat, make_layout("2d-block", small_rmat, 8))
        eng = dist.engine
        base = eng.nbytes
        plan_bytes = sum(p.nbytes for p in eng._plans.values())
        assert plan_bytes > 0
        raw = eng._slot_rank.nbytes + sum(
            op.data.nbytes + op.indices.nbytes + op.indptr.nbytes
            for op in (eng._local, eng._fold)
        )
        assert base == raw + plan_bytes
        # a second cached budget grows the accounted footprint
        eng.set_threads(8)
        assert eng.nbytes > base

    def test_abft_bytes_counts_all_three_operators_and_blocks(self, small_rmat):
        dist = DistSparseMatrix(small_rmat, make_layout("2d-block", small_rmat, 8))
        eng = dist.engine
        eng.set_threads(4)
        assert eng.abft_bytes == 0
        before = eng.nbytes
        x = np.random.default_rng(0).standard_normal(eng.n)
        _, p = eng.spmv_with_partials(x)
        eng.abft_check(x, p)
        S, E, Eabs = eng._abft
        op_bytes = sum(
            op.data.nbytes + op.indices.nbytes + op.indptr.nbytes
            for op in (S, E, Eabs)
        )
        assert eng.abft_bytes >= op_bytes  # + the checksum-row plan
        assert eng.nbytes == before + eng.abft_bytes

    def test_plan_nbytes_counts_only_new_allocations(self, small_rmat):
        dist = DistSparseMatrix(small_rmat, make_layout("1d-block", small_rmat, 4))
        eng = dist.engine
        plan = ApplyPlan.build(eng._local, eng._fold, 4)
        expected = plan.local_splits.nbytes + plan.fold_splits.nbytes
        for _, _, b in (*plan.local_blocks, *plan.fold_blocks):
            expected += b.indptr.nbytes
        assert plan.nbytes == expected


# ---------------------------------------------------------------------------
# oversubscription guard
# ---------------------------------------------------------------------------


def _report_worker_env(_item):
    import repro.runtime.threads as worker_thr

    return (
        os.environ.get("OMP_NUM_THREADS"),
        os.environ.get("OPENBLAS_NUM_THREADS"),
        os.environ.get("REPRO_THREADS"),
        worker_thr.default_threads(),
    )


class TestOversubscriptionGuard:
    def test_parallel_map_workers_pin_threads_to_one(self):
        from repro.parallel import parallel_map

        for omp, blas, rt, budget in parallel_map(
            _report_worker_env, [0, 1], jobs=2
        ):
            assert omp == "1" and blas == "1" and rt == "1"
            assert budget == 1

    def test_resilient_pool_workers_pin_threads_to_one(self):
        from repro.parallel import ResilientPool

        pool = ResilientPool(max_workers=1, mp_context="spawn")
        try:
            report = pool.run(_report_worker_env, timeout=120.0)
        finally:
            pool.shutdown()
        assert report[:3] == ("1", "1", "1") and report[3] == 1
