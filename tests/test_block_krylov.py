"""Tests for the block Krylov-Schur variant (paper: Anasazi BKS)."""

import numpy as np
import pytest
import scipy.sparse.linalg as sla

from repro.graphs import normalized_laplacian
from repro.layouts import make_layout
from repro.runtime import CAB, DistSparseMatrix
from repro.solvers import DistOperator, eigsh_dist


@pytest.fixture(scope="module")
def setup(request):
    from repro.generators import chung_lu, powerlaw_degree_sequence

    w = powerlaw_degree_sequence(1200, 2.4, 10, 200, seed=5)
    A = chung_lu(w, seed=6)
    Lhat = normalized_laplacian(A)
    ref = np.sort(sla.eigsh(Lhat, k=5, which="LA", return_eigenvectors=False))[::-1]
    return A, Lhat, ref


def _op(A, Lhat):
    return DistOperator(DistSparseMatrix(Lhat, make_layout("2d-random", A, 4, seed=0), CAB))


class TestBlockKrylovSchur:
    @pytest.mark.parametrize("b", [2, 3, 4])
    def test_matches_scipy(self, setup, b):
        A, Lhat, ref = setup
        res = eigsh_dist(_op(A, Lhat), k=5, tol=1e-9, seed=2, block_size=b)
        assert res.converged
        assert np.abs(np.sort(res.eigenvalues)[::-1] - ref).max() < 1e-7

    def test_eigenvector_residuals(self, setup):
        A, Lhat, _ = setup
        res = eigsh_dist(_op(A, Lhat), k=4, tol=1e-9, seed=1, block_size=2)
        for i in range(4):
            v = res.eigenvectors[:, i]
            assert np.linalg.norm(Lhat @ v - res.eigenvalues[i] * v) < 1e-6

    def test_block_one_delegates_to_scalar_path(self, setup):
        A, Lhat, ref = setup
        r1 = eigsh_dist(_op(A, Lhat), k=5, tol=1e-9, seed=2, block_size=1)
        assert np.abs(np.sort(r1.eigenvalues)[::-1] - ref).max() < 1e-7

    def test_paper_finding_blocks_do_not_help(self, setup):
        """'We use block size one, as we did not observe any advantage of
        larger blocks on scale-free graphs' — modeled cost grows with b."""
        A, Lhat, _ = setup
        costs = {}
        for b in (1, 2, 4):
            op = _op(A, Lhat)
            res = eigsh_dist(op, k=5, tol=1e-6, seed=2, block_size=b)
            assert res.converged
            costs[b] = op.ledger.total()
        assert costs[1] < costs[2] < costs[4]

    def test_validation(self, setup):
        A, Lhat, _ = setup
        with pytest.raises(ValueError, match="block_size"):
            eigsh_dist(_op(A, Lhat), k=3, block_size=0)

    def test_rank_deficient_start_block_recovers(self, setup):
        """Duplicate start directions must not break the QR expansion."""
        A, Lhat, ref = setup
        n = Lhat.shape[0]
        v0 = np.ones(n)
        res = eigsh_dist(_op(A, Lhat), k=5, tol=1e-8, seed=9, block_size=3, v0=v0)
        assert res.converged
        assert np.abs(np.sort(res.eigenvalues)[::-1] - ref).max() < 1e-6
