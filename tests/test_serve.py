"""The serve layer: lifecycle, batching exactness, residency, resilience.

The contracts under test:

* **lifecycle** — a server boots on a unix socket, answers health, and
  shuts down cleanly (socket removed, thread joined);
* **exactness** — a batched answer is bit-identical to the serial
  ``spmv`` of a locally built reference engine, whatever the wire
  encoding and whatever batch the request landed in;
* **residency** — engines stay hot behind the LRU and evict in LRU
  order under count and byte bounds;
* **resilience** — a killed partition worker is retried and the request
  completes, priced via :func:`repro.runtime.faults.recovery_stats`; a
  pool that cannot deliver degrades to the in-process reference path.

Everything runs hermetically: a generated matrix written to a temp
MatrixMarket file, a private partition-cache directory, short ``/tmp``
socket paths (the AF_UNIX 107-byte limit), and in-process servers.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.generators import rmat
from repro.io import write_matrix_market
from repro.parallel import PoolTaskFailed, ResilientPool
from repro.perf import SpanRecorder
from repro.serve import (
    MicroBatcher,
    ProtocolError,
    ServeClient,
    ServeConfig,
    start_in_thread,
)
from repro.runtime import threads as thread_kernels
from repro.serve.loadgen import reference_engine, run_loadgen
from repro.serve.protocol import decode_vector, encode_message, encode_vector
from repro.serve.residency import EngineKey, EngineResidency, ResidentEngine

PROCS = 4


def _short_tmpdir() -> str:
    # AF_UNIX paths are limited to ~107 bytes; pytest tmp_path nests too deep
    return tempfile.mkdtemp(prefix="rs-", dir="/tmp")


# ---------------------------------------------------------------------------
# shared server: one matrix, one fault-injectable server for the module
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def serve_env():
    tmp = _short_tmpdir()
    cache_dir = os.path.join(tmp, "cache")
    os.makedirs(cache_dir)
    old_cache = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = cache_dir

    A = rmat(scale=9, edge_factor=8, seed=7)
    mtx = os.path.join(tmp, "tiny.mtx")
    write_matrix_market(mtx, A)

    config = ServeConfig(
        socket_path=os.path.join(tmp, "s.sock"),
        http_port=0,
        max_batch=8,
        batch_deadline_ms=2.0,
        allow_fault_injection=True,
    )
    handle = start_in_thread(config)
    env = {
        "A": A,
        "mtx": mtx,
        "sock": config.socket_path,
        "handle": handle,
        "cache_dir": cache_dir,
        "tmp": tmp,
    }
    try:
        yield env
    finally:
        try:
            with ServeClient(config.socket_path, timeout=10.0) as c:
                c.request({"op": "shutdown"})
        except OSError:
            pass
        handle.stop()
        if old_cache is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old_cache


def _matvec(client, env, x, seed=0, **extra):
    return client.request(
        {"op": "matvec", "matrix": env["mtx"], "procs": PROCS, "seed": seed, **extra},
        x=x,
        encoding=extra.pop("encoding", "bin"),
    )


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------


def test_health_roundtrip(serve_env):
    with ServeClient(serve_env["sock"]) as c:
        resp, y = c.request({"op": "health", "id": 42})
        assert resp["ok"] and resp["id"] == 42 and y is None
        assert resp["uptime_seconds"] >= 0
        assert resp["resident"] >= 0


def test_start_and_clean_shutdown():
    tmp = _short_tmpdir()
    sock = os.path.join(tmp, "x.sock")
    handle = start_in_thread(ServeConfig(socket_path=sock))
    assert os.path.exists(sock)
    with ServeClient(sock) as c:
        resp, _ = c.request({"op": "health"})
        assert resp["ok"]
        resp, _ = c.request({"op": "shutdown"})
        assert resp["ok"]
    handle.stop()
    assert not os.path.exists(sock)
    handle.stop()  # idempotent


# ---------------------------------------------------------------------------
# matvec exactness and batching
# ---------------------------------------------------------------------------


def test_matvec_bit_identical_across_encodings(serve_env):
    n = serve_env["A"].shape[0]
    x = np.random.default_rng(1).standard_normal(n)
    engine, n_ref = reference_engine(serve_env["mtx"], "2d-gp", PROCS, 0)
    assert n_ref == n
    expected = engine.spmv(x)
    with ServeClient(serve_env["sock"], timeout=300.0) as c:
        for encoding in ("bin", "b64", "list"):
            resp, y = _matvec(c, serve_env, x, encoding=encoding)
            assert resp["ok"], resp.get("error")
            assert np.array_equal(y, expected)
            assert resp["batch_size"] >= 1
            assert set(resp["spans_ms"]) >= {"queue", "batch", "compute"}


def test_lone_request_flushes_on_deadline(serve_env):
    n = serve_env["A"].shape[0]
    x = np.random.default_rng(2).standard_normal(n)
    with ServeClient(serve_env["sock"], timeout=300.0) as c:
        _matvec(c, serve_env, x)  # ensure warm
        resp, _ = _matvec(c, serve_env, x)
        assert resp["ok"] and resp["batch_size"] == 1
        # a lone warm request's wait is bounded by the batch deadline plus
        # scheduling noise, nowhere near a size-8 pileup
        assert resp["spans_ms"]["batch"] < 1000.0


def test_concurrent_requests_coalesce_and_match_serial(serve_env):
    result = run_loadgen(
        serve_env["sock"],
        serve_env["mtx"],
        procs=PROCS,
        concurrency=4,
        requests_per_client=10,
        check=True,
    )
    assert result.requests == 40
    assert result.errors == 0
    assert result.divergences == 0  # bit-identity under coalescing
    assert result.mean_batch_size > 1.0  # batching actually happened
    assert result.throughput_rps > 0


def test_concurrent_mixed_matvec_and_partition(serve_env):
    n = serve_env["A"].shape[0]
    x = np.random.default_rng(3).standard_normal(n)
    results: dict[str, dict] = {}

    def matvecs():
        with ServeClient(serve_env["sock"], timeout=300.0) as c:
            for _ in range(5):
                resp, _ = _matvec(c, serve_env, x)
                assert resp["ok"], resp.get("error")
            results["matvec"] = resp

    def partition():
        with ServeClient(serve_env["sock"], timeout=300.0) as c:
            resp, _ = c.request(
                {"op": "partition", "matrix": serve_env["mtx"],
                 "procs": PROCS, "seed": 5}
            )
            results["partition"] = resp

    threads = [threading.Thread(target=matvecs), threading.Thread(target=partition)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(120)
    assert results["matvec"]["ok"]
    assert results["partition"]["ok"] and results["partition"]["resident"]


# ---------------------------------------------------------------------------
# fault injection and degradation
# ---------------------------------------------------------------------------


def test_worker_death_is_retried_and_priced(serve_env):
    with ServeClient(serve_env["sock"], timeout=300.0) as c:
        resp, _ = c.request({
            "op": "partition", "matrix": serve_env["mtx"], "procs": PROCS,
            "seed": 77, "fault": {"kill_worker": True},
        })
        assert resp["ok"], resp.get("error")
        assert resp["worker_deaths"] >= 1
        assert not resp["degraded"]  # the retry completed on the pool
        assert resp["partition_source"] == "pool"
        rec = resp["recovery"]
        assert rec["strategy"] == "spare"
        assert rec["modeled_seconds"] > 0
        assert rec["peers"] >= 1 and rec["restore_words"] > 0

        stats, _ = c.request({"op": "stats"})
        assert stats["pool"]["deaths"] >= 1
        assert any(e["kind"] == "worker-death" for e in stats["fault_events"])


def test_fault_injection_rejected_when_disabled():
    tmp = _short_tmpdir()
    sock = os.path.join(tmp, "nf.sock")
    handle = start_in_thread(ServeConfig(socket_path=sock))
    try:
        with ServeClient(sock) as c:
            resp, _ = c.request({
                "op": "partition", "matrix": "nope", "procs": 2,
                "fault": {"kill_worker": True},
            })
            assert not resp["ok"]
            assert "fault injection" in resp["error"]
    finally:
        with ServeClient(sock) as c:
            c.request({"op": "shutdown"})
        handle.stop()


def test_pool_timeout_degrades_to_reference_path(serve_env):
    tmp = _short_tmpdir()
    sock = os.path.join(tmp, "dg.sock")
    # a timeout no partition can meet, and no retry budget: the pool path
    # must fail and the server must still answer via the inline reference
    handle = start_in_thread(ServeConfig(
        socket_path=sock, partition_timeout_s=1e-3, partition_retries=0,
    ))
    try:
        with ServeClient(sock, timeout=300.0) as c:
            resp, _ = c.request({
                "op": "partition", "matrix": serve_env["mtx"],
                "procs": PROCS, "seed": 88,
            })
            assert resp["ok"], resp.get("error")
            assert resp["degraded"]
            assert resp["partition_source"] == "inline-reference"
            assert any("timed out" in c_ for c_ in resp["degraded_causes"])
            c.request({"op": "shutdown"})
    finally:
        handle.stop()


# ---------------------------------------------------------------------------
# protocol errors
# ---------------------------------------------------------------------------


def test_protocol_errors_keep_connection_alive(serve_env):
    n = serve_env["A"].shape[0]
    with ServeClient(serve_env["sock"], timeout=300.0) as c:
        resp, _ = c.request({"op": "frobnicate"})
        assert not resp["ok"] and "unknown op" in resp["error"]
        resp, _ = c.request({"op": "matvec"})  # no matrix
        assert not resp["ok"] and "matrix" in resp["error"]
        resp, _ = c.request(
            {"op": "matvec", "matrix": serve_env["mtx"], "procs": PROCS},
            x=np.ones(n + 3),
        )
        assert not resp["ok"] and "length" in resp["error"]
        resp, _ = c.request({"op": "matvec", "matrix": "no-such", "procs": PROCS},
                            x=np.ones(4))
        assert not resp["ok"]
        # and the same connection still serves good requests
        resp, y = _matvec(c, serve_env, np.ones(n))
        assert resp["ok"] and y is not None


def test_vector_encodings_roundtrip():
    y = np.linspace(-3.0, 3.0, 17)
    for encoding in ("list", "b64", "bin"):
        wire = encode_vector({"id": 1}, y, encoding)
        line, _, payload = wire.partition(b"\n")
        msg = json.loads(line)
        out, enc = decode_vector(msg, payload or None)
        assert enc == encoding
        assert np.array_equal(out, y)
    with pytest.raises(ProtocolError):
        encode_vector({}, y, "hex")
    with pytest.raises(ProtocolError):
        decode_vector({}, b"abc")  # not a float64 buffer
    assert decode_vector({}, None) == (None, "bin")
    assert encode_message({"a": 1}).endswith(b"\n")


# ---------------------------------------------------------------------------
# residency
# ---------------------------------------------------------------------------


def _entry(key_seed: int, nbytes: int = 100) -> ResidentEngine:
    class _Eng:
        n = 4

        def __init__(self, nb):
            self.nbytes = nb

    key = EngineKey("h" * 12, "2d-gp", 4, key_seed)
    return ResidentEngine(key=key, matrix="m", dist=None, engine=_Eng(nbytes))


def test_residency_lru_and_byte_bounds():
    res = EngineResidency(max_engines=2)
    assert res.admit(_entry(0)) == []
    assert res.admit(_entry(1)) == []
    assert res.get(_entry(0).key) is not None  # refreshes 0's recency
    evicted = res.admit(_entry(2))  # 1 is now the LRU victim
    assert [e.key.seed for e in evicted] == [1]
    assert res.evictions == 1 and len(res) == 2

    res = EngineResidency(max_engines=10, max_bytes=250)
    res.admit(_entry(0))
    res.admit(_entry(1))
    evicted = res.admit(_entry(2))
    assert [e.key.seed for e in evicted] == [0]
    # an oversized newest entry evicts everything else but survives itself
    evicted = res.admit(_entry(3, nbytes=10_000))
    assert len(res) == 1 and res.get(_entry(3).key) is not None
    assert res.resident_bytes() == 10_000
    assert res.evict(_entry(3).key) is not None
    assert len(res) == 0

    with pytest.raises(ValueError):
        EngineResidency(max_engines=0)


def test_server_lru_eviction_end_to_end(serve_env):
    tmp = _short_tmpdir()
    sock = os.path.join(tmp, "lru.sock")
    handle = start_in_thread(ServeConfig(socket_path=sock, max_engines=1))
    try:
        with ServeClient(sock, timeout=300.0) as c:
            for seed in (0, 5):  # both rparts already cached by earlier tests
                resp, _ = c.request({"op": "partition", "matrix": serve_env["mtx"],
                                     "procs": PROCS, "seed": seed})
                assert resp["ok"], resp.get("error")
            stats, _ = c.request({"op": "stats"})
            assert len(stats["resident"]) == 1
            assert stats["resident"][0]["seed"] == 5
            assert stats["evictions"] == 1
            c.request({"op": "shutdown"})
    finally:
        handle.stop()


# ---------------------------------------------------------------------------
# HTTP transport
# ---------------------------------------------------------------------------


def test_http_health_and_matvec(serve_env):
    port = serve_env["handle"].http_port
    assert port is not None
    with urllib.request.urlopen(f"http://127.0.0.1:{port}/health", timeout=30) as r:
        health = json.loads(r.read())
    assert health["ok"] and health["op"] == "health"

    n = serve_env["A"].shape[0]
    x = np.random.default_rng(4).standard_normal(n)
    import base64

    body = json.dumps({
        "op": "matvec", "matrix": serve_env["mtx"], "procs": PROCS,
        "x_b64": base64.b64encode(x.tobytes()).decode(),
    }).encode()
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}/rpc", data=body, method="POST"
    )
    with urllib.request.urlopen(req, timeout=300) as r:
        resp = json.loads(r.read())
    assert resp["ok"], resp.get("error")
    y = np.frombuffer(base64.b64decode(resp["y_b64"]), dtype="<f8")
    engine, _ = reference_engine(serve_env["mtx"], "2d-gp", PROCS, 0)
    assert np.array_equal(y, engine.spmv(x))

    # binary frames are a stream-socket feature
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}/rpc",
        data=json.dumps({"op": "matvec", "bin": 8}).encode(),
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as exc_info:
        urllib.request.urlopen(req, timeout=30)
    assert exc_info.value.code == 400


# ---------------------------------------------------------------------------
# micro-batcher (event-loop unit tests, fake engine)
# ---------------------------------------------------------------------------


class _FakeEngine:
    def __init__(self):
        self.spmv_calls = 0
        self.spmm_widths: list[int] = []

    def spmv(self, x):
        self.spmv_calls += 1
        return x * 2.0

    def spmm(self, X):
        self.spmm_widths.append(X.shape[1])
        return X * 2.0


def test_batcher_deadline_flush():
    async def scenario():
        eng = _FakeEngine()
        b = MicroBatcher(eng, max_batch=8, deadline_s=0.005)
        y, k = await b.submit(np.ones(3), SpanRecorder())
        return eng, b, y, k

    eng, b, y, k = asyncio.run(scenario())
    assert k == 1 and np.array_equal(y, np.full(3, 2.0))
    assert eng.spmv_calls == 1 and eng.spmm_widths == []
    assert b.flushes == {"size": 0, "deadline": 1, "drain": 0}
    assert b.batch_sizes == {1: 1} and b.matvecs == 1


def test_batcher_size_flush_coalesces():
    async def scenario():
        eng = _FakeEngine()
        b = MicroBatcher(eng, max_batch=3, deadline_s=60.0)
        rec = [SpanRecorder() for _ in range(3)]
        xs = [np.full(4, float(i)) for i in range(3)]
        outs = await asyncio.gather(*(b.submit(x, r) for x, r in zip(xs, rec)))
        return eng, b, rec, outs

    eng, b, recs, outs = asyncio.run(scenario())
    assert eng.spmm_widths == [3] and eng.spmv_calls == 0
    for i, (y, k) in enumerate(outs):
        assert k == 3
        assert np.array_equal(y, np.full(4, 2.0 * i))  # column order = arrival
        assert y.flags["C_CONTIGUOUS"]
    assert b.flushes["size"] == 1
    assert all("compute" in r.spans and "batch" in r.spans for r in recs)


def test_batcher_drain_flushes_pending():
    async def scenario():
        eng = _FakeEngine()
        b = MicroBatcher(eng, max_batch=8, deadline_s=60.0)
        task = asyncio.ensure_future(b.submit(np.ones(2), SpanRecorder()))
        await asyncio.sleep(0)  # let submit enqueue
        assert b.pending == 1
        b.drain()
        y, k = await task
        return b, y, k

    b, y, k = asyncio.run(scenario())
    assert k == 1 and b.flushes["drain"] == 1 and b.pending == 0


def test_batcher_rejects_bad_config():
    with pytest.raises(ValueError):
        MicroBatcher(_FakeEngine(), max_batch=0)
    with pytest.raises(ValueError):
        MicroBatcher(_FakeEngine(), deadline_s=-1.0)


# ---------------------------------------------------------------------------
# resilient pool (direct unit tests)
# ---------------------------------------------------------------------------


def _echo_task(x, attempt):
    return (x, attempt)


def _die_then_echo(x, attempt):
    if attempt == 0:
        os._exit(3)
    return (x, attempt)


def _raise_task(attempt):
    raise ValueError("deterministic task bug")


def _sleep_task(seconds, attempt):
    time.sleep(seconds)
    return attempt


def test_resilient_pool_runs_and_passes_attempt():
    pool = ResilientPool(max_workers=1)
    try:
        assert pool.run(_echo_task, 7) == (7, 0)
        assert pool.deaths == 0 and pool.retries == 0
    finally:
        pool.shutdown()


def test_resilient_pool_retries_after_worker_death():
    pool = ResilientPool(max_workers=1, max_retries=2)
    try:
        assert pool.run(_die_then_echo, 9) == (9, 1)
        assert pool.deaths == 1 and pool.retries == 1
    finally:
        pool.shutdown()


def test_resilient_pool_does_not_retry_task_exceptions():
    pool = ResilientPool(max_workers=1, max_retries=3)
    try:
        with pytest.raises(ValueError, match="deterministic"):
            pool.run(_raise_task)
        assert pool.retries == 0  # the bug would fail identically again
    finally:
        pool.shutdown()


def test_resilient_pool_timeout_exhausts_budget():
    pool = ResilientPool(max_workers=1, max_retries=0)
    try:
        with pytest.raises(PoolTaskFailed) as exc_info:
            pool.run(_sleep_task, 3.0, timeout=0.2)
        assert exc_info.value.attempts == 1
        assert any("timed out" in c for c in exc_info.value.causes)
        assert pool.deaths == 1
    finally:
        pool.shutdown()
    pool.shutdown()  # idempotent

    with pytest.raises(ValueError):
        ResilientPool(max_workers=0)


# ---------------------------------------------------------------------------
# span recorder and engine footprint
# ---------------------------------------------------------------------------


def test_span_recorder():
    rec = SpanRecorder()
    rec.add("queue", 0.001)
    rec.add("queue", 0.002)  # accumulates
    t0 = time.perf_counter()
    rec.mark_since("batch", t0)
    with rec.span("compute"):
        pass
    ms = rec.as_millis()
    assert ms["queue"] == pytest.approx(3.0)
    assert ms["batch"] >= 0 and ms["compute"] >= 0
    assert set(ms) == {"queue", "batch", "compute"}


def test_engine_nbytes(small_rmat):
    from repro.bench.harness import layout_for
    from repro.runtime import CAB, DistSparseMatrix

    layout = layout_for(small_rmat, "2d-block", 4)
    dist = DistSparseMatrix(small_rmat, layout, CAB)
    engine = dist.engine
    base = engine.nbytes
    assert base > 0
    engine._abft_operators()  # ABFT operators count once they exist
    assert engine.nbytes > base


# ---------------------------------------------------------------------------
# ids, deadlines, frame integrity
# ---------------------------------------------------------------------------


def test_client_ids_monotonic_and_distinct_across_clients(serve_env):
    with ServeClient(serve_env["sock"]) as a, ServeClient(serve_env["sock"]) as b:
        ids_a = [a.next_id() for _ in range(4)]
        ids_b = [b.next_id() for _ in range(4)]
        assert len(set(ids_a) | set(ids_b)) == 8  # never collide
        # and a request without an explicit id gets one assigned
        resp, _ = a.request({"op": "health"})
        assert isinstance(resp["id"], str) and resp["id"].startswith(
            ids_a[0].rsplit("-", 1)[0]
        )


def test_duplicate_inflight_id_rejected(serve_env):
    """Two frames with one id on one connection: the second is refused
    while the first is still in flight (held there by a slow fault)."""
    import socket as socket_mod

    n = serve_env["A"].shape[0]
    slow = {
        "op": "matvec",
        "matrix": serve_env["mtx"],
        "procs": PROCS,
        "seed": 0,
        "id": "dup-1",
        "x": list(np.random.default_rng(5).standard_normal(n)),
        "fault": {"slow_ms": 400.0},
    }
    again = {"op": "health", "id": "dup-1"}
    with socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM) as s:
        s.settimeout(30.0)
        s.connect(serve_env["sock"])
        s.sendall(encode_message(slow) + encode_message(again))
        rfile = s.makefile("rb")
        first = json.loads(rfile.readline())
        second = json.loads(rfile.readline())
    # pipelining: the duplicate refusal overtakes the slow matvec
    assert first["id"] == "dup-1" and not first["ok"]
    assert "duplicate in-flight id" in first["error"]
    assert second["id"] == "dup-1" and second["ok"]  # the matvec completes


def test_request_deadline_separate_from_connect_timeout(serve_env):
    """A per-request deadline expires on a slow response while the
    connection-level timeout (much larger) never fires."""
    from repro.serve import DeadlineExceeded

    n = serve_env["A"].shape[0]
    x = np.random.default_rng(6).standard_normal(n)
    with ServeClient(serve_env["sock"], timeout=300.0) as c:
        _matvec(c, serve_env, x)  # warm
        with pytest.raises(DeadlineExceeded):
            c.request(
                {"op": "matvec", "matrix": serve_env["mtx"], "procs": PROCS,
                 "seed": 0, "fault": {"slow_ms": 500.0}},
                x=x,
                deadline=0.05,
            )


def test_corrupted_frame_detected_by_crc():
    from repro.serve.protocol import encode_frame, frame_digest, verify_frame

    msg = {"op": "matvec", "id": "z-1", "bin": 8}
    payload = b"\x01\x02\x03\x04\x05\x06\x07\x08"
    wire = encode_frame(msg, payload)
    line, _, body = wire.partition(b"\n")
    parsed = json.loads(line)
    verify_frame(parsed, body)  # clean frame passes

    flipped = dict(parsed)
    flipped["bin"] = 9  # any single-field mutation breaks the digest
    with pytest.raises(ProtocolError, match="crc mismatch"):
        verify_frame(flipped, body)
    with pytest.raises(ProtocolError, match="crc mismatch"):
        verify_frame(parsed, body[:-1] + b"\x00")
    # frames without a crc (external HTTP clients) pass unverified
    verify_frame({"op": "health"}, None)
    assert frame_digest(msg, payload) == parsed["crc"]


# ---------------------------------------------------------------------------
# admission control and graceful drain
# ---------------------------------------------------------------------------


def test_graceful_drain_completes_inflight_batch(serve_env):
    """Shutdown mid-micro-batch: the queued matvec still completes with
    correct bits; new work after the drain begins is refused."""
    tmp = _short_tmpdir()
    config = ServeConfig(
        socket_path=os.path.join(tmp, "d.sock"),
        max_batch=8,
        batch_deadline_ms=250.0,  # long deadline holds the batch open
        allow_fault_injection=True,
    )
    handle = start_in_thread(config)
    n = serve_env["A"].shape[0]
    x = np.random.default_rng(7).standard_normal(n)
    engine, _ = reference_engine(serve_env["mtx"], "2d-gp", PROCS, 0)
    expected = engine.spmv(x)
    out: dict[str, tuple] = {}
    try:
        with ServeClient(config.socket_path, timeout=300.0) as warm:
            resp, _ = warm.request(
                {"op": "partition", "matrix": serve_env["mtx"],
                 "procs": PROCS, "seed": 0}
            )
            assert resp["ok"], resp

        def inflight(tag, **extra):
            with ServeClient(config.socket_path, timeout=60.0) as c:
                out[tag] = c.request(
                    {"op": "matvec", "matrix": serve_env["mtx"],
                     "procs": PROCS, "seed": 0, **extra},
                    x=x,
                )

        # one request parked in the open micro-batch (250 ms deadline),
        # one held by a slow-engine fault: the latter keeps the server
        # alive long enough to observe the refusal deterministically
        batched = threading.Thread(target=inflight, args=("batched",))
        slow = threading.Thread(
            target=inflight, args=("slow",),
            kwargs={"fault": {"slow_ms": 700.0}},
        )
        batched.start()
        slow.start()
        time.sleep(0.1)  # both in flight, batch deadline not yet hit
        with ServeClient(config.socket_path, timeout=30.0) as c:
            resp, _ = c.request({"op": "shutdown"})
            assert resp["ok"] and resp["state"] == "draining"
            refused, _ = _matvec(c, serve_env, x)
        batched.join(30)
        slow.join(30)
        for tag in ("batched", "slow"):
            resp, y = out[tag]
            assert resp["ok"], resp
            assert np.array_equal(y, expected)  # drained, not dropped
        assert not refused["ok"] and refused["draining"] is True
        assert refused["retry_after_s"] > 0
    finally:
        handle.stop(timeout=30.0)
    assert not os.path.exists(config.socket_path)


def test_graceful_drain_during_cold_engine_build(serve_env):
    """Shutdown while an engine is still building: the build finishes,
    the triggering matvec is answered, and only then does the loop stop."""
    from repro.serve.server import MatvecServer

    class SlowBuildServer(MatvecServer):
        async def _build_engine(self, *args, **kwargs):
            await asyncio.sleep(0.3)  # hold the build so the drain races it
            return await super()._build_engine(*args, **kwargs)

    tmp = _short_tmpdir()
    config = ServeConfig(
        socket_path=os.path.join(tmp, "cold.sock"),
        allow_fault_injection=True,
        cache_dir=serve_env["cache_dir"],
    )
    handle = start_in_thread(config, server=SlowBuildServer(config))
    n = serve_env["A"].shape[0]
    x = np.random.default_rng(8).standard_normal(n)
    out: dict[str, tuple] = {}
    try:

        def cold():
            with ServeClient(config.socket_path, timeout=300.0) as c:
                out["resp"], out["y"] = _matvec(c, serve_env, x)

        t = threading.Thread(target=cold)
        t.start()
        time.sleep(0.1)  # inside the delayed _build_engine
        with ServeClient(config.socket_path, timeout=30.0) as c:
            resp, _ = c.request({"op": "shutdown"})
            assert resp["ok"] and resp["state"] == "draining"
        t.join(60)
        assert out["resp"]["ok"], out["resp"]
        assert out["resp"]["cold"] is True
        engine, _ = reference_engine(serve_env["mtx"], "2d-gp", PROCS, 0)
        assert np.array_equal(out["y"], engine.spmv(x))
    finally:
        handle.stop(timeout=60.0)
    assert not os.path.exists(config.socket_path)


def test_micro_batcher_sheds_over_bound():
    from repro.serve.batching import QueueFull

    async def scenario():
        b = MicroBatcher(_FakeEngine(), max_batch=8, deadline_s=60.0, max_pending=2)
        waiting = [
            asyncio.ensure_future(b.submit(np.zeros(4), SpanRecorder()))
            for _ in range(2)
        ]
        await asyncio.sleep(0)  # let both enqueue
        assert b.pending == 2
        with pytest.raises(QueueFull) as err:
            await b.submit(np.zeros(4), SpanRecorder())
        assert err.value.pending == 2 and err.value.max_pending == 2
        assert b.shed == 1
        b.drain()
        await asyncio.gather(*waiting)
        return b

    b = asyncio.run(scenario())
    assert b.flushes["drain"] == 1 and b.matvecs == 2


def test_health_reports_degraded_after_shed(serve_env):
    tmp = _short_tmpdir()
    config = ServeConfig(
        socket_path=os.path.join(tmp, "shed.sock"),
        max_batch=2,
        batch_deadline_ms=200.0,
        max_queue=1,
        allow_fault_injection=True,
    )
    handle = start_in_thread(config)
    n = serve_env["A"].shape[0]
    rng = np.random.default_rng(9)
    xs = rng.standard_normal((6, n))
    try:
        with ServeClient(config.socket_path, timeout=300.0) as warm:
            resp, _ = warm.request(
                {"op": "partition", "matrix": serve_env["mtx"],
                 "procs": PROCS, "seed": 0}
            )
            assert resp["ok"], resp

        sheds: list[dict] = []
        oks: list[dict] = []

        def fire(i):
            with ServeClient(config.socket_path, timeout=60.0) as c:
                resp, _ = _matvec(c, serve_env, xs[i])
                (sheds if resp.get("shed") else oks).append(resp)

        threads = [threading.Thread(target=fire, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert sheds, "queue bound of 1 never shed under 6 concurrent requests"
        assert all(s["retry_after_s"] > 0 for s in sheds)
        assert all(not s["ok"] for s in sheds)
        assert oks and all(o["ok"] for o in oks)
        with ServeClient(config.socket_path, timeout=30.0) as c:
            health, _ = c.request({"op": "health"})
            stats, _ = c.request({"op": "stats"})
        assert health["state"] == "degraded"  # recent shed within the window
        assert stats["counters"]["shed"] == len(sheds)
    finally:
        with ServeClient(config.socket_path, timeout=10.0) as c:
            c.request({"op": "shutdown"})
        handle.stop()


def test_server_handle_stop_raises_on_hung_thread():
    """A thread that will not die must raise, never pass silently."""
    from repro.serve.server import ServerHandle

    class HungThread:
        name = "hung-serve"

        def is_alive(self):
            return True

        def join(self, timeout=None):
            pass

    class DeadLoop:
        def call_soon_threadsafe(self, fn):
            raise RuntimeError("Event loop is closed")

    class StuckServer:
        state = "draining"
        _inflight_work = 3

        def begin_drain(self):
            pass

        def request_stop(self):
            pass

    handle = ServerHandle(StuckServer(), HungThread(), DeadLoop())
    with pytest.raises(RuntimeError, match="hung shutdown"):
        handle.stop(timeout=0.01)


def test_threaded_server_with_worker_pool_bit_identical(serve_env):
    """Oversubscription-guard regression: engine_threads + pool_workers.

    A server running a multi-threaded apply budget *and* a process pool
    for cold partitions must still answer bit-identically to the serial
    reference engine — the threaded kernel is exact, and pool workers
    pin their own budgets to 1 rather than nesting thread pools.
    """
    sock = os.path.join(serve_env["tmp"], "thr.sock")
    config = ServeConfig(
        socket_path=sock,
        max_batch=8,
        batch_deadline_ms=1.0,
        pool_workers=2,
        engine_threads=4,
    )
    handle = start_in_thread(config)
    try:
        n = serve_env["A"].shape[0]
        engine, _ = reference_engine(serve_env["mtx"], "2d-gp", PROCS, 0)
        with ServeClient(sock, timeout=300.0) as c:
            xs = [
                np.random.default_rng(400 + i).standard_normal(n)
                for i in range(6)
            ]
            for x in xs:
                resp, y = _matvec(c, serve_env, x)
                assert resp["ok"], resp.get("error")
                with thread_kernels.use_kernel("serial"):
                    assert np.array_equal(y, engine.spmv(x))
            health, _ = c.request({"op": "health"})
            assert health["engine_threads"] == 4
            stats, _ = c.request({"op": "stats"})
            assert stats["threads"]["engine_threads"] == 4
            entry = stats["resident"][0]
            assert entry["threads"] == 4
            assert entry["plan"]["local"]["blocks"] >= 1
    finally:
        with ServeClient(sock, timeout=10.0) as c:
            c.request({"op": "shutdown"})
        handle.stop()
