"""Tests for the data-migration cost model."""


from repro.layouts import make_layout
from repro.runtime import migration_stats


class TestMigration:
    def test_identity_migration_free(self, small_rmat):
        lay = make_layout("1d-block", small_rmat, 4)
        s = migration_stats(small_rmat, lay, lay)
        assert s.moved_nonzeros == 0
        assert s.moved_vector_entries == 0
        assert s.total_words == 0
        assert s.modeled_seconds == 0.0

    def test_counts_exact_on_tiny_case(self, tiny_matrix):
        a = make_layout("1d-block", tiny_matrix, 2)
        b = make_layout("1d-random", tiny_matrix, 2, seed=5)
        s = migration_stats(tiny_matrix, a, b)
        coo = tiny_matrix.tocoo()
        moved = (a.nonzero_owner(coo.row, coo.col) != b.nonzero_owner(coo.row, coo.col)).sum()
        moved_v = (a.vector_part != b.vector_part).sum()
        assert s.moved_nonzeros == moved
        assert s.moved_vector_entries == moved_v
        assert s.total_words == 3 * moved + 2 * moved_v

    def test_1d_to_2d_similar_to_1d_to_1d(self, small_powerlaw):
        """The paper's claim: migrating to the 2D layout costs about the
        same as migrating to the underlying 1D partition (same rpart)."""
        from repro.layouts import random_rpart

        p = 16
        start = make_layout("1d-block", small_powerlaw, p)
        rpart = random_rpart(small_powerlaw.shape[0], p, seed=3)
        to_1d = make_layout("1d-gp", small_powerlaw, p, rpart=rpart)
        to_2d = make_layout("2d-gp", small_powerlaw, p, rpart=rpart)
        s1 = migration_stats(small_powerlaw, start, to_1d)
        s2 = migration_stats(small_powerlaw, start, to_2d)
        assert s2.total_words < 1.5 * s1.total_words
        # vector movement is identical: both share rpart
        assert s1.moved_vector_entries == s2.moved_vector_entries

    def test_modeled_seconds_positive_when_moving(self, small_rmat):
        a = make_layout("1d-block", small_rmat, 4)
        b = make_layout("2d-random", small_rmat, 4, seed=1)
        s = migration_stats(small_rmat, a, b)
        assert s.moved_nonzeros > 0
        assert s.modeled_seconds > 0
        assert s.max_rank_words <= s.total_words * 2
