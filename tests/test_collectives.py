"""Tests for the alternative communication algorithms (paper ref [18])."""

import numpy as np
import pytest

from repro.generators import rmat
from repro.layouts import make_layout
from repro.runtime import (
    CAB,
    COLLECTIVE_ALGORITHMS,
    CommPlan,
    DistSparseMatrix,
    Map,
    phase_time,
)


@pytest.fixture
def many_peer_plan():
    """One rank receives one double from each of 15 peers (the scale-free
    1D expand pattern that motivates structured collectives)."""
    owner = Map(np.arange(16, dtype=np.int64), 16)
    needed = [np.arange(1, 16, dtype=np.int64)] + [np.array([], dtype=np.int64)] * 15
    return CommPlan.build(needed, owner)


class TestAlgorithms:
    def test_direct_matches_plan_native(self, many_peer_plan):
        assert phase_time(many_peer_plan, CAB, "direct") == many_peer_plan.phase_time(CAB)

    def test_tree_beats_direct_for_many_small_messages(self, many_peer_plan):
        """15 one-double receives: direct pays 15 alphas, tree pays 4."""
        assert phase_time(many_peer_plan, CAB, "tree") < phase_time(many_peer_plan, CAB, "direct")

    def test_hypercube_flat_latency(self, many_peer_plan):
        t = phase_time(many_peer_plan, CAB, "hypercube")
        # d = 4 rounds of alpha plus small routed volume
        assert t >= 4 * CAB.alpha
        assert t < 15 * CAB.alpha

    def test_direct_wins_for_few_large_messages(self):
        """One bulk message: structured routing only adds forwarding."""
        owner = Map(np.repeat(np.arange(4), 250), 4)
        needed = [np.arange(250, 500, dtype=np.int64)] + [np.array([], dtype=np.int64)] * 3
        plan = CommPlan.build(needed, owner)
        direct = phase_time(plan, CAB, "direct")
        assert phase_time(plan, CAB, "tree") >= direct
        assert phase_time(plan, CAB, "hypercube") >= direct

    def test_unknown_algorithm(self, many_peer_plan):
        with pytest.raises(ValueError, match="unknown algorithm"):
            phase_time(many_peer_plan, CAB, "carrier-pigeon")

    def test_empty_plan_costs_nothing(self):
        plan = CommPlan.build([np.array([], dtype=np.int64)], Map(np.zeros(4, dtype=np.int64), 1))
        for alg in COLLECTIVE_ALGORITHMS:
            assert phase_time(plan, CAB, alg) == 0.0


class TestSpmvIntegration:
    def test_algorithm_changes_cost_not_result(self, small_powerlaw, rng):
        lay = make_layout("1d-random", small_powerlaw, 16, seed=1)
        dist = DistSparseMatrix(small_powerlaw, lay)
        x = rng.standard_normal(small_powerlaw.shape[0])
        y = dist.spmv(x)  # numerics independent of the cost algorithm
        assert np.abs(y - small_powerlaw @ x).max() < 1e-10
        times = {alg: dist.modeled_spmv_seconds(100, algorithm=alg)
                 for alg in COLLECTIVE_ALGORITHMS}
        assert len({round(t, 12) for t in times.values()}) > 1  # they differ

    def test_tree_blunts_the_1d_message_problem(self):
        """Structured collectives help 1D far more than 2D: 1D's cost is
        p-1 latencies, which the tree collapses to log p; 2D has little
        latency to save. (Whether tree-1D beats direct-2D then depends on
        payload size — the ablation bench reports both regimes; the paper's
        comparison is between direct implementations.)"""
        A = rmat(10, 6, seed=3)
        d1 = DistSparseMatrix(A, make_layout("1d-gp", A, 64, seed=0))
        d2 = DistSparseMatrix(A, make_layout("2d-gp", A, 64, seed=0))
        gain_1d = d1.modeled_spmv_seconds(100) / d1.modeled_spmv_seconds(100, algorithm="tree")
        gain_2d = d2.modeled_spmv_seconds(100) / d2.modeled_spmv_seconds(100, algorithm="tree")
        assert gain_1d > 1.5  # big win for 1D
        assert gain_1d > gain_2d  # and much bigger than for 2D
