"""Client resilience + chaos harness: determinism, dedup, detection.

The contracts under test:

* **determinism** — backoff schedules, breaker transitions and chaos
  injection decisions are pure functions of their seeds and injected
  clocks: the same seed replays the same run, byte for byte;
* **idempotency** — a retried request (same ``idem`` key) is answered
  from the server's dedup table, bit-identical, never recomputed into a
  second batch slot;
* **detection** — corrupted frames NEVER parse as clean answers: every
  wire corruption surfaces as :class:`ProtocolError` (CRC/JSON) or
  :class:`DeadlineExceeded`, all retryable;
* **end to end** — a :class:`RetryingClient` soak through a seeded
  :class:`ChaosProxy` answers every request bit-identical to a locally
  built reference engine, with zero lost acknowledged requests.

Hermetic like ``test_serve.py``: generated matrix, private partition
cache, short ``/tmp`` socket paths, in-process server and proxy.
"""

from __future__ import annotations

import os
import tempfile
import threading

import numpy as np
import pytest

from repro.generators import rmat
from repro.io import write_matrix_market
from repro.serve import (
    BackoffPolicy,
    ChaosProxy,
    ChaosSchedule,
    CircuitBreaker,
    CircuitOpen,
    DeadlineExceeded,
    ProtocolError,
    RetriesExhausted,
    RetryingClient,
    ServeClient,
    ServeConfig,
    start_chaos_proxy,
    start_in_thread,
)
from repro.serve.chaos import WIRE_FAULT_KINDS
from repro.serve.loadgen import reference_engine, run_chaos_soak, run_loadgen

PROCS = 4


def _short_tmpdir() -> str:
    # AF_UNIX paths are limited to ~107 bytes; pytest tmp_path nests too deep
    return tempfile.mkdtemp(prefix="rr-", dir="/tmp")


class _FakeClock:
    """Deterministic monotonic clock whose sleep just advances time."""

    def __init__(self) -> None:
        self.t = 0.0
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        return self.t

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.t += seconds


# ---------------------------------------------------------------------------
# backoff policy
# ---------------------------------------------------------------------------


def test_backoff_policy_deterministic_and_bounded():
    a = BackoffPolicy(base_s=0.05, cap_s=2.0, seed=13)
    b = BackoffPolicy(base_s=0.05, cap_s=2.0, seed=13)
    prev_a = prev_b = 0.05
    seq_a, seq_b = [], []
    for _ in range(32):
        prev_a = a.next(prev_a)
        prev_b = b.next(prev_b)
        seq_a.append(prev_a)
        seq_b.append(prev_b)
    assert seq_a == seq_b  # same seed, same schedule, exactly
    assert all(0.05 <= s <= 2.0 for s in seq_a)
    other = BackoffPolicy(base_s=0.05, cap_s=2.0, seed=14)
    assert [other.next(0.05) for _ in range(4)] != seq_a[:4]


def test_backoff_policy_honors_floor_and_validates():
    p = BackoffPolicy(base_s=0.01, cap_s=10.0, seed=0)
    assert all(p.next(0.01, floor_s=0.5) >= 0.5 for _ in range(16))
    with pytest.raises(ValueError):
        BackoffPolicy(base_s=0.0)
    with pytest.raises(ValueError):
        BackoffPolicy(base_s=1.0, cap_s=0.5)


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------


def test_circuit_breaker_opens_probes_and_closes():
    clock = _FakeClock()
    b = CircuitBreaker(
        window=6, failure_threshold=0.5, min_calls=3, reset_timeout_s=1.0,
        clock=clock,
    )
    assert b.state == "closed" and b.allow()
    b.record(False)
    b.record(False)
    assert b.state == "closed"  # below min_calls: stays closed
    b.record(False)
    assert b.state == "open" and b.opens == 1
    assert not b.allow()
    assert b.seconds_until_probe() == pytest.approx(1.0)

    clock.t += 1.0
    assert b.allow()  # half-open: exactly one probe
    assert b.state == "half-open"
    assert not b.allow()  # second caller refused while probe in flight
    b.record(True)
    assert b.state == "closed" and b.failure_rate() == 0.0

    # a failed probe re-opens and restarts the timeout
    for _ in range(3):
        b.record(False)
    clock.t += 1.0
    assert b.allow()
    b.record(False)
    assert b.state == "open" and b.opens == 3
    assert b.seconds_until_probe() == pytest.approx(1.0)


def test_circuit_breaker_validates():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0.0)
    with pytest.raises(ValueError):
        CircuitBreaker(window=0)


# ---------------------------------------------------------------------------
# retrying client (stubbed attempts: no sockets, fake time)
# ---------------------------------------------------------------------------


def _stub_client(clock: _FakeClock, outcomes, **kw) -> RetryingClient:
    """A RetryingClient whose attempts replay *outcomes* (exc or response)."""
    kw.setdefault("total_deadline_s", 1e9)
    client = RetryingClient(
        "/nonexistent.sock", clock=clock, sleep=clock.sleep, **kw
    )
    it = iter(outcomes)

    def attempt(msg, x, encoding, idem, remaining):
        out = next(it)
        if isinstance(out, BaseException):
            raise out
        return out, None

    client._attempt = attempt
    return client


def test_retrying_client_backoff_schedule_is_seeded():
    def run(seed):
        clock = _FakeClock()
        client = _stub_client(
            clock, [ConnectionError("boom")] * 5, seed=seed, max_attempts=5
        )
        with pytest.raises(RetriesExhausted) as err:
            client.request({"op": "matvec"})
        assert err.value.attempts == 5
        assert client.stats["retries"] == 5
        return clock.sleeps

    first, second = run(seed=21), run(seed=21)
    assert first == second  # bitwise-identical replay under a fixed seed
    assert len(first) == 5
    assert run(seed=22) != first

    # and the sleeps are exactly the BackoffPolicy sequence for that seed
    policy = BackoffPolicy(seed=21)
    prev, expect = policy.base_s, []
    for _ in range(5):
        prev = policy.next(prev, floor_s=0.0)
        expect.append(prev)
    assert first == expect


def test_retrying_client_shed_uses_retry_after_floor():
    clock = _FakeClock()
    shed = {"ok": False, "shed": True, "retry_after_s": 0.25, "error": "full"}
    done = {"ok": True, "id": "x"}
    client = _stub_client(clock, [shed, done], seed=3)
    resp, _ = client.request({"op": "matvec"})
    assert resp["ok"]
    assert client.stats["shed_seen"] == 1
    assert client.stats["attempts"] == 2
    assert len(clock.sleeps) == 1
    assert clock.sleeps[0] >= 0.25  # the server's hint floors the jitter


def test_retrying_client_returns_application_errors_verbatim():
    clock = _FakeClock()
    app_err = {"ok": False, "error": "unknown matrix 'nope'"}
    client = _stub_client(clock, [app_err], seed=0)
    resp, _ = client.request({"op": "matvec", "matrix": "nope"})
    assert resp == app_err  # deterministic server answer: not retried
    assert client.stats["attempts"] == 1 and clock.sleeps == []


def test_retrying_client_raises_circuit_open_past_deadline():
    clock = _FakeClock()
    breaker = CircuitBreaker(
        window=4, failure_threshold=0.5, min_calls=2, reset_timeout_s=50.0,
        clock=clock,
    )
    client = _stub_client(
        clock,
        [ConnectionError("a"), ConnectionError("b")],
        seed=0,
        max_attempts=10,
        total_deadline_s=5.0,
        breaker=breaker,
    )
    with pytest.raises(CircuitOpen):
        client.request({"op": "matvec"})
    assert breaker.opens == 1


def test_retrying_client_idem_keys_unique_across_instances():
    clock = _FakeClock()
    a = _stub_client(clock, [], seed=0)
    b = _stub_client(clock, [], seed=0)
    keys = {a.next_idem() for _ in range(8)} | {b.next_idem() for _ in range(8)}
    assert len(keys) == 16


# ---------------------------------------------------------------------------
# chaos schedule + proxy decisions (no sockets)
# ---------------------------------------------------------------------------


def test_chaos_schedule_validates():
    with pytest.raises(ValueError):
        ChaosSchedule(p_torn=-0.1)
    with pytest.raises(ValueError):
        ChaosSchedule(p_torn=0.6, p_drop=0.6)  # sum > 1
    with pytest.raises(ValueError):
        ChaosSchedule(delay_ms=-1.0)
    s = ChaosSchedule(p_corrupt=0.2, p_delay=0.1)
    assert s.active_classes() == ("corrupt", "delay")


def test_chaos_decisions_pure_in_seed_conn_frame():
    sched = ChaosSchedule(
        seed=7, p_torn=0.1, p_corrupt=0.1, p_reset=0.1, p_delay=0.1, p_drop=0.1
    )
    a = ChaosProxy("up", "down", sched)
    b = ChaosProxy("up", "down", sched)
    grid = [(c, f) for c in range(6) for f in range(24)]

    def decide(p, c, f):
        d = p._decide(c, f)
        return d[0] if d else None

    seq_a = [decide(a, c, f) for c, f in grid]
    assert seq_a == [decide(b, c, f) for c, f in grid]
    assert set(seq_a) - {None} == set(WIRE_FAULT_KINDS)  # all classes land

    other = ChaosProxy("up", "down", ChaosSchedule(seed=8, p_drop=0.5))
    assert seq_a != [decide(other, c, f) for c, f in grid]

    silent = ChaosProxy("up", "down", ChaosSchedule(seed=7))
    assert all(decide(silent, c, f) is None for c, f in grid)


def test_chaos_fault_parameters_replay_with_decision():
    sched = ChaosSchedule(seed=5, p_corrupt=1.0)
    a, b = ChaosProxy("u", "d", sched), ChaosProxy("u", "d", sched)
    for conn, frame in [(0, 0), (1, 3), (2, 7)]:
        _, rng_a = a._decide(conn, frame)
        _, rng_b = b._decide(conn, frame)
        # the rng continuing the stream makes byte positions/masks replay
        assert rng_a.integers(1 << 30) == rng_b.integers(1 << 30)


# ---------------------------------------------------------------------------
# live server + proxy: dedup, detection, soak
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def serve_env():
    tmp = _short_tmpdir()
    cache_dir = os.path.join(tmp, "cache")
    os.makedirs(cache_dir)
    old_cache = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = cache_dir

    A = rmat(scale=8, edge_factor=8, seed=11)
    mtx = os.path.join(tmp, "tiny.mtx")
    write_matrix_market(mtx, A)

    config = ServeConfig(
        socket_path=os.path.join(tmp, "s.sock"),
        max_batch=8,
        batch_deadline_ms=2.0,
        allow_fault_injection=True,
    )
    handle = start_in_thread(config)
    env = {"A": A, "mtx": mtx, "sock": config.socket_path, "tmp": tmp}
    try:
        # warm the engine once: every test below measures steady state
        with ServeClient(config.socket_path) as c:
            resp, _ = c.request(
                {"op": "partition", "matrix": mtx, "procs": PROCS, "seed": 0}
            )
            assert resp.get("ok"), resp
        yield env
    finally:
        try:
            with ServeClient(config.socket_path, timeout=10.0) as c:
                c.request({"op": "shutdown"})
        except OSError:
            pass
        handle.stop()
        if old_cache is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old_cache


def _target(env) -> dict:
    return {"op": "matvec", "matrix": env["mtx"], "procs": PROCS, "seed": 0}


def test_idempotent_retry_answered_from_dedup_table(serve_env):
    n = serve_env["A"].shape[0]
    x = np.random.default_rng(0).standard_normal(n)
    with ServeClient(serve_env["sock"]) as c:
        first, y1 = c.request({**_target(serve_env), "idem": "k-dup"}, x=x)
        assert first.get("ok") and not first.get("deduped")
        # a retry of the same logical request: new wire id, same idem key
        second, y2 = c.request({**_target(serve_env), "idem": "k-dup"}, x=x)
    assert second.get("ok") and second.get("deduped") is True
    assert np.array_equal(y1, y2)  # bit-identical, answered from the table


def test_idempotent_retry_deduped_while_inflight(serve_env):
    """A duplicate arriving while the original is still computing waits
    on the same future — one computation, two identical answers."""
    n = serve_env["A"].shape[0]
    x = np.random.default_rng(1).standard_normal(n)
    msg = {
        **_target(serve_env),
        "idem": "k-inflight",
        "fault": {"slow_ms": 250.0},
    }
    out: dict[str, tuple] = {}

    def call(tag):
        with ServeClient(serve_env["sock"]) as c:
            out[tag] = c.request(dict(msg), x=x)

    t1 = threading.Thread(target=call, args=("a",))
    t2 = threading.Thread(target=call, args=("b",))
    t1.start()
    t2.start()
    t1.join(30)
    t2.join(30)
    (ra, ya), (rb, yb) = out["a"], out["b"]
    assert ra.get("ok") and rb.get("ok")
    assert np.array_equal(ya, yb)
    assert ra.get("deduped") or rb.get("deduped")  # exactly one computed
    assert not (ra.get("deduped") and rb.get("deduped"))


def test_corruption_always_detected_never_silent(serve_env):
    """Under 100% response corruption no request may return clean: every
    one must surface as ProtocolError (CRC / JSON) or DeadlineExceeded."""
    listen = os.path.join(serve_env["tmp"], "corrupt.sock")
    proxy = start_chaos_proxy(
        serve_env["sock"], listen, ChaosSchedule(seed=3, p_corrupt=1.0)
    )
    n = serve_env["A"].shape[0]
    x = np.random.default_rng(2).standard_normal(n)
    detected = 0
    try:
        for i in range(6):
            with ServeClient(listen) as c:
                with pytest.raises((ProtocolError, DeadlineExceeded)):
                    c.request(_target(serve_env), x=x, deadline=1.0)
                detected += 1
    finally:
        proxy.stop()
    assert detected == 6
    assert proxy.proxy.executed_counts()["corrupt"] >= 6


def test_retrying_client_bit_identical_through_chaos(serve_env):
    """The headline contract, in miniature: every answered request under
    an all-classes chaos schedule matches the local reference engine."""
    listen = os.path.join(serve_env["tmp"], "mix.sock")
    schedule = ChaosSchedule(
        seed=7, p_torn=0.06, p_corrupt=0.08, p_reset=0.06, p_delay=0.1,
        p_drop=0.06, delay_ms=2.0,
    )
    engine, n = reference_engine(serve_env["mtx"], "2d-gp", PROCS, 0)
    rng = np.random.default_rng(3)
    xs = rng.standard_normal((12, n))
    proxy = start_chaos_proxy(serve_env["sock"], listen, schedule)
    try:
        with RetryingClient(
            listen, seed=7, max_attempts=10, total_deadline_s=60.0,
            attempt_deadline_s=2.0,
        ) as client:
            for i in range(12):
                resp, y = client.matvec(
                    serve_env["mtx"], xs[i], procs=PROCS, seed=0
                )
                assert resp.get("ok"), resp
                assert np.array_equal(y, engine.spmv(xs[i]))
        stats = dict(client.stats)
        executed = proxy.proxy.executed_counts()
    finally:
        proxy.stop()
    assert stats["requests"] == 12
    assert sum(executed.values()) >= 1  # the schedule actually fired
    # retries that reached the server were deduped, not recomputed
    assert stats["deduped"] <= stats["retries"]


def test_chaos_soak_invariants(serve_env):
    """run_chaos_soak end to end: zero divergences, zero lost acks."""
    listen = os.path.join(serve_env["tmp"], "soak.sock")
    schedule = ChaosSchedule(
        seed=9, p_torn=0.05, p_corrupt=0.05, p_reset=0.05, p_delay=0.08,
        p_drop=0.05, delay_ms=2.0,
    )
    proxy = start_chaos_proxy(serve_env["sock"], listen, schedule)
    try:
        res = run_chaos_soak(
            listen,
            serve_env["mtx"],
            procs=PROCS,
            seed=0,
            warm_socket_path=serve_env["sock"],
            chaos_seed=9,
            concurrency=2,
            requests_per_client=6,
            attempt_deadline_s=2.0,
            total_deadline_s=60.0,
            p_slow=0.25,
            slow_ms=2.0,
        )
        res.injected_wire = proxy.proxy.executed_counts()
    finally:
        proxy.stop()
    assert res.requests == 12
    assert res.answered == 12 and res.failed == 0
    assert res.divergences == 0 and res.lost_acked == 0
    assert res.injected_semantic["slow_engine"] >= 1
    d = res.as_dict()
    assert d["divergences"] == 0 and d["lost_acked"] == 0


def test_loadgen_deadline_counts_timeouts_separately(serve_env):
    """Dropped responses expire the per-request deadline and land in the
    distinct ``timeouts`` class — not errors, not divergences.

    seed=5 is chosen so the warm-up and priming frames pass while later
    response frames drop (decisions are pure in (seed, conn, frame)).
    """
    listen = os.path.join(serve_env["tmp"], "drop.sock")
    proxy = start_chaos_proxy(
        serve_env["sock"], listen, ChaosSchedule(seed=5, p_drop=0.5)
    )
    try:
        res = run_loadgen(
            listen,
            serve_env["mtx"],
            procs=PROCS,
            seed=0,
            concurrency=1,
            requests_per_client=8,
            vector_pool=4,
            deadline=0.5,
            timeout=30.0,
        )
        dropped = proxy.proxy.executed_counts()["drop"]
    finally:
        proxy.stop()
    assert res.timeouts >= 1 and dropped >= 1
    assert res.requests + res.timeouts == 8  # every issue is accounted
    assert res.errors == 0 and res.divergences == 0
    assert res.as_dict()["timeouts"] == res.timeouts


# ---------------------------------------------------------------------------
# slow-engine pricing helper
# ---------------------------------------------------------------------------


def test_straggler_overhead_positive_and_monotone():
    from repro.bench.harness import layout_for
    from repro.runtime import CAB, DistSparseMatrix
    from repro.runtime.faults import straggler_overhead_seconds

    A = rmat(scale=7, edge_factor=8, seed=3)
    dist = DistSparseMatrix(A, layout_for(A, "2d-block", 4), CAB)
    four = straggler_overhead_seconds(dist, rank=0, factor=4.0)
    eight = straggler_overhead_seconds(dist, rank=0, factor=8.0)
    assert four > 0.0
    assert eight >= four  # a slower rank can only inflate the critical path
    with pytest.raises(ValueError):
        straggler_overhead_seconds(dist, rank=0, factor=0.5)
    with pytest.raises(ValueError):
        straggler_overhead_seconds(dist, rank=99, factor=2.0)
