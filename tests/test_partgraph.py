"""Tests for repro.partitioning.partgraph."""

import numpy as np
import pytest

from repro.generators import grid2d
from repro.graphs import from_edges
from repro.partitioning import PartGraph


@pytest.fixture
def path4() -> PartGraph:
    """Path graph 0-1-2-3."""
    A = from_edges([0, 1, 2], [1, 2, 3], (4, 4), symmetrize=True)
    return PartGraph.from_matrix(A, "unit")


class TestConstruction:
    def test_from_matrix_symmetrizes_and_drops_diagonal(self):
        A = from_edges([0, 0, 1], [0, 1, 2], (3, 3))  # directed, with loop
        g = PartGraph.from_matrix(A, "unit")
        assert g.n == 3
        assert g.nedges == 2  # (0,1), (1,2)
        assert (g.vwgt == 1.0).all()

    def test_nnz_weights_use_original_rows(self):
        A = from_edges([0, 0, 0, 1], [0, 1, 2, 2], (3, 3))
        g = PartGraph.from_matrix(A, "nnz")
        assert g.vwgt[:, 0].tolist() == [3.0, 1.0, 1.0]

    def test_multiconstraint(self, small_rmat):
        g = PartGraph.from_matrix(small_rmat, ("unit", "nnz"))
        assert g.ncon == 2
        assert (g.vwgt[:, 0] == 1.0).all()
        # empty rows get weight 1 (a vertex may not weigh 0), so the total
        # is nnz plus the number of isolated vertices
        n_isolated = int((np.diff(small_rmat.indptr) == 0).sum())
        assert g.vwgt[:, 1].sum() == small_rmat.nnz + n_isolated

    def test_unknown_weight_raises(self, tiny_matrix):
        with pytest.raises(ValueError, match="unknown vertex weight"):
            PartGraph.from_matrix(tiny_matrix, "bogus")

    def test_rectangular_raises(self):
        with pytest.raises(ValueError, match="square"):
            PartGraph.from_matrix(from_edges([0], [1], (2, 3)))

    def test_from_scipy_defaults_unit_weights(self, small_grid):
        g = PartGraph.from_scipy(small_grid)
        assert g.ncon == 1 and g.vwgt.sum() == g.n


class TestMetrics:
    def test_edgecut_path(self, path4):
        assert path4.edgecut(np.array([0, 0, 1, 1])) == 1.0
        assert path4.edgecut(np.array([0, 1, 0, 1])) == 3.0
        assert path4.edgecut(np.zeros(4, dtype=int)) == 0.0

    def test_part_weights_and_imbalance(self, path4):
        part = np.array([0, 0, 0, 1])
        pw = path4.part_weights(part, 2)
        assert pw[:, 0].tolist() == [3.0, 1.0]
        assert np.isclose(path4.imbalance(part, 2)[0], 1.5)

    def test_neighbors_views(self, path4):
        assert sorted(path4.neighbors(1).tolist()) == [0, 2]
        assert path4.edge_weights(1).tolist() == [1.0, 1.0]

    def test_adjacency_roundtrip(self, small_grid):
        g = PartGraph.from_matrix(small_grid, "unit")
        W = g.adjacency_matrix()
        assert W.nnz == small_grid.nnz
        assert (W != W.T).nnz == 0


class TestInducedSubgraph:
    def test_grid_corner(self):
        g = PartGraph.from_matrix(grid2d(3, 3), "unit")
        sub = g.induced_subgraph(np.array([0, 1, 3, 4]))  # 2x2 corner
        assert sub.n == 4
        assert sub.nedges == 4

    def test_weights_follow(self, small_rmat):
        g = PartGraph.from_matrix(small_rmat, "nnz")
        idx = np.array([5, 10, 20])
        sub = g.induced_subgraph(idx)
        assert np.array_equal(sub.vwgt, g.vwgt[idx])
