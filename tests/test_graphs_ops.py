"""Tests for repro.graphs.ops — symmetrisation and Laplacians."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as sla

from repro.graphs import (
    adjacency_scaled,
    degrees,
    from_edges,
    is_structurally_symmetric,
    laplacian,
    largest_connected_component,
    normalized_laplacian,
    symmetrize,
)


class TestSymmetrize:
    def test_directed_becomes_symmetric(self):
        A = from_edges([0, 1, 2], [1, 2, 0], (4, 4))
        S = symmetrize(A)
        assert is_structurally_symmetric(S)
        assert S.nnz == 6
        assert (S.data == 1.0).all()

    def test_values_are_unit_even_for_two_way_edges(self):
        A = from_edges([0, 1], [1, 0], (2, 2))  # already symmetric
        S = symmetrize(A)
        assert S[0, 1] == 1.0  # not 2.0

    def test_rectangular_raises(self):
        with pytest.raises(ValueError, match="square"):
            symmetrize(from_edges([0], [1], (2, 3)))


class TestLaplacian:
    def test_row_sums_zero(self, small_powerlaw):
        L = laplacian(small_powerlaw)
        assert np.abs(np.asarray(L.sum(axis=1))).max() < 1e-9

    def test_laplacian_psd(self, tiny_matrix):
        L = laplacian(tiny_matrix).toarray()
        vals = np.linalg.eigvalsh(L)
        assert vals.min() > -1e-9

    def test_degrees_match_row_counts(self, tiny_matrix):
        d = degrees(tiny_matrix)
        assert np.array_equal(d, np.asarray((tiny_matrix != 0).sum(axis=1)).ravel())


class TestNormalizedLaplacian:
    def test_spectrum_in_0_2(self, small_powerlaw):
        Lhat = normalized_laplacian(small_powerlaw)
        lo = sla.eigsh(Lhat, k=1, which="SA", return_eigenvectors=False)[0]
        hi = sla.eigsh(Lhat, k=1, which="LA", return_eigenvectors=False)[0]
        assert lo > -1e-8
        assert hi < 2.0 + 1e-8

    def test_zero_eigenvalue_with_sqrt_degree_vector(self, small_grid):
        Lhat = normalized_laplacian(small_grid)
        v = np.sqrt(degrees(small_grid))
        v /= np.linalg.norm(v)
        assert np.linalg.norm(Lhat @ v) < 1e-9

    def test_isolated_vertex_no_nan(self):
        A = from_edges([0], [1], (3, 3), symmetrize=True)  # vertex 2 isolated
        Lhat = normalized_laplacian(A)
        assert np.isfinite(Lhat.toarray()).all()

    def test_scaled_adjacency_symmetric(self, small_powerlaw):
        S = adjacency_scaled(small_powerlaw)
        assert np.abs((S - S.T)).max() < 1e-12


class TestConnectedComponent:
    def test_already_connected(self, small_grid):
        A, kept = largest_connected_component(small_grid)
        assert A.shape == small_grid.shape
        assert len(kept) == small_grid.shape[0]

    def test_disconnected(self):
        # two triangles, one bigger clique of 4
        edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 6), (6, 3), (3, 5), (4, 6)]
        r, c = zip(*edges)
        A = from_edges(np.array(r), np.array(c), (7, 7), symmetrize=True)
        sub, kept = largest_connected_component(A)
        assert sorted(kept.tolist()) == [3, 4, 5, 6]
        assert sub.shape == (4, 4)

    def test_empty_graph_single_component_each(self):
        A = sp.csr_matrix((3, 3))
        sub, kept = largest_connected_component(A)
        assert sub.shape == (1, 1)
        assert len(kept) == 1
