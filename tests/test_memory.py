"""Tests for the per-rank memory model."""


from repro.layouts import make_layout
from repro.runtime import DistSparseMatrix


class TestMemoryModel:
    def test_total_scales_with_problem(self, small_rmat):
        lay = make_layout("1d-block", small_rmat, 4)
        dist = DistSparseMatrix(small_rmat, lay)
        mem = dist.memory_per_rank()
        assert len(mem) == 4
        # at least the raw CSR payload must be accounted for
        assert mem.sum() >= 12 * small_rmat.nnz

    def test_block_layout_memory_spike(self, small_rmat):
        """The paper's OOM scenario: block layouts concentrate hub rows."""
        blk = DistSparseMatrix(small_rmat, make_layout("1d-block", small_rmat, 8))
        rnd = DistSparseMatrix(small_rmat, make_layout("1d-random", small_rmat, 8, seed=1))
        assert blk.memory_imbalance() > 1.5
        assert rnd.memory_imbalance() < blk.memory_imbalance()

    def test_single_rank_no_ghosts(self, small_grid):
        dist = DistSparseMatrix(small_grid, make_layout("1d-block", small_grid, 1))
        assert dist.memory_imbalance() == 1.0
        mem = dist.memory_per_rank()[0]
        n, nnz = small_grid.shape[0], small_grid.nnz
        expected = 12 * nnz + 4 * (n + 1) + 8 * (2 * n + n)
        assert mem == expected

    def test_ghost_buffers_counted(self, small_grid):
        """More communication -> more buffer memory, all else equal."""
        local = DistSparseMatrix(small_grid, make_layout("1d-block", small_grid, 4))
        scattered = DistSparseMatrix(small_grid, make_layout("1d-random", small_grid, 4, seed=2))
        assert scattered.memory_per_rank().sum() > local.memory_per_rank().sum()
