"""Tests for the spectral analysis applications."""

import numpy as np
import pytest

from repro.generators import grid2d
from repro.graphs import from_edges
from repro.layouts import make_layout
from repro.spectral import (
    bipartite_detection,
    kmeans,
    spectral_clustering,
    spectral_embedding,
)


def _planted_partition(n_per=60, k=3, p_in=0.25, p_out=0.01, seed=0):
    """k dense blocks with sparse cross edges; labels are known."""
    rng = np.random.default_rng(seed)
    n = n_per * k
    truth = np.repeat(np.arange(k), n_per)
    rows, cols = [], []
    for i in range(n):
        for j in range(i + 1, n):
            p = p_in if truth[i] == truth[j] else p_out
            if rng.random() < p:
                rows.append(i)
                cols.append(j)
    A = from_edges(np.array(rows), np.array(cols), (n, n), symmetrize=True)
    return A, truth


def _purity(labels, truth, k):
    """Fraction of vertices in their cluster's majority true class."""
    good = 0
    for c in range(k):
        members = truth[labels == c]
        if len(members):
            good += np.bincount(members).max()
    return good / len(truth)


class TestKmeans:
    def test_separated_blobs(self, rng):
        X = np.concatenate([rng.normal(0, 0.1, (50, 2)), rng.normal(5, 0.1, (50, 2))])
        labels = kmeans(X, 2, seed=1)
        assert len(np.unique(labels)) == 2
        assert len(np.unique(labels[:50])) == 1
        assert len(np.unique(labels[50:])) == 1

    def test_k_equals_points(self):
        X = np.array([[0.0], [10.0], [20.0]])
        labels = kmeans(X, 3, seed=0)
        assert len(np.unique(labels)) == 3


class TestSpectralClustering:
    def test_recovers_planted_partition(self):
        A, truth = _planted_partition()
        lay = make_layout("1d-block", A, 4)
        res = spectral_clustering(A, 3, layout=lay, tol=1e-6, seed=1)
        assert _purity(res.labels, truth, 3) > 0.95
        assert res.ledger.total() > 0

    def test_embedding_shape_and_cost(self):
        A, _ = _planted_partition(n_per=40, k=2)
        lay = make_layout("2d-random", A, 4, seed=0)
        X, ledger = spectral_embedding(A, dim=3, layout=lay, tol=1e-5)
        assert X.shape == (A.shape[0], 3)
        assert ledger.spmv_total() > 0

    def test_validation(self):
        A, _ = _planted_partition(n_per=30, k=2)
        with pytest.raises(ValueError, match="n_clusters"):
            spectral_clustering(A, 1)


class TestBipartiteDetection:
    def test_exactly_bipartite(self):
        """A grid is bipartite: lambda_max(L_hat) = 2 and the sign split
        recovers the two-colouring."""
        A = grid2d(10, 12)
        lay = make_layout("1d-block", A, 4)
        res = bipartite_detection(A, layout=lay, tol=1e-9, seed=2)
        assert res.score < 1e-6
        # checkerboard colouring: neighbours always on opposite sides
        coo = A.tocoo()
        assert (res.sides[coo.row] != res.sides[coo.col]).all()

    def test_non_bipartite_scores_higher(self, small_powerlaw):
        lay = make_layout("1d-block", small_powerlaw, 4)
        res = bipartite_detection(small_powerlaw, layout=lay, tol=1e-6, seed=3)
        assert res.score > 0.01  # triangles break bipartiteness
