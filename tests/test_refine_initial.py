"""Tests for FM refinement and initial bisection generators."""

import numpy as np
import pytest

from repro.generators import grid2d
from repro.graphs import from_edges
from repro.partitioning import PartGraph
from repro.partitioning.initial import (
    greedy_graph_growing,
    random_bisection,
    spectral_bisection,
)
from repro.partitioning.refine import balance_allowance, fm_refine, is_balanced


def _grid_graph(nx=12, ny=12) -> PartGraph:
    return PartGraph.from_matrix(grid2d(nx, ny), "unit")


def _side_weights(g, part):
    sw = np.zeros((2, g.ncon))
    np.add.at(sw, part, g.vwgt)
    return sw


class TestBalanceAllowance:
    def test_widened_by_hub_vertex(self):
        A = from_edges([0] * 5, [1, 2, 3, 4, 5], (6, 6), symmetrize=True)
        g = PartGraph.from_matrix(A, "nnz")  # hub row weight 5
        allow = balance_allowance(g, (0.5, 0.5), ub=1.05)
        # hub weight (5) exceeds 5% slack of half the total: granularity wins
        assert allow[0, 0] >= 0.5 * g.total_weight()[0] + 5.0

    def test_is_balanced(self):
        allow = np.array([[5.0], [5.0]])
        assert is_balanced(np.array([[5.0], [4.0]]), allow)
        assert not is_balanced(np.array([[5.1], [4.0]]), allow)


class TestFMRefine:
    def test_improves_a_bad_grid_bisection(self):
        g = _grid_graph()
        # interleaved columns: terrible cut, perfect balance
        part = (np.arange(g.n) % 2).astype(np.int64)
        bad_cut = g.edgecut(part)
        refined = fm_refine(g, part, passes=5, hill_limit=200)
        assert g.edgecut(refined) < 0.5 * bad_cut
        allow = balance_allowance(g, (0.5, 0.5), 1.05)
        assert is_balanced(_side_weights(g, refined), allow)

    def test_does_not_worsen_an_optimal_bisection(self):
        g = _grid_graph()
        part = (np.arange(g.n) >= g.n // 2).astype(np.int64)  # straight cut
        refined = fm_refine(g, part)
        assert g.edgecut(refined) <= g.edgecut(part)

    def test_repairs_imbalance(self):
        g = _grid_graph(10, 10)
        part = np.zeros(g.n, dtype=np.int64)
        part[:5] = 1  # 95/5 split: way out of tolerance
        refined = fm_refine(g, part, ub=1.10, passes=6, hill_limit=400)
        imb = g.imbalance(refined, 2)[0]
        assert imb < g.imbalance(part, 2)[0]
        assert imb < 1.4

    def test_multiconstraint_balances_both(self, small_rmat):
        g = PartGraph.from_matrix(small_rmat, ("unit", "nnz"))
        rng = np.random.default_rng(3)
        part = rng.integers(0, 2, g.n)
        refined = fm_refine(g, part, ub=1.10, passes=4)
        imb = g.imbalance(refined, 2)
        assert imb[0] < 1.3  # rows
        # nnz balance is granularity-limited by hubs but must stay sane
        assert imb[1] < 2.0

    def test_single_vertex_noop(self):
        A = from_edges([], [], (1, 1))
        g = PartGraph.from_matrix(A, "unit")
        assert fm_refine(g, np.array([0])).tolist() == [0]


class TestInitialBisectionGenerators:
    @pytest.mark.parametrize("frac", [0.5, 0.25])
    def test_greedy_growing_hits_target(self, frac):
        g = _grid_graph()
        rng = np.random.default_rng(0)
        part = greedy_graph_growing(g, frac, rng)
        assert set(np.unique(part)) <= {0, 1}
        w0 = g.vwgt[part == 0, 0].sum()
        assert abs(w0 / g.total_weight()[0] - frac) < 0.10

    def test_greedy_growing_is_connected_region_on_grid(self):
        g = _grid_graph(8, 8)
        part = greedy_graph_growing(g, 0.5, np.random.default_rng(1))
        # BFS growth on a grid yields a cut far below worst case
        assert g.edgecut(part) < 30

    def test_spectral_on_two_cliques(self):
        # two 5-cliques joined by one edge: spectral must find the bridge
        edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        edges += [(i + 5, j + 5) for i, j in edges[:10]]
        edges += [(0, 5)]
        r, c = zip(*edges)
        A = from_edges(np.array(r), np.array(c), (10, 10), symmetrize=True)
        g = PartGraph.from_matrix(A, "unit")
        part = spectral_bisection(g, 0.5)
        assert part is not None
        assert g.edgecut(part) == 1.0

    def test_spectral_declines_large_graphs(self):
        g = PartGraph.from_matrix(grid2d(30, 30), "unit")
        assert spectral_bisection(g, 0.5) is None  # n=900 > dense threshold

    def test_random_bisection_weights(self):
        g = _grid_graph()
        part = random_bisection(g, 0.5, np.random.default_rng(2))
        w0 = g.vwgt[part == 0, 0].sum()
        assert abs(w0 / g.total_weight()[0] - 0.5) < 0.1
