"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.io import write_matrix_market


@pytest.fixture
def mtx_file(tmp_path, small_powerlaw):
    path = tmp_path / "g.mtx"
    write_matrix_market(path, small_powerlaw, pattern=True)
    return str(path)


class TestCli:
    def test_corpus_lists_ten(self, capsys):
        assert main(["corpus"]) == 0
        out = capsys.readouterr().out
        assert "hollywood-2009" in out and "rmat_26" in out

    def test_stats_on_corpus_name(self, capsys):
        assert main(["stats", "rmat_22"]) == 0
        out = capsys.readouterr().out
        assert "nonzeros" in out and "power-law" in out

    def test_stats_on_file(self, mtx_file, capsys):
        assert main(["stats", mtx_file]) == 0
        assert "rows" in capsys.readouterr().out

    def test_unknown_matrix_errors(self):
        with pytest.raises(SystemExit, match="neither"):
            main(["stats", "no-such-thing"])

    def test_partition_saves_output(self, mtx_file, tmp_path, capsys):
        out_file = tmp_path / "part.npy"
        assert main(["partition", mtx_file, "-k", "4", "-o", str(out_file)]) == 0
        part = np.load(out_file)
        assert part.max() == 3
        assert "imbalance" in capsys.readouterr().out

    def test_spmv_comparison(self, mtx_file, capsys):
        assert main([
            "spmv", mtx_file, "-p", "4", "--methods", "1d-block", "2d-random",
        ]) == 0
        out = capsys.readouterr().out
        assert "1D-Block" in out and "2D-Random" in out

    def test_eigen_comparison(self, mtx_file, capsys):
        assert main([
            "eigen", mtx_file, "-p", "4", "-k", "3", "--tol", "1e-2",
            "--methods", "1d-block", "2d-random",
        ]) == 0
        out = capsys.readouterr().out
        assert "matvecs" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
