"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.io import write_matrix_market


@pytest.fixture
def mtx_file(tmp_path, small_powerlaw):
    path = tmp_path / "g.mtx"
    write_matrix_market(path, small_powerlaw, pattern=True)
    return str(path)


class TestCli:
    def test_corpus_lists_ten(self, capsys):
        assert main(["corpus"]) == 0
        out = capsys.readouterr().out
        assert "hollywood-2009" in out and "rmat_26" in out

    def test_stats_on_corpus_name(self, capsys):
        assert main(["stats", "rmat_22"]) == 0
        out = capsys.readouterr().out
        assert "nonzeros" in out and "power-law" in out

    def test_stats_on_file(self, mtx_file, capsys):
        assert main(["stats", mtx_file]) == 0
        assert "rows" in capsys.readouterr().out

    def test_unknown_matrix_errors(self):
        with pytest.raises(SystemExit, match="neither"):
            main(["stats", "no-such-thing"])

    def test_partition_saves_output(self, mtx_file, tmp_path, capsys):
        out_file = tmp_path / "part.npy"
        assert main(["partition", mtx_file, "-k", "4", "-o", str(out_file)]) == 0
        part = np.load(out_file)
        assert part.max() == 3
        assert "imbalance" in capsys.readouterr().out

    def test_partition_profile_prints_phase_table(self, mtx_file, capsys):
        assert main(["partition", mtx_file, "-k", "4", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "imbalance" in out  # normal output still present
        for phase in ("coarsen", "initial", "refine", "bisect", "match", "contract"):
            assert phase in out
        assert "seconds" in out and "calls" in out

    def test_partition_coarsen_kernel_flag(self, mtx_file, tmp_path, capsys):
        """Both coarsening kernels are selectable and give identical parts."""
        parts = {}
        for kern in ("vector", "reference"):
            out_file = tmp_path / f"{kern}.npy"
            assert main([
                "partition", mtx_file, "-k", "4",
                "--coarsen-kernel", kern, "-o", str(out_file),
            ]) == 0
            parts[kern] = np.load(out_file)
        assert np.array_equal(parts["vector"], parts["reference"])

    def test_spmv_comparison(self, mtx_file, capsys):
        assert main([
            "spmv", mtx_file, "-p", "4", "--methods", "1d-block", "2d-random",
        ]) == 0
        out = capsys.readouterr().out
        assert "1D-Block" in out and "2D-Random" in out

    def test_eigen_comparison(self, mtx_file, capsys):
        assert main([
            "eigen", mtx_file, "-p", "4", "-k", "3", "--tol", "1e-2",
            "--methods", "1d-block", "2d-random",
        ]) == 0
        out = capsys.readouterr().out
        assert "matvecs" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_regress_check_missing_goldens_exits_3(self, tmp_path, capsys):
        assert main([
            "regress", "check", "--golden-dir", str(tmp_path / "nowhere"),
        ]) == 3
        assert "regress generate" in capsys.readouterr().out

    def test_faults_run(self, mtx_file, capsys):
        assert main([
            "faults", "run", mtx_file, "-p", "8", "--iterations", "20",
            "--failstop-rate", "0.1", "--corruption-rate", "0.1",
            "--method", "2d-block", "--seed", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "resilience overhead" in out
        assert "recover" in out

    def test_faults_campaign(self, mtx_file, capsys):
        assert main([
            "faults", "campaign", mtx_file, "-p", "8", "--iterations", "15",
            "--failstop-rates", "0.0", "0.1",
            "--methods", "1d-block", "2d-block", "--seed", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "rec peers" in out
        assert "1D-Block" in out and "2D-Block" in out

    def test_faults_campaign_is_reproducible(self, mtx_file, capsys):
        argv = [
            "faults", "campaign", mtx_file, "-p", "8", "--iterations", "15",
            "--failstop-rates", "0.1", "--methods", "2d-block", "--seed", "9",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_seed_flag_uniform_across_subcommands(self):
        from repro.cli import build_parser

        parser = build_parser()
        for argv in (
            ["partition", "x", "-k", "2", "--seed", "7"],
            ["spmv", "x", "--seed", "7"],
            ["eigen", "x", "--seed", "7"],
            ["regress", "check", "--seed", "7"],
            ["faults", "run", "x", "--seed", "7"],
            ["faults", "campaign", "x", "--seed", "7"],
        ):
            assert parser.parse_args(argv).seed == 7


class TestCacheCli:
    """`repro cache` + the --engine-store plumbing that populates it."""

    def _populated_store(self, mtx_file, tmp_path):
        store = tmp_path / "engines"
        rc = main([
            "spmv", mtx_file, "-p", "4", "--methods", "2d-random",
            "--engine-store", str(store),
        ])
        assert rc == 0
        return store

    def test_spmv_populates_store_and_list_shows_it(
        self, mtx_file, tmp_path, capsys
    ):
        store = self._populated_store(mtx_file, tmp_path)
        artifacts = list(store.glob("*.engine.npz"))
        assert len(artifacts) == 1
        assert main(["cache", "list", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "_2d-random_k4_s0" in out
        assert "ok" in out
        assert "1 artifact(s)" in out

    def test_evict_by_key_then_missing_is_nonzero(
        self, mtx_file, tmp_path, capsys
    ):
        store = self._populated_store(mtx_file, tmp_path)
        key = next(store.glob("*.engine.npz")).name.removesuffix(".engine.npz")
        assert main(["cache", "evict", key, "--store", str(store)]) == 0
        assert "evicted" in capsys.readouterr().out
        assert main(["cache", "evict", key, "--store", str(store)]) == 1

    def test_clear_empties_the_store(self, mtx_file, tmp_path, capsys):
        store = self._populated_store(mtx_file, tmp_path)
        assert main(["cache", "clear", "--store", str(store)]) == 0
        assert "removed 1 artifact(s)" in capsys.readouterr().out
        assert main(["cache", "list", "--store", str(store)]) == 0
        assert "empty" in capsys.readouterr().out
